"""The Fig. 7 optimization cycle, end to end, on the real dynamical core.

Builds the whole-step SDFG of one rank (Sec. V-B orchestration), then
walks the paper's pipeline stage by stage — schedule heuristics, local
caching, power-operator strength reduction, region splitting, pruning and
transfer tuning — printing the Table III rows and the Fig. 10 kernel
report before and after.

Run:  python examples/performance_engineering.py
"""

from repro.core.machine import HASWELL, P100
from repro.core.perfmodel import bound_report, format_bound_report
from repro.core.pipeline import (
    OptimizationPipeline,
    PipelineOptions,
    format_table3,
)
from repro.fv3.config import DynamicalCoreConfig
from repro.fv3.performance import SingleRankDynCore


def main() -> None:
    config = DynamicalCoreConfig(
        npx=48, npz=32, layout=1, dt_atmos=225.0, k_split=1, n_split=3
    )
    print("building the whole-step SDFG (orchestration, Sec. V-B)...")
    core = SingleRankDynCore(config)
    program = core.build_sdfg()
    sdfg = program.sdfg
    print(f"  {sdfg.stats()}")

    print("\ninitial Fig. 10 report (worst kernels, % of peak bandwidth):")
    print(format_bound_report(bound_report(sdfg, P100, top=6)))

    print("\nrunning the optimization pipeline (Fig. 7)...")
    pipeline = OptimizationPipeline(
        PipelineOptions(
            machine=P100,
            baseline_machine=HASWELL,
            transfer_states=("xppm", "yppm", "transverse", "scale_flux"),
        )
    )
    stages = pipeline.run(sdfg)
    print()
    print(format_table3(stages))

    print("\nfinal Fig. 10 report:")
    print(format_bound_report(bound_report(sdfg, P100, top=6)))

    print(
        "\nAll of this happened in the toolchain — the model code "
        "(repro/fv3/stencils/*.py) was never modified (Sec. IX-A)."
    )


if __name__ == "__main__":
    main()
