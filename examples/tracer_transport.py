"""Solid-body-rotation tracer transport on the cubed sphere.

Williamson test case 1: a Gaussian blob advected by a rigid-rotation
wind field, launched straight from the scenario registry through the
``repro.run`` facade. Exercises the finite-volume transport operator
(Table II's FVT), the halo exchange with tile-seam rotations, and the
corner fills; the scenario's reference checks cover mass conservation
and monotonicity automatically.

Pass ``--rotated`` to run the 45°-tilted variant instead — the same
blob then crosses tile seams and corners.

Run:  python examples/tracer_transport.py [steps] [--rotated]
"""

import sys

import numpy as np

from repro.fv3 import constants
from repro.run import run

U0 = 40.0  # rigid-rotation speed of the registered scenarios [m/s]


def blob_position(states, grids, h) -> tuple:
    """(peak, lon, lat) of the tracer maximum across all ranks."""
    best = (-1.0, 0.0, 0.0)
    for r, state in enumerate(states):
        tr = state.tracers[0][h:-h, h:-h, 0]
        i, j = np.unravel_index(np.argmax(tr), tr.shape)
        value = tr[i, j]
        if value > best[0]:
            grid = grids[r]
            best = (value, grid.lon[h + i, h + j], grid.lat[h + i, h + j])
    return best


def main(steps: int = 8, scenario: str = "solid_body_rotation") -> None:
    result = run(scenario, steps=steps)
    member = result.members[0]
    engine = result.engine

    for entry in member.history:
        print(
            f"step {entry['step']:>2}  t={entry['time']:7.0f}s  "
            f"tracer mass drift={entry['tracer_drift']:+.2e}"
        )
    peak, lon, lat = blob_position(member.states, engine.grids, engine.h)
    print(
        f"\nfinal blob: peak={peak:.3f} at lon={np.degrees(lon):7.2f}° "
        f"lat={np.degrees(lat):6.2f}°"
    )
    expected_deg = np.degrees(
        U0 * steps * result.config.dt_atmos / constants.RADIUS
    )
    print(f"expected drift ≈ {expected_deg:.1f}° (u0·t/R at the equator)")
    mins = min(float(s.tracers[0][3:-3, 3:-3].min()) for s in member.states)
    print(f"minimum tracer value: {mins:+.2e} (monotone scheme: ≈ no "
          f"undershoot)")
    checks = "passed" if member.ok else "; ".join(member.check_violations)
    print(f"reference checks: {checks}")


if __name__ == "__main__":
    args = [a for a in sys.argv[1:] if a != "--rotated"]
    name = (
        "rotated_transport" if len(args) != len(sys.argv) - 1
        else "solid_body_rotation"
    )
    main(int(args[0]) if args else 8, name)
