"""Solid-body-rotation tracer transport on the cubed sphere.

Williamson test case 1: a Gaussian blob advected by a rigid-rotation wind
field. Exercises the finite-volume transport operator (Table II's FVT),
the halo exchange with tile-seam rotations, and the corner fills —
and checks the transport invariants (mass conservation, monotonicity).

Run:  python examples/tracer_transport.py [steps]
"""

import sys

import numpy as np

from repro.fv3 import constants
from repro.fv3.config import DynamicalCoreConfig
from repro.fv3.dyncore import DynamicalCore
from repro.fv3.initial import (
    RankFields,
    gaussian_tracer,
    reference_coordinate,
    solid_body_rotation_winds,
)


def make_init(u0: float):
    def init(grid, config):
        nk = config.npz
        u, v = solid_body_rotation_winds(grid, nk, u0=u0)
        bk, ptop = reference_coordinate(config)
        pe = ptop + bk[None, None, :] * (constants.P_REF - ptop)
        delp = np.broadcast_to(
            np.diff(pe, axis=-1), grid.shape + (nk,)
        ).copy()
        p_mid = 0.5 * (pe[..., :-1] + pe[..., 1:])
        pt = np.full(grid.shape + (nk,), 280.0)
        delz = -constants.RDGAS * pt * delp / (constants.GRAV * p_mid)
        blob = gaussian_tracer(grid, nk, lon0=0.0, lat0=0.0, width=0.4)
        return RankFields(
            u=u, v=v, w=np.zeros_like(pt), pt=pt, delp=delp, delz=delz,
            tracers=[blob],
        )

    return init


def blob_position(core) -> tuple:
    """(lon, lat) of the tracer maximum across all ranks."""
    h = core.h
    best = (-1.0, 0.0, 0.0)
    for r, state in enumerate(core.states):
        tr = state.tracers[0][h:-h, h:-h, 0]
        i, j = np.unravel_index(np.argmax(tr), tr.shape)
        value = tr[i, j]
        if value > best[0]:
            grid = core.grids[r]
            best = (value, grid.lon[h + i, h + j], grid.lat[h + i, h + j])
    return best


def main(steps: int = 8) -> None:
    config = DynamicalCoreConfig(
        npx=16, npz=3, layout=1, dt_atmos=1200.0, k_split=1, n_split=3,
        n_tracers=1, d2_damp=0.0, smag_coeff=0.0,
    )
    core = DynamicalCore(config, init=make_init(u0=40.0))
    mass0 = core.tracer_integral(0)
    peak0, lon0, lat0 = blob_position(core)
    print(f"initial blob: peak={peak0:.3f} at lon={np.degrees(lon0):7.2f}°")

    for step in range(1, steps + 1):
        core.step_dynamics()
        peak, lon, lat = blob_position(core)
        drift = (core.tracer_integral(0) - mass0) / mass0
        print(
            f"step {step:>2}  blob at lon={np.degrees(lon):7.2f}° "
            f"lat={np.degrees(lat):6.2f}°  peak={peak:.3f}  "
            f"tracer mass drift={drift:+.2e}"
        )

    expected_deg = np.degrees(
        40.0 * steps * config.dt_atmos / constants.RADIUS
    )
    print(f"\nexpected eastward drift ≈ {expected_deg:.1f}° "
          f"(u0·t/R at the equator)")
    mins = min(float(s.tracers[0][3:-3, 3:-3].min()) for s in core.states)
    print(f"minimum tracer value: {mins:+.2e} (monotone scheme: ≈ no "
          f"undershoot)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8)
