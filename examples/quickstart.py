"""Quickstart: write a stencil, run it, inspect and optimize its dataflow.

Walks the Fig. 4 journey: a declarative GT4Py-style stencil → a library
node in an SDFG → expanded kernels → fused, optimized kernels — with the
performance model explaining each step.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core.machine import P100
from repro.core.perfmodel import bound_report, format_bound_report
from repro.core.pipeline import optimize_sdfg_locally
from repro.dsl import (
    Field,
    PARALLEL,
    available_backends,
    computation,
    default_backend,
    interval,
    stencil,
)
from repro.sdfg import SDFG
from repro.sdfg.analysis import total_bytes
from repro.sdfg.codegen import compile_sdfg
from repro.sdfg.nodes import StencilComputation
from repro.sdfg.transformations import OTFMapFusion, apply_exhaustively


# ---- 1. declarative stencils (Sec. III-A) --------------------------------
@stencil
def diffusive_flux(q: Field, flux: Field):
    """5-point Laplacian: the canonical horizontal stencil."""
    with computation(PARALLEL), interval(...):
        flux = q[-1, 0, 0] + q[1, 0, 0] + q[0, -1, 0] + q[0, 1, 0] - 4.0 * q


@stencil
def apply_flux(q: Field, flux: Field, q_out: Field, alpha: float):
    with computation(PARALLEL), interval(...):
        q_out = q + alpha * flux


def main() -> None:
    shape = (128, 128, 64)
    domain = (124, 124, 64)
    origin = (2, 2, 0)
    rng = np.random.default_rng(42)
    q = rng.random(shape)

    # ---- 2. the debug backend: instant, interpretable ------------------
    # backends live in a registry; the default is scoped with a context
    # manager (restored on exit) instead of a mutable module global
    print("registered backends:", ", ".join(available_backends()))
    flux = np.zeros(shape)
    q_out = np.zeros(shape)
    with default_backend("numpy"):
        diffusive_flux(q, flux, origin=origin, domain=domain)
        apply_flux(q, flux, q_out, 0.1, origin=origin, domain=domain)
    print("NumPy backend result checksum:", float(q_out.sum()))

    # ---- 3. the same computation as a whole-program SDFG ---------------
    sdfg = SDFG("diffusion")
    sdfg.add_array("q", shape)
    sdfg.add_array("q_out", shape)
    sdfg.add_transient("flux", shape)
    state = sdfg.add_state("diffusion")
    # the producer covers the consumer's reads: same extents here (offset 0)
    state.add(StencilComputation(
        diffusive_flux.definition, diffusive_flux.extents,
        mapping={"q": "q", "flux": "flux"}, domain=domain, origin=origin,
    ))
    state.add(StencilComputation(
        apply_flux.definition, apply_flux.extents,
        mapping={"q": "q", "flux": "flux", "q_out": "q_out"},
        domain=domain, origin=origin,
        scalar_mapping={"alpha": "alpha"},
    ))
    sdfg.expand_library_nodes()
    print("\nexpanded SDFG:", sdfg.stats())
    print(f"modeled DRAM traffic: {total_bytes(sdfg) / 1e6:.1f} MB")

    # ---- 4. data-centric optimization (Sec. VI) ------------------------
    applied = apply_exhaustively(sdfg, [OTFMapFusion()])
    print(f"\nOTF map fusion applied {applied}x "
          f"(the transient 'flux' array is gone: {'flux' not in sdfg.arrays})")
    print(f"modeled DRAM traffic now: {total_bytes(sdfg) / 1e6:.1f} MB")
    optimize_sdfg_locally(sdfg, P100)

    # ---- 5. compile and validate ---------------------------------------
    program = compile_sdfg(sdfg)
    arrays = {"q": q, "q_out": np.zeros(shape)}
    program(arrays=arrays, scalars={"alpha": 0.1})
    np.testing.assert_allclose(arrays["q_out"], q_out, rtol=1e-14)
    print("optimized program matches the debug backend bit-for-bit ✓")

    # ---- 6. the Fig. 10 view --------------------------------------------
    print("\nmodel-augmented kernel report (P100 model):")
    print(format_bound_report(bound_report(sdfg, P100)))

    # ---- 7. from one stencil to the whole model -------------------------
    # the same stack drives the full dynamical core through the unified
    # experiment facade: scenario registry -> run() -> structured result
    from repro.fv3.config import DynamicalCoreConfig
    from repro.run import run
    from repro.scenarios import available_scenarios

    print("\nregistered scenarios:", ", ".join(available_scenarios()))
    result = run(
        "baroclinic_wave",
        DynamicalCoreConfig(npx=12, npz=4, layout=1, dt_atmos=120.0,
                            k_split=1, n_split=2, n_tracers=1),
        steps=1,
    )
    print(result.describe())


if __name__ == "__main__":
    main()
