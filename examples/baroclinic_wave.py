"""The paper's Sec. IX test case: a perturbed zonal flow on the cubed
sphere, integrated by the full dynamical core across 6 simulated ranks.

The whole experiment is now one facade call: the scenario registry
supplies the reference-checked initial conditions and configuration,
``repro.run.run`` wires the ranks and steps the model, and this script
only renders the result — per-step diagnostics (max wind, max vertical
velocity, global mass drift) and a crude ASCII rendering of the
mid-level temperature anomaly of tile 0, the paper's "fast visual
verification of the results".

With tracing on (``REPRO_TRACE=1`` or ``--trace``) the run ends with the
``repro.obs`` span tree: dyncore → acoustics → per-stencil calls and halo
exchanges, with call counts, estimated bytes moved and achieved GB/s
against the machine-model roofline.

Run:  python examples/baroclinic_wave.py [steps] [--trace]
"""

import sys

import numpy as np

from repro import obs
from repro.run import run
from repro.scenarios import get_scenario


def ascii_field(field2d: np.ndarray, width: int = 48) -> str:
    """Render a 2D field as ASCII shades."""
    shades = " .:-=+*#%@"
    f = field2d
    lo, hi = float(f.min()), float(f.max())
    scale = (len(shades) - 1) / (hi - lo + 1e-30)
    rows = []
    step = max(1, f.shape[0] // width)
    for j in range(f.shape[1] - 1, -1, -2 * step):
        row = "".join(
            shades[int((f[i, j] - lo) * scale)]
            for i in range(0, f.shape[0], step)
        )
        rows.append(row)
    return "\n".join(rows)


def main(steps: int = 4) -> None:
    scenario = get_scenario("baroclinic_wave")
    config = scenario.default_config()
    print(f"grid: c{config.npx}, {config.npz} levels, "
          f"{config.total_ranks} ranks, dt={config.dt_atmos}s "
          f"(~{config.grid_spacing_km():.0f} km spacing)")

    result = run(scenario, config, steps=steps)
    member = result.members[0]

    for entry in member.history:
        print(
            f"step {entry['step']:>2}  t={entry['time']:7.0f}s  "
            f"max|V|={entry['max_wind']:6.2f} m/s  "
            f"max|w|={entry['max_w']:7.4f} m/s  "
            f"mass drift={entry['mass_drift']:+.2e}"
        )
    checks = "passed" if member.ok else "; ".join(member.check_violations)
    print(f"reference checks: {checks}")

    engine = result.engine
    h = engine.h
    k_mid = config.npz // 2
    pt = member.states[0].pt[h:-h, h:-h, k_mid]
    anomaly = pt - pt.mean()
    print(f"\ntile 0 temperature anomaly at level {k_mid} "
          f"(range {anomaly.min():+.2f}..{anomaly.max():+.2f} K):")
    print(ascii_field(anomaly))

    comm = engine.halo.comm
    print(f"\ncommunication: {len(comm.log)} messages routed, "
          f"{sum(m.nbytes for m in comm.log) / 1e6:.1f} MB total")

    if obs.enabled():
        print()
        print(obs.report())


if __name__ == "__main__":
    argv = [a for a in sys.argv[1:] if a != "--trace"]
    if len(argv) != len(sys.argv) - 1:
        obs.enable()
    main(int(argv[0]) if argv else 4)
