"""Table II (right): Finite Volume Transport across domain sizes.

Paper (FORTRAN vs GT4Py+DaCe):
  128²×80: 3.41 vs 1.81 ms (1.88×)   192²×80: 12.31 vs 3.41 (3.61×)
  256²×80: 35.79 vs 5.67 (6.31×)     384²×80: 106.66 vs 13.10 (8.14×)

Key shape: the FORTRAN version is cache-resident at small domains (only
~0.13% L3 misses at 192², Sec. VIII-C) and falls off the cache as the
domain grows — the speedup climbs from ~2× toward the bandwidth ratio.
"""

import numpy as np
import pytest

from repro.core.machine import HASWELL, P100
from repro.core.perfmodel import model_sdfg_time
from repro.core.pipeline import optimize_sdfg_locally
from repro.fv3.corners import rank_corners
from repro.fv3.grid import CubedSphereGrid
from repro.fv3.partitioner import CubedSpherePartitioner
from repro.fv3.stencils.fvtp2d import FiniteVolumeTransport

SIZES = (128, 192, 256, 384)
NK = 80
PAPER = {
    128: (3.41, 1.81),
    192: (12.31, 3.41),
    256: (35.79, 5.67),
    384: (106.66, 13.10),
}


def _build(n, nk=NK):
    p = CubedSpherePartitioner(n, 1)
    g = CubedSphereGrid.build(p, 0, 3)
    module = FiniteVolumeTransport(n, n, nk, g.rarea, rank_corners(p, 0), 3)
    shape = (n + 6, n + 6, nk)
    rng = np.random.default_rng(0)
    q = rng.random(shape)
    cr = np.full(shape, 0.3)
    fx = np.zeros(shape)
    fy = np.zeros(shape)
    prog = module.__call__
    # build with the exact argument tuple later passed to prog(*args):
    # the build cache keys on array identity, so building with throwaway
    # copies would force a silent rebuild (and recompile) on first call
    args = (q, cr, cr.copy(), cr.copy(), cr.copy(), fx, fy)
    prog.build(*args)
    return module, prog, args


def _model_rows():
    rows = []
    for n in SIZES:
        _, prog, _ = _build(n)
        sdfg = prog.sdfg.copy()
        t_cpu = model_sdfg_time(sdfg, HASWELL)
        optimize_sdfg_locally(sdfg, P100)
        t_gpu = model_sdfg_time(sdfg, P100)
        rows.append((n, t_cpu, t_gpu))
    return rows


def test_table2_fvtp2d_model(report, benchmark):
    rows = benchmark.pedantic(_model_rows, rounds=1, iterations=1)
    base = rows[0]
    report("Table II (right) — Finite Volume Transport, modeled")
    report(f"{'size':>10} {'CPU[ms]':>9} {'scale':>6} {'GPU[ms]':>9} "
           f"{'scale':>6} {'speedup':>8} {'paper':>8}")
    for n, t_cpu, t_gpu in rows:
        paper_cpu, paper_gpu = PAPER[n]
        report(
            f"{n}²×80{'':<3} {t_cpu*1e3:>9.2f} {t_cpu/base[1]:>6.2f} "
            f"{t_gpu*1e3:>9.2f} {t_gpu/base[2]:>6.2f} "
            f"{t_cpu/t_gpu:>7.2f}x {paper_cpu/paper_gpu:>7.2f}x"
        )
    # shape: super-linear CPU scaling at the largest size (cache falloff),
    # monotonically growing speedup, approaching the bandwidth ratio
    t384 = rows[-1]
    assert t384[1] / base[1] > (384 / 128) ** 2
    speedups = [t_cpu / t_gpu for _, t_cpu, t_gpu in rows]
    assert speedups == sorted(speedups)
    assert speedups[0] < 5.0  # CPU competitive when cache-resident
    assert speedups[-1] < 11.45  # bounded by the bandwidth ratio


@pytest.mark.parametrize("mode", ["module_numpy", "module_dataflow"])
def test_fvtp2d_measured(benchmark, mode):
    """Measured wall-clock of the transport operator, debug backend vs
    compiled dataflow program (one call, 64²×20)."""
    n, nk = 64, 20
    module, prog, args = _build(n, nk)
    if mode == "module_dataflow":
        benchmark(lambda: prog(*args))
    else:
        q, crx, cry, xfx, yfx, fx, fy = args
        from repro.fv3.corners import fill_corners
        from repro.fv3.stencils.fvtp2d import (
            scale_flux_x,
            scale_flux_y,
            transverse_update_x,
            transverse_update_y,
        )
        from repro.fv3.stencils.xppm import xppm_flux
        from repro.fv3.stencils.yppm import yppm_flux

        h = 3

        def run():
            fill_corners(q, "y", module.corner_list)
            yppm_flux(q, cry, module.fy_v, backend="numpy",
                      origin=(0, h, 0), domain=(n + 6, n + 1, nk))
            transverse_update_y(q, module.fy_v, yfx, module.rarea,
                                module.q_y, backend="numpy",
                                origin=(0, h, 0), domain=(n + 6, n, nk))
            fill_corners(q, "x", module.corner_list)
            xppm_flux(q, crx, module.fx_v, backend="numpy",
                      origin=(h, 0, 0), domain=(n + 1, n + 6, nk))
            transverse_update_x(q, module.fx_v, xfx, module.rarea,
                                module.q_x, backend="numpy",
                                origin=(h, 0, 0), domain=(n, n + 6, nk))
            xppm_flux(module.q_y, crx, module.fxv2, backend="numpy",
                      origin=(h, h, 0), domain=(n + 1, n, nk))
            scale_flux_x(module.fxv2, xfx, fx, backend="numpy",
                         origin=(h, h, 0), domain=(n + 1, n, nk))
            yppm_flux(module.q_x, cry, module.fyv2, backend="numpy",
                      origin=(h, h, 0), domain=(n, n + 1, nk))
            scale_flux_y(module.fyv2, yfx, fy, backend="numpy",
                         origin=(h, h, 0), domain=(n, n + 1, nk))

        benchmark(run)
