"""CI chaos smoke: a seeded faulty dyncore run must recover bit-identically.

Runs a short baroclinic-wave integration twice — once clean, once under a
``REPRO_CHAOS`` plan that drops a halo message, corrupts another, poisons
a pool buffer and flips a NaN into a stencil output — and asserts:

1. every planned fault fired and was recorded for replay;
2. the recovery counters are nonzero (rollback + retry actually ran);
3. the final prognostic state is bit-identical to the clean run;
4. the disabled-path fvtp2d benchmark is within noise of the recorded
   ``BENCH_PR3.json`` baseline (the resilience hooks cost nothing when
   off).

Run:  PYTHONPATH=src python benchmarks/chaos_smoke.py
"""

import json
import os
import pathlib
import sys
import time
import warnings

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).parent))

CHAOS = os.environ.get(
    "REPRO_CHAOS",
    "seed=7;halo.drop@40;halo.corrupt@11;pool.poison@3;stencil.nanflip@5;"
    "compile.fail@1",
)
STEPS = 2
BASELINE = pathlib.Path(__file__).resolve().parent.parent / "BENCH_PR3.json"
#: generous CI-noise bound: the disabled-path bench must not be slower
#: than this factor times the recorded baseline median
NOISE_FACTOR = 2.0

FIELDS = ("u", "v", "w", "pt", "delp", "delz")


def _run(plan=None, res=None):
    from repro.fv3.config import DynamicalCoreConfig
    from repro.fv3.dyncore import DynamicalCore
    from repro.resilience import chaos

    cfg = DynamicalCoreConfig(
        npx=12, npz=4, layout=1, dt_atmos=120.0, k_split=1, n_split=2,
        n_tracers=1,
    )
    chaos.set_plan(plan)
    core = DynamicalCore(cfg, resilience=res)
    for _ in range(STEPS):
        core.step_dynamics()
    chaos.set_plan(None)
    return core


def chaos_recovery():
    from repro import resilience
    from repro.resilience import GuardConfig, ResilienceConfig
    from repro.resilience.chaos import ChaosPlan

    clean = _run()
    plan = ChaosPlan.from_spec(CHAOS)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        faulty = _run(
            plan,
            ResilienceConfig(
                guard=GuardConfig(policy="rollback"), max_retries=4
            ),
        )

    injected = plan.counts()
    counters = resilience.summary()["counters"]
    print(f"chaos spec    : {CHAOS}")
    print(f"injected      : {injected}")
    print(f"replay spec   : {plan.replay_spec()}")
    print(f"counters      : { {k: v for k, v in counters.items() if v} }")

    assert injected, "no faults fired — chaos plan never consulted"
    recoveries = counters["rollbacks"] + counters["halo_redeliveries"]
    assert recoveries > 0, "no recoveries recorded — injection was inert"
    assert counters["retries"] == counters["rollbacks"]
    if "compile.fail" in plan.rules:
        # the dyncore reaches the compile cache through the orchestration
        # layer, so the injected compile failure recovers via the same
        # rollback loop (degraded-mode fallback is covered separately in
        # tests/resilience/test_degraded.py)
        assert injected.get("compile.fail"), "compile.fail never consulted"

    for rank, (a, b) in enumerate(zip(clean.states, faulty.states)):
        for f in FIELDS:
            np.testing.assert_array_equal(
                getattr(a, f), getattr(b, f),
                err_msg=f"rank {rank} field {f} diverged after recovery",
            )
        for t, (ta, tb) in enumerate(zip(a.tracers, b.tracers)):
            np.testing.assert_array_equal(
                ta, tb, err_msg=f"rank {rank} tracer {t} diverged"
            )
    print(f"state         : bit-identical to clean run "
          f"({len(clean.states)} ranks x {len(FIELDS)} fields + tracers)")
    return {"injected": injected, "counters": dict(counters)}


def disabled_overhead():
    """fvtp2d with resilience hooks present but disabled, vs baseline."""
    from bench_table2_fvtp2d import _build

    if not BASELINE.exists():
        print("no BENCH_PR3.json baseline — skipping overhead check")
        return None
    recorded = json.loads(BASELINE.read_text())["fvtp2d"]["median_ms"]

    module, prog, args = _build(64, 20)
    prog.compile(instrument=True)
    prog(*args)  # warm-up
    times = []
    for _ in range(10):
        t0 = time.perf_counter()
        prog(*args)
        times.append(time.perf_counter() - t0)
    median_ms = 1e3 * float(np.median(times))
    print(f"fvtp2d median : {median_ms:.1f} ms "
          f"(baseline {recorded:.1f} ms, bound {NOISE_FACTOR}x)")
    assert median_ms <= NOISE_FACTOR * recorded, (
        f"disabled-path fvtp2d regressed: {median_ms:.1f} ms vs "
        f"baseline {recorded:.1f} ms"
    )
    return {"median_ms": median_ms, "baseline_ms": recorded}


def main():
    print("== chaos recovery ==")
    recovery = chaos_recovery()
    print("\n== disabled-path overhead ==")
    overhead = disabled_overhead()
    print("\nchaos smoke: PASS")
    return {"recovery": recovery, "overhead": overhead}


if __name__ == "__main__":
    main()
