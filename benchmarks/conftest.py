"""Shared fixtures for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper and writes
the reproduced rows/series (paper value vs ours, where applicable) to
``benchmarks/results/<name>.txt`` in addition to printing them.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def report(request):
    """Collects lines and writes them to results/<test_name>.txt."""
    lines = []

    class Reporter:
        def __call__(self, text=""):
            lines.append(str(text))

        def table(self, header, rows):
            self(header)
            for row in rows:
                self(row)

    rep = Reporter()
    yield rep
    RESULTS_DIR.mkdir(exist_ok=True)
    name = request.node.name.replace("[", "_").replace("]", "")
    out = RESULTS_DIR / f"{name}.txt"
    out.write_text("\n".join(lines) + "\n")
    print()
    print("\n".join(lines))
