"""Fig. 10: model-augmented kernel runtimes.

The paper's automated memory-bound analysis lists the worst-performing,
most important kernels with their % of peak memory bandwidth; the
Smagorinsky-diffusion kernel stands out (and is fixed in Sec. VI-C1).
After tuning, "most of the shown kernels are above 60% peak".
"""

import pytest

from repro.core.machine import P100
from repro.core.perfmodel import bound_report, format_bound_report
from repro.core.pipeline import optimize_sdfg_locally
from repro.fv3.config import DynamicalCoreConfig
from repro.fv3.performance import SingleRankDynCore


def _build(npx=96, npz=80):
    cfg = DynamicalCoreConfig(npx=npx, npz=npz, layout=1, k_split=1,
                              n_split=2)
    src = SingleRankDynCore(cfg)
    return src.build_sdfg().sdfg


def test_fig10_kernel_bounds(report, benchmark):
    sdfg = benchmark.pedantic(_build, rounds=1, iterations=1)
    rows_before = bound_report(sdfg, P100, top=10)
    report("Fig. 10 — worst-performing, most important kernels (initial)")
    report(format_bound_report(rows_before))
    # the untuned graph has kernels well below peak bandwidth
    assert min(r.utilization for r in rows_before) < 0.5

    optimize_sdfg_locally(sdfg, P100)
    rows_after = bound_report(sdfg, P100, top=10)
    report()
    report("after cycle-1 optimization (paper: most kernels above 60%):")
    report(format_bound_report(rows_after))
    above_60 = sum(1 for r in rows_after if r.utilization > 0.60)
    report(f"{above_60}/{len(rows_after)} top kernels above 60% of peak")
    assert above_60 >= len(rows_after) // 2
    # importance ranking: rows sorted by aggregate runtime
    totals = [r.total_runtime for r in rows_after]
    assert totals == sorted(totals, reverse=True)


def test_fig10_measured_runtimes_feed_report(report, benchmark):
    """The workflow combines modeling with instrumented runtimes: the
    report accepts measured per-kernel times from the compiled program."""
    from repro.sdfg.codegen import compile_sdfg

    cfg = DynamicalCoreConfig(npx=24, npz=16, layout=1, k_split=1, n_split=1)
    src = SingleRankDynCore(cfg)
    prog = src.build_sdfg()
    compiled = compile_sdfg(prog.sdfg, instrument=True)

    def run():
        compiled(
            arrays=prog._builder.array_of,
            scalars={**prog.sdfg.scalars, "dt_acoustic": cfg.dt_acoustic},
        )

    benchmark(run)
    measured = {
        label: total / max(count, 1)
        for label, (total, count) in compiled.kernel_times.items()
    }
    assert measured
    rows = bound_report(prog.sdfg, P100, measured=measured, top=8)
    report("Fig. 10 with measured (instrumented NumPy) runtimes:")
    report(format_bound_report(rows))
    assert all(r.runtime > 0 for r in rows)
