"""Table I: Lines-of-Code comparison of FV3 implementations.

Paper: Dynamical Core 12,450 (Python) vs 29,458 (FORTRAN) = 0.42×;
Finite Volume Transport 686 vs 858; Riemann Solver C 253 vs 267.

Substitution: the FORTRAN model is unavailable; the comparator is the
plain loop/slice NumPy reference style (repro/fv3/reference.py), compared
per algorithm implemented in both styles.
"""

from repro.util.loc import count_loc, format_loc_table, loc_table, package_root


def test_table1_loc(report, benchmark):
    rows = benchmark(loc_table)
    report("Table I — Lines of Code, declarative DSL vs loop-style reference")
    report("(paper: dycore 12,450 vs 29,458 = 0.42x; FVT 686/858; Riemann 253/267)")
    report()
    report(format_loc_table(rows))
    # the declarative comparisons must stay in the paper's ballpark:
    # comparable-or-smaller module code despite running on any backend
    comparable = [r for r in rows if r[2] > 0]
    assert comparable
    for name, decl, ref, ratio in comparable:
        assert ratio < 3.0, f"{name}: declarative code blew up ({ratio:.2f}x)"
    # whole-model context row exists
    assert any(r[2] == 0 for r in rows)


def test_repository_scale(report, benchmark):
    """Context: total size of the reproduction itself."""
    root = package_root()
    total = benchmark(lambda: sum(count_loc(p) for p in root.rglob("*.py")))
    report(f"repro package code LoC: {total}")
    assert total > 5_000
