"""CI scaling smoke: threaded rank execution must hide simulated network
latency.

Runs a short baroclinic-wave integration under a simulated per-message
network latency (``LocalComm(latency=…)``) at 1, 2 and 6 rank workers
and asserts:

1. the three runs are bit-identical (threading changes wall time, never
   the answer);
2. the 6-worker run is at least ``TARGET_SPEEDUP`` times faster than the
   sequential run — message aggregation plus compute/communication
   overlap actually hides the latency;
3. the obs report for a traced 6-worker run carries the rank-executor
   and halo-overlap footer lines;
4. the 1-rank compute path (fvtp2d) is within noise of the recorded
   ``BENCH_PR3.json`` baseline — the split halo API and the executor
   hooks cost nothing when sequential.

Writes ``BENCH_PR5.json`` with the timings, speedups and overlap
metrics.

Run:  PYTHONPATH=src python benchmarks/scaling_smoke.py
"""

import json
import os
import pathlib
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).parent))

#: simulated per-message one-way network latency, seconds
LATENCY = float(os.environ.get("REPRO_BENCH_LATENCY", "0.2"))
STEPS = 1
WORKER_COUNTS = (1, 2, 6)
TARGET_SPEEDUP = float(os.environ.get("REPRO_BENCH_TARGET", "2.5"))
ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE = ROOT / "BENCH_PR3.json"
OUT = ROOT / "BENCH_PR5.json"
#: generous CI-noise bound for the sequential-path fvtp2d check
NOISE_FACTOR = 2.0

FIELDS = ("u", "v", "w", "pt", "delp", "delz")


def _make_core(workers):
    """One member core via the shared facade — the single source of
    truth for rank wiring (same path the examples use)."""
    from repro.fv3.config import DynamicalCoreConfig
    from repro.run import build_core
    from repro.runtime import ranks

    cfg = DynamicalCoreConfig(
        npx=12, npz=4, layout=1, dt_atmos=120.0, k_split=1, n_split=4,
        n_tracers=1,
    )
    ex = ranks.RankExecutor(workers)
    # max_polls widens the receive absence budget: rank threads
    # legitimately sit out several simulated-latency windows while
    # neighbors drain
    core = build_core(
        "baroclinic_wave", cfg, executor=ex, comm_latency=LATENCY,
        max_polls=40,
    )
    return core, ex


def _run(workers):
    from repro.runtime import ranks

    core, ex = _make_core(workers)
    try:
        ranks.reset_metrics()
        t0 = time.perf_counter()
        for _ in range(STEPS):
            core.step_dynamics()
        elapsed = time.perf_counter() - t0
        summary = ranks.summary()
    finally:
        ex.shutdown()
    assert core.halo.comm.pending() == [], "orphaned halo messages"
    return core, elapsed, summary


def _warm_up():
    """Populate the process-wide compile cache so the timed runs only
    measure stepping (no latency, one step, sequential)."""
    core, ex = _make_core(1)
    core.halo.comm.latency = 0.0
    try:
        core.step_dynamics()
    finally:
        ex.shutdown()


def scaling():
    cores, seconds, summaries = {}, {}, {}
    for workers in WORKER_COUNTS:
        cores[workers], seconds[workers], summaries[workers] = _run(workers)
        print(
            f"workers={workers}: {seconds[workers]:.3f}s "
            f"for {STEPS} steps (latency {1e3 * LATENCY:.1f} ms/msg)"
        )

    base = WORKER_COUNTS[0]
    for workers in WORKER_COUNTS[1:]:
        for rank, (a, b) in enumerate(
            zip(cores[base].states, cores[workers].states)
        ):
            for f in FIELDS:
                np.testing.assert_array_equal(
                    getattr(a, f), getattr(b, f),
                    err_msg=f"workers={workers} rank {rank} field {f} "
                    f"diverged from sequential",
                )
            for t, (ta, tb) in enumerate(zip(a.tracers, b.tracers)):
                np.testing.assert_array_equal(
                    ta, tb,
                    err_msg=f"workers={workers} rank {rank} tracer {t}",
                )
    print(f"state         : bit-identical across workers {WORKER_COUNTS}")

    speedups = {w: seconds[base] / seconds[w] for w in WORKER_COUNTS}
    for w in WORKER_COUNTS[1:]:
        print(f"speedup x{w}    : {speedups[w]:.2f}")
    top = WORKER_COUNTS[-1]
    assert speedups[top] >= TARGET_SPEEDUP, (
        f"{top}-worker speedup {speedups[top]:.2f} below the "
        f"{TARGET_SPEEDUP}x target — latency is not being hidden"
    )
    return seconds, speedups, summaries[top]


def traced_report():
    """A traced 6-worker run: the report footer must surface the rank
    executor and the overlap efficiency."""
    from repro import obs
    from repro.runtime import ranks

    tracer = obs.get_tracer()
    tracer.reset()
    tracer.enable()
    try:
        _, _, summary = _run(WORKER_COUNTS[-1])
        text = obs.report(tracer)
    finally:
        tracer.disable()
    assert "rank executor:" in text, "missing rank-executor footer"
    assert "halo overlap:" in text, "missing halo-overlap footer"
    footer = [
        line for line in text.splitlines()
        if line.startswith(("rank executor:", "halo overlap:"))
    ]
    print("\n".join(footer))
    return summary


def sequential_overhead():
    """fvtp2d on the sequential path, vs the recorded PR3 baseline."""
    from bench_table2_fvtp2d import _build

    if not BASELINE.exists():
        print("no BENCH_PR3.json baseline — skipping overhead check")
        return None
    recorded = json.loads(BASELINE.read_text())["fvtp2d"]["median_ms"]

    module, prog, args = _build(64, 20)
    prog.compile(instrument=True)
    prog(*args)  # warm-up
    times = []
    for _ in range(10):
        t0 = time.perf_counter()
        prog(*args)
        times.append(time.perf_counter() - t0)
    median_ms = 1e3 * float(np.median(times))
    print(f"fvtp2d median : {median_ms:.1f} ms "
          f"(baseline {recorded:.1f} ms, bound {NOISE_FACTOR}x)")
    assert median_ms <= NOISE_FACTOR * recorded, (
        f"sequential-path fvtp2d regressed: {median_ms:.1f} ms vs "
        f"baseline {recorded:.1f} ms"
    )
    return {"median_ms": median_ms, "baseline_ms": recorded}


def main():
    print("== warm-up (compile cache) ==")
    _warm_up()
    print("\n== latency-hiding scaling ==")
    seconds, speedups, overlap = scaling()
    print("\n== traced overlap report ==")
    traced = traced_report()
    print("\n== sequential-path overhead ==")
    overhead = sequential_overhead()

    payload = {
        "benchmark": "pr5_scaling_smoke",
        "config": {
            "npx": 12, "npz": 4, "layout": 1, "k_split": 1, "n_split": 4,
            "steps": STEPS, "latency_s": LATENCY,
        },
        "seconds_by_workers": {str(w): s for w, s in seconds.items()},
        "speedup_by_workers": {str(w): s for w, s in speedups.items()},
        "target_speedup": TARGET_SPEEDUP,
        "overlap": {
            "exchanges": overlap["exchanges"],
            "hidden_seconds": overlap["hidden_seconds"],
            "exposed_seconds": overlap["exposed_seconds"],
            "overlap_efficiency": overlap["overlap_efficiency"],
        },
        "traced_overlap_efficiency": traced["overlap_efficiency"],
        "fvtp2d": overhead,
    }
    OUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {OUT.name}")
    print("scaling smoke: PASS")
    return payload


if __name__ == "__main__":
    main()
