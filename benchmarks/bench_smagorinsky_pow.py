"""Sec. VI-C1: the Smagorinsky-diffusion power-operator case study.

Paper: the kernel ``vort = dt*(delpc**2.0 + vort**2.0)**0.5`` generated
general-purpose pow() calls; the strength-reduction transformation
(powers → multiplies, **0.5 → sqrt) cut the kernel from 511.16 µs to
129.02 µs with the model reporting 99.68% bandwidth utilization after,
and a 1.81% whole-step improvement.
"""

import numpy as np
import pytest

from repro.core.machine import P100
from repro.core.heuristics import apply_schedule_heuristics
from repro.core.perfmodel import model_kernel_time, peak_time
from repro.dsl.backend_dataflow import DataflowStencilExecutor
from repro.fv3.stencils.d_sw import smagorinsky_diffusion
from repro.sdfg.codegen import compile_sdfg
from repro.sdfg.transformations import PowerExpansion, apply_exhaustively

SHAPE = (192, 192, 80)


def _sdfg(shape=SHAPE):
    ex = DataflowStencilExecutor(smagorinsky_diffusion)
    sdfg = ex.build_sdfg(
        {"delpc": shape, "vort": shape, "smag": shape},
        {n: np.float64 for n in ("delpc", "vort", "smag")},
        (0, 0, 0),
        shape,
    )
    apply_schedule_heuristics(sdfg, P100)
    return sdfg


def test_smagorinsky_power_model(report, benchmark):
    sdfg = benchmark.pedantic(_sdfg, rounds=1, iterations=1)
    (kern,) = sdfg.all_kernels()
    t_before = model_kernel_time(kern, sdfg, P100)
    util_before = peak_time(kern, sdfg, P100) / t_before

    applied = apply_exhaustively(sdfg, [PowerExpansion()])
    assert applied == 1
    t_after = model_kernel_time(kern, sdfg, P100)
    util_after = peak_time(kern, sdfg, P100) / t_after

    report("Sec. VI-C1 — Smagorinsky power-operator strength reduction")
    report(f"{'':<24} {'modeled':>12} {'paper':>12}")
    report(f"{'kernel before [us]':<24} {t_before*1e6:>12.2f} {511.16:>12.2f}")
    report(f"{'kernel after  [us]':<24} {t_after*1e6:>12.2f} {129.02:>12.2f}")
    report(f"{'utilization after':<24} {100*util_after:>11.2f}% {99.68:>11.2f}%")
    # shape: the transformation takes the kernel from compute-bound to
    # essentially memory-bound (high % of the bandwidth bound)
    assert t_after < t_before
    assert util_after > 0.90
    assert util_after > util_before


@pytest.mark.parametrize("variant", ["pow", "strength_reduced"])
def test_smagorinsky_measured(benchmark, variant, report):
    """Measured on this machine: generated NumPy pow() vs sqrt/multiply."""
    shape = (128, 128, 40)
    sdfg = _sdfg(shape)
    if variant == "strength_reduced":
        apply_exhaustively(sdfg, [PowerExpansion()])
        src = compile_sdfg(sdfg).source
        assert "**" not in src and "np.sqrt" in src
    program = compile_sdfg(sdfg)
    rng = np.random.default_rng(0)
    arrays = {
        "delpc": rng.random(shape),
        "vort": rng.random(shape),
        "smag": np.zeros(shape),
    }
    benchmark(lambda: program(arrays=arrays, scalars={"dt": 0.2}))
    report(f"{variant}: median {benchmark.stats.stats.median*1e3:.3f} ms")
