"""CI smoke benchmark: zero-allocation hot path, reduced configuration.

Runs the Table 2 fvtp2d benchmark (64²×20 instead of the paper's
128–384²×80 sweep) and the obs-overhead probe in reduced iteration
counts, and writes ``BENCH_PR3.json`` with per-kernel times, allocation
counters and compile-cache hits so the performance trajectory of the
runtime subsystem is recorded per commit.

Run:  PYTHONPATH=src python benchmarks/bench_pr3_smoke.py
"""

import json
import pathlib
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).parent))

N, NK = 64, 20
REPS = 15
OUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_PR3.json"


def bench_fvtp2d():
    from bench_table2_fvtp2d import _build

    from repro.runtime import runtime_summary

    module, prog, args = _build(N, NK)
    prog.compile(instrument=True)
    prog(*args)  # warm-up: pool seeding + first-touch
    times = []
    for _ in range(REPS):
        t0 = time.perf_counter()
        prog(*args)
        times.append(time.perf_counter() - t0)
    kernel_ms = {
        label: {"total_ms": 1e3 * total, "calls": count}
        for label, (total, count) in prog._compiled.kernel_times.items()
    }
    return {
        "config": {"n": N, "nk": NK, "repetitions": REPS},
        "median_ms": 1e3 * float(np.median(times)),
        "min_ms": 1e3 * float(min(times)),
        "per_kernel": kernel_ms,
        "runtime": runtime_summary(),
    }


def bench_compile_cache():
    """Two timings of the same cutout: the second must hit the cache."""
    from repro.runtime import compile_cache as cc
    from repro.sdfg.cutout import state_cutouts, time_cutout

    from bench_table2_fvtp2d import _build

    _, prog, _ = _build(N, NK)
    cuts = state_cutouts(prog.sdfg)
    before = cc.stats()
    cut_ms = []
    for cut in cuts[:2]:
        time_cutout(cut, repetitions=1)
        cut_ms.append(1e3 * time_cutout(cut, repetitions=1))
    after = cc.stats()
    return {
        "cutouts_timed": len(cut_ms),
        "cutout_ms": cut_ms,
        "hits": after["hits"] - before["hits"],
        "misses": after["misses"] - before["misses"],
        "stats": after,
    }


def bench_obs_overhead():
    from bench_obs_overhead import _disabled_span_cost, _fvtp2d_call

    from repro import obs

    span_cost = _disabled_span_cost(iterations=20_000)
    call = _fvtp2d_call()
    call()  # warm-up
    call_s = obs.median_time(call, repetitions=5)
    return {
        "disabled_span_ns": 1e9 * span_cost,
        "stencil_call_ms": 1e3 * call_s,
        "overhead_fraction": span_cost / call_s if call_s else None,
    }


def main():
    payload = {
        "benchmark": "pr3_zero_allocation_smoke",
        "fvtp2d": bench_fvtp2d(),
        "compile_cache": bench_compile_cache(),
        "obs_overhead": bench_obs_overhead(),
    }
    OUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {OUT}")
    assert payload["compile_cache"]["hits"] > 0, "compile cache never hit"
    return payload


if __name__ == "__main__":
    main()
