"""Fig. 1 + Sec. V: system-overview numbers and orchestrated graph size.

Paper headline: 0.42× the FORTRAN lines of code; 3.92× speedup on P100,
8.48× on A100 (= 3.92 × A100/P100 step ratio ~2.42 — Fig. 1 and Sec. IX).
Sec. V graph: 26,689 dataflow nodes in 3,179 states, 4,241 unique GPU
kernels, some invoked ≤56 times.
"""

import pytest

from repro.core.machine import A100, HASWELL, P100
from repro.core.perfmodel import model_sdfg_time
from repro.core.pipeline import optimize_sdfg_locally
from repro.fv3.config import DynamicalCoreConfig
from repro.fv3.performance import SingleRankDynCore


def _build():
    cfg = DynamicalCoreConfig(npx=96, npz=80, layout=1, k_split=2,
                              n_split=5)
    src = SingleRankDynCore(cfg)
    return src.build_sdfg().sdfg


def test_fig1_overview(report, benchmark):
    sdfg = benchmark.pedantic(_build, rounds=1, iterations=1)
    stats = sdfg.stats()
    t_cpu = model_sdfg_time(sdfg, HASWELL)
    optimize_sdfg_locally(sdfg, P100)
    t_p100 = model_sdfg_time(sdfg, P100)
    t_a100 = model_sdfg_time(sdfg, A100)

    report("Fig. 1 — system overview")
    report(f"{'':<32} {'ours':>10} {'paper':>10}")
    report(f"{'speedup vs FORTRAN (P100)':<32} {t_cpu/t_p100:>9.2f}x {3.92:>9.2f}x")
    report(f"{'speedup vs FORTRAN (A100)':<32} {t_cpu/t_a100:>9.2f}x {8.48:>9.2f}x")
    report()
    report("Sec. V — orchestrated dynamical-core graph (one full step)")
    report(f"{'states':<32} {stats['states']:>10} {3179:>10}")
    report(f"{'dataflow nodes':<32} {stats['dataflow_nodes']:>10} {26689:>10}")
    report(f"{'unique kernels':<32} {stats['unique_kernels']:>10} {4241:>10}")
    report(f"{'max kernel invocations':<32} "
           f"{max(sdfg.kernel_invocations().values()):>10} {'≤56':>10}")
    report()
    report("(our dycore is structurally complete but much smaller than the "
           "full FV3; graph sizes scale accordingly — see EXPERIMENTS.md)")

    # shape claims
    assert t_cpu / t_p100 > 2.0
    assert t_cpu / t_a100 > t_cpu / t_p100  # A100 strictly faster
    assert stats["unique_kernels"] > 30
    assert max(sdfg.kernel_invocations().values()) > 1  # loops present
