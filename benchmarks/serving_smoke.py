"""CI serving smoke: the forecast front door under load, warm repeats,
and seeded chaos.

Three legs against one :class:`repro.serve.ForecastService`:

1. **throughput** — 8 concurrent client threads submit mixed
   (seed, member, lead) forecasts; every request must complete with a
   typed outcome, and we record p50/p99 latency, queue wait, and
   requests/s.
2. **warm repeat** — the same queries again: all must be exact cache
   hits with zero model steps computed and zero new stencil compiles
   (the engines stay warm; repeats are ~free).
3. **seeded chaos** — a pinned ``REPRO_CHAOS``-grammar plan injects
   stencil NaNs, a poisoned pool buffer and a corrupted halo payload
   mid-request; every request must still complete inside its deadline
   (in-engine rollback-retry + the serving retry envelope), with zero
   shed, zero lost, and NaN-free reports.

Asserts, overall: submitted == completed across all legs (no lost
requests), the warm leg's hit ratio is 100%, and the chaos leg actually
injected faults (the run would be vacuous otherwise).

Writes ``BENCH_PR9.json`` with the latency percentiles, throughput and
SLO counters.

Run:  PYTHONPATH=src python benchmarks/serving_smoke.py
"""

import json
import os
import pathlib
import threading
import time

import numpy as np

CLIENTS = int(os.environ.get("REPRO_BENCH_SERVE_CLIENTS", "8"))
STEPS_MAX = 3
SEED = 42
DEADLINE = float(os.environ.get("REPRO_BENCH_SERVE_DEADLINE", "300"))
CHAOS_SPEC = "seed=7;stencil.nanflip@5,60;pool.poison@3;halo.corrupt@2,9"
ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT = ROOT / "BENCH_PR9.json"


def _config():
    from repro.fv3.config import DynamicalCoreConfig

    return DynamicalCoreConfig(
        npx=12, npz=4, layout=1, dt_atmos=300.0, k_split=1, n_split=2,
        n_tracers=1,
    )


def _requests():
    from repro.serve import ForecastRequest

    return [
        ForecastRequest(
            "baroclinic_wave", 1 + i % STEPS_MAX, config=_config(),
            seed=SEED + i % 4, member=i % 2, deadline=DEADLINE,
        )
        for i in range(CLIENTS)
    ]


def _drive(service, requests):
    """Each request on its own client thread; returns the responses."""
    responses, errors = {}, {}

    def client(i, request):
        try:
            responses[i] = service.submit(request).result(timeout=DEADLINE)
        except Exception as exc:  # typed serving errors land here
            errors[i] = exc

    threads = [
        threading.Thread(target=client, args=(i, r))
        for i, r in enumerate(requests)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    seconds = time.perf_counter() - t0
    assert not errors, f"requests failed: {errors}"
    assert len(responses) == len(requests)
    return responses, seconds


def _percentiles(responses):
    from repro.serve.metrics import percentile

    lat = [r.latency for r in responses.values()]
    queue = [r.queue_wait for r in responses.values()]
    return {
        "latency_p50_s": percentile(lat, 50),
        "latency_p99_s": percentile(lat, 99),
        "latency_max_s": max(lat),
        "queue_wait_p50_s": percentile(queue, 50),
    }


def throughput_leg(service):
    print(f"== leg 1: {CLIENTS} concurrent clients, cold engines ==")
    responses, seconds = _drive(service, _requests())
    stats = _percentiles(responses)
    stats["requests_per_s"] = len(responses) / seconds
    stats["wall_s"] = seconds
    print(f"   {len(responses)} forecasts in {seconds:.2f}s "
          f"({stats['requests_per_s']:.2f} req/s), latency "
          f"p50 {stats['latency_p50_s']:.3f}s / "
          f"p99 {stats['latency_p99_s']:.3f}s")
    for r in responses.values():
        assert np.isfinite(r.report["summary"]["max_wind"])
    return stats


def warm_leg(service):
    from repro.runtime import compile_cache

    print("== leg 2: identical queries against warm state ==")
    misses_before = compile_cache.stats()["misses"]
    responses, seconds = _drive(service, _requests())
    stats = _percentiles(responses)
    stats["wall_s"] = seconds
    hits = sum(1 for r in responses.values() if r.cache == "hit")
    computed = sum(r.steps_computed for r in responses.values())
    new_misses = compile_cache.stats()["misses"] - misses_before
    print(f"   {hits}/{len(responses)} cache hits, {computed} model "
          f"steps computed, {new_misses} new compiles, wall "
          f"{seconds:.2f}s")
    assert hits == len(responses), "warm repeats must all be cache hits"
    assert computed == 0, "warm repeats must do zero model work"
    assert new_misses == 0, "warm repeats must not compile anything"
    stats["cache_hits"] = hits
    stats["steps_computed"] = computed
    return stats


def chaos_leg(service):
    from repro.resilience import ChaosPlan, chaos

    print(f"== leg 3: seeded chaos ({CHAOS_SPEC!r}) ==")
    plan = ChaosPlan.from_spec(CHAOS_SPEC)
    chaos.set_plan(plan)
    try:
        # fresh seeds so nothing is served from the state cache — every
        # request steps the model through the fault sites
        requests = [
            r.__class__(
                r.scenario, r.steps, config=r.config, seed=900 + i,
                member=r.member, deadline=r.deadline,
            )
            for i, r in enumerate(_requests())
        ]
        responses, seconds = _drive(service, requests)
    finally:
        chaos.set_plan(None)
    injected = len(plan.injected)
    stats = _percentiles(responses)
    stats["wall_s"] = seconds
    stats["faults_injected"] = injected
    stats["replay_spec"] = plan.replay_spec() if injected else ""
    print(f"   {len(responses)} forecasts under {injected} injected "
          f"fault(s) in {seconds:.2f}s, latency p99 "
          f"{stats['latency_p99_s']:.3f}s")
    assert injected > 0, "chaos leg injected nothing — vacuous run"
    for r in responses.values():
        assert r.latency <= DEADLINE
        for value in r.report["summary"].values():
            assert np.isfinite(value), "NaN served under chaos"
    return stats


def main():
    from repro.serve import ForecastService, ServiceConfig

    service = ForecastService(ServiceConfig(
        workers=2, batch_max=4, max_queue=64,
        default_deadline=DEADLINE,
    ))
    try:
        legs = {
            "throughput": throughput_leg(service),
            "warm_repeat": warm_leg(service),
            "chaos": chaos_leg(service),
        }
        summary = service.summary()
    finally:
        service.close()

    requests = summary["requests"]
    submitted, completed = requests["submitted"], requests["completed"]
    assert requests["shed"] == 0, "smoke load must not shed"
    assert requests["deadline_exceeded"] == 0
    assert requests["failed"] == 0 and requests["cancelled"] == 0
    assert submitted == completed == 3 * CLIENTS, (
        f"lost requests: {submitted} submitted, {completed} completed"
    )
    print(f"\n== SLO ledger: {submitted} submitted == {completed} "
          f"completed, 0 shed / 0 failed / 0 deadline misses; "
          f"{requests['retries']} retries, cache "
          f"{summary['cache']['hits']} hits ==")

    payload = {
        "benchmark": "serving_smoke",
        "clients": CLIENTS,
        "deadline_s": DEADLINE,
        "chaos_spec": CHAOS_SPEC,
        "legs": legs,
        "requests": requests,
        "cache": summary["cache"],
        "breakers": summary["breakers"],
    }
    OUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUT.name}")
    print("serving smoke: PASS")
    return payload


if __name__ == "__main__":
    main()
