"""Fig. 8: the memory-allocation scheme — layout, padding, alignment.

Paper: FORTRAN (I-contiguous) layout generates wide loads on the largest
dimension; pre-padding aligns the first non-halo element, "yielding up to
20 µs (~5%) of improvement on the tested stencil".
"""

import numpy as np
import pytest

from repro.dsl.storage import StorageSpec, is_aligned, make_storage
from repro.fv3.stencils.basic_ops import copy_stencil


def test_fig8_allocation_properties(report, benchmark):
    """The allocator must deliver the paper's three knobs."""
    h = 3
    shape = (192 + 2 * h, 192 + 2 * h, 80)

    def alloc():
        return make_storage(
            shape,
            spec=StorageSpec(layout="F", alignment_bytes=128),
            aligned_index=(h, h, 0),
        )

    field = benchmark(alloc)
    # FORTRAN layout: I is the unit-stride dimension
    assert field.strides[0] == field.itemsize
    assert field.strides[2] > field.strides[1] > field.strides[0]
    # pre-padding: the first compute-domain element is aligned
    assert is_aligned(field, (h, h, 0), 128)
    report("Fig. 8 — allocation scheme")
    report(f"strides (I,J,K): {field.strides} (I-contiguous, FORTRAN layout)")
    addr = field.__array_interface__["data"][0]
    first = addr + sum(i * s for i, s in zip((h, h, 0), field.strides))
    report(f"first non-halo element offset mod 128 = {first % 128}")

    c_field = make_storage(shape, spec=StorageSpec(layout="C"))
    assert c_field.strides[2] == c_field.itemsize
    # stride padding knob
    padded = make_storage(
        (16, 16), spec=StorageSpec(layout="F", stride_padding=2)
    )
    assert padded.strides[1] == 18 * padded.itemsize


@pytest.mark.parametrize("aligned", [True, False])
def test_fig8_measured_copy(benchmark, aligned, report):
    """Measured copy-stencil time on aligned vs deliberately misaligned
    storage (the paper's ~5% GPU effect; on a CPU/NumPy substrate the
    difference is typically small — reported, not asserted)."""
    h = 3
    shape = (192 + 2 * h, 192 + 2 * h, 40)
    spec = StorageSpec(layout="F", alignment_bytes=128 if aligned else 1)
    q_in = make_storage(shape, spec=spec, aligned_index=(h, h, 0))
    q_out = make_storage(shape, spec=spec, aligned_index=(h, h, 0))
    q_in[...] = np.random.default_rng(0).random(shape)

    benchmark(
        lambda: copy_stencil(
            q_in, q_out, origin=(h, h, 0), domain=(192, 192, 40)
        )
    )
    report(
        f"aligned={aligned}: median {benchmark.stats.stats.median*1e3:.3f} ms"
    )
