"""Sec. VIII: performance bounds — memory bandwidth and instruction mix.

Paper: STREAM 43.77 GB/s (Haswell), 501.1 GB/s peak (P100); copy-stencil
40.99 / 489.83 GiB/s through GT4Py+DaCe → maximum memory-bound speedup
11.45×. PAPI: 40.15% of executed instructions are loads/stores.
"""

import numpy as np
import pytest

from repro.core.machine import GB, GiB, HASWELL, P100
from repro.core.heuristics import apply_schedule_heuristics
from repro.core.perfmodel import model_kernel_time, peak_time
from repro.dsl.backend_dataflow import DataflowStencilExecutor
from repro.fv3.stencils.basic_ops import copy_stencil
from repro.sdfg.analysis import load_store_fraction
from repro.sdfg.codegen import compile_sdfg

SHAPE = (192, 192, 80)


def _copy_sdfg(shape=SHAPE):
    ex = DataflowStencilExecutor(copy_stencil)
    return ex.build_sdfg(
        {"q_in": shape, "q_out": shape},
        {"q_in": np.float64, "q_out": np.float64},
        (0, 0, 0),
        shape,
    )


def test_sec8_bandwidth_model(report, benchmark):
    sdfg = benchmark.pedantic(_copy_sdfg, rounds=1, iterations=1)
    apply_schedule_heuristics(sdfg, P100)
    (kern,) = sdfg.all_kernels()
    nbytes = kern.moved_bytes(sdfg)
    t_gpu = model_kernel_time(kern, sdfg, P100)
    t_cpu = model_kernel_time(kern, sdfg, HASWELL)
    bw_gpu = nbytes / t_gpu
    bw_cpu = nbytes / t_cpu
    report("Sec. VIII-A — copy-stencil memory bandwidth (192²×80)")
    report(f"{'':<26} {'modeled':>12} {'paper':>12}")
    report(f"{'GPU bandwidth [GiB/s]':<26} {bw_gpu / GiB:>12.2f} {489.83:>12.2f}")
    report(f"{'CPU bandwidth [GiB/s]':<26} {bw_cpu / GiB:>12.2f} {40.99 * GB / GiB / (GB/GB):>12.2f}")
    report(f"{'peak ratio (max speedup)':<26} "
           f"{P100.peak_bandwidth / HASWELL.peak_bandwidth:>11.2f}x {11.45:>11.2f}x")
    # the copy stencil must sustain close to the measured fractions
    assert bw_gpu / GiB == pytest.approx(489.83, rel=0.12)
    assert bw_cpu / (40.99 * GiB) == pytest.approx(1.0, rel=0.25)


def test_sec8_load_store_fraction(report, benchmark):
    """The PAPI measurement analogue: ~40% of 'instructions' move data."""
    from repro.fv3.config import DynamicalCoreConfig
    from repro.fv3.performance import SingleRankDynCore

    def build():
        cfg = DynamicalCoreConfig(npx=24, npz=16, layout=1, k_split=1,
                                  n_split=2)
        src = SingleRankDynCore(cfg)
        return src.build_sdfg().sdfg

    sdfg = benchmark.pedantic(build, rounds=1, iterations=1)
    frac = load_store_fraction(sdfg)
    report("Sec. VIII — load/store instruction fraction of the dycore")
    report(f"modeled: {100 * frac:.2f}%   paper (PAPI on FORTRAN): 40.15%")
    assert 0.1 < frac < 0.7  # data movement is a major instruction share


def test_measured_local_copy_bandwidth(report, benchmark):
    """Measured on THIS machine: the compiled copy stencil's achieved
    bandwidth (context for the modeled numbers; absolute value is
    hardware-dependent)."""
    shape = (192, 192, 80)
    sdfg = _copy_sdfg(shape)
    program = compile_sdfg(sdfg)
    q_in = np.random.default_rng(0).random(shape)
    q_out = np.zeros(shape)

    benchmark(lambda: program(arrays={"q_in": q_in, "q_out": q_out}))
    nbytes = 2 * q_in.nbytes
    seconds = benchmark.stats.stats.median
    report(
        f"measured local copy bandwidth: {nbytes / seconds / GiB:.2f} GiB/s "
        f"({nbytes / 1e6:.0f} MB moved per call)"
    )
    np.testing.assert_array_equal(q_in, q_out)
