"""Table III: the dynamical-core optimization cycle.

Paper (6-node case study, step time):
  FORTRAN 16.36 s (1.00×) → GT4Py+DaCe default 10.87 (1.50×) →
  schedule heuristics 5.56 (2.94×) → local caching 5.45 (3.00×) →
  power operator 5.35 (3.06×) → region split 4.82 (3.39×) →
  Lagrangian reschedule 4.816 (3.40×) → region pruning 4.77 (3.43×) →
  transfer tuning (FVT) 4.61 (3.55×).

Reproduced on the single-rank whole-step SDFG at the paper's per-node
domain (192²×80 scaled down to keep the harness fast; the shape —
monotone improvement with heuristics the largest step and transfer tuning
a few percent — is domain-size independent above the occupancy knee).
"""

import pytest

from repro.core.machine import HASWELL, P100
from repro.core.pipeline import (
    OptimizationPipeline,
    PipelineOptions,
    format_table3,
)
from repro.fv3.config import DynamicalCoreConfig
from repro.fv3.performance import SingleRankDynCore

PAPER_SPEEDUPS = {
    "FORTRAN": 1.00,
    "GT4Py + DaCe (Default)": 1.50,
    "Stencil schedule heuristics": 2.94,
    "Local caching": 3.00,
    "Optimize power operator": 3.06,
    "Split regions to multiple kernels": 3.39,
    "Lagrangian contrib. reschedule": 3.40,
    "Region pruning": 3.43,
    "Transfer Tuning (FVT)": 3.55,
}


def _run_pipeline():
    cfg = DynamicalCoreConfig(
        npx=96, npz=80, layout=1, dt_atmos=225.0, k_split=1, n_split=3
    )
    src = SingleRankDynCore(cfg)
    prog = src.build_sdfg()
    sdfg = prog.sdfg
    pipe = OptimizationPipeline(
        PipelineOptions(
            machine=P100,
            baseline_machine=HASWELL,
            transfer_states=("xppm", "yppm", "transverse", "scale_flux"),
        )
    )
    stages = pipe.run(sdfg)
    return stages, sdfg.stats()


def test_table3_optimization_cycle(report, benchmark):
    stages, stats = benchmark.pedantic(_run_pipeline, rounds=1, iterations=1)
    report("Table III — Dynamical Core Optimization (modeled step time)")
    report(format_table3(stages))
    report()
    report(f"paper speedups for comparison: {PAPER_SPEEDUPS}")
    report(f"orchestrated graph: {stats}")

    by_name = {s.name: s for s in stages}
    fortran = by_name["FORTRAN"].modeled_time
    tuned = stages[-1].modeled_time
    default = by_name["GT4Py + DaCe (Default)"].modeled_time
    # shape claims:
    # 1. every optimization stage is monotone non-worsening
    times = [s.modeled_time for s in stages[1:]]
    for before, after in zip(times, times[1:]):
        assert after <= before * 1.001
    # 2. schedule heuristics are the single largest improvement
    heur = by_name["Stencil schedule heuristics"].modeled_time
    gains = {
        s.name: prev.modeled_time - s.modeled_time
        for prev, s in zip(stages[1:], stages[2:])
    }
    assert gains["Stencil schedule heuristics"] == max(gains.values())
    # 3. the tuned GPU beats the FORTRAN baseline by a factor in the
    #    paper's neighborhood (3.55x; accept 2-8x under the substitution)
    assert 2.0 < fortran / tuned < 8.0
    # 4. default-to-tuned improvement is significant (paper: 2.36x)
    assert default / tuned > 1.5
