"""CI smoke benchmark: compiled CPU backend vs NumPy emission (PR 8).

Times the Table 2 fvtp2d operator at the BENCH_PR3 configuration
(64²×20) on both emission targets of the same whole-program SDFG — the
``out=``-scheduled ufunc program and the JITted scalar loop nests — and
writes ``BENCH_PR8.json`` with both medians, the per-kernel measured
GB/s against the machine-model roofline, and the JIT warmup attribution.

The compiled median must be measurably below the 34.6 ms PR-3 baseline
(target ≥ 1.5× over the same-run NumPy number).

Run:  PYTHONPATH=src python benchmarks/compiled_smoke.py
"""

import json
import pathlib
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).parent))

N, NK = 64, 20
REPS = 15
PR3_BASELINE_MS = 34.6
OUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_PR8.json"


def _median_ms(prog, args, reps=REPS):
    prog(*args)  # warm-up: pool seeding + first-touch
    times = []
    for _ in range(reps):
        t0 = time.perf_counter()
        prog(*args)
        times.append(time.perf_counter() - t0)
    return 1e3 * float(np.median(times)), 1e3 * float(min(times))


def _per_kernel(prog, args, reps=5):
    """Measured GB/s per kernel against the roofline, from an
    instrumented pass (modeled bytes over measured kernel time — the
    paper's Fig. 10 ratio)."""
    from repro.obs.metrics import observed_machine

    machine = observed_machine()
    prog.compile(instrument=True)
    prog(*args)
    before = dict(prog._compiled.kernel_times)
    for _ in range(reps):
        prog(*args)
    bytes_by_label = prog._kernel_bytes_by_label()
    rows = {}
    for label, (total, count) in prog._compiled.kernel_times.items():
        t0, c0 = before.get(label, (0.0, 0))
        dt, dc = total - t0, count - c0
        if dc <= 0 or dt <= 0:
            continue
        nbytes, nkernels = bytes_by_label.get(label, (0, 1))
        moved = dc * (nbytes // max(nkernels, 1))
        gbs = moved / dt / 1e9
        rows[label] = {
            "total_ms": 1e3 * dt,
            "calls": dc,
            "measured_gbs": gbs,
            "roofline_fraction": moved / dt / machine.achievable_bandwidth,
        }
    return rows, machine


def main():
    from bench_table2_fvtp2d import _build

    from repro.runtime import compile_cache, jit, runtime_summary

    if not jit.available():
        print("no JIT engine available (numba or a C compiler); skipping")
        return None

    # independent program objects: the backend choice is sticky per program
    _, prog_np, args_np = _build(N, NK)
    prog_np.compile(backend="numpy")
    np_median, np_min = _median_ms(prog_np, args_np)

    _, prog_c, args_c = _build(N, NK)
    prog_c.compile(backend="compiled")
    c_median, c_min = _median_ms(prog_c, args_c)

    for a, b in zip(args_np, args_c):
        np.testing.assert_array_equal(a, b)

    kernels, machine = _per_kernel(prog_c, args_c)
    speedup = np_median / c_median

    payload = {
        "benchmark": "pr8_compiled_backend_smoke",
        "config": {"n": N, "nk": NK, "repetitions": REPS},
        "machine": machine.name,
        "jit": jit.stats(),
        "fvtp2d": {
            "numpy": {"median_ms": np_median, "min_ms": np_min},
            "compiled": {"median_ms": c_median, "min_ms": c_min},
            "speedup": speedup,
            "pr3_baseline_ms": PR3_BASELINE_MS,
        },
        "per_kernel": kernels,
        "compile_cache": compile_cache.stats(),
        "runtime": runtime_summary(),
    }
    OUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {OUT}")
    assert c_median < PR3_BASELINE_MS, (
        f"compiled fvtp2d {c_median:.1f} ms is not below the "
        f"{PR3_BASELINE_MS} ms PR-3 baseline"
    )
    assert speedup > 1.0, "compiled backend slower than NumPy emission"
    assert kernels, "instrumented pass recorded no per-kernel times"
    print(
        f"fvtp2d: numpy {np_median:.2f} ms → compiled {c_median:.2f} ms "
        f"({speedup:.2f}x, engine {jit.stats()['engine']})"
    )
    return payload


if __name__ == "__main__":
    main()
