"""Overhead budget of the repro.obs instrumentation (disabled path).

The tracing hooks live on per-stencil-call hot paths, so their disabled
cost must be negligible. This benchmark measures:

1. the per-entry cost of a disabled span (one ``tracer.span()`` call
   returning the shared no-op object, entered and exited),
2. the number of span sites one traced fvtp2d stencil call passes
   through, and
3. the wall time of that stencil call with tracing off,

and asserts that (1) x (2) stays under 2% of (3). It also exercises the
JSON export the way downstream benchmarks consume it, reporting the
recorded bytes and achieved GB/s of the traced call.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_obs_overhead.py -q
"""

import json

import numpy as np

from repro import obs
from repro.obs.tracer import Tracer

N, NK = 64, 20
H = 3


def _fvtp2d_call():
    """One transverse_update_y call (an fvtp2d stencil) and its args."""
    from repro.fv3.stencils.fvtp2d import transverse_update_y

    shape = (N + 2 * H, N + 2 * H, NK)
    rng = np.random.default_rng(0)
    q = rng.random(shape)
    fy_v = rng.random(shape)
    yfx = np.full(shape, 0.3)
    rarea = rng.random(shape[:2]) + 1.0
    q_adv = np.zeros(shape)
    origin = (0, H, 0)
    domain = (N + 2 * H, N, NK)

    def call():
        transverse_update_y(q, fy_v, yfx, rarea, q_adv,
                            origin=origin, domain=domain)

    return call


def _disabled_span_cost(iterations=200_000):
    """Median per-entry seconds of a no-op span, loop overhead included."""
    tracer = Tracer("bench", enabled=False)

    def loop():
        for _ in range(iterations):
            with tracer.span("x"):
                pass

    return obs.median_time(loop, repetitions=5) / iterations


def _span_sites_per_call(call):
    """How many span entries one traced call records."""
    tracer = obs.get_tracer()
    saved = (tracer.enabled, tracer.root, tracer._stack)
    tracer.reset()
    tracer.enable()
    try:
        call()
        payload = json.loads(obs.to_json())
    finally:
        tracer.enabled, tracer.root, tracer._stack = saved

    def count(nodes):
        return sum(n["count"] + count(n["children"]) for n in nodes)

    return count(payload["spans"]), payload


def test_noop_tracing_overhead_below_two_percent(report):
    call = _fvtp2d_call()
    call()  # warm up (parse/compile caches)

    per_site = _disabled_span_cost()
    sites, payload = _span_sites_per_call(call)
    call_seconds = obs.median_time(call, repetitions=20)
    overhead = per_site * sites / call_seconds

    stencil_span = payload["spans"][0]
    nbytes = stencil_span["attrs"]["bytes"]
    gbs = nbytes / stencil_span["total_seconds"] / 1e9

    report("repro.obs no-op overhead on an fvtp2d stencil call "
           f"({N}²×{NK})")
    report(f"  disabled span cost:   {per_site * 1e9:8.1f} ns/entry")
    report(f"  span sites per call:  {sites:8d}")
    report(f"  stencil call:         {call_seconds * 1e3:8.3f} ms")
    report(f"  estimated overhead:   {overhead * 100:8.4f} %")
    report(f"  traced-call traffic:  {nbytes / 1e6:8.2f} MB "
           f"({gbs:.2f} GB/s achieved)")

    assert sites >= 2  # stencil.<name> + exec.numpy
    assert overhead < 0.02
