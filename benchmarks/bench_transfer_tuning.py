"""Sec. VI-B: transfer-tuning statistics on the FVT module.

Paper: the FVT cutouts are its 127 SDFG states; a cutout has at most 48
configurations, 1,272 in total, searched exhaustively; the best M=2 OTF
configurations and the single best SGF configuration per cutout transfer
20 OTF + 583 SGF applications to the full dynamical core; phase 1 took
2:42 h and phase 2 8:24 h on a Piz Daint node; the final step is a 3.47%
speedup (Table III: 4.77 → 4.61 s).

Our graph is smaller, so counts differ; the reproduced claims are the
mechanics (exhaustive per-cutout search, label-based patterns, many more
transferred applications than tuned cutouts) and a measurable end-to-end
improvement, in feasible time.
"""

import pytest

from repro.core.machine import P100
from repro.core.perfmodel import model_sdfg_time
from repro.core.pipeline import OptimizationPipeline, PipelineOptions
from repro.fv3.config import DynamicalCoreConfig
from repro.fv3.performance import SingleRankDynCore


def _run():
    cfg = DynamicalCoreConfig(npx=48, npz=32, layout=1, k_split=1, n_split=4)
    src = SingleRankDynCore(cfg)
    sdfg = src.build_sdfg().sdfg
    pipe = OptimizationPipeline(PipelineOptions(machine=P100))
    before = model_sdfg_time(sdfg, P100)
    stats = pipe.transfer_tune(sdfg)
    after = model_sdfg_time(sdfg, P100)
    return before, after, stats


def test_transfer_tuning_statistics(report, benchmark):
    before, after, stats = benchmark.pedantic(_run, rounds=1, iterations=1)
    report("Sec. VI-B — transfer tuning on the orchestrated dycore")
    report(f"{'':<34} {'ours':>10} {'paper (FVT)':>12}")
    report(f"{'cutouts tuned':<34} {stats['cutouts']:>10} {127:>12}")
    report(f"{'configurations evaluated':<34} {stats['configurations']:>10} {1272:>12}")
    report(f"{'patterns extracted':<34} {stats['patterns']:>10} {'M=2/cutout':>12}")
    report(f"{'transferred applications':<34} {stats['applied']:>10} {20 + 583:>12}")
    report(f"{'phase 1 [s]':<34} {stats['phase1_seconds']:>10.1f} {'2:42 h':>12}")
    report(f"{'phase 2 [s]':<34} {stats['phase2_seconds']:>10.1f} {'8:24 h':>12}")
    improvement = (before - after) / before
    report(f"modeled end-to-end improvement: {100 * improvement:.2f}% "
           f"(paper: 3.47%)")
    # mechanics claims
    assert stats["cutouts"] >= 2
    assert stats["configurations"] > stats["cutouts"]
    assert stats["applied"] >= stats["patterns"]  # patterns recur
    assert improvement > 0.0
    # "auto-tuning the entire dynamical core can run in feasible time"
    assert stats["phase1_seconds"] + stats["phase2_seconds"] < 600


def test_pattern_descriptions_are_label_based(report, benchmark):
    """Configurations are described by stencil labels + transformation
    type (the paper's transferable description)."""
    from repro.core.autotune import make_evaluator, tune_cutout
    from repro.core.transfer import extract_patterns
    from repro.sdfg.cutout import state_cutouts

    def build():
        cfg = DynamicalCoreConfig(npx=24, npz=8, layout=1, k_split=1,
                                  n_split=1)
        return SingleRankDynCore(cfg).build_sdfg().sdfg

    sdfg = benchmark.pedantic(build, rounds=1, iterations=1)
    cutouts = state_cutouts(sdfg)[:4]
    configs = []
    for c in cutouts:
        cfgs, _ = tune_cutout(c, make_evaluator(machine=P100))
        configs.extend(cfgs)
    patterns = extract_patterns(configs, top_m=2)
    report(f"{len(patterns)} patterns extracted from {len(cutouts)} cutouts:")
    for p in patterns[:10]:
        report(f"  {p}")
    for p in patterns:
        assert p.xform in ("otf", "sgf")
        assert all(isinstance(lbl, str) for grp in p.labels for lbl in grp)
