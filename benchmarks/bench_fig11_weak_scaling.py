"""Fig. 11: large-scale weak scaling, and the A100 portability result.

Paper: weak scaling from 54 nodes (15.6 km) to 2,400 nodes (2.28 km) with
192×192×80 points per node is nearly flat; Python FV3 is up to 3.92×
faster than FORTRAN at scale; 0.11 SYPD at 2.28 km. On JUWELS Booster
(A100), 54 ranks run 1.93 s/step — 2.42× faster than Piz Daint, with the
A100 offering 2.83× the memory bandwidth.

Substitution: per-node compute comes from the machine model over the
whole-step SDFG; communication comes from the LogGP Aries model fed with
the *exact* per-rank halo message sizes of our partitioner. Weak scaling
is flat by construction of the decomposition — the reproduced claims are
the per-node time, the speedup at scale, and the A100 ratio.
"""

import math

import pytest

from repro.core.machine import (
    A100,
    ARIES,
    HASWELL,
    JUWELS_BOOSTER,
    P100,
)
from repro.core.perfmodel import model_sdfg_time
from repro.core.pipeline import optimize_sdfg_locally
from repro.fv3.config import DynamicalCoreConfig
from repro.fv3.partitioner import CubedSpherePartitioner
from repro.fv3.performance import SingleRankDynCore

#: nodes → approximate grid spacing [km] from the paper's figure
NODE_COUNTS = (54, 96, 216, 600, 1014, 1536, 2400)


def _per_node_times(npx=96, npz=80):
    """Modeled per-node compute time of one step, CPU vs tuned GPU."""
    cfg = DynamicalCoreConfig(npx=npx, npz=npz, layout=1, k_split=1,
                              n_split=5)
    src = SingleRankDynCore(cfg)
    sdfg = src.build_sdfg().sdfg
    t_cpu = model_sdfg_time(sdfg, HASWELL)
    optimize_sdfg_locally(sdfg, P100)
    t_gpu = model_sdfg_time(sdfg, P100)
    t_a100 = model_sdfg_time(sdfg, A100)
    return t_cpu, t_gpu, t_a100, cfg


def _comm_time(nodes, cfg, network, exchanges_per_step=20):
    """Halo time per step from exact message volumes (nonblocking,
    partially overlapped)."""
    layout = max(1, int(math.sqrt(nodes / 6)))
    p = CubedSpherePartitioner(cfg.npx * layout, layout)
    msgs = p.boundary_message_bytes(n_halo=3, npz=cfg.npz, n_fields=3)
    t = network.halo_exchange_time(msgs) * exchanges_per_step
    return t * (1.0 - network.overlap_fraction)


def test_fig11_weak_scaling(report, benchmark):
    t_cpu, t_gpu, t_a100, cfg = benchmark.pedantic(
        _per_node_times, rounds=1, iterations=1
    )
    report("Fig. 11 — weak scaling projection (192²-class per-node domain)")
    report(f"{'nodes':>7} {'FORTRAN[s]':>11} {'Python GPU[s]':>14} {'speedup':>8}")
    speedups = []
    times = []
    for nodes in NODE_COUNTS:
        comm = _comm_time(nodes, cfg, ARIES)
        total_cpu = t_cpu + comm
        total_gpu = t_gpu + comm
        speedups.append(total_cpu / total_gpu)
        times.append(total_gpu)
        report(f"{nodes:>7} {total_cpu:>11.4f} {total_gpu:>14.4f} "
               f"{total_cpu / total_gpu:>7.2f}x")
    report(f"paper: up to 3.92x at scale; nearly perfect weak scaling")
    # weak scaling nearly flat: per-step time varies < 10% across scales
    assert max(times) / min(times) < 1.10
    # the GPU wins by a factor in the paper's neighborhood
    assert 2.0 < max(speedups) < 8.0
    # speedup at scale at least matches the 6-node-style configuration
    assert speedups[-1] >= speedups[0] * 0.95

    report()
    report("JUWELS Booster (A100) portability:")
    ratio = t_gpu / t_a100
    report(f"  modeled P100/A100 step-time ratio: {ratio:.2f}x "
           f"(paper: 2.42x; bandwidth ratio 2.83x)")
    assert 1.8 < ratio < 2.9


def test_fig11_sypd(report, benchmark):
    """Throughput at scale: the paper reports 0.11 SYPD at 2.28 km with a
    known acoustic time step; we report the analogous quantity."""
    t_cpu, t_gpu, _, cfg = benchmark.pedantic(
        _per_node_times, rounds=1, iterations=1
    )
    comm = _comm_time(2400, cfg, ARIES)
    step = t_gpu + comm
    # paper's effective dt per step at 2.28km-class resolution
    dt_model = 11.25  # s of simulated time per dycore step (Fig. 11 scale)
    sypd = dt_model / (step) * 86400 / (365 * 86400)
    report(f"modeled step time at 2400 nodes: {step:.3f} s")
    report(f"throughput: {sypd:.3f} SYPD (paper: 0.11 SYPD at 2.28 km)")
    assert 0.005 < sypd < 5.0


def test_measured_per_rank_invariance(report, benchmark):
    """Measured sanity: the simulated multi-rank dycore's wall time per
    rank stays roughly constant between 6 and 24 ranks (weak scaling of
    the in-process substitute)."""
    import time

    from repro.fv3.dyncore import DynamicalCore

    def step_time(layout):
        cfg = DynamicalCoreConfig(
            npx=12 * layout, npz=4, layout=layout, dt_atmos=60.0,
            k_split=1, n_split=1,
        )
        core = DynamicalCore(cfg)
        core.step_dynamics()  # build/compile
        t0 = time.perf_counter()
        core.step_dynamics()
        elapsed = time.perf_counter() - t0
        return elapsed / core.partitioner.total_ranks

    t6 = benchmark.pedantic(lambda: step_time(1), rounds=1, iterations=1)
    t24 = step_time(2)
    report(f"per-rank step time: 6 ranks {t6*1e3:.1f} ms, "
           f"24 ranks {t24*1e3:.1f} ms")
    assert t24 / t6 < 3.0  # same order: weak-scaling-like behavior
