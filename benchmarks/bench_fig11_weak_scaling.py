"""Fig. 11: large-scale weak scaling, and the A100 portability result.

Paper: weak scaling from 54 nodes (15.6 km) to 2,400 nodes (2.28 km) with
192×192×80 points per node is nearly flat; Python FV3 is up to 3.92×
faster than FORTRAN at scale; 0.11 SYPD at 2.28 km. On JUWELS Booster
(A100), 54 ranks run 1.93 s/step — 2.42× faster than Piz Daint, with the
A100 offering 2.83× the memory bandwidth.

Substitution: per-node compute comes from the machine model over the
whole-step SDFG; communication comes from the LogGP Aries model fed with
the *exact* per-rank halo message sizes of our partitioner. Weak scaling
is flat by construction of the decomposition — the reproduced claims are
the per-node time, the speedup at scale, and the A100 ratio.
"""

import math

import pytest

from repro.core.machine import (
    A100,
    ARIES,
    HASWELL,
    JUWELS_BOOSTER,
    P100,
)
from repro.core.perfmodel import model_sdfg_time
from repro.core.pipeline import optimize_sdfg_locally
from repro.fv3.config import DynamicalCoreConfig
from repro.fv3.partitioner import CubedSpherePartitioner
from repro.fv3.performance import SingleRankDynCore

#: nodes → approximate grid spacing [km] from the paper's figure
NODE_COUNTS = (54, 96, 216, 600, 1014, 1536, 2400)


def _per_node_times(npx=96, npz=80):
    """Modeled per-node compute time of one step, CPU vs tuned GPU."""
    cfg = DynamicalCoreConfig(npx=npx, npz=npz, layout=1, k_split=1,
                              n_split=5)
    src = SingleRankDynCore(cfg)
    sdfg = src.build_sdfg().sdfg
    t_cpu = model_sdfg_time(sdfg, HASWELL)
    optimize_sdfg_locally(sdfg, P100)
    t_gpu = model_sdfg_time(sdfg, P100)
    t_a100 = model_sdfg_time(sdfg, A100)
    return t_cpu, t_gpu, t_a100, cfg


def _comm_time(nodes, cfg, network, exchanges_per_step=20):
    """Halo time per step from exact message volumes (nonblocking,
    partially overlapped)."""
    layout = max(1, int(math.sqrt(nodes / 6)))
    p = CubedSpherePartitioner(cfg.npx * layout, layout)
    msgs = p.boundary_message_bytes(n_halo=3, npz=cfg.npz, n_fields=3)
    t = network.halo_exchange_time(msgs) * exchanges_per_step
    return t * (1.0 - network.overlap_fraction)


def test_fig11_weak_scaling(report, benchmark):
    t_cpu, t_gpu, t_a100, cfg = benchmark.pedantic(
        _per_node_times, rounds=1, iterations=1
    )
    report("Fig. 11 — weak scaling projection (192²-class per-node domain)")
    report(f"{'nodes':>7} {'FORTRAN[s]':>11} {'Python GPU[s]':>14} {'speedup':>8}")
    speedups = []
    times = []
    for nodes in NODE_COUNTS:
        comm = _comm_time(nodes, cfg, ARIES)
        total_cpu = t_cpu + comm
        total_gpu = t_gpu + comm
        speedups.append(total_cpu / total_gpu)
        times.append(total_gpu)
        report(f"{nodes:>7} {total_cpu:>11.4f} {total_gpu:>14.4f} "
               f"{total_cpu / total_gpu:>7.2f}x")
    report(f"paper: up to 3.92x at scale; nearly perfect weak scaling")
    # weak scaling nearly flat: per-step time varies < 10% across scales
    assert max(times) / min(times) < 1.10
    # the GPU wins by a factor in the paper's neighborhood
    assert 2.0 < max(speedups) < 8.0
    # speedup at scale at least matches the 6-node-style configuration
    assert speedups[-1] >= speedups[0] * 0.95

    report()
    report("JUWELS Booster (A100) portability:")
    ratio = t_gpu / t_a100
    report(f"  modeled P100/A100 step-time ratio: {ratio:.2f}x "
           f"(paper: 2.42x; bandwidth ratio 2.83x)")
    assert 1.8 < ratio < 2.9


def test_fig11_sypd(report, benchmark):
    """Throughput at scale: the paper reports 0.11 SYPD at 2.28 km with a
    known acoustic time step; we report the analogous quantity."""
    t_cpu, t_gpu, _, cfg = benchmark.pedantic(
        _per_node_times, rounds=1, iterations=1
    )
    comm = _comm_time(2400, cfg, ARIES)
    step = t_gpu + comm
    # paper's effective dt per step at 2.28km-class resolution
    dt_model = 11.25  # s of simulated time per dycore step (Fig. 11 scale)
    sypd = dt_model / (step) * 86400 / (365 * 86400)
    report(f"modeled step time at 2400 nodes: {step:.3f} s")
    report(f"throughput: {sypd:.3f} SYPD (paper: 0.11 SYPD at 2.28 km)")
    assert 0.005 < sypd < 5.0


def test_measured_per_rank_invariance(report, benchmark):
    """Measured sanity: the simulated multi-rank dycore's wall time per
    rank stays roughly constant between 6 and 24 ranks (weak scaling of
    the in-process substitute)."""
    import time

    from repro.fv3.dyncore import DynamicalCore

    def step_time(layout):
        cfg = DynamicalCoreConfig(
            npx=12 * layout, npz=4, layout=layout, dt_atmos=60.0,
            k_split=1, n_split=1,
        )
        core = DynamicalCore(cfg)
        core.step_dynamics()  # build/compile
        t0 = time.perf_counter()
        core.step_dynamics()
        elapsed = time.perf_counter() - t0
        return elapsed / core.partitioner.total_ranks

    t6 = benchmark.pedantic(lambda: step_time(1), rounds=1, iterations=1)
    t24 = step_time(2)
    report(f"per-rank step time: 6 ranks {t6*1e3:.1f} ms, "
           f"24 ranks {t24*1e3:.1f} ms")
    assert t24 / t6 < 3.0  # same order: weak-scaling-like behavior


# ---------------------------------------------------------------------------
# measured mode (PR 10): real worker processes next to the LogGP curve
# ---------------------------------------------------------------------------

_STATE_FIELDS = ("u", "v", "w", "pt", "delp", "delz")


def _states_equal(a, b) -> bool:
    import numpy as np

    for sa, sb in zip(a, b):
        for name in _STATE_FIELDS:
            if not np.array_equal(getattr(sa, name), getattr(sb, name)):
                return False
        for ta, tb in zip(sa.tracers, sb.tracers):
            if not np.array_equal(ta, tb):
                return False
    return True


def measured_weak_scaling(steps=4, comm_latency=0.02, seed=11,
                          include_24=None, echo=print):
    """Run the 6-tile cube on 1/2/6 worker *processes* (and 24 ranks on
    6 workers when the machine allows) and record the measured per-step
    wall time next to the bit-identity verdict vs the sequential and
    threaded executors.

    This is the measured counterpart of the LogGP projection above: the
    same decomposition, the same per-rank halo message sizes, stepped by
    real OS processes over the shared-memory mailbox with a simulated
    per-message latency — so the latency-hiding claim is *measured*, not
    modeled.
    """
    import os

    from repro.run import run

    cfg = DynamicalCoreConfig(npx=12, npz=4, layout=1, dt_atmos=120.0,
                              k_split=1, n_split=2, n_tracers=1)
    echo(f"measured weak scaling: npx={cfg.npx} npz={cfg.npz} "
         f"ranks={cfg.total_ranks} steps={steps} "
         f"latency={comm_latency * 1e3:.0f}ms")
    sequential = run("baroclinic_wave", cfg, steps=steps, seed=seed,
                     executor="sequential")
    threaded = run("baroclinic_wave", cfg, steps=steps, seed=seed,
                   executor="threads")
    identical = _states_equal(sequential.members[0].states,
                              threaded.members[0].states)
    legs = []
    for workers in (1, 2, 6):
        result = run("baroclinic_wave", cfg, steps=steps, seed=seed,
                     executor="processes", workers=workers,
                     comm_latency=comm_latency)
        leg_identical = _states_equal(sequential.members[0].states,
                                      result.members[0].states)
        identical = identical and leg_identical
        legs.append({
            "workers": workers,
            "ranks": cfg.total_ranks,
            "ranks_per_worker": cfg.total_ranks // workers,
            "step_seconds": result.seconds / steps,
            "bit_identical_to_sequential": leg_identical,
        })
        echo(f"  {workers} proc(s) x {cfg.total_ranks // workers} "
             f"rank(s): {result.seconds / steps * 1e3:8.1f} ms/step  "
             f"bit-identical={leg_identical}")
    if include_24 is None:
        include_24 = (os.cpu_count() or 1) >= 8
    if include_24:
        cfg24 = DynamicalCoreConfig(npx=12, npz=4, layout=2,
                                    dt_atmos=120.0, k_split=1, n_split=2,
                                    n_tracers=1)
        seq24 = run("baroclinic_wave", cfg24, steps=steps, seed=seed,
                    executor="sequential")
        result = run("baroclinic_wave", cfg24, steps=steps, seed=seed,
                     executor="processes", workers=6,
                     comm_latency=comm_latency)
        leg_identical = _states_equal(seq24.members[0].states,
                                      result.members[0].states)
        identical = identical and leg_identical
        legs.append({
            "workers": 6,
            "ranks": cfg24.total_ranks,
            "ranks_per_worker": cfg24.total_ranks // 6,
            "step_seconds": result.seconds / steps,
            "bit_identical_to_sequential": leg_identical,
        })
        echo(f"  6 proc(s) x 4 rank(s) (24-rank cube): "
             f"{result.seconds / steps * 1e3:8.1f} ms/step  "
             f"bit-identical={leg_identical}")
    return {
        "config": {
            "npx": cfg.npx, "npz": cfg.npz, "layout": cfg.layout,
            "k_split": cfg.k_split, "n_split": cfg.n_split,
            "n_tracers": cfg.n_tracers, "steps": steps, "seed": seed,
            "comm_latency": comm_latency,
        },
        "legs": legs,
        "threads_bit_identical": _states_equal(
            sequential.members[0].states, threaded.members[0].states
        ),
        "bit_identical": identical,
    }


def projected_weak_scaling(npx=96, npz=80, echo=print):
    """The Fig. 11 LogGP projection as plain data (the pytest paths
    above assert on it; measured mode writes it next to the measured
    curve)."""
    t_cpu, t_gpu, t_a100, cfg = _per_node_times(npx=npx, npz=npz)
    rows = []
    for nodes in NODE_COUNTS:
        comm = _comm_time(nodes, cfg, ARIES)
        rows.append({
            "nodes": nodes,
            "fortran_seconds": t_cpu + comm,
            "python_gpu_seconds": t_gpu + comm,
            "speedup": (t_cpu + comm) / (t_gpu + comm),
        })
        echo(f"  {nodes:>5} nodes: FORTRAN {t_cpu + comm:.4f}s  "
             f"Python-GPU {t_gpu + comm:.4f}s  "
             f"({(t_cpu + comm) / (t_gpu + comm):.2f}x)")
    return {
        "per_node": {"npx": npx, "npz": npz, "cpu_seconds": t_cpu,
                     "gpu_seconds": t_gpu, "a100_seconds": t_a100},
        "curve": rows,
    }


def main(argv=None):
    import argparse
    import json
    import sys

    parser = argparse.ArgumentParser(
        description="Fig. 11 weak scaling: LogGP projection plus a "
        "measured curve on the process-based rank executor"
    )
    parser.add_argument("--measured", action="store_true",
                        help="run 1/2/6 worker-process configurations "
                        "of the 6-tile cube and record measured "
                        "per-step wall times")
    parser.add_argument("--steps", type=int, default=4)
    parser.add_argument("--latency", type=float, default=0.02,
                        help="simulated per-message latency [s]")
    parser.add_argument("--ranks24", action="store_true",
                        help="force the 24-rank (layout=2) leg even on "
                        "small machines")
    parser.add_argument("--projection-npx", type=int, default=96)
    parser.add_argument("--projection-npz", type=int, default=80)
    parser.add_argument("--output", default="BENCH_PR10.json")
    args = parser.parse_args(argv)

    out = {"benchmark": "fig11_weak_scaling"}
    print("Fig. 11 — LogGP projection:")
    out["projected"] = projected_weak_scaling(
        npx=args.projection_npx, npz=args.projection_npz
    )
    if args.measured:
        out["measured"] = measured_weak_scaling(
            steps=args.steps, comm_latency=args.latency,
            include_24=True if args.ranks24 else None,
        )
        if not out["measured"]["bit_identical"]:
            print("ERROR: executors disagree bit-for-bit", file=sys.stderr)
            json.dump(out, open(args.output, "w"), indent=2)
            return 1
    with open(args.output, "w") as fh:
        json.dump(out, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
