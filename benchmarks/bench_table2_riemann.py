"""Table II (left): Riemann solver performance across domain sizes.

Paper (FORTRAN vs GT4Py+DaCe on P100):
  128²×80: 12.27 ms vs 1.85 ms (6.63×)
  192²×80: 27.94 vs 3.86 (7.25×)    256²×80: 52.40 vs 6.96 (7.53×)
  384²×80: 121.80 vs 15.31 (7.96×)

Shape claims reproduced here (machine-model substitution, DESIGN.md):
  - FORTRAN scales super-linearly (cache capacity exceeded),
  - the GPU scales sub-linearly (2D thread grids underutilize it) with
    the gap narrowing as the domain grows,
  - the GPU wins at every size from the target domain up.
Additionally the *measured* wall-clock of the compiled dataflow backend is
benchmarked against the per-stencil debug backend at one size.
"""

import numpy as np
import pytest

from repro.core.machine import HASWELL, P100
from repro.core.perfmodel import model_sdfg_time
from repro.core.pipeline import optimize_sdfg_locally
from repro.fv3.stencils.riem_solver_c import RiemannSolverC

SIZES = (128, 192, 256, 384)
NK = 80
PAPER = {
    128: (12.27, 1.85),
    192: (27.94, 3.86),
    256: (52.40, 6.96),
    384: (121.80, 15.31),
}


def _build_sdfg(n, nk=NK):
    module = RiemannSolverC(n, n, nk, n_halo=3)
    shape = (n + 6, n + 6, nk)
    w = np.zeros(shape)
    delz = -np.ones(shape) * 500.0
    pt = np.full(shape, 300.0)
    delp = np.full(shape, 1000.0)
    pe = np.zeros(shape)
    prog = module.__call__
    prog.build(w, delz, pt, delp, pe, 10.0)
    return module, prog


def _model_rows():
    rows = []
    for n in SIZES:
        _, prog = _build_sdfg(n)
        sdfg = prog.sdfg.copy()
        t_cpu = model_sdfg_time(sdfg, HASWELL)
        optimize_sdfg_locally(sdfg, P100)
        t_gpu = model_sdfg_time(sdfg, P100)
        rows.append((n, t_cpu, t_gpu))
    return rows


def test_table2_riemann_model(report, benchmark):
    rows = benchmark.pedantic(_model_rows, rounds=1, iterations=1)
    base = rows[0]
    report("Table II (left) — Riemann solver, modeled CPU(FORTRAN) vs GPU")
    report(f"{'size':>10} {'CPU[ms]':>9} {'scale':>6} {'GPU[ms]':>9} "
           f"{'scale':>6} {'speedup':>8} {'paper':>8}")
    for n, t_cpu, t_gpu in rows:
        paper_cpu, paper_gpu = PAPER[n]
        report(
            f"{n}²×80{'':<3} {t_cpu*1e3:>9.2f} {t_cpu/base[1]:>6.2f} "
            f"{t_gpu*1e3:>9.2f} {t_gpu/base[2]:>6.2f} "
            f"{t_cpu/t_gpu:>7.2f}x {paper_cpu/paper_gpu:>7.2f}x"
        )
    # shape assertions
    points = {n: (n / SIZES[0]) ** 2 for n in SIZES}
    for (n, t_cpu, t_gpu) in rows[1:]:
        assert t_cpu / base[1] > points[n], "CPU must scale super-linearly"
        assert t_gpu / base[2] < points[n], "GPU must scale sub-linearly"
    for n, t_cpu, t_gpu in rows:
        if n >= 192:
            assert t_cpu / t_gpu > 3.0, "GPU must win clearly at scale"
    speedups = [t_cpu / t_gpu for _, t_cpu, t_gpu in rows]
    assert speedups == sorted(speedups), "speedup must grow with domain"


@pytest.mark.parametrize("backend", ["numpy", "dataflow"])
def test_riemann_measured(benchmark, backend):
    """Measured: per-stencil debug backend vs compiled whole-module SDFG."""
    n, nk = 64, 40
    module, prog = _build_sdfg(n, nk)
    shape = (n + 6, n + 6, nk)
    w = np.zeros(shape)
    delz = -np.ones(shape) * 500.0
    pt = np.full(shape, 300.0)
    delp = np.full(shape, 1000.0)
    pe = np.zeros(shape)

    if backend == "dataflow":
        benchmark(lambda: prog(w, delz, pt, delp, pe, 10.0))
    else:
        from repro.fv3.stencils.riem_solver_c import (
            precompute_coefficients,
            tridiagonal_solve,
            update_heights_pressure,
        )

        interior = dict(origin=(3, 3, 0), domain=(n, n, nk))

        def run():
            precompute_coefficients(
                delz, pt, w, delp, module.aa, module.bb, module.cc,
                module.dd, 10.0, 100.0, backend="numpy", **interior,
            )
            tridiagonal_solve(
                module.aa, module.bb, module.cc, module.dd, w, module.gam,
                backend="numpy", **interior,
            )
            update_heights_pressure(
                w, delz, pe, delp, pt, 10.0, 100.0, backend="numpy",
                **interior,
            )

        benchmark(run)
