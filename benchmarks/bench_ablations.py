"""Ablations of the paper's design choices.

Each knob the toolchain exposes (Sec. V-A / VI-A) is toggled in isolation
on representative modules and its modeled effect reported:

- interval fusion in vertical solvers (the default expansion strategy),
- horizontal-region strategy (predicated vs split),
- OTF fusion (memory traffic vs recomputation),
- schedule iteration order (coalescing).
"""

import numpy as np
import pytest

from repro.core.machine import P100
from repro.core.perfmodel import model_sdfg_time
from repro.core.heuristics import apply_schedule_heuristics
from repro.dsl import (
    Field,
    FORWARD,
    PARALLEL,
    computation,
    horizontal,
    i_start,
    interval,
    region,
    stencil,
)
from repro.sdfg import SDFG
from repro.sdfg.nodes import KernelSchedule, StencilComputation
from repro.sdfg.transformations import OTFMapFusion, RegionSplit, apply_exhaustively

SHAPE = (192, 192, 80)


@stencil
def _tridiag_like(a: Field, b: Field, x: Field):
    with computation(FORWARD):
        with interval(0, 1):
            g = a / b
            x = g
        with interval(1, None):
            g = a / (b - g[0, 0, -1])
            x = (a + x[0, 0, -1]) / (b - g[0, 0, -1])
    with computation(FORWARD):
        with interval(0, 1):
            w = x
        with interval(1, None):
            w = w[0, 0, -1] * 0.5 + x


def _vertical_sdfg(fuse_intervals: bool):
    sdfg = SDFG("v")
    for name in ("a", "b", "x"):
        sdfg.add_array(name, SHAPE)
    node = StencilComputation(
        _tridiag_like.definition, _tridiag_like.extents,
        mapping={"a": "a", "b": "b", "x": "x"},
        domain=SHAPE, origin=(0, 0, 0),
    )
    node.schedule = KernelSchedule(fuse_intervals=fuse_intervals)
    sdfg.add_state("s0").add(node)
    sdfg.expand_library_nodes()
    apply_schedule_heuristics(sdfg, P100)
    return sdfg


def test_ablation_interval_fusion(report, benchmark):
    """Default expansion fuses consecutive intervals into one kernel,
    avoiding flushes of cached values between loops (Sec. VI-A1)."""
    fused = benchmark.pedantic(
        lambda: _vertical_sdfg(True), rounds=1, iterations=1
    )
    split = _vertical_sdfg(False)
    t_fused = model_sdfg_time(fused, P100)
    t_split = model_sdfg_time(split, P100)
    report("Ablation — interval fusion in vertical solvers")
    report(f"  kernels: fused={len(fused.all_kernels())} "
           f"split={len(split.all_kernels())}")
    report(f"  modeled time: fused={t_fused*1e3:.3f} ms "
           f"split={t_split*1e3:.3f} ms ({t_split/t_fused:.2f}x)")
    assert len(split.all_kernels()) > len(fused.all_kernels())
    assert t_fused <= t_split


@stencil
def _edge_correct(v: Field, flux: Field, dt2: float):
    with computation(PARALLEL), interval(...):
        flux = dt2 * (v - v[0, 0, 0] * 0.5)
        with horizontal(region[i_start, :]):
            flux = dt2 * v


def test_ablation_region_strategy(report, benchmark):
    """Predicated full-domain maps waste nearly a domain's worth of
    traffic per edge statement; splitting trades it for extra launches
    (Table III: 5.35 → 4.82 s)."""
    def build():
        sdfg = SDFG("r")
        sdfg.add_array("v", SHAPE)
        sdfg.add_array("flux", SHAPE)
        sdfg.add_state("s0").add(StencilComputation(
            _edge_correct.definition, _edge_correct.extents,
            mapping={"v": "v", "flux": "flux"},
            domain=SHAPE, origin=(0, 0, 0),
            scalar_mapping={"dt2": "dt2"},
        ))
        sdfg.expand_library_nodes()
        apply_schedule_heuristics(sdfg, P100)
        return sdfg

    predicated = benchmark.pedantic(build, rounds=1, iterations=1)
    split = build()
    apply_exhaustively(split, [RegionSplit()])
    t_pred = model_sdfg_time(predicated, P100)
    t_split = model_sdfg_time(split, P100)
    report("Ablation — horizontal regions: predicated vs split")
    report(f"  predicated {t_pred*1e6:.1f} us, split {t_split*1e6:.1f} us "
           f"({t_pred/t_split:.2f}x)")
    assert t_split < t_pred
    (kern,) = split.all_kernels()
    assert kern.launch_count() > 1  # the split costs extra launches


@stencil
def _produce(x: Field, t: Field):
    with computation(PARALLEL), interval(...):
        t = x * 2.0 + 1.0


@stencil
def _consume5(t: Field, out: Field):
    with computation(PARALLEL), interval(...):
        out = (
            t[-1, 0, 0] + t[1, 0, 0] + t[0, -1, 0] + t[0, 1, 0] - 4.0 * t
        )


def test_ablation_otf_recompute_tradeoff(report, benchmark):
    """OTF fusion trades memory traffic for recomputation (Sec. VI-B):
    bytes drop, flops rise — a win for memory-bound stencils."""
    def build():
        sdfg = SDFG("o")
        shape = (194, 194, 80)
        sdfg.add_array("x", shape)
        sdfg.add_array("out", shape)
        sdfg.add_transient("t", shape)
        state = sdfg.add_state("s0")
        state.add(StencilComputation(
            _produce.definition, _produce.extents,
            mapping={"x": "x", "t": "t"}, domain=(194, 194, 80),
            origin=(0, 0, 0),
        ))
        state.add(StencilComputation(
            _consume5.definition, _consume5.extents,
            mapping={"t": "t", "out": "out"}, domain=(192, 192, 80),
            origin=(1, 1, 0),
        ))
        sdfg.expand_library_nodes()
        apply_schedule_heuristics(sdfg, P100)
        return sdfg

    from repro.sdfg.analysis import total_bytes, total_flops

    plain = benchmark.pedantic(build, rounds=1, iterations=1)
    fused = build()
    assert OTFMapFusion().apply_first(fused)
    report("Ablation — OTF fusion: memory vs recomputation")
    report(f"  bytes: {total_bytes(plain)/1e6:.1f} MB → "
           f"{total_bytes(fused)/1e6:.1f} MB")
    report(f"  flops: {total_flops(plain)/1e6:.1f} M → "
           f"{total_flops(fused)/1e6:.1f} M")
    t_plain = model_sdfg_time(plain, P100)
    t_fused = model_sdfg_time(fused, P100)
    report(f"  modeled time: {t_plain*1e3:.3f} ms → {t_fused*1e3:.3f} ms")
    assert total_bytes(fused) < total_bytes(plain)
    assert total_flops(fused) > total_flops(plain)
    assert t_fused < t_plain  # memory-bound: the trade pays off


def test_ablation_iteration_order(report, benchmark):
    """The layout sweep's schedules vs the naive default (Sec. VI-A4)."""
    from repro.core.perfmodel import coalescing_factor

    def build():
        sdfg = SDFG("s")
        sdfg.add_array("x", SHAPE)
        sdfg.add_array("t", SHAPE)
        sdfg.add_state("s0").add(StencilComputation(
            _produce.definition, _produce.extents,
            mapping={"x": "x", "t": "t"}, domain=SHAPE, origin=(0, 0, 0),
        ))
        sdfg.expand_library_nodes()
        return sdfg

    naive = benchmark.pedantic(build, rounds=1, iterations=1)
    tuned = build()
    apply_schedule_heuristics(tuned, P100)
    (k_naive,) = naive.all_kernels()
    (k_tuned,) = tuned.all_kernels()
    t_naive = model_sdfg_time(naive, P100)
    t_tuned = model_sdfg_time(tuned, P100)
    report("Ablation — iteration order (coalescing)")
    report(f"  naive {k_naive.schedule.iteration_order} "
           f"(coalescing {coalescing_factor(k_naive, P100):.2f}): "
           f"{t_naive*1e3:.3f} ms")
    report(f"  tuned {k_tuned.schedule.iteration_order} "
           f"(coalescing {coalescing_factor(k_tuned, P100):.2f}): "
           f"{t_tuned*1e3:.3f} ms")
    assert t_tuned < t_naive
