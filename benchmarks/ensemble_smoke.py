"""CI ensemble smoke: batching members must amortize fixed costs.

Measures, with cold process-wide caches each time:

1. one single-member run of the baroclinic scenario (grid build +
   stencil compilation + stepping), and
2. one 4-member ensemble of the same scenario through
   ``repro.run.run``.

Asserts:

- the ensemble costs measurably less than 4x the single run — the
  members share the built geometry, the content-hash compile cache and
  the pooled buffers instead of paying cold start four times;
- the ensemble actually amortized compilation (compile-cache hits
  recorded during the batched run, misses only from the first member);
- every batch member is bit-identical to the same member run
  standalone (``members=(k,)``) from the same root seed, and a re-run
  of the whole ensemble is bit-identical to the first;
- every member passes the scenario's reference checks.

Writes ``BENCH_PR6.json`` with the timings and cache counters.

Run:  PYTHONPATH=src python benchmarks/ensemble_smoke.py
"""

import json
import os
import pathlib
import time

import numpy as np

MEMBERS = 4
STEPS = int(os.environ.get("REPRO_BENCH_ENSEMBLE_STEPS", "2"))
SEED = 42
#: the ensemble must beat naive 4x-single by at least this factor
TARGET_AMORTIZATION = float(
    os.environ.get("REPRO_BENCH_ENSEMBLE_TARGET", "1.15")
)
ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT = ROOT / "BENCH_PR6.json"

FIELDS = ("u", "v", "w", "pt", "delp", "delz")


def _config():
    from repro.fv3.config import DynamicalCoreConfig

    return DynamicalCoreConfig(
        npx=12, npz=4, layout=1, dt_atmos=120.0, k_split=1, n_split=4,
        n_tracers=1,
    )


def _cold_caches():
    """Drop every process-wide amortizable artifact, so the next run
    pays true cold-start costs."""
    from repro.runtime import compile_cache
    from repro.runtime.pool import get_pool

    compile_cache.reset(clear=True)
    get_pool().clear()


def _timed_run(members):
    """Build + run with cold caches; returns (seconds, RunResult)."""
    from repro.run import run

    _cold_caches()
    t0 = time.perf_counter()
    result = run(
        "baroclinic_wave", _config(), steps=STEPS, members=members,
        seed=SEED, diagnostics=False,
    )
    return time.perf_counter() - t0, result


def _assert_states_equal(a, b, context):
    for rank, (sa, sb) in enumerate(zip(a.states, b.states)):
        for f in FIELDS:
            np.testing.assert_array_equal(
                getattr(sa, f), getattr(sb, f),
                err_msg=f"{context}: rank {rank} field {f} diverged",
            )
        for t, (ta, tb) in enumerate(zip(sa.tracers, sb.tracers)):
            np.testing.assert_array_equal(
                ta, tb, err_msg=f"{context}: rank {rank} tracer {t}",
            )


def amortization():
    print(f"== cold single run vs {MEMBERS}-member ensemble "
          f"({STEPS} step(s)) ==")
    t_single, single = _timed_run(1)
    print(f"single (cold) : {t_single:.3f}s  "
          f"compile cache {single.amortization['compile_hits']} hits / "
          f"{single.amortization['compile_misses']} misses")
    t_ens, ens = _timed_run(MEMBERS)
    am = ens.amortization
    print(f"ensemble x{MEMBERS}   : {t_ens:.3f}s  "
          f"compile cache {am['compile_hits']} hits / "
          f"{am['compile_misses']} misses, "
          f"{am['grid_builds_avoided']} grid builds avoided, "
          f"pool reuse {am['pool_reuse_hits']}")

    naive = MEMBERS * t_single
    speedup = naive / t_ens
    print(f"amortization  : {t_ens:.3f}s vs naive {naive:.3f}s "
          f"({speedup:.2f}x)")
    assert speedup >= TARGET_AMORTIZATION, (
        f"{MEMBERS}-member ensemble at {t_ens:.3f}s is not measurably "
        f"cheaper than {MEMBERS}x a single run ({naive:.3f}s); "
        f"speedup {speedup:.2f} < target {TARGET_AMORTIZATION}"
    )
    assert am["compile_hits"] > 0, (
        "batched run recorded no compile-cache hits — members are not "
        "sharing compiled programs"
    )
    assert am["compile_misses"] <= single.amortization["compile_misses"], (
        f"the {MEMBERS}-member ensemble compiled "
        f"{am['compile_misses']} programs but a single run only needs "
        f"{single.amortization['compile_misses']} — members are paying "
        f"per-member compiles instead of sharing the engine's"
    )
    assert all(m.ok for m in ens.members), (
        f"reference checks failed: "
        f"{ {m.member: m.check_violations for m in ens.members} }"
    )
    return t_single, single, t_ens, ens


def determinism(ens):
    from repro.run import run

    print("\n== member independence + re-run determinism ==")
    for k in range(MEMBERS):
        alone = run(
            "baroclinic_wave", _config(), steps=STEPS, members=(k,),
            seed=SEED, diagnostics=False, check=False,
        )
        _assert_states_equal(
            ens.member(k), alone.member(k),
            f"member {k} standalone vs batch",
        )
    print(f"members 0..{MEMBERS - 1}: standalone == batch (bit-identical)")
    rerun = run(
        "baroclinic_wave", _config(), steps=STEPS, members=MEMBERS,
        seed=SEED, diagnostics=False, check=False,
    )
    for k in range(MEMBERS):
        _assert_states_equal(
            ens.member(k), rerun.member(k), f"re-run member {k}"
        )
    print("ensemble re-run with the same root seed: bit-identical")


def main():
    t_single, single, t_ens, ens = amortization()
    determinism(ens)

    payload = {
        "benchmark": "pr6_ensemble_smoke",
        "config": {
            "npx": 12, "npz": 4, "layout": 1, "k_split": 1, "n_split": 4,
            "steps": STEPS, "members": MEMBERS, "seed": SEED,
        },
        "single_cold_seconds": t_single,
        "ensemble_cold_seconds": t_ens,
        "naive_n_times_single_seconds": MEMBERS * t_single,
        "amortization_speedup": MEMBERS * t_single / t_ens,
        "target_amortization": TARGET_AMORTIZATION,
        "single_compile_cache": {
            "hits": single.amortization["compile_hits"],
            "misses": single.amortization["compile_misses"],
        },
        "ensemble_compile_cache": {
            "hits": ens.amortization["compile_hits"],
            "misses": ens.amortization["compile_misses"],
        },
        "grid_builds_avoided": ens.amortization["grid_builds_avoided"],
        "pool_reuse_hits": ens.amortization["pool_reuse_hits"],
    }
    OUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {OUT.name}")
    print("ensemble smoke: PASS")
    return payload


if __name__ == "__main__":
    main()
