"""Process-based SPMD rank execution over a shared-memory mailbox.

PR 5 made ranks *concurrent* (one thread per rank); this module makes
them *parallel*: worker processes, each owning a contiguous block of
ranks, exchange halos through :class:`ProcComm` — a drop-in counterpart
of :class:`~repro.fv3.communicator.LocalComm` whose mailbox lives in a
POSIX shared-memory slot table guarded by one ``multiprocessing``
condition variable. The split ``start_*/advance/finish_*`` halo API and
its disjoint snd/rcv pack buffers were designed for exactly this:
:class:`~repro.fv3.halo.HaloUpdater` never learns which transport it is
on.

Design:

- **Replica cores.** Each worker builds the full member state and
  geometry deterministically from the run spec (same builders, same
  seeds), then executes *only its own ranks'* SPMD bodies. The rank
  bodies touch nothing but rank-local arrays plus the communicator, so
  the other ranks' replica arrays simply go stale — they are never read.
  This keeps every compiled program, pool buffer and plan process-local
  with zero sharing.
- **Transport.** A fixed table of fixed-size slots in
  ``multiprocessing.shared_memory``; one slot holds one in-flight
  message (header: status/src/dst/tag/shape/dtype/deliverable-at).
  Matching follows MPI semantics on (source, dest, tag), exactly like
  ``LocalComm``; a send to an occupied key blocks until the receiver
  drains it, which is the flow control that keeps cross-member
  pipelining correct without global barriers. Deliverable-at instants
  use ``time.monotonic_ns`` — ``CLOCK_MONOTONIC`` is system-wide on the
  platforms we run on, so simulated latency works across processes.
  The alternative transports considered (one OS pipe per directed rank
  pair; a parent-brokered socket) were rejected for deadlock risk at
  full eager-send fan-in and for serializing every message through one
  broker, respectively.
- **Observability.** Workers ship their tracer span trees and
  pool/compile-cache/jit/rank-executor counters back over the result
  pipe at teardown; :func:`fold_worker_reports` merges them into the
  parent's subsystems so the obs report footer stays truthful.

``repro.run.run(..., executor="processes", workers=W)`` is the public
entry point (see :mod:`repro.run.procrun`); 1/2/6-process runs over the
6-tile cubed sphere are bit-identical to the sequential and threaded
executors, and ``benchmarks/bench_fig11_weak_scaling.py --measured``
turns the same machinery into the measured Fig. 11 curve.

Limitations (documented in ``docs/scaling.md``): ``resilience=`` is
rejected — chaos occurrence counters and rollback snapshots are
per-process and would diverge from the single-process schedule — and
custom scenarios must be resolvable by name in the worker (always true
under the default ``fork`` start method, which inherits the registry).
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
import traceback
import warnings
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import tracer as _obs
from repro.resilience import chaos as _chaos
from repro.resilience import record as _record
from repro.resilience.chaos import DEFAULT_DELAY_POLLS
from repro.resilience.errors import HaloTimeoutError, OrphanedMessagesWarning
from repro.runtime import ranks as _ranks

__all__ = [
    "ProcComm",
    "ProcessRankExecutor",
    "ShmTransport",
    "WorkerSpec",
    "fold_worker_reports",
    "summary",
]

_Key = Tuple[int, int, int]  # (source, dest, tag)

# ---------------------------------------------------------------------------
# shared-memory slot table
# ---------------------------------------------------------------------------

#: header field indices (int64 each)
_H_STATUS = 0
_H_SRC = 1
_H_DST = 2
_H_TAG = 3
_H_NBYTES = 4
_H_NDIM = 5
_H_SHAPE = 6  # .. 6+_MAX_DIMS
_MAX_DIMS = 4
_H_AT_NS = 10
_H_DELAYED = 11
_H_DTYPE = 12
_HDR_INTS = 16
_HDR_BYTES = _HDR_INTS * 8

_EMPTY, _FULL = 0, 1


def _pack_dtype(dtype: np.dtype) -> int:
    code = np.dtype(dtype).str.encode("ascii")
    if len(code) > 8:
        raise ValueError(f"dtype {dtype} not transportable")
    return int.from_bytes(code.ljust(8, b"\0"), "little")


def _unpack_dtype(packed: int) -> np.dtype:
    return np.dtype(int(packed).to_bytes(8, "little").rstrip(b"\0").decode())


class ShmTransport:
    """A fixed slot table in shared memory plus one condition variable.

    The parent creates the segment (``create``); workers attach by name
    (``attach``). All slot transitions happen under ``cond``, which is a
    ``multiprocessing.Condition`` — process- *and* thread-safe, so the
    in-worker rank threads and sibling processes share one wait/notify
    domain. Headers live in one contiguous int64 block at the front,
    payloads in fixed-capacity slots behind it.
    """

    def __init__(self, shm, cond, n_slots: int, slot_bytes: int,
                 owner: bool):
        self._shm = shm
        self.cond = cond
        self.n_slots = int(n_slots)
        self.slot_bytes = int(slot_bytes)
        self._owner = owner
        self._closed = False
        self.hdr = np.ndarray(
            (self.n_slots, _HDR_INTS), dtype=np.int64, buffer=shm.buf
        )
        self._payload_base = self.n_slots * _HDR_BYTES

    # -- lifecycle ------------------------------------------------------
    @classmethod
    def create(cls, n_slots: int, slot_bytes: int, ctx) -> "ShmTransport":
        from multiprocessing import shared_memory

        size = n_slots * (_HDR_BYTES + slot_bytes)
        shm = shared_memory.SharedMemory(create=True, size=size)
        transport = cls(shm, ctx.Condition(), n_slots, slot_bytes,
                        owner=True)
        transport.hdr[:] = 0
        return transport

    @classmethod
    def attach(cls, name: str, n_slots: int, slot_bytes: int,
               cond) -> "ShmTransport":
        from multiprocessing import resource_tracker, shared_memory

        # CPython registers attaches with the resource tracker exactly
        # like creates (gh-82300), so an attach-only process would
        # unlink the parent's live segment at exit. Under ``spawn`` the
        # attach starts a fresh child-local tracker — unregister there.
        # Under ``fork`` the tracker is *shared* with the parent and the
        # register is an idempotent re-add: unregistering would delete
        # the parent's entry, so leave it alone.
        inherited_tracker = (
            getattr(resource_tracker._resource_tracker, "_fd", None)
            is not None
        )
        shm = shared_memory.SharedMemory(name=name)
        if not inherited_tracker:
            try:
                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:
                pass
        return cls(shm, cond, n_slots, slot_bytes, owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.hdr = None  # release the exported buffer before closing
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass

    # -- slot operations (caller holds ``cond``) ------------------------
    def find(self, key: _Key) -> Optional[int]:
        h = self.hdr
        mask = (
            (h[:, _H_STATUS] == _FULL)
            & (h[:, _H_SRC] == key[0])
            & (h[:, _H_DST] == key[1])
            & (h[:, _H_TAG] == key[2])
        )
        hits = np.nonzero(mask)[0]
        return int(hits[0]) if hits.size else None

    def find_empty(self) -> Optional[int]:
        hits = np.nonzero(self.hdr[:, _H_STATUS] == _EMPTY)[0]
        return int(hits[0]) if hits.size else None

    def _payload(self, slot: int, nbytes: int) -> np.ndarray:
        offset = self._payload_base + slot * self.slot_bytes
        return np.frombuffer(
            self._shm.buf, dtype=np.uint8, count=nbytes, offset=offset
        )

    def post(self, slot: int, key: _Key, payload: np.ndarray,
             at_ns: int, delayed: bool,
             corrupt_index: Optional[int] = None) -> None:
        nbytes = payload.nbytes
        if nbytes > self.slot_bytes:
            raise ValueError(
                f"message of {nbytes} bytes exceeds the transport's "
                f"{self.slot_bytes}-byte slot capacity (resize via "
                f"REPRO_SHM_SLOT_BYTES or a larger launch sizing)"
            )
        if payload.ndim > _MAX_DIMS:
            raise ValueError(
                f"{payload.ndim}-d payloads unsupported (max {_MAX_DIMS})"
            )
        row = self.hdr[slot]
        row[_H_SRC], row[_H_DST], row[_H_TAG] = key
        row[_H_NBYTES] = nbytes
        row[_H_NDIM] = payload.ndim
        row[_H_SHAPE:_H_SHAPE + _MAX_DIMS] = 0
        for axis, extent in enumerate(payload.shape):
            row[_H_SHAPE + axis] = extent
        row[_H_AT_NS] = at_ns
        row[_H_DELAYED] = int(delayed)
        row[_H_DTYPE] = _pack_dtype(payload.dtype)
        self._payload(slot, nbytes)[:] = payload.reshape(-1).view(np.uint8)
        if corrupt_index is not None:
            view = np.frombuffer(
                self._payload(slot, nbytes), dtype=payload.dtype
            )
            view[corrupt_index] = np.nan
        row[_H_STATUS] = _FULL

    def read_into(self, slot: int, buf: np.ndarray) -> None:
        row = self.hdr[slot]
        nbytes = int(row[_H_NBYTES])
        ndim = int(row[_H_NDIM])
        shape = tuple(int(row[_H_SHAPE + axis]) for axis in range(ndim))
        dtype = _unpack_dtype(row[_H_DTYPE])
        payload = self._payload(slot, nbytes).view(dtype).reshape(shape)
        np.copyto(buf, payload.reshape(buf.shape))

    def free(self, slot: int) -> None:
        self.hdr[slot, _H_STATUS] = _EMPTY

    def pending_keys(self) -> List[_Key]:
        h = self.hdr
        keys = [
            (int(h[s, _H_SRC]), int(h[s, _H_DST]), int(h[s, _H_TAG]))
            for s in np.nonzero(h[:, _H_STATUS] == _FULL)[0]
        ]
        return sorted(keys)


# ---------------------------------------------------------------------------
# the LocalComm-compatible endpoint
# ---------------------------------------------------------------------------

# cached module reference for the compute-slot handoff around blocking
# waits (same pattern as LocalComm)
def _io_wait():
    return _ranks.io_wait()


class ProcRequest:
    """Completion handle mirroring ``communicator.Request`` semantics:
    receives block until the matching send is deliverable and copy into
    the posted buffer; sends complete when the receiver drains the
    slot."""

    def __init__(self, comm: "ProcComm", kind: str, key: _Key, buf,
                 dropped: bool = False):
        self._comm = comm
        self._kind = kind
        self._key = key
        self._buf = buf
        self._done = False
        self._dropped = dropped

    def wait(self, timeout: Optional[float] = None) -> None:
        if self._done:
            return
        if self._kind == "recv":
            self._wait_recv(timeout)
        else:
            self._wait_send(timeout)
        self._done = True

    def _wait_recv(self, timeout: Optional[float]) -> None:
        comm, key = self._comm, self._key
        budget = comm.timeout if timeout is None else timeout
        transport = comm.transport
        deadline: Optional[float] = None
        delayed = False
        with _io_wait():
            with transport.cond:
                while True:
                    slot = transport.find(key)
                    if slot is not None:
                        at_ns = int(transport.hdr[slot, _H_AT_NS])
                        now_ns = time.monotonic_ns()
                        if at_ns <= now_ns:
                            delayed = bool(transport.hdr[slot, _H_DELAYED])
                            transport.read_into(slot, self._buf)
                            transport.free(slot)
                            transport.cond.notify_all()
                            break
                        # present but in flight (modeled latency / chaos
                        # delay): wake at the delivery instant — not
                        # charged to the absence budget
                        transport.cond.wait((at_ns - now_ns) / 1e9)
                        continue
                    now = time.monotonic()
                    if deadline is None:
                        deadline = now + budget
                    elif now >= deadline:
                        source, dest, tag = key
                        raise HaloTimeoutError(
                            source=source,
                            dest=dest,
                            tag=tag,
                            polls=comm.max_polls,
                            pending=transport.pending_keys(),
                        )
                    transport.cond.wait(
                        min(comm.poll_interval, deadline - now)
                    )
        if delayed:
            _record("halo_redeliveries")

    def _wait_send(self, timeout: Optional[float]) -> None:
        if self._dropped:
            return
        comm, key = self._comm, self._key
        budget = comm.timeout if timeout is None else timeout
        transport = comm.transport
        with _io_wait():
            with transport.cond:
                deadline = time.monotonic() + budget
                while transport.find(key) is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        source, dest, tag = key
                        raise HaloTimeoutError(
                            source=source,
                            dest=dest,
                            tag=tag,
                            polls=comm.max_polls,
                            pending=transport.pending_keys(),
                        )
                    transport.cond.wait(
                        min(comm.poll_interval, remaining)
                    )

    def test(self) -> bool:
        if self._done:
            return True
        comm = self._comm
        with comm.transport.cond:
            slot = comm.transport.find(self._key)
            if self._kind == "recv":
                return slot is not None and (
                    int(comm.transport.hdr[slot, _H_AT_NS])
                    <= time.monotonic_ns()
                )
            return self._dropped or slot is None


class ProcComm:
    """One process's endpoint of the shared-memory mailbox.

    API-compatible with :class:`~repro.fv3.communicator.LocalComm`
    (``Isend``/``Irecv``/``Request`` lifecycles, ``latency``,
    ``max_polls``/``timeout``, ``drain``/``finalize``, message log) so
    the halo updater — and the chaos sites consulted on every send —
    behave identically on either transport. ``owned_ranks`` scopes
    ``drain`` to this endpoint's inbound slots, so a worker tearing down
    never steals another worker's in-flight messages.
    """

    #: receive budget, in polls of ``poll_interval`` seconds (the
    #: process runner widens this by default: sibling workers may spend
    #: seconds in first-step compilation while our receives are posted)
    max_polls: int = 8
    poll_interval: float = 0.05

    def __init__(self, transport: ShmTransport, size: int,
                 owned_ranks: Optional[Sequence[int]] = None,
                 latency: Optional[float] = None):
        self.transport = transport
        self.size = int(size)
        self.owned_ranks = (
            tuple(owned_ranks) if owned_ranks is not None else None
        )
        if latency is None:
            latency = float(os.environ.get("REPRO_NET_LATENCY", "0") or "0")
        self.latency = latency
        self._lock = threading.Lock()
        self.log: List[object] = []

    @property
    def timeout(self) -> float:
        """Seconds of absence a wait tolerates before raising."""
        return self.max_polls * self.poll_interval

    @property
    def delay_seconds(self) -> float:
        """How long a chaos ``halo.delay`` withholds delivery."""
        return DEFAULT_DELAY_POLLS * self.poll_interval

    def pending(self) -> List[_Key]:
        """Sorted (source, dest, tag) triples still in the mailbox
        (table-global: every process sees the same pending set)."""
        with self.transport.cond:
            return self.transport.pending_keys()

    # ---- nonblocking operations --------------------------------------
    def Isend(self, buf: np.ndarray, source: int, dest: int,
              tag: int = 0) -> ProcRequest:
        from repro.fv3.communicator import MessageRecord

        if not (0 <= dest < self.size):
            raise ValueError(f"invalid destination rank {dest}")
        key = (source, dest, tag)
        dropped = False
        delayed = False
        corrupt_index: Optional[int] = None
        if _chaos._PLAN is not None:
            if _chaos.consult(
                "halo.drop", source=source, dest=dest, tag=tag
            ):
                dropped = True
            else:
                fault = _chaos.consult(
                    "halo.corrupt", source=source, dest=dest, tag=tag
                )
                if fault is not None:
                    corrupt_index = _chaos.get_plan().rng(
                        "halo.corrupt.index"
                    ).randrange(buf.size)
                    fault.detail["index"] = corrupt_index
                if _chaos.consult(
                    "halo.delay", source=source, dest=dest, tag=tag
                ):
                    delayed = True
        with self._lock:
            self.log.append(MessageRecord(source, dest, buf.nbytes, tag))
        if dropped:
            return ProcRequest(self, "send", key, buf, dropped=True)
        payload = np.ascontiguousarray(buf)
        transport = self.transport
        with _io_wait():
            with transport.cond:
                deadline: Optional[float] = None
                while True:
                    occupied = transport.find(key) is not None
                    slot = None if occupied else transport.find_empty()
                    if slot is not None:
                        break
                    now = time.monotonic()
                    if deadline is None:
                        deadline = now + self.timeout
                    elif now >= deadline:
                        if occupied:
                            raise RuntimeError(
                                f"message {key} already in flight"
                            )
                        raise RuntimeError(
                            "shared-memory mailbox full: all "
                            f"{transport.n_slots} slots occupied while "
                            f"posting {key}"
                        )
                    transport.cond.wait(
                        min(self.poll_interval, deadline - now)
                    )
                at_ns = time.monotonic_ns() + int(self.latency * 1e9)
                if delayed:
                    at_ns += int(self.delay_seconds * 1e9)
                transport.post(slot, key, payload, at_ns, delayed,
                               corrupt_index)
                transport.cond.notify_all()
        return ProcRequest(self, "send", key, buf)

    def Irecv(self, buf: np.ndarray, source: int, dest: int,
              tag: int = 0) -> ProcRequest:
        return ProcRequest(self, "recv", (source, dest, tag), buf)

    # ---- lifecycle ----------------------------------------------------
    def drain(self) -> List[_Key]:
        """Drop in-flight messages destined to this endpoint's ranks
        (all messages when unscoped), returning the orphaned keys."""
        transport = self.transport
        orphans: List[_Key] = []
        with transport.cond:
            for key in transport.pending_keys():
                if self.owned_ranks is not None and \
                        key[1] not in self.owned_ranks:
                    continue
                slot = transport.find(key)
                if slot is not None:
                    transport.free(slot)
                    orphans.append(key)
            transport.cond.notify_all()
        return sorted(orphans)

    def finalize(self, strict: bool = False) -> List[_Key]:
        """Drain check at teardown, mirroring ``LocalComm.finalize``."""
        orphans = self.drain()
        if orphans:
            _record("orphaned_messages", len(orphans))
            triples = ", ".join(
                f"(src={s}, dst={d}, tag={t})" for s, d, t in orphans
            )
            message = (
                f"{len(orphans)} message(s) sent but never received: "
                f"{triples}"
            )
            if strict:
                raise RuntimeError(message)
            warnings.warn(message, OrphanedMessagesWarning, stacklevel=2)
        return orphans

    # ---- statistics ---------------------------------------------------
    def reset_log(self) -> None:
        with self._lock:
            self.log.clear()

    def bytes_by_rank(self) -> Dict[int, int]:
        out: Dict[int, int] = {}
        with self._lock:
            records = list(self.log)
        for rec in records:
            out[rec.source] = out.get(rec.source, 0) + rec.nbytes
        return out

    def message_sizes(self, rank: Optional[int] = None) -> List[int]:
        with self._lock:
            records = list(self.log)
        return [
            rec.nbytes
            for rec in records
            if rank is None or rec.source == rank
        ]


# ---------------------------------------------------------------------------
# in-worker executor: this process's ranks only
# ---------------------------------------------------------------------------


class _SubsetRankExecutor(_ranks.RankExecutor):
    """Runs the SPMD bodies of this worker's ranks; sibling ranks run in
    other processes and are reached only through the communicator.

    Always ``parallel`` (the engine must take the message-passing SPMD
    path — the sequential path's atomic exchanges need every rank's
    arrays, which a replica core does not keep fresh). With more than
    one owned rank, the bodies run on threads exactly like the PR-5
    executor: a rank blocked in a receive must not prevent a same-worker
    rank from posting the matching send.
    """

    def __init__(self, owned_ranks: Sequence[int]):
        super().__init__(workers=max(1, len(owned_ranks)))
        self.owned_ranks = tuple(sorted(owned_ranks))

    @property
    def parallel(self) -> bool:
        return True

    def run(self, fn, n_ranks: int, label: str = "ranks"):
        owned = [r for r in self.owned_ranks if r < n_ranks]
        results: List[object] = [None] * n_ranks
        t0 = time.perf_counter()
        if len(owned) <= 1:
            for rank in owned:
                results[rank] = fn(rank)
        else:
            pool = self._ensure_pool(len(owned))
            tracer = _obs.get_tracer()
            parent = tracer.current if tracer.enabled else None
            futures = {
                rank: pool.submit(self._run_rank, fn, rank, tracer, parent)
                for rank in owned
            }
            errors: List[tuple] = []
            for rank in owned:
                try:
                    results[rank] = futures[rank].result()
                except BaseException as exc:  # noqa: BLE001 — re-raised
                    errors.append((rank, exc))
            if errors:
                errors.sort(key=lambda item: item[0])
                raise errors[0][1]
        elapsed = time.perf_counter() - t0
        with _ranks._LOCK:
            _ranks._METRICS["workers"] = self.workers
            _ranks._METRICS["sections"] += 1
            _ranks._METRICS["tasks"] += len(owned)
            _ranks._METRICS["section_seconds"] += elapsed
        return results

    def __repr__(self) -> str:
        return f"_SubsetRankExecutor(ranks={self.owned_ranks})"


# ---------------------------------------------------------------------------
# worker process
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker needs to rebuild its replica deterministically
    (picklable: scenario travels by registry name)."""

    scenario: str
    config: object  # DynamicalCoreConfig (frozen dataclass)
    seed: int
    member_ids: Tuple[int, ...]
    comm_latency: Optional[float]
    max_polls: Optional[int]
    diagnostics: bool
    trace: bool


def _numeric_delta(new: Dict, old: Dict) -> Dict:
    """Recursive new-minus-old over numeric leaves (non-numerics copied
    from ``new``) — workers forked from a warm parent must report only
    their own activity."""
    out: Dict = {}
    for key, value in new.items():
        base = old.get(key)
        if isinstance(value, dict):
            out[key] = _numeric_delta(value, base if isinstance(base, dict)
                                      else {})
        elif isinstance(value, bool) or not isinstance(value, (int, float)):
            out[key] = value
        else:
            out[key] = value - (base if isinstance(base, (int, float))
                                and not isinstance(base, bool) else 0)
    return out


class _WorkerHarness:
    """One worker's replica engine plus its block of member states.

    Mirrors the :class:`~repro.run.driver.EnsembleDriver` state-swap
    contract exactly — member states are built with the same
    ``SeedSequence`` streams *replayed across all ranks in rank order*
    (a member's rank-r state depends on how many draws ranks 0..r-1
    consumed), and stepping is step-major over members. Only the owned
    ranks' results are kept; everything else is discarded after the
    replay.
    """

    def __init__(self, spec: WorkerSpec, owned: Sequence[int],
                 comm: ProcComm):
        from repro.run.driver import build_core, member_rng
        from repro.scenarios import get_scenario

        self.spec = spec
        self.owned = tuple(owned)
        self.comm = comm
        self.scenario = get_scenario(spec.scenario)
        self.config = spec.config
        self.core = build_core(
            self.scenario,
            self.config,
            member=0,
            seed=spec.seed,
            executor=_SubsetRankExecutor(self.owned),
            comm=comm,
            comm_latency=spec.comm_latency,
            max_polls=spec.max_polls,
        )
        self.h = self.core.h
        # members: id -> {"states": {rank: RankFields}, "time", "step"}
        self.members: Dict[int, Dict[str, object]] = {}
        self.history: Dict[int, List[Dict[str, object]]] = {}
        for member in spec.member_ids:
            rng = member_rng(spec.seed, member)
            states: Dict[int, object] = {}
            for rank in range(self.core.partitioner.total_ranks):
                state = self.scenario.build_state(
                    self.core.grids[rank], self.config, rng
                )
                if rank in self.owned:
                    states[rank] = state
            self.members[member] = {
                "states": states, "time": 0.0, "step": 0,
            }
            self.history[member] = []

    # -- per-rank conservation partials (bit-identical summands of the
    # -- engine's global_integral/tracer_integral/max_wind folds) -------
    def _mass_partial(self, rank: int) -> float:
        h = self.h
        field = self.core.states[rank].delp
        area = self.core.grids[rank].area[h:-h, h:-h]
        return float(np.sum(field[h:-h, h:-h] * area[..., None]))

    def _tracer_partial(self, rank: int) -> Optional[float]:
        if not self.config.n_tracers:
            return None
        h = self.h
        state = self.core.states[rank]
        area = self.core.grids[rank].area[h:-h, h:-h]
        return float(
            np.sum(
                state.tracers[0][h:-h, h:-h]
                * state.delp[h:-h, h:-h]
                * area[..., None]
            )
        )

    def _wind_partial(self, rank: int) -> float:
        h = self.h
        state = self.core.states[rank]
        return float(
            np.max(np.hypot(state.u[h:-h, h:-h], state.v[h:-h, h:-h]))
        )

    def _w_partial(self, rank: int) -> float:
        h = self.h
        return float(
            np.max(np.abs(self.core.states[rank].w[h:-h, h:-h]))
        )

    def baselines(self) -> Dict[str, object]:
        out: Dict[str, object] = {"mass0": {}, "tracer0": {}}
        for member in self.spec.member_ids:
            self._activate(member)
            out["mass0"][member] = {
                rank: self._mass_partial(rank) for rank in self.owned
            }
            out["tracer0"][member] = {
                rank: self._tracer_partial(rank) for rank in self.owned
            }
        return out

    # -- state swap (owned ranks only) ----------------------------------
    def _activate(self, member: int) -> None:
        from repro.run.driver import _STATE_FIELDS

        record = self.members[member]
        for rank in self.owned:
            src = record["states"][rank]
            dst = self.core.states[rank]
            for name in _STATE_FIELDS:
                np.copyto(getattr(dst, name), getattr(src, name))
            for src_tr, dst_tr in zip(src.tracers, dst.tracers):
                np.copyto(dst_tr, src_tr)
        self.core.time = record["time"]
        self.core.step_count = record["step"]

    def _store(self, member: int) -> None:
        from repro.run.driver import _STATE_FIELDS

        record = self.members[member]
        for rank in self.owned:
            src = self.core.states[rank]
            dst = record["states"][rank]
            for name in _STATE_FIELDS:
                np.copyto(getattr(dst, name), getattr(src, name))
            for src_tr, dst_tr in zip(src.tracers, dst.tracers):
                np.copyto(dst_tr, src_tr)
        record["time"] = self.core.time
        record["step"] = self.core.step_count

    def step(self, n: int) -> None:
        for _ in range(int(n)):
            for member in self.spec.member_ids:
                self._activate(member)
                self.core.step_dynamics()
                if self.spec.diagnostics:
                    self.history[member].append({
                        "time": self.core.time,
                        "step": self.core.step_count,
                        "mass": {r: self._mass_partial(r)
                                 for r in self.owned},
                        "max_wind": {r: self._wind_partial(r)
                                     for r in self.owned},
                        "max_w": {r: self._w_partial(r)
                                  for r in self.owned},
                        "tracer": {r: self._tracer_partial(r)
                                   for r in self.owned},
                    })
                self._store(member)

    def collect(self) -> Dict[str, object]:
        from repro.run.driver import _STATE_FIELDS

        members: Dict[int, object] = {}
        for member, record in self.members.items():
            states = {}
            for rank in self.owned:
                fields = record["states"][rank]
                states[rank] = {
                    **{name: getattr(fields, name)
                       for name in _STATE_FIELDS},
                    "tracers": list(fields.tracers),
                }
            members[member] = {
                "time": record["time"],
                "step": record["step"],
                "states": states,
                "history": self.history[member],
            }
        return {"owned": self.owned, "members": members}

    def close(self) -> None:
        self.core.finalize(strict=False)
        self.core.executor.shutdown()


def _worker_main(spec: WorkerSpec, owned: Tuple[int, ...], n_ranks: int,
                 shm_name: str, n_slots: int, slot_bytes: int, cond,
                 conn) -> None:
    """Entry point of one rank worker process (module-level so the spawn
    start method can pickle it). Protocol over ``conn``: parent sends
    ``(command, arg)``; worker replies ``("ok"|"ready", payload)`` or
    ``("error", (type, message, traceback))``."""
    transport = None
    harness = None
    try:
        from repro.runtime import compile_cache as _compile_cache
        from repro.runtime import jit as _jit
        from repro.runtime.pool import get_pool

        tracer = _obs.get_tracer()
        tracer.enabled = bool(spec.trace)
        tracer.reset()
        _ranks.reset_metrics()
        cache0 = _compile_cache.stats()
        jit0 = _jit.stats()
        transport = ShmTransport.attach(shm_name, n_slots, slot_bytes, cond)
        comm = ProcComm(transport, size=n_ranks, owned_ranks=owned)
        harness = _WorkerHarness(spec, owned, comm)
        conn.send(("ready", harness.baselines()))
        while True:
            command, arg = conn.recv()
            if command == "step":
                harness.step(arg)
                conn.send(("ok", None))
            elif command == "collect":
                conn.send(("ok", harness.collect()))
            elif command == "report":
                sent = comm.message_sizes()
                conn.send(("ok", {
                    "owned": owned,
                    "spans": tracer.summary() if tracer.enabled else None,
                    "ranks": _ranks.summary(),
                    "pool": get_pool().stats(),
                    "compile_cache": _numeric_delta(
                        _compile_cache.stats(), cache0
                    ),
                    "jit": _numeric_delta(_jit.stats(), jit0),
                    "comm": {
                        "messages": len(sent),
                        "bytes": int(sum(sent)),
                    },
                }))
            elif command == "close":
                harness.close()
                harness = None
                conn.send(("ok", None))
                break
            else:
                conn.send(("error", (
                    "ValueError", f"unknown command {command!r}", "",
                )))
    except BaseException as exc:  # noqa: BLE001 — shipped to the parent
        try:
            conn.send(("error", (
                type(exc).__name__, str(exc), traceback.format_exc(),
            )))
        except Exception:
            pass
    finally:
        try:
            if harness is not None:
                harness.close()
        except Exception:
            pass
        if transport is not None:
            transport.close()
        conn.close()


# ---------------------------------------------------------------------------
# parent-side executor
# ---------------------------------------------------------------------------

_LOCK = threading.Lock()
_METRICS: Dict[str, float] = {
    "launches": 0,
    "workers": 0,
    "ranks": 0,
    "steps": 0,
    "worker_reports_merged": 0,
    "messages": 0,
    "bytes": 0,
}


def summary() -> Dict[str, object]:
    """Process-executor counters for the obs report footer."""
    with _LOCK:
        return dict(_METRICS)


def reset_metrics() -> None:
    with _LOCK:
        for key in _METRICS:
            _METRICS[key] = 0


def fold_worker_reports(payloads: Sequence[Dict[str, object]]) -> None:
    """Merge worker report payloads into the parent's obs/runtime
    subsystems (span trees, executor/overlap counters, pool and
    compile-cache/jit accounting) so the report footer covers the whole
    process tree, not just the parent."""
    from repro.runtime import compile_cache as _compile_cache
    from repro.runtime import jit as _jit
    from repro.runtime.pool import get_pool

    tracer = _obs.get_tracer()
    for payload in payloads:
        if not payload:
            continue
        spans = payload.get("spans")
        if spans:
            tracer.merge(spans)
        _ranks.merge_summary(payload.get("ranks") or {})
        get_pool().merge_stats(payload.get("pool") or {})
        _compile_cache.merge_stats(payload.get("compile_cache") or {})
        _jit.merge_stats(payload.get("jit") or {})
        comm = payload.get("comm") or {}
        with _LOCK:
            _METRICS["worker_reports_merged"] += 1
            _METRICS["messages"] += int(comm.get("messages", 0))
            _METRICS["bytes"] += int(comm.get("bytes", 0))


def _default_start_method() -> str:
    import multiprocessing

    method = os.environ.get("REPRO_PROC_START")
    if method:
        return method
    # fork is preferred: workers inherit the scenario registry, warm
    # in-memory caches and the import graph, so launch cost stays low
    return ("fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn")


class ProcessRankExecutor:
    """Parent handle on a fleet of rank worker processes.

    ``workers=W`` distributes the ``n_ranks`` ranks over W processes in
    contiguous blocks (W=1 degenerates to one replica stepping all
    ranks on threads; W=n_ranks is one process per rank). The lifecycle
    is ``launch → step* → collect/collect_reports → close``; every
    command fans out to all workers and gathers their replies, raising
    the lowest-worker error deterministically.
    """

    def __init__(self, workers: Optional[int] = None,
                 start_method: Optional[str] = None,
                 command_timeout: float = 600.0):
        self.workers = workers
        self.start_method = start_method or _default_start_method()
        self.command_timeout = command_timeout
        self.transport: Optional[ShmTransport] = None
        self._procs: List[object] = []
        self._conns: List[object] = []
        self._blocks: List[Tuple[int, ...]] = []
        self.n_ranks = 0

    @property
    def parallel(self) -> bool:
        return True

    def launch(self, spec: WorkerSpec, n_ranks: int, slot_bytes: int,
               n_slots: int) -> List[Dict[str, object]]:
        """Create the transport, start the workers and wait for every
        ``ready`` handshake; returns the per-worker baseline payloads."""
        import multiprocessing

        if self._procs:
            raise RuntimeError("executor already launched")
        ctx = multiprocessing.get_context(self.start_method)
        width = min(self.workers or n_ranks, n_ranks)
        self.n_ranks = n_ranks
        self._blocks = [
            tuple(int(r) for r in block)
            for block in np.array_split(np.arange(n_ranks), width)
            if len(block)
        ]
        self.transport = ShmTransport.create(n_slots, slot_bytes, ctx)
        try:
            for index, block in enumerate(self._blocks):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(spec, block, n_ranks, self.transport.name,
                          n_slots, slot_bytes, self.transport.cond,
                          child_conn),
                    name=f"repro-rank-worker-{index}",
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._procs.append(proc)
                self._conns.append(parent_conn)
            ready = [self._recv(i) for i in range(len(self._procs))]
        except BaseException:
            self.close()
            raise
        with _LOCK:
            _METRICS["launches"] += 1
            _METRICS["workers"] = max(
                _METRICS["workers"], len(self._procs)
            )
            _METRICS["ranks"] = max(_METRICS["ranks"], n_ranks)
        return ready

    def _recv(self, index: int):
        conn, proc = self._conns[index], self._procs[index]
        deadline = time.monotonic() + self.command_timeout
        while not conn.poll(1.0):
            if not proc.is_alive() and not conn.poll(0):
                raise RuntimeError(
                    f"rank worker {index} (ranks {self._blocks[index]}) "
                    f"died with exit code {proc.exitcode}"
                )
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"rank worker {index} unresponsive after "
                    f"{self.command_timeout:.0f}s"
                )
        try:
            status, payload = conn.recv()
        except EOFError:
            raise RuntimeError(
                f"rank worker {index} closed its pipe unexpectedly "
                f"(exit code {proc.exitcode})"
            ) from None
        if status == "error":
            kind, message, tb = payload
            raise RuntimeError(
                f"rank worker {index} (ranks {self._blocks[index]}) "
                f"failed with {kind}: {message}\n{tb}"
            )
        return payload

    def _broadcast(self, command: str, arg=None) -> List[object]:
        for conn in self._conns:
            conn.send((command, arg))
        return [self._recv(i) for i in range(len(self._conns))]

    def step(self, n: int) -> None:
        self._broadcast("step", int(n))
        with _LOCK:
            _METRICS["steps"] += int(n)

    def collect(self) -> List[Dict[str, object]]:
        return self._broadcast("collect")

    def collect_reports(self) -> List[Dict[str, object]]:
        return self._broadcast("report")

    def close(self) -> None:
        """Shut the fleet down (idempotent); leftover in-flight messages
        are reported like ``LocalComm.finalize`` reports orphans."""
        for conn in self._conns:
            try:
                conn.send(("close", None))
            except (OSError, ValueError):
                pass
        for index, proc in enumerate(self._procs):
            try:
                self._recv(index)
            except Exception:
                pass
            proc.join(timeout=10.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        self._procs = []
        self._conns = []
        if self.transport is not None:
            leftovers = self.transport.pending_keys()
            if leftovers:
                warnings.warn(
                    f"{len(leftovers)} message(s) left in the "
                    f"shared-memory mailbox at shutdown: {leftovers}",
                    OrphanedMessagesWarning,
                    stacklevel=2,
                )
            self.transport.close()
            self.transport = None

    def shutdown(self) -> None:
        self.close()

    def __repr__(self) -> str:
        width = len(self._blocks) or (self.workers or 0)
        return (
            f"ProcessRankExecutor(workers={width}, ranks={self.n_ranks}, "
            f"start={self.start_method}, transport=shm)"
        )
