"""SPMD rank execution on a thread pool (the strong-scaling substrate).

The paper's scaling results (Fig. 11) rest on ranks advancing
*concurrently*, with halo communication overlapped against interior
compute. This module provides the executor that turns the repo's
simulated ranks into actually parallel ones:

- :class:`RankExecutor` runs one thread per rank (SPMD), with a
  semaphore capping how many ranks *compute* at once. One thread per
  rank is mandatory — a rank blocked in a collective receive must not
  occupy the slot another rank needs to post the matching send — so the
  cap is enforced by slot handover, not by pool width.
- :func:`io_wait` releases the calling rank's compute slot for the
  duration of a blocking communicator wait and reacquires it afterwards.
  Waiting never consumes compute capacity; this is what makes the
  executor deadlock-free at any ``workers`` setting.
- Overlap accounting: the halo updater reports, per split exchange, how
  long the communication window was covered by interior compute
  (*hidden*) versus how long the rank still blocked (*exposed*).
  :func:`summary` derives the overlap efficiency shown in the obs report
  footer.

Configuration: ``REPRO_RANKS`` sets the default executor's worker cap
(default 1, i.e. the original sequential path — zero behavior change);
``REPRO_OVERLAP=0`` disables compute/communication overlap in the SPMD
dyncore path without disabling threading itself.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional

from repro.obs import tracer as _obs

__all__ = [
    "RankExecutor",
    "current_rank",
    "get_executor",
    "configure",
    "io_wait",
    "merge_summary",
    "overlap_enabled",
    "record_overlap",
    "reset_metrics",
    "summary",
]

#: per-thread reference to the executor's compute-slot semaphore, set for
#: the duration of a rank task so ``io_wait`` can find it
_tls = threading.local()

_LOCK = threading.Lock()
_METRICS: Dict[str, float] = {
    "workers": 0,
    "sections": 0,
    "tasks": 0,
    "section_seconds": 0.0,
    "exchanges": 0,
    "hidden_seconds": 0.0,
    "exposed_seconds": 0.0,
}


def current_rank() -> Optional[int]:
    """The rank whose SPMD body the calling thread is executing, or
    ``None`` outside a parallel rank task (sequential path, main thread).

    Lets per-buffer and per-message diagnostics (the ``repro.lint``
    R4xx lifetime traces) name the owning rank without threading it
    through every call signature.
    """
    return getattr(_tls, "rank", None)


def overlap_enabled() -> bool:
    """Whether the SPMD dyncore overlaps interior compute with in-flight
    halo messages (``REPRO_OVERLAP``, default on)."""
    return os.environ.get("REPRO_OVERLAP", "1").strip().lower() not in (
        "0", "false", "no", "off"
    )


@contextmanager
def io_wait():
    """Hand back the compute slot while blocked on communication.

    No-op outside a rank task. Inside one, the surrounding executor's
    semaphore slot is released on entry and reacquired on exit, so a
    rank blocked in ``Request.wait`` never starves the ranks whose
    sends it is waiting for.
    """
    sem = getattr(_tls, "slot", None)
    if sem is None:
        yield
        return
    sem.release()
    try:
        yield
    finally:
        sem.acquire()


def record_overlap(hidden_seconds: float, exposed_seconds: float) -> None:
    """Account one split halo exchange: ``hidden`` is the communication
    window covered by interior compute, ``exposed`` the time the rank
    still blocked in waits."""
    with _LOCK:
        _METRICS["exchanges"] += 1
        _METRICS["hidden_seconds"] += hidden_seconds
        _METRICS["exposed_seconds"] += exposed_seconds


def reset_metrics() -> None:
    with _LOCK:
        for key in _METRICS:
            _METRICS[key] = 0


def merge_summary(data: Dict[str, object]) -> None:
    """Fold a worker process's executor/overlap counters into this
    process's metrics (the process-based rank executor ships each
    worker's :func:`summary` back over the result pipe). Counters add;
    ``workers`` reports the widest executor seen."""
    with _LOCK:
        _METRICS["workers"] = max(
            _METRICS["workers"], int(data.get("workers", 0) or 0)
        )
        for key in (
            "sections", "tasks", "section_seconds",
            "exchanges", "hidden_seconds", "exposed_seconds",
        ):
            _METRICS[key] += data.get(key, 0) or 0


def summary() -> Dict[str, object]:
    """Executor and overlap counters for the obs report footer.

    ``overlap_efficiency`` is hidden / (hidden + exposed) — the fraction
    of the measured communication cost covered by compute — or ``None``
    when no split exchange ran.
    """
    with _LOCK:
        out: Dict[str, object] = dict(_METRICS)
    covered = out["hidden_seconds"] + out["exposed_seconds"]
    out["overlap_efficiency"] = (
        out["hidden_seconds"] / covered if covered > 0 else None
    )
    return out


class RankExecutor:
    """Runs per-rank SPMD bodies, one thread per rank.

    ``workers`` caps concurrent *compute* (waits release their slot via
    :func:`io_wait`); ``workers == 1`` is the sequential path — rank
    bodies run inline on the calling thread in rank order, bit-identical
    to the pre-threading code.
    """

    def __init__(self, workers: Optional[int] = None):
        if workers is None:
            workers = int(os.environ.get("REPRO_RANKS", "1") or "1")
        self.workers = max(1, int(workers))
        self._sem = threading.Semaphore(self.workers)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_width = 0
        self._lock = threading.Lock()

    @property
    def parallel(self) -> bool:
        return self.workers > 1

    def _ensure_pool(self, n_ranks: int) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None or self._pool_width < n_ranks:
                if self._pool is not None:
                    self._pool.shutdown(wait=True)
                self._pool = ThreadPoolExecutor(
                    max_workers=n_ranks, thread_name_prefix="repro-rank"
                )
                self._pool_width = n_ranks
            return self._pool

    def run(self, fn: Callable[[int], object], n_ranks: int,
            label: str = "ranks") -> List[object]:
        """Run ``fn(rank)`` for every rank; a barrier on completion.

        Parallel failures are collected after all ranks have finished
        (or errored), and the lowest-rank exception is re-raised — a
        deterministic choice, and it preserves ``RecoverableFault``
        types for the dyncore retry loop.
        """
        if n_ranks <= 1 or not self.parallel:
            return [fn(r) for r in range(n_ranks)]
        pool = self._ensure_pool(n_ranks)
        tracer = _obs.get_tracer()
        parent = tracer.current if tracer.enabled else None
        t0 = time.perf_counter()
        futures = [
            pool.submit(self._run_rank, fn, rank, tracer, parent)
            for rank in range(n_ranks)
        ]
        results: List[object] = [None] * n_ranks
        errors: List[tuple] = []
        for rank, fut in enumerate(futures):
            try:
                results[rank] = fut.result()
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                errors.append((rank, exc))
        elapsed = time.perf_counter() - t0
        with _LOCK:
            _METRICS["workers"] = self.workers
            _METRICS["sections"] += 1
            _METRICS["tasks"] += n_ranks
            _METRICS["section_seconds"] += elapsed
        if errors:
            raise errors[0][1]
        return results

    def _run_rank(self, fn, rank, tracer, parent):
        _tls.slot = self._sem
        _tls.rank = rank
        self._sem.acquire()
        try:
            if parent is not None:
                with tracer.thread_context(parent):
                    with tracer.span(f"rank[{rank}]"):
                        return fn(rank)
            return fn(rank)
        finally:
            self._sem.release()
            _tls.slot = None
            _tls.rank = None

    def shutdown(self) -> None:
        """Join the worker threads (idempotent)."""
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
                self._pool_width = 0

    def __repr__(self) -> str:
        mode = "parallel" if self.parallel else "sequential"
        return f"RankExecutor(workers={self.workers}, {mode})"


_DEFAULT: Optional[RankExecutor] = None


def get_executor() -> RankExecutor:
    """The process-wide default executor (worker cap from ``REPRO_RANKS``,
    default 1 → sequential)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = RankExecutor()
    return _DEFAULT


def configure(workers: int) -> RankExecutor:
    """Replace the default executor with one capped at ``workers``."""
    global _DEFAULT
    if _DEFAULT is not None:
        _DEFAULT.shutdown()
    _DEFAULT = RankExecutor(workers)
    return _DEFAULT
