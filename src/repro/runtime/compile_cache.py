"""Compiled-program cache: content hash of an expanded SDFG → CompiledSDFG.

The tuning loops compile the same candidate many times: ``tune_cutout``
replays transformation sequences onto fresh SDFG copies, transfer tuning
re-times cutouts per pattern, and orchestration recompiles after identical
rebuilds. Two SDFG *objects* with equal content generate equal programs,
so compilation is memoized on a canonical serialization of the expanded
graph (array descriptors, kernel schedules/sections/statements, control
flow, tasklets; callbacks by object identity — the cached program pins
those objects, so ids cannot be recycled while the entry lives).

Counters (hits, misses, bytes saved by not re-allocating the program's
transient/local working set) are surfaced through ``repro.obs`` spans and
the report footer. ``REPRO_COMPILE_CACHE=0`` disables the cache;
``REPRO_COMPILE_CACHE_SIZE`` bounds it (LRU, default 256 programs).
"""

from __future__ import annotations

import hashlib
import os
from collections import OrderedDict
from typing import Dict

from repro.obs import tracer as _obs
from repro.resilience import chaos as _chaos
from repro.resilience.errors import InjectedCompileError

__all__ = ["get_or_compile", "cache_key", "merge_stats", "stats", "reset"]

_SEP = "\x1f"

_CACHE: "OrderedDict[str, object]" = OrderedDict()
#: per-backend counters, so cross-backend A/B runs report hits/misses per
#: backend instead of a single merged number
_HITS: Dict[str, int] = {}
_MISSES: Dict[str, int] = {}
_BYTES_SAVED = 0

#: backend name → compile entry point (lazy imports; "numpy" is the
#: parent ufunc emission, "compiled" the JIT loop-nest emission)
_BACKENDS = ("numpy", "compiled")


def _enabled() -> bool:
    return os.environ.get("REPRO_COMPILE_CACHE", "1") != "0"


def _max_entries() -> int:
    return int(os.environ.get("REPRO_COMPILE_CACHE_SIZE", "256"))


# ---------------------------------------------------------------------------
# canonical serialization
# ---------------------------------------------------------------------------


def _kernel_repr(kernel) -> str:
    parts = [
        "kernel",
        kernel.label,
        kernel.order,
        repr(kernel.domain),
        repr(kernel.origin),
        repr(kernel.schedule),
        repr(sorted(kernel.local_arrays.items())),
        repr((kernel.bounds.origin, kernel.bounds.tile_shape)),
        repr(sorted(kernel.origins.items())),
        repr(kernel.constituents),
    ]
    for section in kernel.sections:
        parts.append(repr(section.interval))
        for stmt, ext in section.statements:
            parts.append(repr(stmt))
            parts.append(repr(ext))
    return _SEP.join(parts)


def _node_repr(node) -> str:
    from repro.sdfg.nodes import Callback, Kernel, Tasklet

    if isinstance(node, Kernel):
        return _kernel_repr(node)
    if isinstance(node, Tasklet):
        return _SEP.join(
            ["tasklet", node.label, node.code, repr(node.inputs), node.output]
        )
    if isinstance(node, Callback):
        arg_ids = tuple(id(a) for a in node.args)
        kw_ids = tuple(sorted((k, id(v)) for k, v in node.kwargs.items()))
        return _SEP.join(
            ["callback", node.label, str(id(node.func)), repr(arg_ids),
             repr(kw_ids)]
        )
    return _SEP.join(["node", type(node).__name__, node.label])


def cache_key(sdfg, instrument: bool = False, backend: str = "numpy") -> str:
    """Canonical content hash of an expanded SDFG (+ codegen flags).

    The hash is keyed on the emission backend (and, for the compiled
    backend, on everything that changes the generated loop nests: JIT
    engine, thread count, k-block override), so NumPy and compiled plans
    for the same SDFG never collide in the cache."""
    import numpy as np

    from repro.sdfg.codegen import scheduling_enabled

    h = hashlib.sha256()

    def feed(text: str) -> None:
        h.update(text.encode())
        h.update(b"\x1e")

    feed(f"instrument={instrument}")
    feed(f"backend={backend}")
    if backend == "compiled":
        from repro.runtime import jit

        feed(
            f"jit={jit.engine_name()};threads={jit.default_threads()};"
            f"kblock={os.environ.get('REPRO_KBLOCK', '')}"
        )
    feed(f"out_scheduling={scheduling_enabled()}")
    for name, desc in sorted(sdfg.arrays.items()):
        feed(
            f"array{_SEP}{name}{_SEP}{desc.shape!r}{_SEP}"
            f"{np.dtype(desc.dtype).str}{_SEP}{desc.axes}{_SEP}"
            f"{desc.transient}"
        )
    for lp in sdfg.loops:
        feed(f"loop{_SEP}{lp.first}{_SEP}{lp.last}{_SEP}{lp.count}")
    for state in sdfg.states:
        feed(f"state{_SEP}{state.name}{_SEP}{len(state.nodes)}")
        for node in state.nodes:
            feed(_node_repr(node))
    return h.hexdigest()


# ---------------------------------------------------------------------------
# the cache
# ---------------------------------------------------------------------------


def _compile_fn(backend: str):
    if backend == "numpy":
        from repro.sdfg.codegen import compile_sdfg

        return compile_sdfg
    if backend == "compiled":
        from repro.sdfg.codegen_compiled import compile_sdfg_compiled

        return compile_sdfg_compiled
    raise ValueError(
        f"unknown compile backend {backend!r}: expected one of {_BACKENDS}"
    )


def get_or_compile(sdfg, instrument: bool = False, backend: str = "numpy"):
    """Compile an SDFG, reusing a cached program with identical content.

    Returns the same :class:`~repro.sdfg.codegen.CompiledSDFG` object for
    content-equal SDFGs: per-kernel instrumentation counters accumulate
    across users (readers take before/after deltas). ``backend="compiled"``
    compiles through :mod:`repro.sdfg.codegen_compiled` instead; entries
    are keyed per backend.
    """
    global _BYTES_SAVED

    compile_sdfg = _compile_fn(backend)

    if _chaos._PLAN is not None:
        fault = _chaos.consult(
            "compile.fail", sdfg=getattr(sdfg, "name", "?")
        )
        if fault is not None:
            raise InjectedCompileError(
                fault.site, fault.occurrence,
                f"chaos-forced compile failure for SDFG "
                f"{getattr(sdfg, 'name', '?')!r}",
            )

    if not _enabled():
        return compile_sdfg(sdfg, instrument=instrument)

    if any(state.library_nodes for state in sdfg.states):
        sdfg.expand_library_nodes()
    tracer = _obs.get_tracer()
    with tracer.span("sdfg.compile") as sp:
        key = cache_key(sdfg, instrument, backend=backend)
        sp.set("backend", backend)
        program = _CACHE.get(key)
        if program is not None:
            _CACHE.move_to_end(key)
            _HITS[backend] = _HITS.get(backend, 0) + 1
            _BYTES_SAVED += program.runtime_bytes
            sp.add("cache_hits", 1)
            return program
        _MISSES[backend] = _MISSES.get(backend, 0) + 1
        sp.add("cache_misses", 1)
        program = compile_sdfg(sdfg, instrument=instrument)
        _CACHE[key] = program
        while len(_CACHE) > _max_entries():
            _CACHE.popitem(last=False)
        return program


def stats() -> Dict[str, object]:
    hits = sum(_HITS.values())
    misses = sum(_MISSES.values())
    total = hits + misses
    by_backend = {
        b: {"hits": _HITS.get(b, 0), "misses": _MISSES.get(b, 0)}
        for b in sorted(set(_HITS) | set(_MISSES))
    }
    return {
        "hits": hits,
        "misses": misses,
        "entries": len(_CACHE),
        "bytes_saved": _BYTES_SAVED,
        "hit_rate": (hits / total) if total else 0.0,
        "by_backend": by_backend,
    }


def merge_stats(data: Dict[str, object]) -> None:
    """Fold a worker process's counter *deltas* into this process's
    accounting (the process-based rank executor ships each worker's
    stats-since-launch over the result pipe). Hit/miss counters add per
    backend, as does the working-set reuse estimate; ``entries`` counts
    programs cached in *this* process and is untouched — other
    processes' program objects are not shared."""
    global _BYTES_SAVED
    by_backend = data.get("by_backend") or {}
    if by_backend:
        for backend, counts in by_backend.items():
            _HITS[backend] = _HITS.get(backend, 0) + int(
                counts.get("hits", 0)
            )
            _MISSES[backend] = _MISSES.get(backend, 0) + int(
                counts.get("misses", 0)
            )
    else:
        hits, misses = int(data.get("hits", 0)), int(data.get("misses", 0))
        if hits or misses:
            _HITS["merged"] = _HITS.get("merged", 0) + hits
            _MISSES["merged"] = _MISSES.get("merged", 0) + misses
    _BYTES_SAVED += int(data.get("bytes_saved", 0))


def reset(clear: bool = True) -> None:
    """Zero the counters (and optionally drop all cached programs)."""
    global _BYTES_SAVED
    _HITS.clear()
    _MISSES.clear()
    _BYTES_SAVED = 0
    if clear:
        _CACHE.clear()
