"""Shape/dtype-keyed scratch buffer arena (checkout/release).

Compiled SDFG programs, the halo updater and the ``out=`` expression
scheduler draw every temporary array from here instead of allocating.
Buffers are keyed by exact ``(shape, dtype)``; a released buffer is
recycled by the next checkout of the same key, so steady-state execution
of a compiled program performs zero array allocations.

Checked-out buffers contain arbitrary data. Call sites that need defined
contents (kernel locals that are read before written, flagged by the
codegen analysis mirroring the ``repro.lint`` D-rules) zero them
explicitly — everything else is fully overwritten by its producer.

Safety properties:

- two live (checked-out) buffers never alias — a buffer leaves the free
  list on checkout and only returns on release;
- double release raises, as does releasing a view (``arr.base`` set),
  which would let two later checkouts alias;
- nesting is safe: a nested program call simply checks out different
  buffers while the outer call's buffers are live.

``REPRO_BUFFER_POOL=0`` disables recycling (every checkout allocates a
fresh array) as a debugging aid; the accounting still runs.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.resilience import chaos as _chaos

__all__ = ["BufferPool", "CancelScope", "get_pool"]

_Key = Tuple[Tuple[int, ...], str]


class BufferPool:
    """A scratch arena with free lists keyed by (shape, dtype)."""

    def __init__(self, recycle: bool = True):
        self.recycle = recycle
        self._pid = os.getpid()
        self._free: Dict[_Key, List[np.ndarray]] = {}
        self._idle_ids: set = set()
        self._lock = threading.Lock()
        #: per-thread stack of active CancelScopes (cooperative
        #: cancellation support for the serving layer)
        self._tls = threading.local()
        self.scope_reclaims = 0
        #: optional lifetime recorder ``fn(kind, buf, label=None)`` used
        #: by ``repro.lint.runtime_rules.record_buffer_events`` — one
        #: ``is not None`` predicate per checkout when inactive
        self._recorder = None
        # accounting
        self.checkouts = 0
        self.reuse_hits = 0
        self.allocations = 0
        self.allocated_bytes = 0
        self.alloc_bytes_avoided = 0
        self.live_bytes = 0
        self.idle_bytes = 0
        self.high_water_bytes = 0

    # ------------------------------------------------------------------
    def set_recorder(self, recorder):
        """Install (or with ``None`` remove) a lifetime-event recorder;
        returns the previous one so recorders nest."""
        previous = self._recorder
        self._recorder = recorder
        return previous

    def note(self, kind: str, buf: np.ndarray, label=None) -> None:
        """Report an external lifetime event (``use``/``bind``) on a
        buffer to the active recorder, if any. No-op otherwise."""
        if self._recorder is not None:
            self._recorder(kind, buf, label)

    @staticmethod
    def _key(shape, dtype) -> _Key:
        return (tuple(shape), np.dtype(dtype).str)

    # ------------------------------------------------------------------
    # cooperative cancellation
    # ------------------------------------------------------------------
    def cancel_scope(self, label: str = "") -> "CancelScope":
        """A context manager that returns still-live buffers checked out
        by the **current thread** inside the scope back to the arena if
        the scope exits with an exception.

        This is the serving layer's "no wedged workers" guarantee: a
        request cancelled (deadline exhausted, fault mid-kernel) between
        a ``checkout`` and its matching ``release`` would otherwise leak
        that buffer from the arena for the worker's whole lifetime. A
        clean exit releases nothing — buffers intentionally retained
        past the scope stay live. Only checkouts made on the entering
        thread are tracked, so rank-executor worker threads running
        under a parallel executor are not covered.
        """
        return CancelScope(self, label)

    def _scope_stack(self) -> List["CancelScope"]:
        stack = getattr(self._tls, "scopes", None)
        if stack is None:
            stack = self._tls.scopes = []
        return stack

    def _track(self, buf: np.ndarray) -> None:
        stack = getattr(self._tls, "scopes", None)
        if stack:
            stack[-1]._live[id(buf)] = buf

    def _untrack(self, buf: np.ndarray) -> None:
        stack = getattr(self._tls, "scopes", None)
        if stack:
            key = id(buf)
            for scope in reversed(stack):
                if scope._live.pop(key, None) is not None:
                    return

    def checkout(self, shape, dtype=np.float64) -> np.ndarray:
        """Return a buffer of exactly ``shape``/``dtype`` (contents
        arbitrary)."""
        key = self._key(shape, dtype)
        with self._lock:
            self.checkouts += 1
            free = self._free.get(key)
            if self.recycle and free:
                buf = free.pop()
                self._idle_ids.discard(id(buf))
                self.reuse_hits += 1
                self.alloc_bytes_avoided += buf.nbytes
                self.idle_bytes -= buf.nbytes
                self.live_bytes += buf.nbytes
                if _chaos._PLAN is not None:
                    _chaos.maybe_poison(buf)
                if self._recorder is not None:
                    self._recorder("acquire", buf, None)
                self._track(buf)
                return buf
        buf = np.empty(shape, dtype=dtype)
        with self._lock:
            self.allocations += 1
            self.allocated_bytes += buf.nbytes
            self.live_bytes += buf.nbytes
            self.high_water_bytes = max(
                self.high_water_bytes, self.live_bytes + self.idle_bytes
            )
        if _chaos._PLAN is not None:
            _chaos.maybe_poison(buf)
        if self._recorder is not None:
            self._recorder("acquire", buf, None)
        self._track(buf)
        return buf

    def release(self, buf: np.ndarray) -> None:
        """Return a buffer to the arena for reuse."""
        if buf.base is not None:
            raise ValueError(
                "cannot release a view: later checkouts would alias it"
            )
        key = self._key(buf.shape, buf.dtype)
        with self._lock:
            if id(buf) in self._idle_ids:
                raise ValueError("buffer released twice")
            self._idle_ids.add(id(buf))
            self._free.setdefault(key, []).append(buf)
            self.live_bytes -= buf.nbytes
            self.idle_bytes += buf.nbytes
            self.high_water_bytes = max(
                self.high_water_bytes, self.live_bytes + self.idle_bytes
            )
        if self._recorder is not None:
            self._recorder("release", buf, None)
        self._untrack(buf)

    def checkout_many(
        self, specs: Sequence[Tuple[Tuple[int, ...], np.dtype]]
    ) -> List[np.ndarray]:
        return [self.checkout(shape, dtype) for shape, dtype in specs]

    def release_many(self, bufs: Sequence[np.ndarray]) -> None:
        for buf in bufs:
            self.release(buf)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        return {
            "checkouts": self.checkouts,
            "reuse_hits": self.reuse_hits,
            "allocations": self.allocations,
            "allocated_bytes": self.allocated_bytes,
            "alloc_bytes_avoided": self.alloc_bytes_avoided,
            "live_bytes": self.live_bytes,
            "idle_bytes": self.idle_bytes,
            "high_water_bytes": self.high_water_bytes,
            "scope_reclaims": self.scope_reclaims,
        }

    def clear(self) -> None:
        """Drop all idle buffers (live checkouts are unaffected)."""
        with self._lock:
            self._free.clear()
            self._idle_ids.clear()
            self.idle_bytes = 0

    # ------------------------------------------------------------------
    # fork safety
    # ------------------------------------------------------------------
    def _reset_after_fork(self) -> None:
        """Give a forked child a clean arena.

        The child inherits the parent's free lists, stats and — if the
        fork happened while another thread held it — a permanently-locked
        ``threading.Lock``. Everything is replaced: a fresh lock, empty
        free lists and zeroed accounting, so the child can neither
        deadlock on the inherited lock nor double-free (or alias) buffers
        the parent still considers checked out. Inherited buffer
        references the child may still hold are copy-on-write private to
        it; releasing one simply donates it to the child's own arena.
        """
        self._pid = os.getpid()
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._free = {}
        self._idle_ids = set()
        self._recorder = None
        self.scope_reclaims = 0
        self.checkouts = 0
        self.reuse_hits = 0
        self.allocations = 0
        self.allocated_bytes = 0
        self.alloc_bytes_avoided = 0
        self.live_bytes = 0
        self.idle_bytes = 0
        self.high_water_bytes = 0

    def merge_stats(self, data: Dict[str, int]) -> None:
        """Fold a worker process's pool counters into this pool's
        accounting (the process-based rank executor ships them over the
        result pipe so the report footer stays truthful). Additive
        counters sum; ``high_water_bytes`` takes the max — arenas in
        different processes are separate address spaces, so their peaks
        do not stack. Transient gauges (live/idle bytes) are per-process
        and are not merged."""
        with self._lock:
            for key in (
                "checkouts", "reuse_hits", "allocations",
                "allocated_bytes", "alloc_bytes_avoided", "scope_reclaims",
            ):
                setattr(self, key, getattr(self, key) + int(data.get(key, 0)))
            self.high_water_bytes = max(
                self.high_water_bytes, int(data.get("high_water_bytes", 0))
            )


class CancelScope:
    """See :meth:`BufferPool.cancel_scope`. ``reclaimed`` (valid after
    exit) counts the buffers returned to the arena."""

    __slots__ = ("_pool", "label", "_live", "reclaimed")

    def __init__(self, pool: BufferPool, label: str = ""):
        self._pool = pool
        self.label = label
        self._live: Dict[int, np.ndarray] = {}
        self.reclaimed = 0

    def __enter__(self) -> "CancelScope":
        self._pool._scope_stack().append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        stack = self._pool._scope_stack()
        if not stack or stack[-1] is not self:
            raise RuntimeError("cancel scopes must exit LIFO")
        stack.pop()
        leftovers = list(self._live.values())
        self._live.clear()
        if exc_type is None:
            # clean exit: retained buffers are the caller's business,
            # but an enclosing scope must keep covering them
            for buf in leftovers:
                self._pool._track(buf)
            return False
        for buf in leftovers:
            self._pool.release(buf)
        self.reclaimed = len(leftovers)
        if leftovers:
            with self._pool._lock:
                self._pool.scope_reclaims += self.reclaimed
        return False


_POOL: BufferPool = BufferPool(
    recycle=os.environ.get("REPRO_BUFFER_POOL", "1") != "0"
)


def _reset_default_pool_after_fork() -> None:
    _POOL._reset_after_fork()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reset_default_pool_after_fork)


def get_pool() -> BufferPool:
    """The process-wide default arena used by compiled programs.

    Fork-safe: a child that somehow bypassed the ``register_at_fork``
    hook (exotic platforms, embedded interpreters) is still caught by the
    pid guard and gets a clean arena on first access.
    """
    if _POOL._pid != os.getpid():
        _POOL._reset_after_fork()
    return _POOL
