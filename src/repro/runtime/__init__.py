"""Runtime memory subsystem: pooled scratch buffers and compiled-program
caching for the zero-allocation hot path.

The paper's measured per-kernel times (Fig. 10) are meaningful only if
they reflect array traffic, not allocator churn. This package removes the
two allocation sources the generated NumPy programs had:

- :mod:`repro.runtime.pool` — a shape/dtype-keyed scratch arena. Compiled
  programs check out every temporary (expression scratch, kernel-local
  arrays, SDFG transients) per call and release them afterwards, so
  steady-state execution performs no array allocation.
- :mod:`repro.runtime.compile_cache` — a content-hash cache of expanded
  SDFGs → :class:`~repro.sdfg.codegen.CompiledSDFG`, so autotuning and
  transfer tuning stop recompiling identical candidate configurations.
- :mod:`repro.runtime.ranks` — the SPMD rank executor (PR 5): one thread
  per simulated rank with a compute-slot cap, plus the halo overlap
  accounting behind the obs footer's efficiency line.
- :mod:`repro.runtime.jit` — JIT engine probing + compilation for the
  ``compiled`` backend (PR 8), with compile-count/wall-time counters so
  reports attribute warmup cost separately from steady-state kernels.
- :mod:`repro.runtime.procs` — the process-based rank executor (PR 10):
  worker processes own contiguous rank blocks and exchange halos over a
  shared-memory mailbox; imported lazily (only runs that ask for
  ``executor="processes"`` pay for it).

:func:`runtime_summary` aggregates the counter sets for the obs report.
"""

from __future__ import annotations

from typing import Dict

from repro.runtime.pool import BufferPool, CancelScope, get_pool
from repro.runtime import compile_cache
from repro.runtime import jit
from repro.runtime import ranks
from repro.runtime.ranks import RankExecutor

__all__ = [
    "BufferPool", "CancelScope", "get_pool", "compile_cache", "jit",
    "ranks",
    "RankExecutor", "runtime_summary",
]


def runtime_summary() -> Dict[str, Dict[str, object]]:
    """Pool, compile-cache, JIT and rank-executor counters for reports
    (zero-filled dicts when the subsystems have not been exercised)."""
    import sys

    out = {
        "pool": get_pool().stats(),
        "compile_cache": compile_cache.stats(),
        "jit": jit.stats(),
        "ranks": ranks.summary(),
    }
    # the process executor is imported lazily; only report it when some
    # run actually loaded it
    procs = sys.modules.get("repro.runtime.procs")
    if procs is not None:
        out["procs"] = procs.summary()
    return out
