"""JIT engine abstraction for the compiled CPU backend.

The ``compiled`` backend (:mod:`repro.sdfg.codegen_compiled`) lowers each
fused SDFG kernel to a scalar loop nest and needs *some* way to run that
nest at machine speed. Three engines are supported, probed in order:

- ``numba`` — the loop nest is emitted as Python source and wrapped in
  ``numba.njit(fastmath=False)`` (``parallel=True`` + ``prange`` when more
  than one thread is configured). Preferred when numba is importable.
- ``cgen`` — the loop nest is emitted as C99, compiled with the system C
  compiler (``-O3 -shared -fPIC -ffp-contract=off``, never ``-ffast-math``)
  and loaded through :mod:`ctypes`. Chosen when numba is absent but a C
  compiler exists, so the backend works on a bare Python toolchain.
- ``none`` — neither is available; the backend registry degrades to the
  ``dataflow`` backend with a single warning (see
  :mod:`repro.dsl.backend_compiled`).

``REPRO_JIT=numba|cgen|pyloops|none`` forces an engine (``pyloops``
executes the generated Python loop nest uninterpreted — orders of
magnitude slower, but it validates the emitted semantics without any
toolchain and is what the test suite uses to cross-check emitters).

Shared objects are cached on disk under ``REPRO_JIT_DIR`` (default
``$TMPDIR/repro-jit-<uid>``) keyed by a content hash of the C source and
compiler flags, so warm processes skip compilation entirely. Compile
counts and wall time are surfaced via :func:`stats` into the obs report
footer — the "JIT warmup" attribution the paper's productivity argument
needs to be honest about.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import re
import shutil
import subprocess
import tempfile
import threading
import time
import warnings
from typing import Dict, List, Optional

__all__ = [
    "JitCacheWarning",
    "JitUnavailableError",
    "JitCompileError",
    "engine_name",
    "available",
    "compile_c",
    "compile_py",
    "default_threads",
    "jit_dir",
    "merge_stats",
    "stats",
    "sweep_stale_tmps",
    "reset",
]

_ENGINES = ("numba", "cgen", "pyloops", "none")

_LOCK = threading.Lock()
_ENGINE: Optional[str] = None
_CC: Optional[str] = None
_OPENMP: Optional[bool] = None
_COMPILES = 0
_COMPILE_SECONDS = 0.0
_DISK_HITS = 0
_CACHE_REPAIRS = 0
_WARNED_CORRUPT = False
#: pins loaded shared libraries (and numba dispatchers) for the process
_LOADED: Dict[str, object] = {}


class JitCacheWarning(RuntimeWarning):
    """A cached shared object under ``REPRO_JIT_DIR`` was damaged and
    has been rebuilt in place."""


def _warn_corrupt_cache(sopath: str, exc: BaseException) -> None:
    """Count a cache repair; warn only once per process (a shared cache
    directory full of stale objects would otherwise spam every run)."""
    global _CACHE_REPAIRS, _WARNED_CORRUPT
    with _LOCK:
        _CACHE_REPAIRS += 1
        first = not _WARNED_CORRUPT
        _WARNED_CORRUPT = True
    if first:
        warnings.warn(
            f"corrupt JIT disk-cache entry {sopath!r} "
            f"({type(exc).__name__}: {exc}); rebuilding in place — "
            f"further repairs this process will be silent",
            JitCacheWarning,
            stacklevel=3,
        )


class JitUnavailableError(RuntimeError):
    """No usable JIT engine (or the forced one is not installed)."""


class JitCompileError(RuntimeError):
    """The C compiler rejected generated source (a codegen bug)."""


def _numba_available() -> bool:
    try:
        import numba  # noqa: F401

        return True
    except Exception:
        return False


def _find_cc() -> Optional[str]:
    forced = os.environ.get("REPRO_CC")
    if forced:
        return forced if shutil.which(forced) else None
    for cand in ("cc", "gcc", "clang"):
        path = shutil.which(cand)
        if path:
            return path
    return None


def engine_name() -> str:
    """Resolve (once) the active engine name.

    ``REPRO_JIT`` forces a choice; otherwise numba is preferred, then a C
    compiler, then ``"none"``. A forced engine whose toolchain is missing
    still resolves — :func:`compile_c`/:func:`compile_py` raise
    :class:`JitUnavailableError` at use, which the backend's degradation
    path turns into a warn-once fallback.
    """
    global _ENGINE
    with _LOCK:
        if _ENGINE is None:
            forced = os.environ.get("REPRO_JIT", "").strip().lower()
            if forced:
                if forced not in _ENGINES:
                    raise ValueError(
                        f"REPRO_JIT={forced!r}: expected one of {_ENGINES}"
                    )
                _ENGINE = forced
            elif _numba_available():
                _ENGINE = "numba"
            elif _find_cc() is not None:
                _ENGINE = "cgen"
            else:
                _ENGINE = "none"
        return _ENGINE


def available() -> bool:
    """Whether a usable engine resolved (i.e. not ``"none"``)."""
    return engine_name() != "none"


def default_threads() -> int:
    """Threads per rank for compiled loop nests (``REPRO_THREADS``)."""
    env = os.environ.get("REPRO_THREADS")
    if env:
        return max(1, int(env))
    return max(1, min(os.cpu_count() or 1, 8))


def jit_dir() -> str:
    """On-disk cache directory for compiled shared objects.

    The first open per process also sweeps stale ``*.so.tmp<pid>``
    leftovers from builds that died between the tmp-write and the atomic
    rename (see :func:`sweep_stale_tmps`).
    """
    global _TMP_SWEPT
    path = os.environ.get("REPRO_JIT_DIR")
    if not path:
        uid = getattr(os, "getuid", lambda: 0)()
        path = os.path.join(tempfile.gettempdir(), f"repro-jit-{uid}")
    os.makedirs(path, exist_ok=True)
    if not _TMP_SWEPT:
        _TMP_SWEPT = True
        sweep_stale_tmps(path)
    return path


#: one stale-tmp sweep per process, on first cache open
_TMP_SWEPT = False

_TMP_PATTERN = re.compile(r"\.so\.tmp(\d+)$")


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True
    return True


def sweep_stale_tmps(path: str, max_age_seconds: float = 600.0) -> List[str]:
    """Remove orphaned ``repro_*.so.tmp<pid>`` files beside the cache.

    A build writes the object to a pid-suffixed temporary name and
    ``os.replace``s it into place; a compiler (or process) death in
    between leaves the tmp behind forever. A tmp is stale when its owning
    pid is gone, or — to cover pid reuse — when it is older than
    ``max_age_seconds`` and not our own. Returns the removed paths.
    """
    removed: List[str] = []
    try:
        names = os.listdir(path)
    except OSError:
        return removed
    now = time.time()
    for name in names:
        match = _TMP_PATTERN.search(name)
        if match is None:
            continue
        full = os.path.join(path, name)
        pid = int(match.group(1))
        if pid != os.getpid() and _pid_alive(pid):
            # a live concurrent build: only reap it once it is clearly
            # abandoned (pid reuse can make a dead owner look alive)
            try:
                if now - os.path.getmtime(full) < max_age_seconds:
                    continue
            except OSError:
                continue
        try:
            os.unlink(full)
            removed.append(full)
        except OSError:
            pass
    return removed


# ---------------------------------------------------------------------------
# cgen engine
# ---------------------------------------------------------------------------

#: bit-exactness-critical flag set: contraction (FMA) off, no fast-math.
#: ``-fno-math-errno`` only drops the errno side channel (sqrt stays the
#: correctly-rounded hardware instruction), enabling inline sqrtsd.
_BASE_FLAGS = [
    "-O3", "-shared", "-fPIC", "-ffp-contract=off", "-fno-math-errno",
]


def _openmp_works(cc: str) -> bool:
    global _OPENMP
    if _OPENMP is None:
        src = "#include <omp.h>\nint touch(void){return omp_get_max_threads();}\n"
        with tempfile.TemporaryDirectory() as tmp:
            cpath = os.path.join(tmp, "probe.c")
            with open(cpath, "w") as fh:
                fh.write(src)
            proc = subprocess.run(
                [cc, *_BASE_FLAGS, "-fopenmp", cpath, "-o",
                 os.path.join(tmp, "probe.so")],
                capture_output=True,
            )
            _OPENMP = proc.returncode == 0
    return _OPENMP


def compile_c(source: str, want_openmp: bool = False) -> ctypes.CDLL:
    """Compile C source to a shared object and load it.

    The object file is content-addressed in :func:`jit_dir`; an existing
    file is loaded without invoking the compiler (a "disk hit"). Builds go
    through a temporary name plus an atomic rename, so concurrent
    processes racing on the same key are safe.
    """
    global _COMPILES, _COMPILE_SECONDS, _DISK_HITS
    cc = _find_cc()
    if cc is None:
        raise JitUnavailableError(
            "cgen engine selected but no C compiler found "
            "(searched cc/gcc/clang; set REPRO_CC to override)"
        )
    flags = list(_BASE_FLAGS)
    if want_openmp and _openmp_works(cc):
        flags.append("-fopenmp")
    key = hashlib.sha256(
        "\x1f".join([source, cc, " ".join(flags)]).encode()
    ).hexdigest()[:20]
    sopath = os.path.join(jit_dir(), f"repro_{key}.so")
    if key in _LOADED:
        return _LOADED[key]  # type: ignore[return-value]
    lib: Optional[ctypes.CDLL] = None
    if os.path.exists(sopath):
        # a cached object may be damaged (truncated write from a killed
        # process, disk corruption): self-heal by rebuilding in place
        # rather than wedging every process that shares the cache
        try:
            lib = ctypes.CDLL(sopath)
        except OSError as exc:
            _warn_corrupt_cache(sopath, exc)
            try:
                os.unlink(sopath)
            except OSError:
                pass
        else:
            with _LOCK:
                _DISK_HITS += 1
    if lib is None:
        t0 = time.perf_counter()
        cpath = os.path.join(jit_dir(), f"repro_{key}.c")
        tmpso = sopath + f".tmp{os.getpid()}"
        with open(cpath, "w") as fh:
            fh.write(source)
        try:
            proc = subprocess.run(
                [cc, *flags, cpath, "-o", tmpso, "-lm"], capture_output=True
            )
            if proc.returncode != 0:
                raise JitCompileError(
                    f"{cc} failed on generated source ({cpath}):\n"
                    f"{proc.stderr.decode(errors='replace')}"
                )
            os.replace(tmpso, sopath)
        finally:
            # a failed (or interrupted) build must not leak its partial
            # object beside the cache; after the atomic rename this is a
            # no-op
            if os.path.exists(tmpso):
                try:
                    os.unlink(tmpso)
                except OSError:
                    pass
        with _LOCK:
            _COMPILES += 1
            _COMPILE_SECONDS += time.perf_counter() - t0
        lib = ctypes.CDLL(sopath)
    _LOADED[key] = lib
    return lib


# ---------------------------------------------------------------------------
# numba / pyloops engines
# ---------------------------------------------------------------------------


def compile_py(source: str, func_name: str, parallel: bool = False):
    """Materialize one emitted Python loop nest.

    Under the ``numba`` engine the function is wrapped in
    ``njit(fastmath=False)``; under ``pyloops`` it is returned as plain
    (slow) Python. ``__prange`` in the source binds to ``numba.prange``
    only when both the engine and ``parallel`` ask for it.
    """
    global _COMPILES, _COMPILE_SECONDS
    import numpy as np

    engine = engine_name()
    namespace: Dict[str, object] = {"np": np, "__prange": range}
    if engine == "numba":
        if not _numba_available():
            raise JitUnavailableError(
                "REPRO_JIT=numba but numba is not importable"
            )
        import numba

        if parallel:
            namespace["__prange"] = numba.prange
        t0 = time.perf_counter()
        exec(compile(source, f"<jit:{func_name}>", "exec"), namespace)
        fn = numba.njit(
            namespace[func_name], fastmath=False, parallel=parallel,
            cache=False,
        )
        with _LOCK:
            _COMPILES += 1
            _COMPILE_SECONDS += time.perf_counter() - t0
        _LOADED[f"py:{func_name}:{id(fn)}"] = fn
        return fn
    if engine == "pyloops":
        exec(compile(source, f"<jit:{func_name}>", "exec"), namespace)
        return namespace[func_name]
    raise JitUnavailableError(
        f"compile_py called under engine {engine!r}"
    )


# ---------------------------------------------------------------------------
# counters
# ---------------------------------------------------------------------------


def record_compile_seconds(seconds: float, count: int = 1) -> None:
    """Fold externally-measured JIT work (e.g. numba's lazy first-call
    compilation) into the warmup attribution."""
    global _COMPILES, _COMPILE_SECONDS
    with _LOCK:
        _COMPILES += count
        _COMPILE_SECONDS += seconds


def stats() -> Dict[str, object]:
    """Engine + compile-time attribution for the obs report footer."""
    with _LOCK:
        return {
            "engine": _ENGINE if _ENGINE is not None else "(unresolved)",
            "compiles": _COMPILES,
            "compile_seconds": _COMPILE_SECONDS,
            "disk_hits": _DISK_HITS,
            "cache_repairs": _CACHE_REPAIRS,
        }


def merge_stats(data: Dict[str, object]) -> None:
    """Fold a worker process's counter deltas into this process's JIT
    accounting (engine identity is per-process and is not merged)."""
    global _COMPILES, _COMPILE_SECONDS, _DISK_HITS, _CACHE_REPAIRS
    with _LOCK:
        _COMPILES += int(data.get("compiles", 0))
        _COMPILE_SECONDS += float(data.get("compile_seconds", 0.0))
        _DISK_HITS += int(data.get("disk_hits", 0))
        _CACHE_REPAIRS += int(data.get("cache_repairs", 0))


def reset(engine: bool = False) -> None:
    """Zero the counters; with ``engine=True`` also forget the resolved
    engine so the next :func:`engine_name` re-reads ``REPRO_JIT`` (tests)."""
    global _COMPILES, _COMPILE_SECONDS, _DISK_HITS, _CACHE_REPAIRS, \
        _WARNED_CORRUPT, _ENGINE, _OPENMP
    with _LOCK:
        _COMPILES = 0
        _COMPILE_SECONDS = 0.0
        _DISK_HITS = 0
        _CACHE_REPAIRS = 0
        _WARNED_CORRUPT = False
        if engine:
            _ENGINE = None
            _OPENMP = None
