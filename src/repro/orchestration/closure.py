"""Closure resolution (Sec. V-B, Fig. 6).

"Methods and functions that depend on external data are transpiled into
free functions ... Resolving closures inlines class structures at
preprocessing time, supporting Python OOP. With closures and constants
resolved, a call-tree analysis detects and consolidates multiple instances
of the same array object (e.g., used in different classes) to avoid data
races."

``resolve_closure`` rewrites ``self.x`` into reads of ``__g_self_x`` and
returns the value bound to each such name; the SDFG builder consolidates
identical array objects reached through different attribute paths into a
single data container by object identity.
"""

from __future__ import annotations

import ast
import copy
import inspect
import textwrap
from typing import Any, Dict, Tuple

from repro._astsync import AST_LOCK


class ClosureError(ValueError):
    pass


class _SelfRewriter(ast.NodeTransformer):
    """Rewrite attribute chains rooted at known objects into flat names."""

    def __init__(self, roots: Dict[str, Any]):
        self.roots = roots
        self.bindings: Dict[str, Any] = {}

    def visit_Attribute(self, node: ast.Attribute):
        chain = _attribute_chain(node)
        if chain is not None:
            root, path = chain
            if root in self.roots and isinstance(node.ctx, ast.Load):
                name = f"__g_{root}_" + "_".join(path)
                if name not in self.bindings:
                    value = self.roots[root]
                    try:
                        for attr in path:
                            value = getattr(value, attr)
                    except AttributeError as exc:
                        raise ClosureError(
                            f"cannot resolve {root}.{'.'.join(path)}: {exc}"
                        ) from exc
                    self.bindings[name] = value
                return ast.copy_location(
                    ast.Name(id=name, ctx=ast.Load()), node
                )
        self.generic_visit(node)
        return node


def _attribute_chain(node: ast.Attribute):
    """Return (root_name, [attr, ...]) for a pure attribute chain."""
    path = [node.attr]
    value = node.value
    while isinstance(value, ast.Attribute):
        path.append(value.attr)
        value = value.value
    if isinstance(value, ast.Name):
        return value.id, list(reversed(path))
    return None


def get_function_ast(func) -> ast.FunctionDef:
    source = textwrap.dedent(inspect.getsource(func))
    with AST_LOCK:  # ast<->object conversion is not thread-safe on 3.11
        tree = ast.parse(source)
    node = tree.body[0]
    if not isinstance(node, ast.FunctionDef):
        raise ClosureError("expected a function definition")
    # drop decorators: the free function must not re-orchestrate itself
    node.decorator_list = []
    return node


def resolve_closure(
    func, instance: Any = None
) -> Tuple[ast.FunctionDef, Dict[str, Any]]:
    """Turn a (bound) method into a free function plus closure bindings.

    Attribute reads of ``self`` (and of the method's module-level globals
    holding arrays) become reads of fresh ``__g_*`` names; the returned
    mapping binds each name to the live Python object. Method *calls* on
    ``self`` are left untouched — the SDFG builder resolves them (inlining
    orchestrated methods, falling back to callbacks otherwise).
    """
    node = copy.deepcopy(get_function_ast(func))
    roots: Dict[str, Any] = {}
    if instance is not None:
        roots["self"] = instance
        # remove the self parameter from the signature
        if node.args.args and node.args.args[0].arg == "self":
            node.args.args = node.args.args[1:]
    rewriter = _SelfRewriter(roots)

    # rewrite every statement, but leave `self.method(...)` call targets
    # intact by pre-marking them
    marked = _mark_method_calls(node)
    new_node = rewriter.visit(node)
    _unmark_method_calls(marked)
    ast.fix_missing_locations(new_node)
    return new_node, rewriter.bindings


def _mark_method_calls(node: ast.FunctionDef):
    """Temporarily detach `obj.method(...)` func attributes so the
    rewriter does not flatten the method object itself."""
    marked = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
            marked.append((sub, sub.func))
            sub.func = ast.Name(id="__method_call_placeholder__", ctx=ast.Load())
    return marked


def _unmark_method_calls(marked) -> None:
    for call, func in marked:
        call.func = func
