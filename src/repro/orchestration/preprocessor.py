"""Python-to-Python preprocessing (Sec. V-B).

"The first step propagates constants forward, performs loop unrolling for
Python-dependent loops, and dead code/branch elimination. This handles
cases such as dictionary accesses in a loop (used, e.g., for variable
number of tracers in FV3)."

The transpiler operates on function ASTs with an environment of known
compile-time constants (model configuration): constant names fold to
literals, ``if`` statements with constant tests keep only the live branch,
``for`` loops over constant iterables whose variable is used in the body
unroll, and subscripts of constant dicts/lists with constant keys fold.
"""

from __future__ import annotations

import ast
import copy
from typing import Any, Dict, Optional, Tuple

from repro._astsync import AST_LOCK

#: Types that may be folded into the AST as literals.
_FOLDABLE = (bool, int, float, str, type(None))


def try_const_eval(node: ast.expr, env: Dict[str, Any]) -> Tuple[bool, Any]:
    """Try to evaluate an expression using only the constant environment."""
    allowed_funcs = ("range", "len", "min", "max", "int", "abs")
    try:
        func_names = {
            id(sub.func)
            for sub in ast.walk(node)
            if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name)
        }
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name):
                if id(sub) in func_names:
                    if sub.id not in allowed_funcs:
                        return False, None
                elif sub.id not in env:
                    return False, None
            elif isinstance(sub, ast.Call):
                if not isinstance(sub.func, ast.Name):
                    return False, None
            elif isinstance(sub, ast.Attribute):
                return False, None  # attributes are resolved by closure, not here
        with AST_LOCK:  # ast-object compile is not thread-safe on 3.11
            code = compile(
                ast.Expression(body=copy.deepcopy(node)), "<pre>", "eval"
            )
        safe = dict(env)
        safe.update({"range": range, "len": len, "min": min, "max": max,
                     "int": int, "abs": abs})
        value = eval(code, {"__builtins__": {}}, safe)  # noqa: S307
        if not isinstance(
            value, (bool, int, float, str, range, list, tuple, dict, type(None))
        ):
            # evaluating to a live object (e.g. an array) is a build-time
            # snapshot, not a constant — refuse to fold it
            return False, None
        return True, value
    except Exception:
        return False, None


def _names_used(nodes) -> set:
    used = set()
    for stmt in nodes:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                used.add(sub.id)
    return used


class _Folder(ast.NodeTransformer):
    """Fold constant names and constant-container subscripts to literals."""

    def __init__(self, env: Dict[str, Any]):
        self.env = env

    def visit_Name(self, node: ast.Name):
        if isinstance(node.ctx, ast.Load) and node.id in self.env:
            value = self.env[node.id]
            if isinstance(value, _FOLDABLE):
                return ast.copy_location(ast.Constant(value=value), node)
        return node

    def visit_Subscript(self, node: ast.Subscript):
        self.generic_visit(node)
        # d["key"] / xs[2] with a constant container and key
        if isinstance(node.value, ast.Name) and node.value.id in self.env:
            container = self.env[node.value.id]
            ok, key = try_const_eval(node.slice, self.env)
            if ok and isinstance(container, (dict, list, tuple)):
                try:
                    value = container[key]
                except (KeyError, IndexError, TypeError):
                    return node
                if isinstance(value, _FOLDABLE):
                    return ast.copy_location(ast.Constant(value=value), node)
        return node


class _Preprocessor(ast.NodeTransformer):
    def __init__(self, env: Dict[str, Any]):
        self.env = dict(env)
        self.folder = _Folder(self.env)

    # -- statements ---------------------------------------------------------

    def _visit_block(self, stmts):
        out = []
        for stmt in stmts:
            result = self.visit(stmt)
            if result is None:
                continue
            if isinstance(result, list):
                out.extend(result)
            else:
                out.append(result)
        return out or [ast.Pass()]

    def visit_FunctionDef(self, node: ast.FunctionDef):
        node.body = self._visit_block(node.body)
        return node

    def visit_If(self, node: ast.If):
        node.test = self.folder.visit(node.test)
        ok, value = try_const_eval(node.test, self.env)
        if ok:
            branch = node.body if value else node.orelse
            return self._visit_block(branch) if branch else []
        node.body = self._visit_block(node.body)
        node.orelse = self._visit_block(node.orelse) if node.orelse else []
        return node

    def visit_For(self, node: ast.For):
        node.iter = self.folder.visit(node.iter)
        ok, iterable = try_const_eval(node.iter, self.env)
        if not ok or not isinstance(node.target, ast.Name):
            node.body = self._visit_block(node.body)
            return node
        items = list(iterable)
        var = node.target.id
        uses_var = var in _names_used(node.body)
        if not uses_var:
            # leave as a counted loop; the SDFG builder turns it into a
            # loop region (kernels invoked N times under one setting)
            node.body = self._visit_block(node.body)
            return node
        unrolled = []
        for item in items:
            saved = self.env.get(var, _MISSING)
            self.env[var] = item
            self.folder.env = self.env
            for stmt in node.body:
                result = self.visit(copy.deepcopy(stmt))
                if result is None:
                    continue
                unrolled.extend(result if isinstance(result, list) else [result])
            if saved is _MISSING:
                self.env.pop(var, None)
            else:
                self.env[var] = saved
        return unrolled or [ast.Pass()]

    def visit_Assign(self, node: ast.Assign):
        node.value = self.folder.visit(node.value)
        ok, value = try_const_eval(node.value, self.env)
        if ok and len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            # track newly defined constants for downstream folding
            self.env[node.targets[0].id] = value
        return node

    def visit_Expr(self, node: ast.Expr):
        node.value = self.folder.visit(node.value)
        return node

    def generic_visit(self, node):
        return super().generic_visit(node)


class _Missing:
    pass


_MISSING = _Missing()


def preprocess_function(
    func_ast: ast.FunctionDef, constants: Optional[Dict[str, Any]] = None
) -> ast.FunctionDef:
    """Apply constant propagation, unrolling and dead-branch elimination."""
    tree = copy.deepcopy(func_ast)
    result = _Preprocessor(constants or {}).visit(tree)
    ast.fix_missing_locations(result)
    return result
