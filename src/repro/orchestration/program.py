"""Orchestration: build one SDFG from object-oriented model code.

``@orchestrate`` turns a function or method into an
:class:`OrchestratedProgram`. On first call, the program is *built*: the
Python source is closure-resolved (Fig. 6) and preprocessed (constant
propagation, unrolling, dead branches), then walked statement by
statement:

- calls to ``@stencil`` objects insert StencilComputation library nodes
  (``__sdfg_node__`` protocol, Sec. V-B);
- calls to other orchestrated functions/methods are inlined recursively;
- any other call becomes an automatic :class:`Callback` with ``__pystate``
  serialization;
- remaining counted ``for`` loops become SDFG loop regions;
- scalar argument arithmetic becomes Tasklets.

Arrays reached through different names/attributes are consolidated into
one container by object identity ("call-tree analysis detects and
consolidates multiple instances of the same array object").
"""

from __future__ import annotations

import ast
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.dsl.backend_numpy import GridBounds
from repro.dsl.stencil import StencilObject
from repro.obs import tracer as _obs
from repro.orchestration.closure import get_function_ast, resolve_closure
from repro.orchestration.preprocessor import preprocess_function, try_const_eval
from repro.sdfg.graph import SDFG, SDFGState
from repro.sdfg.nodes import Callback, StencilComputation, Tasklet

_TRACER = _obs.get_tracer()


class OrchestrationError(ValueError):
    pass


_CONSTANT_TYPES = (bool, int, float, str, type(None))


class _ScalarAlias:
    """A runtime scalar passed down into an inlined function under a new
    parameter name: reads resolve to the *outer* scalar name so updated
    values flow in on every call without rebuilding."""

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return f"_ScalarAlias({self.name!r})"


class _Builder:
    """Builds one whole-program SDFG."""

    def __init__(self, name: str):
        self.sdfg = SDFG(name)
        self.container_of: Dict[int, str] = {}
        self.array_of: Dict[str, np.ndarray] = {}
        self.runtime_scalars: List[str] = []
        self._scalar_counter = 0
        self._state: Optional[SDFGState] = None
        self._label = name

    # ---- containers -----------------------------------------------------

    def register_array(self, array: np.ndarray, hint: str) -> str:
        key = id(array)
        if key in self.container_of:
            return self.container_of[key]
        name = hint.lstrip("_") or "arr"
        base, n = name, 0
        while name in self.sdfg.arrays:
            n += 1
            name = f"{base}_{n}"
        axes = {3: "IJK", 2: "IJ", 1: "K"}.get(array.ndim)
        if axes is None:
            raise OrchestrationError(
                f"field {hint!r} has unsupported rank {array.ndim}"
            )
        self.sdfg.add_array(name, array.shape, array.dtype.type, axes=axes)
        self.container_of[key] = name
        self.array_of[name] = array
        return name

    # ---- states -----------------------------------------------------------

    def state(self, label: str) -> SDFGState:
        if self._state is None:
            self._state = self.sdfg.add_state(
                f"s{len(self.sdfg.states)}_{label}"
            )
        return self._state

    def cut_state(self) -> None:
        self._state = None

    # ---- function walking ---------------------------------------------------

    def build_function(
        self,
        func: Callable,
        instance: Any,
        args: Tuple,
        kwargs: Dict,
        label: str,
    ) -> None:
        node, bindings = resolve_closure(func, instance)
        # lowest priority: module globals and closure freevars (stencil
        # objects, helper modules, shared arrays)
        env: Dict[str, Any] = dict(getattr(func, "__globals__", {}))
        closure_cells = getattr(func, "__closure__", None)
        if closure_cells:
            for fname, cell in zip(func.__code__.co_freevars, closure_cells):
                try:
                    env[fname] = cell.cell_contents
                except ValueError:  # pragma: no cover
                    pass
        env.update(bindings)
        if instance is not None:
            env["self"] = instance  # method-call resolution (self.foo(...))
        # bind call arguments
        params = [a.arg for a in node.args.args]
        defaults = node.args.defaults
        default_values = {}
        for pname, dnode in zip(params[len(params) - len(defaults):], defaults):
            ok, val = try_const_eval(dnode, {})
            if ok:
                default_values[pname] = val
        bound = dict(default_values)
        bound.update(dict(zip(params, args)))
        bound.update(kwargs)
        missing = [p for p in params if p not in bound]
        if missing:
            raise OrchestrationError(f"{label}: missing arguments {missing}")
        env.update(bound)

        constants = {
            k: v for k, v in env.items() if isinstance(v, _CONSTANT_TYPES)
        }
        # top-level float/int arguments stay runtime scalars unless they are
        # structural (used in loop bounds the preprocessor must fold)
        runtime = {
            k
            for k in bound
            if isinstance(env.get(k), (float, np.floating))
        }
        for k in runtime:
            constants.pop(k, None)
            if k not in self.runtime_scalars:
                self.runtime_scalars.append(k)
        # aliased runtime scalars from an enclosing inline (keep the outer
        # name; never treat the build-time value as a constant)
        for k in bound:
            if isinstance(env.get(k), _ScalarAlias):
                constants.pop(k, None)

        processed = preprocess_function(node, constants)
        outer = self._label
        self._label = label
        try:
            self._walk_block(processed.body, env, constants)
        finally:
            self._label = outer

    # ------------------------------------------------------------------
    def _walk_block(self, stmts, env, constants) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.Expr):
                if isinstance(stmt.value, ast.Constant):
                    continue  # docstring
                if isinstance(stmt.value, ast.Call):
                    self._handle_call(stmt.value, env, constants)
                    continue
                raise OrchestrationError(
                    f"line {stmt.lineno}: unsupported expression statement"
                )
            if isinstance(stmt, ast.Assign):
                self._handle_assign(stmt, env, constants)
                continue
            if isinstance(stmt, ast.For):
                self._handle_loop(stmt, env, constants)
                continue
            if isinstance(stmt, ast.If):
                raise OrchestrationError(
                    f"line {stmt.lineno}: data-dependent branch could not be "
                    "resolved at orchestration time; wrap it in a callback"
                )
            if isinstance(stmt, ast.Pass):
                continue
            if isinstance(stmt, ast.Return):
                if stmt.value is None or (
                    isinstance(stmt.value, ast.Constant)
                    and stmt.value.value is None
                ):
                    continue
                raise OrchestrationError(
                    "orchestrated programs mutate arrays and return None"
                )
            raise OrchestrationError(
                f"line {stmt.lineno}: unsupported statement "
                f"{type(stmt).__name__}"
            )

    # ------------------------------------------------------------------
    def _handle_loop(self, stmt: ast.For, env, constants) -> None:
        ok, iterable = try_const_eval(stmt.iter, constants)
        if not ok:
            raise OrchestrationError(
                f"line {stmt.lineno}: loop bound is not a compile-time "
                "constant"
            )
        count = len(list(iterable))
        if count == 0:
            return
        self.cut_state()
        first = len(self.sdfg.states)
        self._walk_block(stmt.body, env, constants)
        self.cut_state()
        last = len(self.sdfg.states) - 1
        if last >= first:
            self.sdfg.add_loop(first, last, count, label=f"loop_l{stmt.lineno}")

    # ------------------------------------------------------------------
    def _handle_assign(self, stmt: ast.Assign, env, constants) -> None:
        if len(stmt.targets) == 1 and isinstance(stmt.targets[0], ast.Tuple):
            targets = stmt.targets[0].elts
            if not all(isinstance(t, ast.Name) for t in targets):
                raise OrchestrationError(
                    f"line {stmt.lineno}: unpacking targets must be names"
                )
            values = self._resolve_value(stmt.value, env)
            if len(values) != len(targets):
                raise OrchestrationError(
                    f"line {stmt.lineno}: unpacking arity mismatch"
                )
            for t, v in zip(targets, values):
                env[t.id] = v
                if isinstance(v, _CONSTANT_TYPES):
                    constants[t.id] = v
            return
        if len(stmt.targets) != 1 or not isinstance(stmt.targets[0], ast.Name):
            raise OrchestrationError(
                f"line {stmt.lineno}: only simple name assignments are "
                "supported between stencils"
            )
        name = stmt.targets[0].id
        ok, value = try_const_eval(stmt.value, constants)
        if ok:
            env[name] = value
            if isinstance(value, _CONSTANT_TYPES):
                constants[name] = value
            return
        try:
            value = self._resolve_value(stmt.value, env)
        except OrchestrationError as exc:
            raise OrchestrationError(
                f"line {stmt.lineno}: cannot resolve assignment: {exc}"
            ) from exc
        env[name] = value
        if isinstance(value, _CONSTANT_TYPES):
            constants[name] = value

    # ------------------------------------------------------------------
    def _handle_call(self, call: ast.Call, env, constants) -> None:
        callee, owner = self._resolve_callee(call.func, env)
        if isinstance(callee, StencilObject):
            self._add_stencil(callee, call, env, constants)
            return
        if isinstance(callee, OrchestratedProgram):
            args, kwargs = self._eval_call_args(call, env, preserve_scalars=True)
            self.build_function(
                callee.func, callee.instance, args, kwargs, callee.name
            )
            return
        if hasattr(callee, "__wrapped_orchestrate__"):
            args, kwargs = self._eval_call_args(call, env, preserve_scalars=True)
            inner = callee.__wrapped_orchestrate__
            self.build_function(inner, owner, args, kwargs, inner.__name__)
            return
        # automatic callback fallback (Sec. V-B)
        args, kwargs = self._eval_call_args(call, env)
        label = getattr(callee, "__name__", str(callee))
        self.cut_state()
        state = self.state(f"cb_{label}")
        state.add(Callback(label, callee, tuple(args), kwargs))
        self.cut_state()

    def _resolve_callee(self, func_node, env):
        if isinstance(func_node, ast.Name):
            if func_node.id in env:
                return self._normalize_callee(env[func_node.id], None)
            raise OrchestrationError(f"unknown callee {func_node.id!r}")
        if isinstance(func_node, ast.Attribute):
            owner = self._resolve_value(func_node.value, env)
            try:
                bound = getattr(owner, func_node.attr)
            except AttributeError as exc:
                raise OrchestrationError(str(exc)) from exc
            return self._normalize_callee(bound, owner)
        raise OrchestrationError("unsupported callee expression")

    @staticmethod
    def _normalize_callee(obj, owner):
        # bound orchestrated methods carry the original function
        inner = getattr(obj, "__func__", None)
        if inner is not None and hasattr(inner, "__wrapped_orchestrate__"):
            return _MethodShim(inner.__wrapped_orchestrate__), owner
        if isinstance(obj, OrchestratedProgram):
            return obj, owner
        # callable module objects whose __call__ is orchestrated get inlined
        # with the object itself as the bound instance
        call_attr = type(obj).__dict__.get("__call__")
        if isinstance(call_attr, OrchestratedProgram):
            return OrchestratedProgram(call_attr.func, obj), obj
        return obj, owner

    def _eval_call_args(self, call: ast.Call, env, preserve_scalars=False):
        def resolve(node):
            # preserve runtime-scalar identity through orchestrated inlining
            if preserve_scalars and isinstance(node, ast.Name):
                value = env.get(node.id)
                if isinstance(value, _ScalarAlias):
                    return value
                if node.id in self.runtime_scalars:
                    return _ScalarAlias(node.id)
            return self._resolve_value(node, env)

        args = [resolve(a) for a in call.args]
        kwargs = {kw.arg: resolve(kw.value) for kw in call.keywords
                  if kw.arg is not None}
        return args, kwargs

    def _resolve_value(self, node, env):
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            raise OrchestrationError(f"unknown name {node.id!r}")
        if isinstance(node, ast.Attribute):
            owner = self._resolve_value(node.value, env)
            try:
                return getattr(owner, node.attr)
            except AttributeError as exc:
                raise OrchestrationError(str(exc)) from exc
        if isinstance(node, ast.Subscript):
            container = self._resolve_value(node.value, env)
            ok, key = try_const_eval(node.slice, env)
            if not ok:
                key = self._resolve_value(node.slice, env)
            return container[key]
        if isinstance(node, ast.Tuple):
            return tuple(self._resolve_value(e, env) for e in node.elts)
        if isinstance(node, (ast.BinOp, ast.UnaryOp)):
            ok, value = try_const_eval(node, env)
            if ok:
                return value
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "dict"
            and not node.args
        ):
            return {
                kw.arg: self._resolve_value(kw.value, env)
                for kw in node.keywords
                if kw.arg is not None
            }
        raise OrchestrationError(
            f"cannot resolve value of {type(node).__name__}"
        )

    # ------------------------------------------------------------------
    def _add_stencil(self, stencil: StencilObject, call, env, constants):
        sd = stencil.definition
        params = [p.name for p in sd.params]
        # scalar arguments may be runtime expressions: value resolution is
        # best-effort (the AST node drives the scalar lowering)
        pos_values = []
        for a in call.args:
            try:
                pos_values.append(self._resolve_value(a, env))
            except OrchestrationError:
                pos_values.append(None)
        bound_nodes: Dict[str, ast.expr] = {}
        for pname, anode in zip(params, call.args):
            bound_nodes[pname] = anode
        call_kwargs: Dict[str, Any] = {}
        bound_values = dict(zip(params, pos_values))
        for kw in call.keywords:
            if kw.arg is None:  # **kwargs expansion resolved at build time
                expanded = self._resolve_value(kw.value, env)
                if not isinstance(expanded, dict):
                    raise OrchestrationError(
                        f"{sd.name}: ** argument must resolve to a dict"
                    )
                for key, value in expanded.items():
                    if key in ("origin", "domain", "bounds", "backend"):
                        call_kwargs[key] = value
                    else:
                        bound_values[key] = value
            elif kw.arg in ("origin", "domain", "bounds", "backend"):
                call_kwargs[kw.arg] = self._resolve_value(kw.value, env)
            else:
                bound_nodes[kw.arg] = kw.value
                bound_values[kw.arg] = self._resolve_value(kw.value, env)

        mapping: Dict[str, str] = {}
        for p in sd.field_params:
            if p.name not in bound_values:
                raise OrchestrationError(
                    f"{sd.name}: missing field argument {p.name!r}"
                )
            arr = bound_values[p.name]
            if not isinstance(arr, np.ndarray):
                raise OrchestrationError(
                    f"{sd.name}: field {p.name!r} did not resolve to an array"
                )
            hint = _name_hint(bound_nodes.get(p.name), p.name)
            mapping[p.name] = self.register_array(arr, hint)

        scalar_mapping: Dict[str, str] = {}
        state = self.state(sd.name)
        for p in sd.scalar_params:
            if p.name not in bound_values and p.name not in bound_nodes:
                raise OrchestrationError(
                    f"{sd.name}: missing scalar argument {p.name!r}"
                )
            scalar_mapping[p.name] = self._scalar_source(
                bound_nodes.get(p.name), bound_values.get(p.name), env, state
            )

        origin = call_kwargs.get("origin")
        domain = call_kwargs.get("domain")
        bounds = call_kwargs.get("bounds")
        h = stencil.n_halo
        if origin is None:
            origin = (h, h, 0)
        if domain is None:
            for p in sd.field_params:
                if p.field_type.axes == "IJK":
                    s = bound_values[p.name].shape
                    domain = (
                        s[0] - origin[0] - h,
                        s[1] - origin[1] - h,
                        s[2] - origin[2],
                    )
                    break
        node = StencilComputation(
            sd,
            stencil.extents,
            mapping=mapping,
            domain=tuple(domain),
            origin=tuple(origin),
            scalar_mapping=scalar_mapping,
            bounds=bounds if isinstance(bounds, GridBounds) else None,
        )
        state.add(node)

    def _scalar_source(self, node, value, env, state) -> str:
        """Map a scalar argument expression to a program scalar name."""
        if node is None:  # bound through ** expansion: value only
            if isinstance(value, (bool, int, float, np.floating)):
                name = self._fresh_scalar("const")
                self.sdfg.scalars[name] = float(value)
                return name
            raise OrchestrationError(
                f"scalar bound via ** did not resolve to a number: {value!r}"
            )
        # bare runtime-scalar name (or an alias to one): pass through
        if isinstance(node, ast.Name):
            if node.id in self.runtime_scalars:
                return node.id
            if isinstance(env.get(node.id), _ScalarAlias):
                return env[node.id].name
        if isinstance(value, _ScalarAlias):
            return value.name
        # expressions over runtime scalars must NOT be folded to their
        # build-time values (the scalar may change between calls)
        references_runtime = any(
            isinstance(sub, ast.Name)
            and (
                sub.id in self.runtime_scalars
                or isinstance(env.get(sub.id), _ScalarAlias)
            )
            for sub in ast.walk(node)
        )
        if references_runtime:
            return self._scalar_tasklet(node, state, env)
        ok, const = try_const_eval(node, {
            k: v for k, v in env.items() if isinstance(v, _CONSTANT_TYPES)
        })
        if ok:
            name = self._fresh_scalar("const")
            self.sdfg.scalars[name] = float(const)
            return name
        if value is not None and isinstance(value, (int, float, np.floating)):
            # resolvable at build time (e.g. attribute reads): constant-fold
            name = self._fresh_scalar("c")
            self.sdfg.scalars[name] = float(value)
            return name
        raise OrchestrationError(
            f"cannot lower scalar expression {ast.dump(node)}"
        )

    def _scalar_tasklet(self, node, state, env=None) -> str:
        """Emit a Tasklet computing a derived scalar from runtime scalars."""
        env = env or {}
        code = ast.unparse(node)
        names = set()
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Name):
                continue
            if sub.id in self.runtime_scalars:
                names.add(sub.id)
            elif isinstance(env.get(sub.id), _ScalarAlias):
                outer = env[sub.id].name
                code = _replace_word_boundary(code, sub.id, outer)
                names.add(outer)
        ok_shape = all(
            isinstance(sub, (ast.Name, ast.Constant, ast.BinOp, ast.UnaryOp))
            or isinstance(sub, (ast.operator, ast.unaryop, ast.expr_context))
            for sub in ast.walk(node)
        )
        if not ok_shape or not names:
            raise OrchestrationError(
                f"cannot lower scalar expression {ast.dump(node)}"
            )
        out = self._fresh_scalar("expr")
        state.add(Tasklet(f"tasklet_{out}", code, tuple(sorted(names)), out))
        return out

    def _fresh_scalar(self, hint: str) -> str:
        self._scalar_counter += 1
        return f"__s{self._scalar_counter}_{hint}"


def _replace_word_boundary(code: str, name: str, repl: str) -> str:
    import re

    return re.sub(rf"\b{re.escape(name)}\b", repl, code)


def _name_hint(node, fallback: str) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        chain = []
        cur = node
        while isinstance(cur, ast.Attribute):
            chain.append(cur.attr)
            cur = cur.value
        return "_".join(reversed(chain))
    return fallback


class _MethodShim:
    """Marks a method resolved through an instance as inlinable."""

    def __init__(self, inner):
        self.__wrapped_orchestrate__ = inner


class OrchestratedProgram:
    """A callable whole-program SDFG wrapper (built on first call)."""

    def __init__(self, func: Callable, instance: Any = None,
                 optimize: Optional[Callable] = None):
        self.func = func
        self.instance = instance
        self.optimize = optimize
        self.name = func.__name__
        self._builder: Optional[_Builder] = None
        self._compiled = None
        self._build_key = None
        #: cache of previous builds: key → (builder, compiled)
        self._builds: Dict[tuple, tuple] = {}
        #: sticky codegen flags: once instrumented (or pinned to a
        #: backend), rebuilds triggered by new argument identities
        #: recompile the same way instead of silently dropping them
        self._instrument = False
        self._backend: Optional[str] = None
        #: parameter names, parsed once — re-parsing the source on every
        #: call would put ast.parse on the per-step hot path of every
        #: rank thread (and 3.11's ast state is not thread-safe)
        self._param_names: Optional[List[str]] = None

    # -- descriptor protocol: @orchestrate on methods ---------------------
    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        cache_name = f"_orchestrated_{self.name}"
        program = obj.__dict__.get(cache_name)
        if program is None:
            program = OrchestratedProgram(self.func, obj, self.optimize)
            obj.__dict__[cache_name] = program
        return program

    @property
    def sdfg(self) -> Optional[SDFG]:
        return self._builder.sdfg if self._builder else None

    def build(self, *args, **kwargs) -> SDFG:
        """Build (or rebuild) the whole-program SDFG for these arguments."""
        builder = _Builder(self.name)
        builder.build_function(self.func, self.instance, args, kwargs, self.name)
        builder.sdfg.expand_library_nodes()
        if self.optimize is not None:
            self.optimize(builder.sdfg)
        self._builder = builder
        self._compiled = None
        self._build_key = self._key(args, kwargs)
        return builder.sdfg

    def compile(self, instrument: bool = False,
                backend: Optional[str] = None):
        """Compile the built SDFG (``backend``: ``"numpy"``/``"compiled"``).

        Both flags are sticky: a rebuild forced by new argument identities
        recompiles with the same instrumentation and backend, so kernel
        timing attribution survives across specializations. The backend
        resolves explicit argument > previous sticky choice >
        ``REPRO_BACKEND=compiled`` > NumPy emission; a compiled request
        without a usable JIT engine degrades (warn once) to NumPy.
        """
        import os

        from repro.runtime.compile_cache import get_or_compile

        if self._builder is None:
            raise OrchestrationError("build() the program first")
        self._instrument = bool(self._instrument or instrument)
        resolved = backend or self._backend
        if resolved is None:
            env = os.environ.get("REPRO_BACKEND", "").strip()
            resolved = "compiled" if env == "compiled" else "numpy"
        if resolved == "compiled":
            from repro.dsl.backend_compiled import _warn_once
            from repro.runtime import jit

            if not jit.available():
                _warn_once(
                    "no JIT engine: numba not installed and no C compiler"
                )
                resolved = "numpy"
        from repro.runtime.jit import JitUnavailableError

        try:
            self._compiled = get_or_compile(
                self._builder.sdfg, instrument=self._instrument,
                backend=resolved,
            )
        except JitUnavailableError as exc:
            from repro.dsl.backend_compiled import _warn_once

            _warn_once(str(exc))
            resolved = "numpy"
            self._compiled = get_or_compile(
                self._builder.sdfg, instrument=self._instrument,
                backend=resolved,
            )
        self._backend = resolved
        return self._compiled

    def _key(self, args, kwargs):
        ids = tuple(
            id(a) if isinstance(a, np.ndarray) else ("v", repr(type(a)))
            for a in args
        )
        kids = tuple(
            (k, id(v)) if isinstance(v, np.ndarray) else (k, repr(type(v)))
            for k, v in sorted(kwargs.items())
        )
        return ids + kids

    def _span_label(self) -> str:
        if self.instance is not None and self.name == "__call__":
            return f"program.{type(self.instance).__name__}"
        if self.instance is not None:
            return f"program.{type(self.instance).__name__}.{self.name}"
        return f"program.{self.name}"

    def _kernel_bytes_by_label(self) -> Dict[str, Tuple[int, int]]:
        """label -> (summed perf-model moved bytes, kernel count)."""
        from repro.sdfg.nodes import Kernel

        out: Dict[str, Tuple[int, int]] = {}
        sdfg = self._builder.sdfg
        for state in sdfg.states:
            for node in state.nodes:
                if isinstance(node, Kernel):
                    nbytes, count = out.get(node.label, (0, 0))
                    out[node.label] = (nbytes + node.moved_bytes(sdfg),
                                       count + 1)
        return out

    def _record_kernel_spans(self, parent, before: Dict) -> None:
        """Attach per-kernel child spans from the instrumented deltas.

        Kernel wall times come from the compiled program's counters; byte
        counts come from the perf model (each accessed element once), so
        the report's GB/s column is modeled traffic over measured time —
        exactly the paper's Fig. 10 ratio.
        """
        bytes_by_label = self._kernel_bytes_by_label()
        for label, (total, count) in self._compiled.kernel_times.items():
            t0, c0 = before.get(label, (0.0, 0))
            dt, dc = total - t0, count - c0
            if dc <= 0:
                continue
            child = parent.child(f"kernel.{label}")
            child.count += dc
            child.total_seconds += dt
            nbytes, nkernels = bytes_by_label.get(label, (0, 1))
            child.add("bytes", dc * (nbytes // max(nkernels, 1)))

    def __call__(self, *args, **kwargs):
        key = self._key(args, kwargs)
        if self._build_key != key:
            cached = self._builds.get(key)
            if cached is not None:
                self._builder, self._compiled = cached
                self._build_key = key
            else:
                with _TRACER.span("orchestrate.build"):
                    self.build(*args, **kwargs)
        if self._compiled is None:
            with _TRACER.span("orchestrate.compile"):
                self.compile(instrument=_TRACER.enabled)
        self._builds[self._build_key] = (self._builder, self._compiled)
        scalars = dict(self._builder.sdfg.scalars)
        params = self._param_names
        if params is None:
            node = get_function_ast(self.func)
            params = [a.arg for a in node.args.args if a.arg != "self"]
            self._param_names = params
        bound = dict(zip(params, args))
        bound.update(kwargs)
        for name in self._builder.runtime_scalars:
            if name in bound:
                scalars[name] = float(bound[name])
        if not _TRACER.enabled:
            self._compiled(arrays=self._builder.array_of, scalars=scalars)
            return
        with _TRACER.span(self._span_label()) as sp:
            before = (
                dict(self._compiled.kernel_times)
                if self._compiled.instrument else None
            )
            self._compiled(arrays=self._builder.array_of, scalars=scalars)
            if before is not None:
                self._record_kernel_spans(sp, before)

    @property
    def kernel_times(self):
        return self._compiled.kernel_times if self._compiled else {}


def orchestrate(func=None, *, optimize: Optional[Callable] = None):
    """Decorator: turn a function/method into an orchestrated program.

    Methods of model classes decorated with ``@orchestrate`` are inlined
    when called from another orchestrated program (closure resolution per
    Fig. 6); top-level entry points are built into a single SDFG spanning
    the whole time step.
    """
    def wrap(f):
        program = OrchestratedProgram(f, optimize=optimize)
        # allow nested inlining to find the original function
        f.__wrapped_orchestrate__ = f
        program.func.__wrapped_orchestrate__ = f
        return program

    if func is not None:
        return wrap(func)
    return wrap
