"""Whole-program SDFG construction (Sec. V-B).

The orchestration layer makes object-oriented Python FV3 code analyzable
with respect to data movement: a Python-to-Python preprocessor propagates
constants, unrolls configuration-dependent loops and eliminates dead
branches; closure resolution turns methods into free functions; anything
that cannot be parsed becomes an automatic callback into the interpreter.
"""

from repro.orchestration.closure import resolve_closure
from repro.orchestration.preprocessor import preprocess_function
from repro.orchestration.program import OrchestratedProgram, orchestrate

__all__ = [
    "OrchestratedProgram",
    "orchestrate",
    "preprocess_function",
    "resolve_closure",
]
