"""repro.obs — structured tracing and metrics for the whole toolchain.

The paper's methodology (Fig. 7) is measurement-driven: heuristics,
auto-tuning, transfer and fine tuning are all chosen from observed or
modeled time and data movement. This subsystem is how the reproduction
observes itself:

- :class:`Tracer` / :func:`span` — nestable spans recording wall time,
  call counts and attached metrics, aggregated by (parent, name) so hot
  loops stay bounded. Disabled by default at (near) zero cost; switch on
  with ``REPRO_TRACE=1`` or :func:`enable`.
- per-stencil metrics — ``StencilObject.__call__`` and both executors
  record invocations, domain points, estimated bytes moved (from extent
  inference) and, via the report, achieved GB/s against the
  :mod:`repro.core.machine` roofline.
- halo-exchange counters — messages, bytes and orientation-transform
  time in :mod:`repro.fv3.halo`.
- :func:`report` / :func:`to_json` — text span-tree table and JSON
  export (consumed by the benchmarks).
- :func:`median_time` / :func:`confidence_interval` — repeated-run
  measurement helpers (absorbed from the deprecated ``repro.util.timing``).

Environment toggles: ``REPRO_TRACE=1`` enables tracing process-wide;
``REPRO_TRACE_MACHINE={haswell,p100,a100}`` selects the roofline
reference used in reports. See ``docs/observability.md``.
"""

from repro.obs.metrics import (
    observed_machine,
    set_observed_machine,
    stencil_traffic_bytes,
)
from repro.obs.report import report, snapshot, to_json
from repro.obs.timing import confidence_interval, median_time
from repro.obs.tracer import (
    Span,
    Tracer,
    disable,
    enable,
    enabled,
    get_tracer,
    reset,
    span,
    timed,
)

__all__ = [
    "Span",
    "Tracer",
    "confidence_interval",
    "disable",
    "enable",
    "enabled",
    "get_tracer",
    "median_time",
    "observed_machine",
    "report",
    "reset",
    "set_observed_machine",
    "snapshot",
    "span",
    "stencil_traffic_bytes",
    "timed",
    "to_json",
]
