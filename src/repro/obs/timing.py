"""Repeated-measurement helpers: the paper reports medians of ≥10 runs
(Sec. VII). Absorbed from the deprecated ``repro.util.timing``."""

from __future__ import annotations

import time
from typing import Callable, List

import numpy as np

__all__ = ["confidence_interval", "median_time"]


def median_time(fn: Callable, repetitions: int = 10, warmup: int = 1) -> float:
    """Median wall-clock seconds of ``fn()`` over several runs."""
    for _ in range(warmup):
        fn()
    times: List[float] = []
    for _ in range(repetitions):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return float(np.median(times))


def confidence_interval(samples, level: float = 0.95):
    """Nonparametric CI of the median (as in the Fig. 11 shading)."""
    import math

    xs = sorted(samples)
    n = len(xs)
    if n < 3:
        return xs[0], xs[-1]
    z = 1.96 if level >= 0.95 else 1.64
    lo = max(0, int(math.floor((n - z * math.sqrt(n)) / 2)))
    hi = min(n - 1, int(math.ceil(1 + (n + z * math.sqrt(n)) / 2)) - 1)
    return xs[lo], xs[hi]
