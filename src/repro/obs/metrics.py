"""Derived per-stencil metrics: data-movement estimates and rooflines.

The traffic estimate follows the paper's bandwidth-bound model
(Sec. VI-C): every element of every accessed field is counted **once**
over its extended access footprint, even when the stencil touches it
several times — caches serve the repeats. Combined with a span's wall
time this yields achieved GB/s, and against a
:class:`~repro.core.machine.MachineModel` the fraction of the roofline.
"""

from __future__ import annotations

import os
import warnings
from typing import Dict, Optional, Tuple

from repro.core.machine import A100, HASWELL, P100, MachineModel
from repro.dsl.extents import Extent, k_access_bounds

__all__ = [
    "observed_machine",
    "set_observed_machine",
    "stencil_traffic_bytes",
]

_MACHINES = {"haswell": HASWELL, "p100": P100, "a100": A100}

_observed: Optional[MachineModel] = None


def observed_machine() -> MachineModel:
    """Machine model used as the roofline reference in reports.

    Defaults to the CPU actually running this reproduction (Haswell);
    override with ``REPRO_TRACE_MACHINE={haswell,p100,a100}`` or
    :func:`set_observed_machine`.
    """
    global _observed
    if _observed is None:
        key = os.environ.get("REPRO_TRACE_MACHINE", "haswell").strip().lower()
        _observed = _MACHINES.get(key)
        if _observed is None:
            warnings.warn(
                f"unknown REPRO_TRACE_MACHINE {key!r} "
                f"(expected one of: {', '.join(sorted(_MACHINES))}); "
                f"using haswell",
                stacklevel=2,
            )
            _observed = HASWELL
    return _observed


def set_observed_machine(machine: Optional[MachineModel]) -> None:
    """Set (or with ``None``, re-derive from the environment) the roofline
    machine used by :func:`repro.obs.report`."""
    global _observed
    _observed = machine
    if machine is None:
        observed_machine()


def stencil_traffic_bytes(
    stencil_object,
    fields: Dict[str, "object"],
    domain: Tuple[int, int, int],
) -> int:
    """First-touch traffic estimate of one stencil call, in bytes.

    Each field parameter contributes its full access footprint — the
    compute domain extended by the inferred :class:`StencilExtents` halo
    horizontally and by the exact per-interval k-access bounds vertically —
    counted once at the array's element size. Temporaries are excluded:
    in the optimized regime they live in caches/registers (the paper's
    local-storage transformation), and the debug backend's materialization
    of them is an implementation detail, not modeled traffic.
    """
    definition = stencil_object.definition
    extents = stencil_object.extents
    ni, nj, nk = domain
    total = 0
    for p in definition.field_params:
        ext = extents.field_extents.get(p.name, Extent.zero())
        axes = p.field_type.axes
        points = 1
        if "I" in axes:
            points *= ni - ext.i_lo + ext.i_hi
        if "J" in axes:
            points *= nj - ext.j_lo + ext.j_hi
        if "K" in axes:
            kb = k_access_bounds(definition, p.name, nk)
            if kb is None:
                continue  # parameter never accessed: no traffic
            points *= kb[1] - kb[0]
        arr = fields.get(p.name)
        itemsize = getattr(arr, "itemsize", 8)
        total += points * itemsize
    return total
