"""Structured tracing: nestable spans with wall time, call counts and
user-attached attributes.

Design goals (in order):

1. **Zero-cost when off.** ``Tracer.span`` returns a shared no-op context
   manager when tracing is disabled — no allocation, no clock read.
   Enabling is a process-wide switch (``REPRO_TRACE=1`` or
   :func:`enable`), so instrumented code never needs its own guard.
2. **Bounded trees.** Spans aggregate by ``(parent, name)``: calling the
   same span 10,000 times inside a loop produces one node with
   ``count == 10000``, not 10,000 nodes. This is what makes it safe to
   instrument per-stencil-call hot paths.
3. **Attachable metrics.** ``span.add("bytes", n)`` accumulates numeric
   attributes; ``span.set("backend", "numpy")`` overwrites. The report
   layer derives achieved GB/s and roofline fractions from these.

A process-wide registry maps names to tracers; the default tracer
(``get_tracer()``) is the one all built-in instrumentation records into.
"""

from __future__ import annotations

import contextlib
import os
import threading
import time
from typing import Dict, Optional

__all__ = [
    "Span",
    "Tracer",
    "disable",
    "enable",
    "enabled",
    "get_tracer",
    "reset",
    "span",
    "timed",
]


def _env_enabled() -> bool:
    return os.environ.get("REPRO_TRACE", "").strip().lower() in (
        "1", "true", "yes", "on"
    )


class _NullSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, key, value) -> None:
        pass

    def add(self, key, value) -> None:
        pass


_NULL_SPAN = _NullSpan()

#: one lock for all span-tree mutation. Tracing is off by default, so
#: the lock is touched only on explicitly traced runs; per-thread stack
#: manipulation stays lock-free (stacks are thread-local).
_SPAN_LOCK = threading.Lock()


class Span:
    """One aggregated node of the span tree.

    A span accumulates over every entry with the same name under the same
    parent: ``count`` entries totalling ``total_seconds`` of wall time.
    """

    __slots__ = ("name", "count", "total_seconds", "attrs", "children")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total_seconds = 0.0
        self.attrs: Dict[str, object] = {}
        self.children: Dict[str, "Span"] = {}

    # -- metric attachment ---------------------------------------------
    def set(self, key: str, value) -> None:
        """Attach (overwrite) an attribute on this span."""
        with _SPAN_LOCK:
            self.attrs[key] = value

    def add(self, key: str, value) -> None:
        """Accumulate a numeric attribute across entries."""
        with _SPAN_LOCK:
            self.attrs[key] = self.attrs.get(key, 0) + value

    # -- tree access ----------------------------------------------------
    def child(self, name: str) -> "Span":
        node = self.children.get(name)
        if node is None:
            with _SPAN_LOCK:
                node = self.children.get(name)
                if node is None:
                    node = Span(name)
                    self.children[name] = node
        return node

    @property
    def self_seconds(self) -> float:
        """Wall time not accounted for by child spans."""
        return self.total_seconds - sum(
            c.total_seconds for c in self.children.values()
        )

    # -- cross-process serialization -----------------------------------
    def to_dict(self) -> Dict[str, object]:
        """A picklable/JSON-able copy of this subtree (plain dicts and
        lists only — the shape worker processes ship over result pipes)."""
        with _SPAN_LOCK:
            count = self.count
            total = self.total_seconds
            attrs = dict(self.attrs)
            children = list(self.children.values())
        return {
            "name": self.name,
            "count": count,
            "total_seconds": total,
            "attrs": attrs,
            "children": [c.to_dict() for c in children],
        }

    def merge_dict(self, data: Dict[str, object]) -> None:
        """Fold a serialized subtree (from :meth:`to_dict`, possibly
        produced in another process) into this span: counts and wall time
        accumulate, numeric attributes add, other attributes fill in only
        when absent, children merge recursively by name."""
        with _SPAN_LOCK:
            self.count += int(data.get("count", 0))
            self.total_seconds += float(data.get("total_seconds", 0.0))
            for key, value in (data.get("attrs") or {}).items():
                mine = self.attrs.get(key)
                if (
                    isinstance(value, (int, float))
                    and not isinstance(value, bool)
                    and isinstance(mine, (int, float))
                    and not isinstance(mine, bool)
                ):
                    self.attrs[key] = mine + value
                elif key not in self.attrs:
                    self.attrs[key] = value
        for child_data in data.get("children") or ():
            self.child(str(child_data["name"])).merge_dict(child_data)

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, count={self.count}, "
            f"total={self.total_seconds:.6f}s, "
            f"children={len(self.children)})"
        )


class _ActiveSpan:
    """Context manager for one live entry into a :class:`Span`."""

    __slots__ = ("_tracer", "_node", "_t0")

    def __init__(self, tracer: "Tracer", name: str):
        self._tracer = tracer
        self._node = tracer._stack[-1].child(name)

    def __enter__(self) -> Span:
        node = self._node
        with _SPAN_LOCK:
            node.count += 1
        self._tracer._stack.append(node)
        self._t0 = time.perf_counter()
        return node

    def __exit__(self, *exc) -> bool:
        elapsed = time.perf_counter() - self._t0
        with _SPAN_LOCK:
            self._node.total_seconds += elapsed
        self._tracer._stack.pop()
        return False


class _TimedSpan:
    """A span that always measures wall time, even when tracing is off.

    Replaces ad-hoc ``time.perf_counter()`` pairs: the elapsed time is
    available on ``.seconds`` after the ``with`` block, and — when the
    tracer is enabled — the measurement is also recorded in the span tree.
    """

    __slots__ = ("_cm", "_t0", "seconds", "span")

    def __init__(self, tracer: "Tracer", name: str):
        self._cm = tracer.span(name)
        self.seconds = 0.0
        self.span: Optional[Span] = None

    def __enter__(self) -> "_TimedSpan":
        entered = self._cm.__enter__()
        self.span = entered if isinstance(entered, Span) else None
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.seconds = time.perf_counter() - self._t0
        return self._cm.__exit__(*exc)


class Tracer:
    """A named tracer holding one span tree and an on/off switch.

    ``enabled=None`` (the default) reads the ``REPRO_TRACE`` environment
    variable, so exporting ``REPRO_TRACE=1`` turns on every tracer created
    afterwards — including the process-wide default.
    """

    def __init__(self, name: str = "repro", enabled: Optional[bool] = None):
        self.name = name
        self.enabled = _env_enabled() if enabled is None else enabled
        self.root = Span("<root>")
        self._local = threading.local()

    #: the open-span stack is per-thread: each rank thread nests its own
    #: spans without corrupting another's. A thread that never entered a
    #: ``thread_context`` roots at the tracer's root.
    @property
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = [self.root]
            self._local.stack = stack
        return stack

    @_stack.setter
    def _stack(self, value: list) -> None:
        self._local.stack = value

    @contextlib.contextmanager
    def thread_context(self, parent: Span):
        """Root this thread's span stack at ``parent``.

        Executor rank tasks enter this with the span that was current on
        the submitting thread, so per-rank spans nest under the section
        that spawned them instead of dangling off the root.
        """
        saved = getattr(self._local, "stack", None)
        self._local.stack = [parent]
        try:
            yield
        finally:
            if saved is None:
                self._local.stack = [self.root]
            else:
                self._local.stack = saved

    # -- switching ------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all recorded spans (the enabled flag is untouched)."""
        self.root = Span("<root>")
        # fresh thread-local storage: every thread re-roots at the new
        # root the next time it opens a span
        self._local = threading.local()

    # -- cross-process merge --------------------------------------------
    def summary(self) -> Dict[str, object]:
        """The recorded span tree as plain dicts — what a worker process
        pickles back to its parent so per-process spans are not silently
        dropped from the parent's report."""
        return {
            "tracer": self.name,
            "spans": [c.to_dict() for c in self.root.children.values()],
        }

    def merge(self, summary: Dict[str, object]) -> None:
        """Fold another process's :meth:`summary` into this tracer's
        tree (top-level spans merge under the root by name)."""
        for span_data in summary.get("spans") or ():
            self.root.child(str(span_data["name"])).merge_dict(span_data)

    # -- recording ------------------------------------------------------
    def span(self, name: str):
        """Context manager for one (nested) span entry.

        When the tracer is disabled this returns a shared no-op object —
        the only cost is this method call and one attribute check.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _ActiveSpan(self, name)

    def timed(self, name: str) -> _TimedSpan:
        """A span whose wall time is measured even when tracing is off."""
        return _TimedSpan(self, name)

    @property
    def current(self) -> Span:
        """The innermost open span (the root when none is open)."""
        return self._stack[-1]

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"Tracer({self.name!r}, {state}, spans={len(self.root.children)})"


# ---------------------------------------------------------------------------
# process-wide registry
# ---------------------------------------------------------------------------
_TRACERS: Dict[str, Tracer] = {}


def get_tracer(name: str = "repro") -> Tracer:
    """The process-wide tracer registered under ``name`` (created lazily).

    All built-in instrumentation (stencils, halo exchange, pipeline)
    records into the default ``"repro"`` tracer.
    """
    tracer = _TRACERS.get(name)
    if tracer is None:
        tracer = Tracer(name)
        _TRACERS[name] = tracer
    return tracer


def span(name: str):
    """Open a span on the default tracer: ``with obs.span("x") as sp:``."""
    return get_tracer().span(name)


def timed(name: str) -> _TimedSpan:
    """Always-measuring span on the default tracer (see ``Tracer.timed``)."""
    return get_tracer().timed(name)


def enable() -> None:
    """Turn on tracing on the default tracer."""
    get_tracer().enable()


def disable() -> None:
    """Turn off tracing on the default tracer."""
    get_tracer().disable()


def enabled() -> bool:
    """Whether the default tracer is currently recording."""
    return get_tracer().enabled


def reset() -> None:
    """Drop all spans recorded on the default tracer."""
    get_tracer().reset()
