"""Rendering of recorded span trees: text tables and JSON export.

The text report is the human-facing view — an indented span tree with
call counts, total/self wall time, and (for spans carrying a ``bytes``
attribute) achieved GB/s plus the fraction of the observed machine's
roofline bandwidth. The JSON export is the machine-facing view consumed
by the benchmarks.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.core.machine import MachineModel
from repro.obs.metrics import observed_machine
from repro.obs.tracer import Span, Tracer, get_tracer

__all__ = ["report", "snapshot", "to_json"]


def snapshot(node: Span) -> Dict[str, object]:
    """A JSON-able copy of one span subtree."""
    return {
        "name": node.name,
        "count": node.count,
        "total_seconds": node.total_seconds,
        "self_seconds": node.self_seconds,
        "attrs": dict(node.attrs),
        "children": [snapshot(c) for c in node.children.values()],
    }


def to_json(tracer: Optional[Tracer] = None, indent: Optional[int] = 2) -> str:
    """Serialize a tracer's full span tree (default tracer if omitted)."""
    tracer = tracer or get_tracer()
    payload = {
        "tracer": tracer.name,
        "machine": observed_machine().name,
        "spans": [snapshot(c) for c in tracer.root.children.values()],
        "runtime": _runtime_summary(),
        "ensemble": _ensemble_summary(),
        "resilience": _resilience_summary(),
        "serving": _serving_summary(),
    }
    return json.dumps(payload, indent=indent)


def _runtime_summary() -> Dict[str, Dict[str, object]]:
    # imported lazily: report must stay loadable without pulling the
    # runtime/codegen stack in
    from repro.runtime import runtime_summary

    return runtime_summary()


def _resilience_summary() -> Dict[str, object]:
    from repro.resilience import summary

    return summary()


def _bandwidth_cells(node: Span, machine: MachineModel) -> str:
    nbytes = node.attrs.get("bytes")
    if not isinstance(nbytes, (int, float)) or node.total_seconds <= 0:
        return f"{'':>9} {'':>7}"
    gbs = nbytes / node.total_seconds / 1e9
    frac = nbytes / node.total_seconds / machine.achievable_bandwidth
    return f"{gbs:>7.2f}GB/s {100 * frac:>5.1f}%"


def _attr_cell(node: Span) -> str:
    shown = []
    for key, value in node.attrs.items():
        if key == "bytes":
            continue
        if isinstance(value, float):
            shown.append(f"{key}={value:.3g}")
        else:
            shown.append(f"{key}={value}")
    return "  ".join(shown)


def _render(node: Span, depth: int, lines: List[str],
            machine: MachineModel) -> None:
    name = "  " * depth + node.name
    lines.append(
        f"{name:<44} {node.count:>7} {node.total_seconds:>10.4f}s "
        f"{node.self_seconds:>10.4f}s {_bandwidth_cells(node, machine)}"
        f"  {_attr_cell(node)}".rstrip()
    )
    for child in node.children.values():
        _render(child, depth + 1, lines, machine)


def report(
    tracer: Optional[Tracer] = None,
    machine: Optional[MachineModel] = None,
) -> str:
    """Render the recorded span tree as a text table.

    ``machine`` selects the roofline reference for the GB/s column
    (default: :func:`repro.obs.metrics.observed_machine`).
    """
    tracer = tracer or get_tracer()
    machine = machine or observed_machine()
    if not tracer.root.children:
        return (
            "no spans recorded — enable tracing with REPRO_TRACE=1 "
            "or repro.obs.enable()"
        )
    lines = [
        f"span tree ({tracer.name!r} tracer, roofline: {machine.name})",
        f"{'span':<44} {'calls':>7} {'total':>11} {'self':>11} "
        f"{'achieved':>9} {'%roof':>7}",
    ]
    for child in tracer.root.children.values():
        _render(child, 0, lines, machine)
    lines.extend(_runtime_lines())
    lines.extend(_ensemble_lines())
    lines.extend(_resilience_lines())
    lines.extend(_serving_lines())
    return "\n".join(lines)


def _runtime_lines() -> List[str]:
    """Footer summarizing the runtime memory subsystem, shown once either
    the pool or the compile cache has been exercised."""
    rt = _runtime_summary()
    pool = rt["pool"]
    cache = rt["compile_cache"]
    lines: List[str] = []
    if pool["checkouts"]:
        lines.append(
            f"buffer pool: {pool['checkouts']} checkouts, "
            f"{pool['reuse_hits']} reuse hits, "
            f"{pool['allocated_bytes'] / 1e6:.1f} MB allocated, "
            f"{pool['alloc_bytes_avoided'] / 1e6:.1f} MB avoided, "
            f"high water {pool['high_water_bytes'] / 1e6:.1f} MB"
        )
    if cache["hits"] or cache["misses"]:
        by = cache.get("by_backend") or {}
        per_backend = ""
        if len(by) > 1 or (by and "numpy" not in by):
            per_backend = " [" + ", ".join(
                f"{b}: {c['hits']}h/{c['misses']}m"
                for b, c in sorted(by.items())
            ) + "]"
        lines.append(
            f"compile cache: {cache['hits']} hits / "
            f"{cache['misses']} misses "
            f"(rate {100 * cache['hit_rate']:.0f}%), "
            f"{cache['entries']} programs cached, "
            f"{cache['bytes_saved'] / 1e6:.1f} MB working-set reuse"
            f"{per_backend}"
        )
    jt = rt.get("jit", {})
    if jt.get("compiles") or jt.get("disk_hits"):
        lines.append(
            f"jit: {jt['engine']} engine, {jt['compiles']} kernel-plan "
            f"compiles ({jt['compile_seconds']:.3f}s warmup), "
            f"{jt['disk_hits']} disk-cache hits"
        )
    rk = rt.get("ranks", {})
    if rk.get("sections"):
        lines.append(
            f"rank executor: {rk['workers']} workers, "
            f"{rk['sections']} parallel sections / "
            f"{rk['tasks']} rank tasks, "
            f"{rk['section_seconds']:.3f}s inside sections"
        )
    if rk.get("exchanges"):
        eff = rk.get("overlap_efficiency")
        eff_cell = f"{100 * eff:.0f}%" if eff is not None else "n/a"
        lines.append(
            f"halo overlap: {eff_cell} efficiency "
            f"({rk['hidden_seconds']:.3f}s hidden, "
            f"{rk['exposed_seconds']:.3f}s exposed, "
            f"{rk['exchanges']} split exchanges)"
        )
    pr = rt.get("procs", {})
    if pr.get("launches"):
        lines.append(
            f"process executor: {pr['launches']} launch(es), "
            f"{pr['workers']} worker(s) / {pr['ranks']} ranks, "
            f"{pr['worker_reports_merged']} worker reports merged, "
            f"{pr['messages']} shm messages "
            f"({pr['bytes'] / 1e6:.1f} MB)"
        )
    return lines


def _ensemble_lines() -> List[str]:
    """Footer summarizing ensemble amortization, shown once the
    experiment facade has driven at least one run."""
    es = _ensemble_summary()
    if not es["runs"]:
        return []
    rate = es["compile_amortization"]
    rate_cell = f"{100 * rate:.0f}%" if rate is not None else "n/a"
    return [
        f"ensemble: {es['runs']} run(s), {es['members']} member(s), "
        f"{es['member_steps']} member-steps in {es['seconds']:.3f}s; "
        f"amortized {es['grid_builds_avoided']} grid builds, "
        f"compile cache {es['compile_hits']} hits / "
        f"{es['compile_misses']} misses ({rate_cell}), "
        f"pool reuse {es['pool_reuse_hits']}"
    ]


def _ensemble_summary() -> Dict[str, object]:
    from repro.run import metrics

    return metrics.summary()


def _serving_summary() -> Optional[Dict[str, object]]:
    # lazy + tolerant: the report must stay renderable in a process
    # that never imported the serving layer
    import sys

    serve = sys.modules.get("repro.serve")
    if serve is None:
        return None
    return serve.serving_summary()


def _serving_lines() -> List[str]:
    """Footer summarizing forecast serving, shown once any
    :class:`~repro.serve.ForecastService` has handled a request."""
    sv = _serving_summary()
    if not sv:
        return []

    def ms(value) -> str:
        return f"{1e3 * value:.1f}ms" if value is not None else "n/a"

    lines = [
        f"serving: {sv['submitted']} submitted, "
        f"{sv['completed']} completed, {sv['shed']} shed, "
        f"{sv['deadline_exceeded']} deadline-exceeded, "
        f"{sv['cancelled']} cancelled, {sv['failed']} failed; "
        f"latency p50 {ms(sv['latency']['p50'])} / "
        f"p99 {ms(sv['latency']['p99'])}, "
        f"queue wait p50 {ms(sv['queue_wait']['p50'])}"
    ]
    cache = sv["cache"]
    ratio = cache.get("hit_ratio")
    ratio_cell = f"{100 * ratio:.0f}%" if ratio is not None else "n/a"
    lines.append(
        f"serving slo: {sv['retries']} retries, "
        f"{sv['degraded']} degraded, "
        f"breaker {sv['breakers']['trips']} trips / "
        f"{sv['breakers']['probes']} probes / "
        f"{sv['breakers']['recoveries']} recoveries; "
        f"cache {cache['hits']} hits / {cache['warm_hits']} warm / "
        f"{cache['misses']} misses (hit ratio {ratio_cell}), "
        f"{sv['steps_saved']} steps saved"
    )
    return lines


def _resilience_lines() -> List[str]:
    """Footer summarizing recovery activity, shown once any fault was
    injected or any recovery action taken."""
    rs = _resilience_summary()
    counters = rs["counters"]
    injected = rs["chaos"]["injected_total"]
    if not injected and not any(counters.values()):
        return []
    lines: List[str] = []
    if injected:
        by_site = ", ".join(
            f"{site}={n}" for site, n in sorted(rs["chaos"]["injected"].items())
        )
        lines.append(
            f"chaos: {injected} fault(s) injected "
            f"(seed {rs['chaos']['seed']}: {by_site})"
        )
    shown = [
        (name, counters[name])
        for name in (
            "guard_trips", "rollbacks", "retries", "fallbacks",
            "halo_timeouts", "halo_redeliveries", "orphaned_messages",
            "checkpoints_saved", "checkpoints_restored",
        )
        if counters.get(name)
    ]
    if shown:
        lines.append(
            "resilience: "
            + ", ".join(f"{n} {name}" for name, n in shown)
        )
    return lines
