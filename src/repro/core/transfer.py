"""Transfer tuning (Sec. VI-B, phase 2): reapply tuned patterns globally.

"The best M configurations are translated into optimization patterns and
tested on the whole graph... we ensure that optimization patterns are only
applied if they also provide a local performance improvement on a match."
Patterns are described by stencil labels (configurations are sufficiently
described by candidate labels + transformation type); the space of matches
is pruned by considering only the first match per pattern in each state.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

from repro.core.autotune import TuningConfig, _XFORMS
from repro.core.machine import MachineModel
from repro.core.perfmodel import model_sdfg_time
from repro.sdfg.cutout import cutout_from_nodes


@dataclasses.dataclass(frozen=True)
class Pattern:
    """A transferable optimization pattern."""

    xform: str  # "otf" or "sgf"
    labels: Tuple[Tuple[str, ...], ...]  # constituent labels of the match

    def __repr__(self) -> str:
        pretty = " ⊕ ".join("+".join(l) for l in self.labels)
        return f"Pattern({self.xform}: {pretty})"


def extract_patterns(
    configs: Sequence[TuningConfig], top_m: int = 2
) -> List[Pattern]:
    """Translate the best M configurations of each cutout into patterns."""
    patterns: List[Pattern] = []
    seen = set()
    by_cutout = {}
    for cfg in configs:
        by_cutout.setdefault(cfg.cutout_name, []).append(cfg)
    for _, cfgs in by_cutout.items():
        cfgs = sorted(cfgs, key=lambda c: c.score)
        taken = 0
        for cfg in cfgs:
            if cfg.is_baseline or taken >= top_m:
                continue
            taken += 1
            for xform_name, labels in cfg.steps:
                key = (xform_name, labels)
                if key not in seen:
                    seen.add(key)
                    patterns.append(Pattern(xform_name, labels))
    return patterns


def find_match(sdfg, state, pattern: Pattern):
    """First legal candidate in a state matching a pattern's labels."""
    xform = _XFORMS[pattern.xform]()
    for cand in xform.candidates(sdfg, state):
        i, j = cand[0], cand[1]
        labels = (
            tuple(state.nodes[i].constituents),
            tuple(state.nodes[j].constituents),
        )
        if labels == pattern.labels and xform.can_apply(sdfg, state, cand):
            return cand
    return None


@dataclasses.dataclass
class TransferResult:
    applied: int
    tested: int
    per_pattern: dict


def transfer_patterns(
    sdfg,
    patterns: Sequence[Pattern],
    machine: Optional[MachineModel] = None,
    require_improvement: bool = True,
) -> TransferResult:
    """Apply patterns across the whole graph.

    For every (pattern, state) pair, only the first match is considered
    (the paper's pruning); the rewrite is committed only when the machine
    model reports a local improvement on the surrounding state.
    """
    applied = 0
    tested = 0
    per_pattern: dict = {}
    for pattern in patterns:
        count = 0
        for state in sdfg.states:
            progress = True
            while progress:
                progress = False
                cand = find_match(sdfg, state, pattern)
                if cand is None:
                    break
                tested += 1
                if require_improvement and machine is not None:
                    if not _improves_locally(sdfg, state, pattern, cand, machine):
                        break
                xform = _XFORMS[pattern.xform]()
                xform.apply(sdfg, state, cand)
                applied += 1
                count += 1
                progress = True
        per_pattern[pattern] = count
    return TransferResult(applied=applied, tested=tested, per_pattern=per_pattern)


def _improves_locally(sdfg, state, pattern: Pattern, cand, machine) -> bool:
    """Model the state as a cutout before/after the candidate rewrite."""
    kernels = state.kernels
    if not kernels:
        return False
    cutout = cutout_from_nodes(sdfg, state, kernels)
    before = model_sdfg_time(cutout.sdfg, machine)
    trial = cutout.sdfg
    xform = _XFORMS[pattern.xform]()
    tstate = trial.states[0]
    # locate the same candidate by label in the cutout copy
    match = None
    for c in xform.candidates(trial, tstate):
        i, j = c[0], c[1]
        labels = (
            tuple(tstate.nodes[i].constituents),
            tuple(tstate.nodes[j].constituents),
        )
        if labels == pattern.labels and xform.can_apply(trial, tstate, c):
            match = c
            break
    if match is None:
        return False
    xform.apply(trial, tstate, match)
    after = model_sdfg_time(trial, machine)
    return after < before
