"""The paper's optimization methodology (Sec. VI, Fig. 7).

- :mod:`repro.core.machine` — machine models of the paper's testbeds
  (Piz Daint XC50: Haswell + P100; JUWELS Booster: A100; Aries network).
- :mod:`repro.core.perfmodel` — memory-bandwidth-bound performance model
  over expanded SDFGs (the Fig. 10 analysis).
- :mod:`repro.core.heuristics` — initial schedule heuristics (Sec. VI-A).
- :mod:`repro.core.autotune` — exhaustive cutout tuning (Sec. VI-B).
- :mod:`repro.core.transfer` — transfer tuning: pattern extraction and
  re-application (Sec. VI-B).
- :mod:`repro.core.pipeline` — the full optimization cycle (Table III).
"""

from repro.core.machine import (
    A100,
    ARIES,
    HASWELL,
    P100,
    MachineModel,
    NetworkModel,
)
from repro.core.perfmodel import (
    KernelPerf,
    bound_report,
    model_kernel_time,
    model_sdfg_time,
)

__all__ = [
    "A100",
    "ARIES",
    "HASWELL",
    "P100",
    "KernelPerf",
    "MachineModel",
    "NetworkModel",
    "bound_report",
    "model_kernel_time",
    "model_sdfg_time",
]
