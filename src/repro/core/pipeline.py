"""The optimization pipeline (Fig. 7) and Table III reproduction.

The cycle: initial heuristics → auto-tuning → transfer to the full
application → model-guided fine tuning. Every stage is applied through the
toolchain without modifying user code, and the modeled (and optionally
measured) step time is recorded after each stage — reproducing the rows of
Table III.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence

from repro import obs
from repro.core.autotune import make_evaluator, tune_cutout
from repro.core.heuristics import apply_schedule_heuristics
from repro.core.machine import HASWELL, P100, MachineModel
from repro.core.perfmodel import model_sdfg_time
from repro.core.transfer import extract_patterns, transfer_patterns
from repro.dsl.backend_numpy import region_ranges
from repro.lint.audit import TransformationAudit
from repro.lint.findings import LintFinding
from repro.sdfg.cutout import state_cutouts
from repro.sdfg.nodes import Kernel
from repro.sdfg.validation import validate_sdfg
from repro.sdfg.transformations import (
    DeadKernelElimination,
    LocalStorage,
    OTFMapFusion,
    PowerExpansion,
    RegionSplit,
    SubgraphFusion,
    apply_exhaustively,
)


@dataclasses.dataclass
class StageResult:
    """One row of Table III."""

    cycle: str
    name: str
    modeled_time: float
    measured_time: Optional[float] = None
    speedup: float = 1.0  # vs the FORTRAN baseline row
    #: wall-clock seconds the toolchain spent producing this stage
    stage_seconds: float = 0.0
    #: span-tree snapshot of the stage's work (tracing enabled only)
    spans: Optional[Dict] = None
    #: lint violations first observed after this stage's transformations
    #: (the transformation-safety audit attributes them to the stage)
    lint_findings: List[LintFinding] = dataclasses.field(default_factory=list)


def prune_inactive_regions(sdfg) -> int:
    """Region pruning: delete region statements that can never execute on
    this rank's bounds, then dead kernels. Returns statements removed."""
    removed = 0
    for state in sdfg.states:
        for node in state.nodes:
            if not isinstance(node, Kernel):
                continue
            for section in node.sections:
                kept = []
                for stmt, ext in section.statements:
                    if stmt.region is not None:
                        ranges = region_ranges(
                            stmt.region, node.domain, node.bounds, ext
                        )
                        if ranges is None:
                            removed += 1
                            continue
                    kept.append((stmt, ext))
                section.statements = kept
            node.sections = [s for s in node.sections if s.statements]
        state.nodes = [
            n
            for n in state.nodes
            if not (isinstance(n, Kernel) and not n.sections)
        ]
    apply_exhaustively(sdfg, [DeadKernelElimination()])
    return removed


def optimize_sdfg_locally(sdfg, machine: MachineModel = P100) -> None:
    """Local optimization bundle (Sec. VI-A): schedule heuristics, local
    storage, power-operator strength reduction, region splitting."""
    apply_schedule_heuristics(sdfg, machine)
    apply_exhaustively(sdfg, [LocalStorage()])
    apply_exhaustively(sdfg, [PowerExpansion()])
    apply_exhaustively(sdfg, [RegionSplit()])


@dataclasses.dataclass
class PipelineOptions:
    machine: MachineModel = P100
    baseline_machine: MachineModel = HASWELL
    measure: bool = False  # also time compiled programs (wall clock)
    transfer_states: Optional[Sequence[str]] = None  # tune only these states
    tune_measured: bool = False  # evaluate cutouts by execution
    max_tuning_cutouts: int = 32
    fine_tune_hooks: Sequence[Callable] = ()
    #: re-run the lint race/overlap rules after every stage and attribute
    #: new violations to the transformation that introduced them
    lint_audit: bool = True


class OptimizationPipeline:
    """Runs the Fig. 7 cycle on an orchestrated SDFG."""

    def __init__(self, options: Optional[PipelineOptions] = None):
        self.options = options or PipelineOptions()
        self.stages: List[StageResult] = []
        #: transformation-safety audit (created by run() when enabled)
        self.audit: Optional[TransformationAudit] = None

    # ------------------------------------------------------------------
    def _record(self, cycle: str, name: str, sdfg, baseline: float,
                run: Optional[Callable] = None) -> StageResult:
        modeled = model_sdfg_time(sdfg, self.options.machine)
        measured = None
        if self.options.measure and run is not None:
            measured = run(sdfg)
        result = StageResult(
            cycle=cycle,
            name=name,
            modeled_time=modeled,
            measured_time=measured,
            speedup=baseline / modeled if modeled > 0 else float("inf"),
        )
        self.stages.append(result)
        return result

    def _stage(self, cycle: str, name: str, sdfg, baseline: float,
               run: Optional[Callable], work: Optional[Callable] = None
               ) -> StageResult:
        """Apply one optimization stage inside a span and record its row.

        The stage's transformation work, model evaluation and optional
        measured run all happen under a ``pipeline.<name>`` span, so each
        Table III row carries the full span tree of how it was produced.
        """
        tracer = obs.get_tracer()
        new_findings: List[LintFinding] = []
        with tracer.timed(f"pipeline.{name}") as timer:
            if work is not None:
                work()
            if self.audit is not None:
                new_findings = self.audit.check(sdfg, name)
                if timer.span is not None:
                    timer.span.set("lint.new_findings", len(new_findings))
                    if new_findings:
                        timer.span.set(
                            "lint.findings", [str(f) for f in new_findings]
                        )
            result = self._record(cycle, name, sdfg, baseline, run)
        result.lint_findings = new_findings
        result.stage_seconds = timer.seconds
        if timer.span is not None:
            result.spans = obs.snapshot(timer.span)
        return result

    def run(self, sdfg, run: Optional[Callable] = None) -> List[StageResult]:
        """Optimize ``sdfg`` in place, recording Table III-style stages.

        ``run`` optionally executes a compiled SDFG and returns wall-clock
        seconds (used when ``options.measure`` is set).
        """
        opts = self.options
        validate_sdfg(sdfg)  # structural invariants must hold at entry
        if opts.lint_audit:
            self.audit = TransformationAudit()
            self.audit.start(sdfg)  # pre-existing findings are not charged
        baseline_time = model_sdfg_time(sdfg, opts.baseline_machine)
        self.stages.append(
            StageResult(
                cycle="",
                name="FORTRAN",
                modeled_time=baseline_time,
                speedup=1.0,
            )
        )
        self._stage("", "GT4Py + DaCe (Default)", sdfg, baseline_time, run)

        # ---- cycle 1 ------------------------------------------------------
        self._stage("Cycle 1", "Stencil schedule heuristics", sdfg,
                    baseline_time, run,
                    lambda: apply_schedule_heuristics(sdfg, opts.machine))

        self._stage("Cycle 1", "Local caching", sdfg, baseline_time, run,
                    lambda: apply_exhaustively(sdfg, [LocalStorage()]))

        self._stage("Cycle 1", "Optimize power operator", sdfg,
                    baseline_time, run,
                    lambda: apply_exhaustively(sdfg, [PowerExpansion()]))

        self._stage("Cycle 1", "Split regions to multiple kernels", sdfg,
                    baseline_time, run,
                    lambda: apply_exhaustively(sdfg, [RegionSplit()]))

        # ---- cycle 2 ------------------------------------------------------
        def _fine_tune():
            for hook in opts.fine_tune_hooks:
                hook(sdfg)

        self._stage("Cycle 2", "Lagrangian contrib. reschedule", sdfg,
                    baseline_time, run, _fine_tune)

        self._stage("Cycle 2", "Region pruning", sdfg, baseline_time, run,
                    lambda: prune_inactive_regions(sdfg))

        self._stage("Cycle 2", "Transfer Tuning (FVT)", sdfg,
                    baseline_time, run, lambda: self.transfer_tune(sdfg))
        validate_sdfg(sdfg)  # and after the final transformation stage
        return self.stages

    # ------------------------------------------------------------------
    def transfer_tune(self, sdfg) -> Dict[str, object]:
        """Phase 1 (tune cutouts) + phase 2 (transfer patterns)."""
        opts = self.options
        cutouts = state_cutouts(sdfg)
        if opts.transfer_states is not None:
            cutouts = [
                c
                for c in cutouts
                if any(tag in c.source_state for tag in opts.transfer_states)
            ]
        cutouts = cutouts[: opts.max_tuning_cutouts]
        evaluator = make_evaluator(
            machine=opts.machine, measured=opts.tune_measured
        )
        configs = []
        total_evaluated = 0
        with obs.timed("transfer.tune_cutouts") as phase1:
            for cutout in cutouts:
                cfgs, n = tune_cutout(cutout, evaluator)
                configs.extend(cfgs)
                total_evaluated += n
        patterns = extract_patterns(configs, top_m=2)
        with obs.timed("transfer.apply_patterns") as phase2:
            result = transfer_patterns(sdfg, patterns, machine=opts.machine)
        phase1_time = phase1.seconds
        phase2_time = phase2.seconds
        # clean up fully-fused leftovers
        apply_exhaustively(sdfg, [DeadKernelElimination()])
        return {
            "cutouts": len(cutouts),
            "configurations": total_evaluated,
            "patterns": len(patterns),
            "applied": result.applied,
            "per_pattern": result.per_pattern,
            "phase1_seconds": phase1_time,
            "phase2_seconds": phase2_time,
        }


def format_table3(stages: Sequence[StageResult]) -> str:
    """Render the stages as the paper's Table III."""
    lines = [f"{'Cycle':<8} {'Version':<36} {'Step Time':>12} {'Speedup':>9}"]
    for s in stages:
        lines.append(
            f"{s.cycle:<8} {s.name:<36} {s.modeled_time:>10.4f}s "
            f"{s.speedup:>8.2f}x"
        )
    return "\n".join(lines)
