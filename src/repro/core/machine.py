"""Machine models of the paper's evaluation hardware.

The paper's discipline is model-driven performance engineering: the key
quantity is attainable memory bandwidth (Sec. VIII). The GPU we obviously
cannot run here is *modeled* from first principles with the same numbers
the paper measures:

- Piz Daint XC50 node: Intel Xeon E5-2690 v3 (Haswell, 12 cores), STREAM
  43.77 GB/s, copy-stencil 40.99 GiB/s; NVIDIA P100, 501.1 GB/s peak,
  copy-stencil 489.83 GiB/s → 11.45× bandwidth ratio.
- JUWELS Booster node: NVIDIA A100, 2.83× the P100 memory bandwidth.
- Cray Aries interconnect: LogGP-style latency/bandwidth model used for
  the Fig. 11 weak-scaling projection.

Beyond raw bandwidth, two effects shape Table II:

- GPUs are *underutilized at small parallelism* (vertical solvers use 2D
  thread grids) — an occupancy ramp reduces effective bandwidth until
  enough threads are resident, plus a fixed launch overhead per kernel.
- CPUs with the FORTRAN k-blocking schedule are *cache-resident at small
  domains* — an explicit cache-capacity model raises effective bandwidth
  while the per-slice working set fits in L2/L3 and degrades toward DRAM
  bandwidth as the domain grows (the super-linear scaling of Table II).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

GB = 1e9
GiB = 2**30
US = 1e-6


@dataclasses.dataclass(frozen=True)
class MachineModel:
    """Performance model of one processor."""

    name: str
    kind: str  # "gpu" or "cpu"
    peak_bandwidth: float  # B/s (vendor peak)
    achievable_fraction: float  # measured copy-stencil / peak
    peak_flops: float  # FLOP/s (double precision)
    launch_overhead: float = 0.0  # s per kernel launch
    #: resident threads needed to saturate memory bandwidth (GPU)
    saturation_threads: int = 1
    #: L2-ish bandwidth serving repeated (cached) accesses
    cache_bandwidth: Optional[float] = None
    #: cache capacity for the CPU blocking model
    cache_bytes: Optional[int] = None
    #: fraction of peak bandwidth attainable from DRAM with a poor
    #: (non-coalesced / strided) innermost access order
    uncoalesced_fraction: float = 0.3

    @property
    def achievable_bandwidth(self) -> float:
        return self.peak_bandwidth * self.achievable_fraction

    def occupancy(self, parallel_work: int) -> float:
        """Fraction of attainable bandwidth sustained by this much
        parallelism (GPU occupancy ramp; CPUs saturate immediately)."""
        if self.kind != "gpu":
            return 1.0
        frac = parallel_work / self.saturation_threads
        # smooth ramp: little's law-ish, saturating at 1
        return frac / (1.0 + frac)

    def effective_cpu_bandwidth(self, working_set_bytes: int) -> float:
        """Cache-aware effective bandwidth for the CPU blocking model."""
        dram = self.achievable_bandwidth
        if self.cache_bytes is None or self.cache_bandwidth is None:
            return dram
        if working_set_bytes <= 0:
            return self.cache_bandwidth
        ratio = min(1.0, self.cache_bytes / working_set_bytes)
        # fraction `ratio` of accesses hit cache, the rest go to DRAM
        return 1.0 / (ratio / self.cache_bandwidth + (1.0 - ratio) / dram)


#: Intel Xeon E5-2690 v3 (Haswell) as configured in production: 6 ranks ×
#: 4 threads. STREAM 43.77 GB/s; copy stencil 40.99 GiB/s (Sec. VIII-A).
HASWELL = MachineModel(
    name="Xeon E5-2690 v3 (Haswell)",
    kind="cpu",
    peak_bandwidth=43.77 * GB,
    achievable_fraction=(40.99 * GiB) / (43.77 * GB),
    peak_flops=0.48e12,  # 12 cores × 2.6 GHz × 16 DP flop/cycle
    launch_overhead=0.0,
    cache_bandwidth=130 * GB,  # effective L3 stencil streaming bandwidth
    cache_bytes=30 * 2**20,  # 30 MiB L3
    #: column-blocked vertical solvers stride through memory; the paper
    #: notes they "typically do not perform well in the FORTRAN FV3
    #: column-blocking schedule" (Sec. VIII-B)
    uncoalesced_fraction=0.45,
)

#: NVIDIA Tesla P100 (Piz Daint). 501.1 GB/s peak, 489.83 GiB/s measured
#: copy stencil; 4.7 TFLOP/s double precision.
P100 = MachineModel(
    name="NVIDIA Tesla P100",
    kind="gpu",
    peak_bandwidth=501.1 * GB,
    achievable_fraction=(489.83 * GiB) / (501.1 * GB),
    peak_flops=4.7e12,
    launch_overhead=6.0 * US,
    saturation_threads=60_000,  # occupancy ramp calibrated on Table II
    cache_bandwidth=1.5e12,  # L2
    # K-innermost default schedules still partially coalesce through the
    # L2 on Pascal; calibrated so the untuned backend lands near the
    # paper's 1.5x-over-FORTRAN default (Table III)
    uncoalesced_fraction=0.55,
)

#: NVIDIA Tesla A100 (JUWELS Booster). Memory bandwidth 2.83× the P100
#: (Sec. IX-B); 9.7 TFLOP/s DP, larger L2, more SMs.
A100 = MachineModel(
    name="NVIDIA Tesla A100",
    kind="gpu",
    peak_bandwidth=2.83 * 501.1 * GB,
    achievable_fraction=(489.83 * GiB) / (501.1 * GB),
    peak_flops=9.7e12,
    launch_overhead=4.0 * US,
    saturation_threads=120_000,
    cache_bandwidth=4.0e12,
)


@dataclasses.dataclass(frozen=True)
class NetworkModel:
    """LogGP-style point-to-point network model."""

    name: str
    latency: float  # s per message
    bandwidth: float  # B/s per link
    overlap_fraction: float = 0.8  # nonblocking overlap with compute

    def message_time(self, nbytes: int) -> float:
        return self.latency + nbytes / self.bandwidth

    def halo_exchange_time(self, messages) -> float:
        """Time for a set of concurrent nonblocking messages.

        ``messages`` is an iterable of byte counts sent by one rank; links
        are full duplex and messages to distinct neighbors proceed in
        parallel, so the cost is the largest single message plus one
        latency per posted message (software overhead).
        """
        messages = list(messages)
        if not messages:
            return 0.0
        largest = max(messages)
        return self.latency * len(messages) + largest / self.bandwidth


#: Cray Aries (Piz Daint): ~1.3 µs latency, ~10 GB/s effective per-link
#: point-to-point bandwidth.
ARIES = NetworkModel(name="Cray Aries", latency=1.3 * US, bandwidth=10.0 * GB)


@dataclasses.dataclass(frozen=True)
class NodeModel:
    """A full compute node: processor + network."""

    name: str
    processor: MachineModel
    network: NetworkModel


PIZ_DAINT_GPU = NodeModel("Piz Daint XC50 (P100)", P100, ARIES)
PIZ_DAINT_CPU = NodeModel("Piz Daint XC50 (Haswell)", HASWELL, ARIES)
JUWELS_BOOSTER = NodeModel(
    "JUWELS Booster (A100)",
    A100,
    NetworkModel(name="InfiniBand HDR", latency=1.0 * US, bandwidth=25.0 * GB),
)
