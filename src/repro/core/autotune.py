"""Exhaustive auto-tuning of cutout subgraphs (Sec. VI-B, phase 1).

For each cutout, the configuration space is the set of fusion-
transformation application sequences ("weakly-connected subgraphs of the
state with at least two maps"); every configuration is evaluated — by the
machine model or by measured execution — and the best M are kept for
transfer (the paper explores ≤48 configurations per cutout, 1,272 in total
for the FVT module, exhaustively).

The tuning is hierarchical as in the paper: an OTF pass first (trading
memory for recomputation), then an SGF pass on the OTF-optimized cutouts.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.machine import MachineModel
from repro.core.perfmodel import model_sdfg_time
from repro.obs import tracer as _obs
from repro.sdfg.cutout import Cutout, time_cutout
from repro.sdfg.transformations import OTFMapFusion, SubgraphFusion

_TRACER = _obs.get_tracer()

#: A single transformation application, described by the constituent
#: stencil labels of the kernels it touched (the paper: "a configuration is
#: sufficiently described by a set of labels of the candidates and which
#: transformations were applied").
Step = Tuple[str, Tuple[Tuple[str, ...], ...]]


@dataclasses.dataclass
class TuningConfig:
    """One evaluated configuration of a cutout."""

    steps: Tuple[Step, ...]
    score: float  # seconds (model or measured); lower is better
    cutout_name: str

    @property
    def is_baseline(self) -> bool:
        return not self.steps


_XFORMS = {"otf": OTFMapFusion, "sgf": SubgraphFusion}


def _candidate_steps(sdfg, xform_name: str) -> List[Tuple[object, Step]]:
    """Applicable candidates with their label-based descriptions."""
    xform = _XFORMS[xform_name]()
    out = []
    for state in sdfg.states:
        for cand in xform.candidates(sdfg, state):
            if not xform.can_apply(sdfg, state, cand):
                continue
            i, j = cand[0], cand[1]
            labels = (
                tuple(state.nodes[i].constituents),
                tuple(state.nodes[j].constituents),
            )
            out.append(((state, cand, xform), (xform_name, labels)))
    return out


def _apply_step(sdfg, concrete) -> None:
    state, cand, xform = concrete
    xform.apply(sdfg, state, cand)


def make_evaluator(
    machine: Optional[MachineModel] = None,
    measured: bool = False,
    repetitions: int = 3,
) -> Callable[[Cutout], float]:
    """Score function for configurations: modeled or measured seconds."""
    if measured:
        return lambda cutout: time_cutout(cutout, repetitions=repetitions)
    if machine is None:
        raise ValueError("model-based evaluation requires a machine model")
    return lambda cutout: model_sdfg_time(cutout.sdfg, machine)


def tune_cutout(
    cutout: Cutout,
    evaluator: Callable[[Cutout], float],
    passes: Sequence[str] = ("otf", "sgf"),
    max_depth: int = 3,
    top_m: int = 2,
) -> Tuple[List[TuningConfig], int]:
    """Exhaustively tune one cutout.

    Returns (configs sorted best-first, total configurations evaluated).
    The search is a tree over transformation applications per pass; each
    pass starts from the best configuration of the previous one
    (hierarchical OTF → SGF tuning).
    """
    with _TRACER.span("autotune.cutout") as sp:
        configs, evaluated = _tune_cutout(
            cutout, evaluator, passes, max_depth, top_m
        )
        sp.add("configurations", evaluated)
        sp.set("cutout", cutout.source_state)
        return configs, evaluated


def _tune_cutout(cutout, evaluator, passes, max_depth, top_m):
    evaluated = 0

    def scored(sdfg, steps) -> TuningConfig:
        nonlocal evaluated
        evaluated += 1
        c = Cutout(sdfg, cutout.inputs, cutout.outputs, cutout.source_state)
        return TuningConfig(tuple(steps), evaluator(c), cutout.source_state)

    best_sdfg = cutout.sdfg
    best_steps: Tuple[Step, ...] = ()
    all_configs: List[TuningConfig] = [scored(best_sdfg, best_steps)]

    for pass_name in passes:
        frontier = [(best_sdfg, best_steps)]
        pass_configs: List[TuningConfig] = []
        for _ in range(max_depth):
            next_frontier = []
            for sdfg, steps in frontier:
                for concrete, step in _candidate_steps(sdfg, pass_name):
                    trial = sdfg.copy()
                    # re-locate the candidate in the copy by position
                    state_idx = sdfg.states.index(concrete[0])
                    trial_state = trial.states[state_idx]
                    xform = _XFORMS[pass_name]()
                    if not xform.can_apply(trial, trial_state, concrete[1]):
                        continue
                    xform.apply(trial, trial_state, concrete[1])
                    cfg = scored(trial, steps + (step,))
                    pass_configs.append(cfg)
                    next_frontier.append((trial, cfg.steps))
            frontier = next_frontier
            if not frontier:
                break
        all_configs.extend(pass_configs)
        # hierarchical: next pass starts from this pass's best
        pool = pass_configs + [c for c in all_configs if c.is_baseline]
        pool.sort(key=lambda c: c.score)
        if pool and not pool[0].is_baseline:
            best = pool[0]
            best_sdfg, best_steps = _replay(cutout, best.steps), best.steps
    all_configs.sort(key=lambda c: c.score)
    return all_configs[: max(top_m, len(all_configs))], evaluated


def _replay(cutout: Cutout, steps: Tuple[Step, ...]):
    """Re-apply a step sequence onto a fresh copy of the cutout."""
    sdfg = cutout.sdfg.copy()
    for xform_name, labels in steps:
        xform = _XFORMS[xform_name]()
        applied = False
        for state in sdfg.states:
            for cand in xform.candidates(sdfg, state):
                i, j = cand[0], cand[1]
                cl = (
                    tuple(state.nodes[i].constituents),
                    tuple(state.nodes[j].constituents),
                )
                if cl == labels and xform.can_apply(sdfg, state, cand):
                    xform.apply(sdfg, state, cand)
                    applied = True
                    break
            if applied:
                break
        if not applied:
            raise RuntimeError(f"could not replay step {xform_name} {labels}")
    return sdfg
