"""Initial schedule heuristics (Sec. VI-A).

"We search the available space on a representative horizontal stencil and
vertical solver separately, and apply the resulting scheme en masse in the
dynamical core, providing a better starting point over the default
parameters." The sweep evaluates every feasible schedule (Sec. V-A) of a
representative kernel under the machine model and applies the winner to
every kernel of the same iteration policy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.machine import MachineModel
from repro.core.perfmodel import model_kernel_time
from repro.sdfg.nodes import Kernel, KernelSchedule, feasible_schedules


def sweep_schedules(
    kernel: Kernel, sdfg, machine: MachineModel
) -> List[Tuple[KernelSchedule, float]]:
    """Evaluate all feasible schedules of one kernel, best first."""
    results = []
    original = kernel.schedule
    try:
        for sched in feasible_schedules(kernel.order):
            sched = sched.copy()
            sched.cached_fields = dict(original.cached_fields)
            sched.regions_as_predication = original.regions_as_predication
            sched.fuse_intervals = original.fuse_intervals
            kernel.schedule = sched
            results.append((sched, model_kernel_time(kernel, sdfg, machine)))
    finally:
        kernel.schedule = original
    results.sort(key=lambda r: r[1])
    return results


def representative_kernels(sdfg) -> Dict[str, Kernel]:
    """Pick the most expensive kernel of each iteration policy class.

    "Representative" = the kernel moving the most bytes: its schedule
    choice dominates the class.
    """
    best: Dict[str, Tuple[int, Kernel]] = {}
    for kernel in sdfg.all_kernels():
        cls = "vertical" if kernel.order in ("FORWARD", "BACKWARD") else "horizontal"
        nbytes = kernel.moved_bytes(sdfg)
        if cls not in best or nbytes > best[cls][0]:
            best[cls] = (nbytes, kernel)
    return {cls: k for cls, (_, k) in best.items()}


def apply_schedule_heuristics(
    sdfg, machine: MachineModel, reps: Optional[Dict[str, Kernel]] = None
) -> Dict[str, KernelSchedule]:
    """Sweep representatives and apply the winners en masse.

    Returns the chosen schedule per class. With the paper's layout and
    machine this recovers [Interval, Operation, K, J, I] for horizontal
    stencils and [J, I, Interval, Operation, K] for vertical solvers
    (Sec. VI-A4).
    """
    reps = reps or representative_kernels(sdfg)
    chosen: Dict[str, KernelSchedule] = {}
    for cls, kernel in reps.items():
        ranked = sweep_schedules(kernel, sdfg, machine)
        chosen[cls] = ranked[0][0]
    for kernel in sdfg.all_kernels():
        cls = "vertical" if kernel.order in ("FORWARD", "BACKWARD") else "horizontal"
        if cls in chosen:
            sched = chosen[cls].copy()
            # per-kernel attributes are preserved; only the layout-related
            # knobs are transferred en masse
            sched.cached_fields = dict(kernel.schedule.cached_fields)
            sched.regions_as_predication = kernel.schedule.regions_as_predication
            sched.fuse_intervals = kernel.schedule.fuse_intervals
            sched.device = kernel.schedule.device
            kernel.schedule = sched
    return chosen
