"""Initial schedule heuristics (Sec. VI-A).

"We search the available space on a representative horizontal stencil and
vertical solver separately, and apply the resulting scheme en masse in the
dynamical core, providing a better starting point over the default
parameters." The sweep evaluates every feasible schedule (Sec. V-A) of a
representative kernel under the machine model and applies the winner to
every kernel of the same iteration policy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.machine import MachineModel
from repro.core.perfmodel import model_kernel_time
from repro.sdfg.nodes import Kernel, KernelSchedule, feasible_schedules


def sweep_schedules(
    kernel: Kernel, sdfg, machine: MachineModel
) -> List[Tuple[KernelSchedule, float]]:
    """Evaluate all feasible schedules of one kernel, best first."""
    results = []
    original = kernel.schedule
    try:
        for sched in feasible_schedules(kernel.order):
            sched = sched.copy()
            sched.cached_fields = dict(original.cached_fields)
            sched.regions_as_predication = original.regions_as_predication
            sched.fuse_intervals = original.fuse_intervals
            kernel.schedule = sched
            results.append((sched, model_kernel_time(kernel, sdfg, machine)))
    finally:
        kernel.schedule = original
    results.sort(key=lambda r: r[1])
    return results


def representative_kernels(sdfg) -> Dict[str, Kernel]:
    """Pick the most expensive kernel of each iteration policy class.

    "Representative" = the kernel moving the most bytes: its schedule
    choice dominates the class.
    """
    best: Dict[str, Tuple[int, Kernel]] = {}
    for kernel in sdfg.all_kernels():
        cls = "vertical" if kernel.order in ("FORWARD", "BACKWARD") else "horizontal"
        nbytes = kernel.moved_bytes(sdfg)
        if cls not in best or nbytes > best[cls][0]:
            best[cls] = (nbytes, kernel)
    return {cls: k for cls, (_, k) in best.items()}


def apply_schedule_heuristics(
    sdfg, machine: MachineModel, reps: Optional[Dict[str, Kernel]] = None
) -> Dict[str, KernelSchedule]:
    """Sweep representatives and apply the winners en masse.

    Returns the chosen schedule per class. With the paper's layout and
    machine this recovers [Interval, Operation, K, J, I] for horizontal
    stencils and [J, I, Interval, Operation, K] for vertical solvers
    (Sec. VI-A4).
    """
    reps = reps or representative_kernels(sdfg)
    chosen: Dict[str, KernelSchedule] = {}
    for cls, kernel in reps.items():
        ranked = sweep_schedules(kernel, sdfg, machine)
        chosen[cls] = ranked[0][0]
    for kernel in sdfg.all_kernels():
        cls = "vertical" if kernel.order in ("FORWARD", "BACKWARD") else "horizontal"
        if cls in chosen:
            sched = chosen[cls].copy()
            # per-kernel attributes are preserved; only the layout-related
            # knobs are transferred en masse
            sched.cached_fields = dict(kernel.schedule.cached_fields)
            sched.regions_as_predication = kernel.schedule.regions_as_predication
            sched.fuse_intervals = kernel.schedule.fuse_intervals
            sched.device = kernel.schedule.device
            kernel.schedule = sched
    return chosen


def select_cpu_tiles(
    kernel: Kernel, sdfg, machine: MachineModel
) -> Tuple[int, Optional[int]]:
    """(k-block size, i-tile) for the compiled CPU backend's loop nests.

    Starts from the machine model's ``CPU_K_BLOCK`` (the block depth the
    perf model assumes keeps a kernel's working set cache-resident) and
    halves it while the per-block working set still exceeds the machine's
    last-level cache. The i-tile is taken from the kernel's tuned
    ``schedule.tile_sizes`` when one was chosen by the transfer-tuning
    sweep; ``None`` means "no tiling" (a plain i loop).
    """
    from repro.core.perfmodel import CPU_K_BLOCK

    nk = max(kernel.domain[2], 1)
    kb = max(1, min(CPU_K_BLOCK, nk))
    per_level = max(kernel.moved_bytes(sdfg) // nk, 1)
    cache = getattr(machine, "cache_bytes", 0) or 0
    if cache:
        while kb > 1 and per_level * kb > cache:
            kb //= 2
    tile = kernel.schedule.tile_sizes
    i_tile = tile[0] if tile and tile[0] and tile[0] > 0 else None
    return kb, i_tile
