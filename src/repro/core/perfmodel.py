"""Memory-bandwidth-bound performance modeling (Sec. VI-C, Fig. 10).

The paper's automated analysis is "a simple script (17 lines of Python)
that computes the peak performance of each SDFG map, if it were memory
bandwidth bound ... considering every element of the field being accessed
once, even if multiple threads access the same element". This module is
that script grown into a library:

- :func:`peak_time` — the bandwidth bound itself (the paper's 17-liner);
- :func:`model_kernel_time` — a predicted runtime adding the effects the
  bound ignores (occupancy ramp, launch overhead, repeated-access traffic,
  compute-boundness, CPU cache blocking);
- :func:`bound_report` — the Fig. 10 table: worst-performing, most
  important kernels ranked by aggregate runtime with % of peak bandwidth.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.core.machine import MachineModel
from repro.sdfg.nodes import Kernel


def parallel_work(kernel: Kernel) -> int:
    """Concurrent threads exposed by a kernel's schedule.

    Vertical solvers iterate K sequentially, exposing only a 2D thread
    grid (the paper's explanation for Riemann-solver underutilization at
    small domains, Sec. VIII-B).
    """
    ni, nj, nk = kernel.domain
    work = ni * nj
    if kernel.order == "PARALLEL" and "K" not in kernel.schedule.loop_dims:
        work *= nk
    return max(work, 1)


def coalescing_factor(kernel: Kernel, machine: MachineModel) -> float:
    """Bandwidth efficiency of the innermost access order.

    With the paper's I-contiguous (FORTRAN) layout, schedules whose
    unit-stride dimension is I generate wide/coalesced loads; any other
    innermost dimension pays the machine's uncoalesced fraction.
    """
    if machine.kind != "gpu":
        return 1.0  # the CPU baseline is tuned/vectorized by construction
    order = kernel.schedule.iteration_order
    inner = None
    for dim in reversed(order):
        if dim in ("I", "J", "K") and dim not in kernel.schedule.loop_dims:
            inner = dim
            break
    return 1.0 if inner == "I" else machine.uncoalesced_fraction


#: K-levels the FORTRAN schedule keeps in flight when blocking (several
#: 2D slices per field are resident simultaneously across fused loops)
CPU_K_BLOCK = 12


def working_set_bytes(kernel: Kernel, sdfg) -> int:
    """CPU blocking-model working set.

    Horizontal computations are k-blocked in the FORTRAN schedule: the hot
    set is a handful of 2D slices of each accessed field. Vertical solvers
    traverse whole columns, defeating the blocking — their working set is
    the full 3D access footprint (Sec. VIII-B).
    """
    total = kernel.moved_bytes(sdfg)
    if kernel.order == "PARALLEL":
        nk = max(kernel.domain[2], 1)
        return max(total * min(CPU_K_BLOCK, nk) // nk, 1)
    return total


def peak_time(kernel: Kernel, sdfg, machine: MachineModel) -> float:
    """The paper's bandwidth bound: bytes moved once / peak bandwidth."""
    return kernel.moved_bytes(sdfg) / machine.peak_bandwidth


def model_kernel_time(kernel: Kernel, sdfg, machine: MachineModel) -> float:
    """Predicted kernel runtime on a machine model."""
    nbytes = kernel.moved_bytes(sdfg)
    excess = kernel.excess_access_bytes(sdfg)
    flops = kernel.flops()
    if machine.kind == "gpu":
        bw = (
            machine.achievable_bandwidth
            * machine.occupancy(parallel_work(kernel))
            * coalescing_factor(kernel, machine)
        )
        t_mem = nbytes / bw
        if machine.cache_bandwidth:
            t_mem += excess / machine.cache_bandwidth
        t_compute = flops / machine.peak_flops
        return kernel.launch_count() * machine.launch_overhead + max(
            t_mem, t_compute
        )
    # CPU: cache-aware blocking model. The k-blocked FORTRAN schedule only
    # benefits from caches when the kernel actually *re-uses* data (stencil
    # offsets, inter-operation reuse — proxied by the repeated-access
    # excess); streaming kernels (e.g. a copy) run at STREAM bandwidth.
    reuse = excess / max(nbytes, 1)
    if reuse >= 0.5:
        bw = machine.effective_cpu_bandwidth(working_set_bytes(kernel, sdfg))
    else:
        bw = machine.achievable_bandwidth
    # vertical solvers traverse columns against the layout
    if kernel.order in ("FORWARD", "BACKWARD"):
        bw *= machine.uncoalesced_fraction
    t_mem = nbytes / bw
    t_compute = flops / machine.peak_flops
    return max(t_mem, t_compute)


def model_sdfg_time(sdfg, machine: MachineModel) -> float:
    """Predicted program runtime: sum over kernels × loop invocations."""
    invocations = sdfg.kernel_invocations()
    total = 0.0
    for si, state in enumerate(sdfg.states):
        for node in state.nodes:
            if isinstance(node, Kernel):
                total += invocations[si] * model_kernel_time(node, sdfg, machine)
    return total


@dataclasses.dataclass
class KernelPerf:
    """One row of the Fig. 10 report."""

    label: str
    runtime: float  # modeled or measured, worst configuration
    total_runtime: float  # summed over invocations (importance ranking)
    peak: float  # bandwidth-bound lower bound (largest configuration)
    invocations: int

    @property
    def utilization(self) -> float:
        """Fraction of peak memory bandwidth attained."""
        return min(1.0, self.peak / self.runtime) if self.runtime > 0 else 0.0


def bound_report(
    sdfg,
    machine: MachineModel,
    measured: Optional[Dict[str, float]] = None,
    top: int = 10,
) -> List[KernelPerf]:
    """Rank kernels by overall importance with % peak bandwidth.

    Kernels executing under different configurations are grouped by label;
    the maximal runtime and largest modeled configuration are reported
    (Sec. VI-C). ``measured`` optionally supplies instrumented runtimes per
    kernel label (overriding the model), as in the paper's workflow where
    modeling is combined with runtime results.
    """
    invocations = sdfg.kernel_invocations()
    grouped: Dict[str, KernelPerf] = {}
    for si, state in enumerate(sdfg.states):
        for node in state.nodes:
            if not isinstance(node, Kernel):
                continue
            if measured and node.label in measured:
                runtime = measured[node.label]
            else:
                runtime = model_kernel_time(node, sdfg, machine)
            pk = peak_time(node, sdfg, machine)
            inv = invocations[si]
            row = grouped.get(node.label)
            if row is None:
                grouped[node.label] = KernelPerf(
                    node.label, runtime, runtime * inv, pk, inv
                )
            else:
                row.runtime = max(row.runtime, runtime)
                row.peak = max(row.peak, pk)
                row.total_runtime += runtime * inv
                row.invocations += inv
    rows = sorted(grouped.values(), key=lambda r: -r.total_runtime)
    return rows[:top]


def format_bound_report(rows: List[KernelPerf]) -> str:
    """Render a Fig. 10-style text table."""
    lines = [
        f"{'kernel':<42} {'invoc':>6} {'runtime':>12} {'peak (BW)':>12} {'% peak':>8}"
    ]
    for r in rows:
        lines.append(
            f"{r.label[:42]:<42} {r.invocations:>6} "
            f"{r.runtime * 1e6:>10.2f}us {r.peak * 1e6:>10.2f}us "
            f"{100 * r.utilization:>7.2f}%"
        )
    return "\n".join(lines)
