"""State guards: cheap invariant checks on the prognostic state.

A :class:`StateGuard` scans every rank's fields between remapping steps
for the three ways a dynamical-core run dies silently:

- non-finite values (NaN/Inf blowup, corrupted halo payloads),
- non-positive layer thickness (``delp <= 0`` collapses the vertical
  coordinate),
- unphysical wind speed (a CFL-style bound: a run past it is already
  lost, it just hasn't crashed yet).

The scan allocates nothing in steady state: the single temporary — the
boolean output of ``np.isfinite`` — is checked out of the
:class:`~repro.runtime.pool.BufferPool` and released, so after the
first check it is a pool reuse hit; the min/max reductions return
scalars. What happens on a violation (``raise | rollback | warn``) is
the *driver's* policy decision — the guard only detects and reports.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["GuardConfig", "GuardViolation", "StateGuard"]

#: fields of RankFields scanned for finiteness, in scan order
GUARDED_FIELDS = ("delp", "pt", "u", "v", "w")

POLICIES = ("raise", "rollback", "warn")


@dataclasses.dataclass(frozen=True)
class GuardConfig:
    """What the guard checks and what the driver does on a trip.

    Attributes:
        policy: ``raise`` (fail fast), ``rollback`` (retry from the last
            snapshot), or ``warn`` (report and continue).
        check_finite: NaN/Inf scan over the guarded fields and tracers.
        check_positive_delp: require ``delp > 0`` everywhere.
        max_wind: bound on ``|u|`` and ``|v|`` [m/s]; 0 disables.
        fields: which state attributes the finite scan covers.
    """

    policy: str = "rollback"
    check_finite: bool = True
    check_positive_delp: bool = True
    max_wind: float = 300.0
    fields: Tuple[str, ...] = GUARDED_FIELDS

    def __post_init__(self):
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown guard policy {self.policy!r}; "
                f"expected one of {POLICIES}"
            )


@dataclasses.dataclass
class GuardViolation:
    """One tripped invariant on one rank's field."""

    rank: int
    field: str
    kind: str  # "nonfinite" | "nonpositive" | "wind_bound"
    value: float  # offending count or extremal value
    step: int = 0

    def __str__(self) -> str:
        if self.kind == "nonfinite":
            what = f"{int(self.value)} non-finite value(s)"
        elif self.kind == "nonpositive":
            what = f"min {self.value:.6g} <= 0"
        else:
            what = f"|wind| {self.value:.6g} exceeds bound"
        return (
            f"rank {self.rank} field {self.field!r} at step {self.step}: "
            f"{what}"
        )


class StateGuard:
    """Scans per-rank states against the configured invariants."""

    def __init__(self, config: Optional[GuardConfig] = None):
        self.config = config or GuardConfig()
        self.checks = 0
        self.trips = 0

    # ------------------------------------------------------------------
    def _finite_violation(self, arr: np.ndarray) -> int:
        """Number of non-finite entries (0 when clean), allocation-free
        via a pooled boolean scratch buffer."""
        from repro.runtime.pool import get_pool

        pool = get_pool()
        buf = pool.checkout(arr.shape, np.bool_)
        try:
            np.isfinite(arr, out=buf)
            if buf.all():
                return 0
            return int(arr.size - np.count_nonzero(buf))
        finally:
            pool.release(buf)

    def check_states(
        self, states: Sequence, step: int = 0
    ) -> List[GuardViolation]:
        """All violations across ``states`` (empty list when clean)."""
        cfg = self.config
        self.checks += 1
        violations: List[GuardViolation] = []

        def scan(rank: int, name: str, arr: np.ndarray) -> None:
            if cfg.check_finite:
                bad = self._finite_violation(arr)
                if bad:
                    violations.append(
                        GuardViolation(rank, name, "nonfinite", bad, step)
                    )
                    # non-finite data poisons the other reductions; the
                    # remaining checks on this array would double-report
                    return
            if name == "delp" and cfg.check_positive_delp:
                lo = float(np.min(arr))
                if not lo > 0.0:
                    violations.append(
                        GuardViolation(rank, name, "nonpositive", lo, step)
                    )
            if name in ("u", "v") and cfg.max_wind > 0.0:
                hi = max(float(np.max(arr)), -float(np.min(arr)))
                if hi > cfg.max_wind:
                    violations.append(
                        GuardViolation(rank, name, "wind_bound", hi, step)
                    )

        for rank, state in enumerate(states):
            for name in cfg.fields:
                scan(rank, name, getattr(state, name))
            if cfg.check_finite:
                for t, tracer in enumerate(state.tracers):
                    bad = self._finite_violation(tracer)
                    if bad:
                        violations.append(
                            GuardViolation(
                                rank, f"tracer{t}", "nonfinite", bad, step
                            )
                        )
        if violations:
            self.trips += 1
        return violations
