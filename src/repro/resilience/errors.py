"""Exception and warning types of the resilience layer.

Kept dependency-free so any layer (communicator, pool, compile cache,
stencil dispatch, dyncore) can raise or catch them without import
cycles. The split that matters for callers:

- :class:`RecoverableFault` subtypes are transient by construction —
  an injected fault fires once per planned occurrence, a dropped halo
  message is gone but the exchange can be redone — so the dyncore retry
  loop rolls back and re-advances on them.
- :class:`GuardError` carries state-invariant violations; whether it is
  recoverable is a *policy* decision (``raise | rollback | warn``), made
  by the driver, not by the type.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

__all__ = [
    "CheckpointCorruptError",
    "CheckpointError",
    "ChaosSpecError",
    "FallbackWarning",
    "GuardError",
    "GuardWarning",
    "HaloTimeoutError",
    "InjectedCompileError",
    "InjectedFaultError",
    "OrphanedMessagesWarning",
    "RecoverableFault",
    "ResilienceError",
    "RetriesExhaustedError",
]


class ResilienceError(RuntimeError):
    """Base class of all resilience-layer errors."""


class ChaosSpecError(ResilienceError):
    """A ``REPRO_CHAOS`` spec string could not be parsed."""


class RecoverableFault(ResilienceError):
    """A transient failure the dyncore retry loop may roll back from."""


class InjectedFaultError(RecoverableFault):
    """Raised when a chaos site fires a fault that manifests as an
    exception (rather than silently corrupting data)."""

    def __init__(self, site: str, occurrence: int, detail: str = ""):
        self.site = site
        self.occurrence = occurrence
        msg = f"injected fault at site {site!r} (occurrence {occurrence})"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)


class InjectedCompileError(InjectedFaultError):
    """A chaos-forced SDFG compile/validation failure."""


class HaloTimeoutError(RecoverableFault):
    """An ``Irecv`` was never matched within the poll budget.

    Names the communicating ranks, the tag, the exchange phase and the
    owning exchange's tag-slot window (``fslot_base`` — both set by the
    halo layer, which owns the tag encoding) and the mailbox keys still
    pending, so an unmatched receive is debuggable from the message
    alone and cross-referenceable with the static protocol checker's
    C3xx findings, which identify exchanges by the same slot base.
    """

    def __init__(
        self,
        source: int,
        dest: int,
        tag: int,
        polls: int,
        pending: Sequence[Tuple[int, int, int]],
        phase: Optional[int] = None,
        fslot_base: Optional[int] = None,
    ):
        self.source = source
        self.dest = dest
        self.tag = tag
        self.polls = polls
        self.pending = list(pending)
        self.phase = phase
        self.fslot_base = fslot_base
        super().__init__("")

    def __str__(self) -> str:
        phase = "?" if self.phase is None else self.phase
        fslot = "?" if self.fslot_base is None else self.fslot_base
        pending = (
            ", ".join(
                f"(src={s}, dst={d}, tag={t})" for s, d, t in self.pending
            )
            or "(empty)"
        )
        return (
            f"Irecv from rank {self.source} to rank {self.dest} "
            f"(tag {self.tag}, phase {phase}, fslot_base {fslot}) not "
            f"delivered after {self.polls} polls; pending mailbox: "
            f"{pending}"
        )


class GuardError(ResilienceError):
    """One or more state invariants failed (see ``.violations``)."""

    def __init__(self, violations: List):
        self.violations = list(violations)
        shown = "; ".join(str(v) for v in self.violations[:4])
        more = len(self.violations) - 4
        if more > 0:
            shown += f"; … {more} more"
        super().__init__(
            f"{len(self.violations)} state-guard violation(s): {shown}"
        )


class RetriesExhaustedError(ResilienceError):
    """The rollback/retry budget ran out without a clean re-advance."""

    def __init__(self, step: int, attempts: int, last: BaseException):
        self.step = step
        self.attempts = attempts
        self.last = last
        super().__init__(
            f"step {step}: {attempts} rollback attempt(s) exhausted; "
            f"last failure: {type(last).__name__}: {last}"
        )


class CheckpointError(ResilienceError):
    """A checkpoint file is unreadable, incompatible or version-skewed."""


class CheckpointCorruptError(CheckpointError):
    """A checkpoint file exists but its contents are damaged or do not
    match the schema the receiving model expects.

    Raised instead of the raw ``zipfile.BadZipFile`` / ``KeyError`` /
    ``OSError`` a truncated or hand-edited ``.npz`` would otherwise
    leak. Carries the offending path, the schema delta (arrays the
    model expected but the file lacks, and arrays the file holds that
    the model does not know), and the format version found (``None``
    when the header itself is unreadable).
    """

    def __init__(
        self,
        path,
        reason: str,
        missing_keys: Sequence[str] = (),
        extra_keys: Sequence[str] = (),
        version: Optional[int] = None,
    ):
        self.path = str(path)
        self.reason = reason
        self.missing_keys = list(missing_keys)
        self.extra_keys = list(extra_keys)
        self.version = version
        msg = f"{self.path}: {reason}"
        if self.missing_keys:
            shown = ", ".join(self.missing_keys[:6])
            more = len(self.missing_keys) - 6
            if more > 0:
                shown += f", … {more} more"
            msg += f"; missing arrays: {shown}"
        if self.extra_keys:
            shown = ", ".join(self.extra_keys[:6])
            more = len(self.extra_keys) - 6
            if more > 0:
                shown += f", … {more} more"
            msg += f"; unexpected arrays: {shown}"
        if version is not None:
            msg += f" (format version {version})"
        super().__init__(msg)


class FallbackWarning(RuntimeWarning):
    """Emitted when a stencil re-executes on the debug NumPy backend."""


class GuardWarning(RuntimeWarning):
    """Emitted for guard violations under the ``warn`` policy."""


class OrphanedMessagesWarning(RuntimeWarning):
    """Emitted by ``LocalComm.finalize`` for sent-but-never-received
    messages."""
