"""Deterministic fault injection (the chaos harness).

A :class:`ChaosPlan` decides, at named *sites* on the hot path, whether
to inject a fault. Sites consult the plan with a monotonically
increasing per-site occurrence counter, so a plan is a pure function of
``(spec, seed, consult sequence)`` — the same seeded plan against the
same execution replays the exact same fault sequence. Every fired fault
is recorded (site, occurrence index, model step, detail), and
:meth:`ChaosPlan.replay_spec` renders a spec that pins those exact
occurrences, so even a probabilistic run can be replayed precisely.

Spec grammar (``REPRO_CHAOS`` or :func:`set_plan`), ``;``-separated::

    seed=42                  # RNG seed for probabilistic rules
    halo.drop@3              # fire at the 3rd consult of that site
    halo.corrupt@2,9         # fire at the 2nd and 9th consults
    pool.poison@5+12         # fire at 5, then every 12 consults after
    stencil.nanflip:p=0.01   # fire each consult with probability 0.01

Known sites (an unknown site name in a spec is accepted — it simply
never fires unless some code consults it — but is warned about):

========================  ==================================================
``halo.drop``             ``LocalComm.Isend`` discards the message
``halo.delay``            delivery withheld for a few receive polls
``halo.corrupt``          a NaN is written into the packed payload
``pool.poison``           a checked-out float scratch buffer is NaN-filled
``compile.fail``          ``get_or_compile`` raises InjectedCompileError
``stencil.nanflip``       a NaN lands in one stencil output element
========================  ==================================================

The disabled path costs one module-attribute ``is None`` check at each
site — no allocation, no locking.
"""

from __future__ import annotations

import dataclasses
import os
import random
import threading
import warnings
import zlib
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.resilience.errors import ChaosSpecError

__all__ = [
    "ChaosPlan",
    "ChaosRule",
    "InjectedFault",
    "KNOWN_SITES",
    "active",
    "clear_plan",
    "consult",
    "get_plan",
    "set_plan",
    "set_step",
]

KNOWN_SITES = (
    "halo.drop",
    "halo.delay",
    "halo.corrupt",
    "pool.poison",
    "compile.fail",
    "stencil.nanflip",
)

#: how long one ``halo.delay`` fault withholds delivery, in units of the
#: communicator's ``poll_interval``. The delay is a delivery-time
#: condition stamped on the message itself (not a poll-count countdown),
#: so seeded replays are identical however often a waiter wakes — and
#: identical between sequential and threaded execution.
DEFAULT_DELAY_POLLS = 2


@dataclasses.dataclass
class InjectedFault:
    """One fired fault: where, which consult, which model step."""

    site: str
    occurrence: int
    step: int
    detail: Dict[str, object] = dataclasses.field(default_factory=dict)

    def __str__(self) -> str:
        extra = (
            " " + " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
            if self.detail
            else ""
        )
        return (
            f"{self.site}@{self.occurrence} (step {self.step}){extra}"
        )


@dataclasses.dataclass(frozen=True)
class ChaosRule:
    """When one site fires: explicit occurrences, a period, or a rate."""

    at: Tuple[int, ...] = ()
    start: int = 0  # with period: first firing occurrence
    period: int = 0  # 0 = no periodic firing
    p: float = 0.0  # per-consult probability

    def fires(self, n: int, rng: Optional[random.Random]) -> bool:
        if n in self.at:
            return True
        if self.period and n >= self.start:
            if (n - self.start) % self.period == 0:
                return True
        if self.p > 0.0 and rng is not None:
            # the stream advances exactly once per consult of a p-rule,
            # so firing decisions depend only on (seed, site, n)
            return rng.random() < self.p
        return False


def _parse_clause(clause: str) -> Tuple[str, ChaosRule]:
    clause = clause.strip()
    if ("@" in clause or ":" in clause) and not clause.split("@")[0].split(":")[0].strip():
        raise ChaosSpecError(f"bad clause {clause!r}: empty site name")
    if "@" in clause:
        site, _, spec = clause.partition("@")
        site = site.strip()
        spec = spec.strip()
        try:
            if "+" in spec:
                start_s, _, period_s = spec.partition("+")
                start, period = int(start_s), int(period_s)
                if start < 1 or period < 1:
                    raise ValueError
                return site, ChaosRule(start=start, period=period)
            at = tuple(sorted(int(tok) for tok in spec.split(",")))
            if not at or min(at) < 1:
                raise ValueError
            return site, ChaosRule(at=at)
        except ValueError:
            raise ChaosSpecError(
                f"bad occurrence spec {clause!r}: expected "
                f"'site@N', 'site@N,M,…' or 'site@N+PERIOD' with "
                f"positive integers"
            ) from None
    if ":" in clause:
        site, _, spec = clause.partition(":")
        site = site.strip()
        spec = spec.strip()
        if not spec.startswith("p="):
            raise ChaosSpecError(
                f"bad rule {clause!r}: only 'site:p=FLOAT' is supported"
            )
        try:
            p = float(spec[2:])
        except ValueError:
            raise ChaosSpecError(f"bad probability in {clause!r}") from None
        if not 0.0 <= p <= 1.0:
            raise ChaosSpecError(f"probability out of [0, 1] in {clause!r}")
        return site, ChaosRule(p=p)
    raise ChaosSpecError(
        f"bad clause {clause!r}: expected 'seed=N', 'site@…' or 'site:p=…'"
    )


class ChaosPlan:
    """A seeded, deterministic fault-injection schedule."""

    def __init__(self, seed: int = 0, rules: Optional[Dict[str, ChaosRule]] = None):
        self.seed = int(seed)
        self.rules: Dict[str, ChaosRule] = dict(rules or {})
        self.injected: List[InjectedFault] = []
        self.current_step = 0
        self._consults: Dict[str, int] = {}
        self._rngs: Dict[str, random.Random] = {}
        self._lock = threading.Lock()
        for site in self.rules:
            if site not in KNOWN_SITES:
                warnings.warn(
                    f"chaos rule for unknown site {site!r}; known sites: "
                    f"{', '.join(KNOWN_SITES)}",
                    stacklevel=3,
                )

    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: str) -> "ChaosPlan":
        """Parse the ``REPRO_CHAOS`` grammar (see module docstring)."""
        seed = 0
        rules: Dict[str, ChaosRule] = {}
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            if clause.startswith("seed="):
                try:
                    seed = int(clause[5:])
                except ValueError:
                    raise ChaosSpecError(f"bad seed in {clause!r}") from None
                continue
            site, rule = _parse_clause(clause)
            if site in rules:
                raise ChaosSpecError(f"duplicate rule for site {site!r}")
            rules[site] = rule
        if not rules:
            raise ChaosSpecError(
                f"chaos spec {spec!r} defines no site rules"
            )
        return cls(seed=seed, rules=rules)

    # ------------------------------------------------------------------
    def rng(self, stream: str) -> random.Random:
        """A per-stream deterministic RNG: f(seed, stream name) only."""
        rng = self._rngs.get(stream)
        if rng is None:
            rng = random.Random(
                (self.seed * 1000003) ^ zlib.crc32(stream.encode())
            )
            self._rngs[stream] = rng
        return rng

    def consult(self, site: str, **detail) -> Optional[InjectedFault]:
        """Ask whether ``site`` faults at this occurrence.

        Returns the recorded :class:`InjectedFault` (truthy) when the
        site fires, else ``None``. Callers may attach extra keys to the
        returned fault's ``detail`` (e.g. the poisoned index).
        """
        with self._lock:
            n = self._consults.get(site, 0) + 1
            self._consults[site] = n
            rule = self.rules.get(site)
            if rule is None:
                return None
            rng = self.rng(site) if rule.p > 0.0 else None
            if not rule.fires(n, rng):
                return None
            fault = InjectedFault(
                site=site,
                occurrence=n,
                step=self.current_step,
                detail=dict(detail),
            )
            self.injected.append(fault)
            return fault

    # ------------------------------------------------------------------
    def consults(self, site: str) -> int:
        """How many times ``site`` has consulted this plan."""
        return self._consults.get(site, 0)

    def counts(self) -> Dict[str, int]:
        """Fired faults per site."""
        out: Dict[str, int] = {}
        for fault in self.injected:
            out[fault.site] = out.get(fault.site, 0) + 1
        return out

    def replay_spec(self) -> str:
        """A spec pinning exactly the occurrences that fired, so any run
        (including probabilistic ones) replays identically."""
        by_site: Dict[str, List[int]] = {}
        for fault in self.injected:
            by_site.setdefault(fault.site, []).append(fault.occurrence)
        clauses = [f"seed={self.seed}"]
        for site in sorted(by_site):
            occs = ",".join(str(n) for n in sorted(set(by_site[site])))
            clauses.append(f"{site}@{occs}")
        return ";".join(clauses)

    def trace(self) -> List[Dict[str, object]]:
        """JSON-able record of every injected fault, in firing order."""
        return [
            {
                "site": f.site,
                "occurrence": f.occurrence,
                "step": f.step,
                "detail": dict(f.detail),
            }
            for f in self.injected
        ]

    def __repr__(self) -> str:
        return (
            f"ChaosPlan(seed={self.seed}, sites={sorted(self.rules)}, "
            f"injected={len(self.injected)})"
        )


# ---------------------------------------------------------------------------
# process-wide active plan
#
# Hot-path call sites guard with ``chaos._PLAN is not None`` directly so a
# disabled harness costs one attribute load per site.
# ---------------------------------------------------------------------------

_PLAN: Optional[ChaosPlan] = None


def _init_from_env() -> None:
    global _PLAN
    spec = os.environ.get("REPRO_CHAOS", "").strip()
    if spec:
        _PLAN = ChaosPlan.from_spec(spec)


def get_plan() -> Optional[ChaosPlan]:
    """The active plan, or ``None`` when chaos is disabled."""
    return _PLAN


def set_plan(plan: Optional[ChaosPlan]) -> Optional[ChaosPlan]:
    """Install (or, with ``None``, remove) the active plan; returns the
    previous one so tests can restore it."""
    global _PLAN
    previous = _PLAN
    _PLAN = plan
    return previous


def clear_plan() -> None:
    set_plan(None)


def active() -> bool:
    return _PLAN is not None


def consult(site: str, **detail) -> Optional[InjectedFault]:
    """Module-level consult: ``None`` immediately when no plan is set."""
    plan = _PLAN
    if plan is None:
        return None
    return plan.consult(site, **detail)


def set_step(step: int) -> None:
    """Stamp subsequent fault records with the current model step."""
    plan = _PLAN
    if plan is not None:
        plan.current_step = step


# ---------------------------------------------------------------------------
# site helpers used by the instrumented layers
# ---------------------------------------------------------------------------


def maybe_poison(buf: np.ndarray) -> None:
    """``pool.poison``: NaN-fill a float scratch buffer on checkout.

    A poisoned buffer is only dangerous to a consumer that reads scratch
    before writing it — a correct program (the codegen zeroes exactly
    the read-before-write locals) absorbs the poison bit-identically.
    """
    plan = _PLAN
    if plan is None or buf.dtype.kind != "f":
        return
    fault = plan.consult(
        "pool.poison", shape=tuple(buf.shape), dtype=buf.dtype.name
    )
    if fault is not None:
        buf.fill(np.nan)


def maybe_nanflip(definition, fields: Dict[str, np.ndarray]) -> None:
    """``stencil.nanflip``: write one NaN into a stencil output field."""
    plan = _PLAN
    if plan is None:
        return
    targets = [
        name
        for name in definition.written_fields()
        if name in fields and fields[name].dtype.kind == "f"
    ]
    if not targets:
        return
    fault = plan.consult("stencil.nanflip", stencil=definition.name)
    if fault is None:
        return
    rng = plan.rng("stencil.nanflip.index")
    name = targets[rng.randrange(len(targets))]
    arr = fields[name]
    index = rng.randrange(arr.size)
    arr.flat[index] = np.nan
    fault.detail["field"] = name
    fault.detail["index"] = index


_init_from_env()
