"""Checkpoint/restart: bit-exact snapshots of the dynamical-core state.

Two mechanisms, same contents (every prognostic array of every rank,
the model time and the step counter; the model carries no RNG state):

- :class:`Snapshot` — an in-memory copy used by the rollback/retry loop.
  Capture and restore are plain ``np.copyto`` round-trips, so a restored
  state is bit-identical to the captured one.
- :func:`save_checkpoint` / :func:`load_checkpoint` — a versioned
  on-disk ``.npz`` snapshot for restart across processes. The format is
  flat: a ``__meta__`` JSON header (format version, time, step, rank
  count, tracer count) plus ``r{rank}_{field}`` / ``r{rank}_tracer{t}``
  arrays. Loading validates the format version and the array shapes
  against the receiving model before touching any state, so a failed
  restore never leaves a half-written model.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import zipfile
import zlib
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.resilience.errors import CheckpointCorruptError, CheckpointError

__all__ = [
    "CHECKPOINT_VERSION",
    "Snapshot",
    "checkpoint_meta",
    "load_checkpoint",
    "save_checkpoint",
]

CHECKPOINT_VERSION = 1

#: per-rank prognostic arrays, in serialization order
STATE_FIELDS = ("u", "v", "w", "pt", "delp", "delz")


@dataclasses.dataclass
class Snapshot:
    """In-memory bit-exact copy of all rank states."""

    arrays: List[Dict[str, np.ndarray]]
    tracers: List[List[np.ndarray]]
    time: float
    step: int

    @classmethod
    def capture(cls, states: Sequence, time: float, step: int) -> "Snapshot":
        return cls(
            arrays=[
                {f: getattr(s, f).copy() for f in STATE_FIELDS}
                for s in states
            ],
            tracers=[[t.copy() for t in s.tracers] for s in states],
            time=time,
            step=step,
        )

    def restore(self, states: Sequence) -> None:
        """Copy the captured contents back into ``states`` in place."""
        if len(states) != len(self.arrays):
            raise CheckpointError(
                f"snapshot holds {len(self.arrays)} ranks, "
                f"model has {len(states)}"
            )
        for state, fields, tracers in zip(states, self.arrays, self.tracers):
            for name, arr in fields.items():
                np.copyto(getattr(state, name), arr)
            for dst, src in zip(state.tracers, tracers):
                np.copyto(dst, src)

    @property
    def nbytes(self) -> int:
        return sum(
            a.nbytes for fields in self.arrays for a in fields.values()
        ) + sum(t.nbytes for ts in self.tracers for t in ts)


# ---------------------------------------------------------------------------
# on-disk format
# ---------------------------------------------------------------------------


def save_checkpoint(
    path,
    states: Sequence,
    time: float,
    step: int,
    extra_meta: Optional[Dict[str, object]] = None,
) -> pathlib.Path:
    """Write a versioned ``.npz`` checkpoint; returns the written path."""
    path = pathlib.Path(path)
    n_tracers = len(states[0].tracers) if states else 0
    meta = {
        "version": CHECKPOINT_VERSION,
        "time": float(time),
        "step": int(step),
        "n_ranks": len(states),
        "n_tracers": n_tracers,
        "fields": list(STATE_FIELDS),
    }
    if extra_meta:
        meta.update(extra_meta)
    payload: Dict[str, np.ndarray] = {
        "__meta__": np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        ).copy()
    }
    for r, state in enumerate(states):
        for name in STATE_FIELDS:
            payload[f"r{r}_{name}"] = getattr(state, name)
        for t, tracer in enumerate(state.tracers):
            payload[f"r{r}_tracer{t}"] = tracer
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **payload)
    return path


#: low-level failures a truncated/garbled ``.npz`` surfaces as
_CORRUPT_EXCS = (
    zipfile.BadZipFile, zlib.error, OSError, EOFError, ValueError, KeyError,
)


def _open_npz(path):
    """``np.load`` with damage reported as :class:`CheckpointCorruptError`
    (a missing file stays a plain ``FileNotFoundError``)."""
    try:
        return np.load(path)
    except FileNotFoundError:
        raise
    except _CORRUPT_EXCS as exc:
        raise CheckpointCorruptError(
            path, f"unreadable npz archive ({type(exc).__name__}: {exc})"
        ) from exc


def checkpoint_meta(path) -> Dict[str, object]:
    """The metadata header of a checkpoint file (version-checked)."""
    with _open_npz(pathlib.Path(path)) as data:
        return _read_meta(data, path)


def _read_meta(data, path) -> Dict[str, object]:
    if "__meta__" not in data:
        raise CheckpointCorruptError(
            path, "not a repro checkpoint (no header)",
            extra_keys=sorted(data.files),
        )
    try:
        meta = json.loads(bytes(data["__meta__"]).decode())
    except _CORRUPT_EXCS + (UnicodeDecodeError,) as exc:
        raise CheckpointCorruptError(
            path, f"corrupt header: {exc}"
        ) from exc
    version = meta.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path}: checkpoint format version {version!r} is not "
            f"supported (this build reads version {CHECKPOINT_VERSION})"
        )
    return meta


def _expected_keys(n_ranks: int, n_tracers: int) -> List[str]:
    keys = []
    for r in range(n_ranks):
        keys.extend(f"r{r}_{name}" for name in STATE_FIELDS)
        keys.extend(f"r{r}_tracer{t}" for t in range(n_tracers))
    return keys


def load_checkpoint(path, states: Sequence) -> Dict[str, object]:
    """Restore ``states`` in place from a checkpoint file.

    Validates the header and *every* array shape before writing into any
    state array; returns the metadata dict (``time``/``step`` for the
    caller to adopt).
    """
    path = pathlib.Path(path)
    with _open_npz(path) as data:
        meta = _read_meta(data, path)
        if meta["n_ranks"] != len(states):
            raise CheckpointError(
                f"{path}: checkpoint has {meta['n_ranks']} ranks, "
                f"model has {len(states)}"
            )
        for r, state in enumerate(states):
            if len(state.tracers) != meta["n_tracers"]:
                raise CheckpointError(
                    f"{path}: checkpoint has {meta['n_tracers']} tracers, "
                    f"rank {r} has {len(state.tracers)}"
                )
        # schema check: the file must hold exactly the arrays the model
        # expects — report the full delta, not the first KeyError
        expected = _expected_keys(len(states), int(meta["n_tracers"]))
        actual = set(data.files) - {"__meta__"}
        missing = [k for k in expected if k not in actual]
        extra = sorted(actual - set(expected))
        if missing or extra:
            raise CheckpointCorruptError(
                path, "checkpoint schema does not match the model",
                missing_keys=missing, extra_keys=extra,
                version=meta.get("version"),
            )
        # validate everything up front: a restore is all-or-nothing.
        # Arrays are decompressed here, so a truncated member surfaces
        # as CheckpointCorruptError before any state is touched.
        loaded: Dict[str, np.ndarray] = {}
        try:
            for key in expected:
                loaded[key] = data[key]
        except _CORRUPT_EXCS as exc:
            raise CheckpointCorruptError(
                path,
                f"truncated array data at {key!r} "
                f"({type(exc).__name__}: {exc})",
                version=meta.get("version"),
            ) from exc
        for r, state in enumerate(states):
            for name in STATE_FIELDS:
                key = f"r{r}_{name}"
                if loaded[key].shape != getattr(state, name).shape:
                    raise CheckpointError(
                        f"{path}: array {key!r} shape {loaded[key].shape} "
                        f"does not match model shape "
                        f"{getattr(state, name).shape}"
                    )
        for r, state in enumerate(states):
            for name in STATE_FIELDS:
                np.copyto(getattr(state, name), loaded[f"r{r}_{name}"])
            for t in range(meta["n_tracers"]):
                np.copyto(state.tracers[t], loaded[f"r{r}_tracer{t}"])
    return meta
