"""Resilience layer: fault injection, state guards, checkpoint/restart
and degraded-mode execution.

The paper's production target (Pace on thousands of GPUs) only works if
a long run survives transient failures. This package provides the four
cooperating pieces, wired through communicator → halo → runtime →
backends → dyncore → obs:

- :mod:`repro.resilience.chaos` — deterministic, seedable fault
  injection at named sites (``REPRO_CHAOS=<spec>``), with exact replay.
- :mod:`repro.resilience.guards` — NaN/Inf, ``delp > 0`` and wind-bound
  invariant checks with ``raise | rollback | warn`` policies.
- :mod:`repro.resilience.checkpoint` — in-memory snapshots for rollback
  plus versioned on-disk checkpoints for restart.
- degraded mode — a failing compiled-backend stencil transparently
  re-executes on the bit-exact NumPy debug backend
  (:meth:`repro.dsl.stencil.StencilObject.__call__`), and halo receives
  poll with a bounded budget instead of crashing on the first miss.

Every recovery action increments a process-wide counter surfaced in the
``repro.obs`` report footer; :func:`summary` is the machine-facing view.
``REPRO_FALLBACK=0`` disables the backend fallback (failures then
propagate to the dyncore retry loop, or to the caller).
"""

from __future__ import annotations

import dataclasses
import os
import threading
import warnings
from typing import Dict, List, Optional, Tuple

from repro.resilience import chaos
from repro.resilience.chaos import ChaosPlan, InjectedFault
from repro.resilience.checkpoint import (
    CHECKPOINT_VERSION,
    Snapshot,
    load_checkpoint,
    save_checkpoint,
)
from repro.resilience.errors import (
    ChaosSpecError,
    CheckpointCorruptError,
    CheckpointError,
    FallbackWarning,
    GuardError,
    GuardWarning,
    HaloTimeoutError,
    InjectedCompileError,
    InjectedFaultError,
    OrphanedMessagesWarning,
    RecoverableFault,
    ResilienceError,
    RetriesExhaustedError,
)
from repro.resilience.guards import GuardConfig, GuardViolation, StateGuard

__all__ = [
    "CHECKPOINT_VERSION",
    "ChaosPlan",
    "ChaosSpecError",
    "CheckpointCorruptError",
    "CheckpointError",
    "FallbackWarning",
    "GuardConfig",
    "GuardError",
    "GuardViolation",
    "GuardWarning",
    "HaloTimeoutError",
    "InjectedCompileError",
    "InjectedFault",
    "InjectedFaultError",
    "OrphanedMessagesWarning",
    "RecoverableFault",
    "ResilienceConfig",
    "ResilienceError",
    "RetriesExhaustedError",
    "Snapshot",
    "StateGuard",
    "chaos",
    "fallback_enabled",
    "load_checkpoint",
    "record",
    "record_fallback",
    "reset",
    "save_checkpoint",
    "summary",
]


@dataclasses.dataclass
class ResilienceConfig:
    """Driver-level resilience options (``DynamicalCore(resilience=…)``).

    Attributes:
        guard: invariant checks and trip policy (see
            :class:`~repro.resilience.guards.GuardConfig`).
        max_retries: rollback/re-advance attempts per remapping step
            before :class:`RetriesExhaustedError`.
        backoff_base: seconds slept before retry ``k`` is
            ``backoff_base * 2**(k-1)`` (0 disables sleeping — the
            in-process transport has nothing to wait for; real MPI
            transients do).
        checkpoint_every: write an on-disk checkpoint every N physics
            steps (0 disables).
        checkpoint_dir: directory for periodic checkpoints (required
            when ``checkpoint_every > 0``).
    """

    guard: GuardConfig = dataclasses.field(default_factory=GuardConfig)
    max_retries: int = 3
    backoff_base: float = 0.0
    checkpoint_every: int = 0
    checkpoint_dir: Optional[str] = None

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.checkpoint_every > 0 and not self.checkpoint_dir:
            raise ValueError(
                "checkpoint_every > 0 requires checkpoint_dir"
            )


# ---------------------------------------------------------------------------
# process-wide recovery counters (the obs report footer reads these)
# ---------------------------------------------------------------------------

_COUNTER_NAMES = (
    "guard_trips",
    "rollbacks",
    "retries",
    "fallbacks",
    "halo_timeouts",
    "halo_redeliveries",
    "orphaned_messages",
    "checkpoints_saved",
    "checkpoints_restored",
)

_COUNTERS: Dict[str, int] = {name: 0 for name in _COUNTER_NAMES}
_COUNTER_LOCK = threading.Lock()

#: most recent backend fallbacks as (stencil, backend, error repr)
_FALLBACK_LOG: List[Tuple[str, str, str]] = []
_FALLBACK_LOG_LIMIT = 32


def record(name: str, n: int = 1) -> None:
    """Increment one recovery counter (thread-safe: rank threads report
    redeliveries and timeouts concurrently)."""
    with _COUNTER_LOCK:
        _COUNTERS[name] = _COUNTERS.get(name, 0) + n


def record_fallback(stencil: str, backend: str, exc: BaseException) -> None:
    """Record (and warn about) one degraded-mode stencil re-execution."""
    record("fallbacks")
    _FALLBACK_LOG.append((stencil, backend, f"{type(exc).__name__}: {exc}"))
    del _FALLBACK_LOG[:-_FALLBACK_LOG_LIMIT]
    warnings.warn(
        f"stencil {stencil!r}: backend {backend!r} failed "
        f"({type(exc).__name__}: {exc}); re-executed on the NumPy "
        f"debug backend",
        FallbackWarning,
        stacklevel=3,
    )


def fallback_enabled() -> bool:
    """Whether failed compiled-backend stencils re-run on NumPy."""
    return os.environ.get("REPRO_FALLBACK", "1") != "0"


def summary() -> Dict[str, object]:
    """Recovery counters plus the active chaos plan's injection record."""
    plan = chaos.get_plan()
    return {
        "counters": dict(_COUNTERS),
        "fallback_log": [list(entry) for entry in _FALLBACK_LOG],
        "chaos": {
            "active": plan is not None,
            "seed": plan.seed if plan else None,
            "injected": plan.counts() if plan else {},
            "injected_total": len(plan.injected) if plan else 0,
        },
    }


def reset() -> None:
    """Zero all counters and drop the fallback log (the chaos plan is
    untouched — clear it with ``chaos.clear_plan()``)."""
    for name in _COUNTERS:
        _COUNTERS[name] = 0
    _FALLBACK_LOG.clear()
