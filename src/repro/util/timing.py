"""Deprecated: timing helpers moved to :mod:`repro.obs.timing`.

This shim re-exports them and warns; it will be removed once external
callers migrate to ``repro.obs``.
"""

from __future__ import annotations

import warnings

from repro.obs.timing import confidence_interval, median_time

__all__ = ["confidence_interval", "median_time"]

warnings.warn(
    "repro.util.timing is deprecated; import median_time and "
    "confidence_interval from repro.obs instead",
    DeprecationWarning,
    stacklevel=2,
)
