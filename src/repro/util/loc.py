"""Lines-of-code accounting (Table I).

The paper measures "code complexity using lines of code as a proxy",
comparing the declarative Python port against the FORTRAN reference
(12,450 vs 29,458 for the dynamical core — 0.42×). Here the comparator is
the plain-NumPy reference style of :mod:`repro.fv3.reference` (loop/slice
code like the original), against the declarative DSL modules.

Counting rule (as in the paper's convention): non-blank, non-comment
source lines; docstrings excluded (they are documentation, not code).
"""

from __future__ import annotations

import dataclasses
import io
import tokenize
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple


@dataclasses.dataclass(frozen=True, order=True)
class SourceLocation:
    """A file:line position in user source, as attached to diagnostics.

    Either part may be unknown (``None``) — e.g. IR built programmatically
    rather than parsed from a decorated function.
    """

    file: Optional[str] = None
    line: Optional[int] = None

    def __str__(self) -> str:
        name = self.file or "<unknown>"
        return f"{name}:{self.line}" if self.line else name

    @property
    def known(self) -> bool:
        return self.file is not None and self.line is not None


def count_loc(path) -> int:
    """Non-blank, non-comment, non-docstring source lines of one file."""
    source = Path(path).read_text()
    code_lines = set()
    doc_lines = set()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except tokenize.TokenError:
        tokens = []
    prev_significant = None
    for tok in tokens:
        if tok.type in (
            tokenize.COMMENT,
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENCODING,
            tokenize.ENDMARKER,
        ):
            continue
        if tok.type == tokenize.STRING and (
            prev_significant is None
            or prev_significant in (tokenize.NEWLINE, tokenize.INDENT)
        ):
            # a docstring / bare string statement
            for line in range(tok.start[0], tok.end[0] + 1):
                doc_lines.add(line)
            prev_significant = tok.type
            continue
        for line in range(tok.start[0], tok.end[0] + 1):
            code_lines.add(line)
        prev_significant = tok.type
    return len(code_lines - doc_lines)


def count_loc_files(paths: Iterable) -> int:
    return sum(count_loc(p) for p in paths)


def package_root() -> Path:
    import repro

    return Path(repro.__file__).parent


def function_loc(path, function_names: List[str]) -> int:
    """Code LoC of named top-level functions/classes in one file."""
    import ast

    source = Path(path).read_text()
    tree = ast.parse(source)
    per_file = count_loc(path)
    all_lines = len(source.splitlines()) or 1
    total_span = 0
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.ClassDef)) and (
            node.name in function_names
        ):
            total_span += node.end_lineno - node.lineno + 1
    # scale raw spans by the file's code density so docstrings/blank
    # lines inside functions do not inflate the count
    return round(total_span * per_file / all_lines)


def loc_table() -> List[Tuple[str, int, int, float]]:
    """Table I analogue: per-algorithm LoC, declarative DSL vs the plain
    loop/slice reference (our stand-in for the FORTRAN model).

    Only algorithms implemented in *both* styles are compared — an honest
    like-for-like measurement rather than the paper's whole-model count.
    A "Dynamical Core (all DSL modules)" context row reports the total
    declarative code size with no comparator.
    """
    root = package_root()
    fv3 = root / "fv3"
    ref = fv3 / "reference.py"
    stencils = fv3 / "stencils"

    rows: List[Tuple[str, int, int, float]] = []

    def add(name: str, decl: int, ref_loc: int):
        ratio = decl / ref_loc if ref_loc else float("nan")
        rows.append((name, decl, ref_loc, ratio))

    add(
        "PPM transport flux (x)",
        function_loc(stencils / "xppm.py", ["xppm_flux"]),
        function_loc(ref, ["ppm_flux_x"]),
    )
    add(
        "Tridiagonal vertical solve",
        function_loc(stencils / "riem_solver_c.py", ["tridiagonal_solve"]),
        function_loc(ref, ["thomas_tridiagonal"]),
    )
    add(
        "Del-2 damping",
        function_loc(
            stencils / "delnflux.py",
            ["del2_flux_x", "del2_flux_y", "add_flux_divergence"],
        ),
        function_loc(ref, ["del2_diffusion_step"]),
    )
    add(
        "Vertical remap layer",
        function_loc(stencils / "remapping.py", ["remap_layer"]),
        function_loc(ref, ["conservative_remap_1d"]),
    )
    dycore_decl = count_loc_files(
        sorted(stencils.glob("*.py"))
        + [fv3 / "acoustics.py", fv3 / "dyncore.py", fv3 / "corners.py"]
    )
    add("Dynamical Core (all DSL modules)", dycore_decl, 0)
    return rows


def format_loc_table(rows) -> str:
    lines = [f"{'Module Name':<34} {'Python LoC':>12} {'Reference LoC':>14} {'ratio':>7}"]
    for name, decl, ref, ratio in rows:
        lines.append(f"{name:<34} {decl:>12} {ref:>14} {ratio:>6.2f}x")
    return "\n".join(lines)
