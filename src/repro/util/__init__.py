"""Utilities: lines-of-code accounting (Table I) and timing helpers."""

from repro.util.loc import count_loc, loc_table
from repro.util.timing import median_time

__all__ = ["count_loc", "loc_table", "median_time"]
