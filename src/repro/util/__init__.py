"""Utilities: lines-of-code accounting (Table I).

Timing helpers moved to :mod:`repro.obs`; ``median_time`` is re-exported
here for compatibility (``repro.util.timing`` itself is a deprecation
shim).
"""

from repro.obs.timing import median_time
from repro.util.loc import count_loc, loc_table

__all__ = ["count_loc", "loc_table", "median_time"]
