"""Elementary stencils: copies, scaling, the bandwidth-test kernel."""

from repro.dsl import Field, FieldIJ, PARALLEL, computation, interval, stencil


@stencil
def copy_stencil(q_in: Field, q_out: Field):
    """The Sec. VIII-A bandwidth probe: one input, one output."""
    with computation(PARALLEL), interval(...):
        q_out = q_in


@stencil
def scale_stencil(q: Field, factor: float):
    with computation(PARALLEL), interval(...):
        q = q * factor


@stencil
def axpy_stencil(x: Field, y: Field, alpha: float):
    with computation(PARALLEL), interval(...):
        y = alpha * x + y


@stencil
def flux_divergence(q: Field, fx: Field, fy: Field, rarea: FieldIJ):
    """q += div(F): the conservative flux-form update.

    ``fx``/``fy`` hold fluxes at the left/south interface of each cell.
    """
    with computation(PARALLEL), interval(...):
        q = q + (fx - fx[1, 0, 0] + fy - fy[0, 1, 0]) * rarea


@stencil
def mass_weighted_divergence(
    q: Field, delp_old: Field, delp_new: Field, fx: Field, fy: Field,
    rarea: FieldIJ,
):
    """Update a mass-weighted scalar: q = (q·δp + div F) / δp_new."""
    with computation(PARALLEL), interval(...):
        q = (
            q * delp_old + (fx - fx[1, 0, 0] + fy - fy[0, 1, 0]) * rarea
        ) / delp_new
