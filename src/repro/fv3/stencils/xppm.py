"""PPM reconstruction and upwind flux in the x direction.

The piecewise-parabolic method of the FV3 transport scheme (Putman & Lin
2007; Lin & Rood 1996): 4th-order interface interpolation, a monotonicity
constraint flattening local extrema, and the Courant-number-integrated
upwind flux. The y version lives in :mod:`yppm` — the paper's concession
(Sec. IV-D): "there are modules that behave identically, except for the
horizontal dimension being offset. As there is no way to parametrize the
direction as a function argument, these modules had to be duplicated."
"""

from repro.dsl import Field, PARALLEL, computation, interval, stencil


@stencil
def xppm_flux(q: Field, cr: Field, flux: Field):
    """PPM flux through the *west* interface of each cell.

    ``cr`` is the Courant number at the interface between cells i-1 and i
    (positive = flow in +x); ``flux`` receives the reconstructed upwind
    cell-average value integrated over the swept distance.
    """
    with computation(PARALLEL), interval(...):
        # 4th-order interface value at the west edge of cell i
        al = 7.0 / 12.0 * (q[-1, 0, 0] + q) - 1.0 / 12.0 * (
            q[-2, 0, 0] + q[1, 0, 0]
        )
        # interface values are clamped between the adjacent cell means
        al = min(max(al, min(q[-1, 0, 0], q)), max(q[-1, 0, 0], q))
        bl = al - q
        br = al[1, 0, 0] - q
        # full PPM monotonicity (Colella & Woodward): flatten at local
        # extrema; pull back the overshooting interface otherwise
        if bl * br >= 0.0:
            bl = 0.0
            br = 0.0
        else:
            da = br - bl
            a6 = -3.0 * (bl + br)
            if da * a6 > da * da:
                bl = -2.0 * br
            elif da * a6 < -(da * da):
                br = -2.0 * bl
        b0 = bl + br
        if cr > 0.0:
            flux = q[-1, 0, 0] + (1.0 - cr) * (
                br[-1, 0, 0] - cr * b0[-1, 0, 0]
            )
        else:
            flux = q + (1.0 + cr) * (bl + cr * b0)
