"""Finite-volume transport (the FORTRAN ``fv_tp_2d``, Sec. VIII-C).

The 2D flux-form transport operator of Lin & Rood (1996) on the cubed
sphere: directionally-split PPM sweeps with constancy-preserving inner
(transverse) updates, reused across several components of the model
(Fig. 2). Module state (intermediate fields) lives on the class per the
paper's OOP design (Sec. IV-A); corner fills run as automatic callbacks.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.dsl import Field, FieldIJ, PARALLEL, computation, interval, stencil
from repro.fv3 import constants
from repro.fv3.corners import fill_corners
from repro.fv3.stencils.xppm import xppm_flux
from repro.fv3.stencils.yppm import yppm_flux
from repro.orchestration import orchestrate


@stencil
def transverse_update_y(
    q: Field, fy_v: Field, yfx: Field, rarea: FieldIJ, q_adv: Field
):
    """Half y-update in advective (constancy-preserving) form.

    ``fy_v`` is the reconstructed PPM interface value, ``yfx`` the area
    swept through the interface; for uniform q the correction term cancels
    the mass-flux divergence exactly.
    """
    with computation(PARALLEL), interval(...):
        q_adv = q + 0.5 * rarea * (
            fy_v * yfx
            - fy_v[0, 1, 0] * yfx[0, 1, 0]
            + q * (yfx[0, 1, 0] - yfx)
        )


@stencil
def transverse_update_x(
    q: Field, fx_v: Field, xfx: Field, rarea: FieldIJ, q_adv: Field
):
    with computation(PARALLEL), interval(...):
        q_adv = q + 0.5 * rarea * (
            fx_v * xfx
            - fx_v[1, 0, 0] * xfx[1, 0, 0]
            + q * (xfx[1, 0, 0] - xfx)
        )


@stencil
def scale_flux_x(fv: Field, xfx: Field, fx: Field):
    """Mass-weighted interface flux: swept area × reconstructed value."""
    with computation(PARALLEL), interval(...):
        fx = fv * xfx


@stencil
def scale_flux_y(fv: Field, yfx: Field, fy: Field):
    with computation(PARALLEL), interval(...):
        fy = fv * yfx


class FiniteVolumeTransport:
    """One fv_tp_2d operator bound to a rank's geometry."""

    def __init__(
        self,
        nx: int,
        ny: int,
        nk: int,
        rarea: np.ndarray,
        corners: Sequence[str],
        n_halo: int = constants.N_HALO,
    ):
        h = n_halo
        self.nx, self.ny, self.nk, self.h = nx, ny, nk, h
        self.rarea = rarea
        self.corner_list = tuple(corners)
        shape = (nx + 2 * h, ny + 2 * h, nk)
        self.fy_v = np.zeros(shape)  # inner y interface values
        self.fx_v = np.zeros(shape)  # inner x interface values
        self.q_y = np.zeros(shape)  # y-advected intermediate
        self.q_x = np.zeros(shape)  # x-advected intermediate
        self.fxv2 = np.zeros(shape)  # outer x interface values
        self.fyv2 = np.zeros(shape)  # outer y interface values

    @orchestrate
    def __call__(
        self,
        q: np.ndarray,
        crx: np.ndarray,
        cry: np.ndarray,
        xfx: np.ndarray,
        yfx: np.ndarray,
        fx: np.ndarray,
        fy: np.ndarray,
    ):
        """Compute mass-weighted fluxes ``fx``/``fy`` at the west/south
        interfaces of the compute domain.

        ``q`` must have valid halos; ``crx``/``xfx`` are interface Courant
        numbers / swept areas valid on the extended domain.
        """
        nx, ny, nk, h = self.nx, self.ny, self.nk, self.h
        # ---- inner y sweep on the full extended i range ----
        fill_corners(q, "y", self.corner_list)
        yppm_flux(
            q, cry, self.fy_v,
            origin=(0, h, 0), domain=(nx + 2 * h, ny + 1, nk),
        )
        transverse_update_y(
            q, self.fy_v, yfx, self.rarea, self.q_y,
            origin=(0, h, 0), domain=(nx + 2 * h, ny, nk),
        )
        # ---- inner x sweep on the full extended j range ----
        fill_corners(q, "x", self.corner_list)
        xppm_flux(
            q, crx, self.fx_v,
            origin=(h, 0, 0), domain=(nx + 1, ny + 2 * h, nk),
        )
        transverse_update_x(
            q, self.fx_v, xfx, self.rarea, self.q_x,
            origin=(h, 0, 0), domain=(nx, ny + 2 * h, nk),
        )
        # ---- outer fluxes from the advected intermediates ----
        xppm_flux(
            self.q_y, crx, self.fxv2,
            origin=(h, h, 0), domain=(nx + 1, ny, nk),
        )
        scale_flux_x(
            self.fxv2, xfx, fx, origin=(h, h, 0), domain=(nx + 1, ny, nk)
        )
        yppm_flux(
            self.q_x, cry, self.fyv2,
            origin=(h, h, 0), domain=(nx, ny + 1, nk),
        )
        scale_flux_y(
            self.fyv2, yfx, fy, origin=(h, h, 0), domain=(nx, ny + 1, nk)
        )

    @orchestrate
    def mass_weighted(
        self,
        q: np.ndarray,
        crx: np.ndarray,
        cry: np.ndarray,
        xfx: np.ndarray,
        yfx: np.ndarray,
        mfx: np.ndarray,
        mfy: np.ndarray,
        fx: np.ndarray,
        fy: np.ndarray,
    ):
        """Fluxes of a mass-weighted scalar: the reconstructed interface
        value rides the δp mass flux ``mfx``/``mfy`` (FV3's mfx/mfy inputs
        to fv_tp_2d)."""
        nx, ny, nk, h = self.nx, self.ny, self.nk, self.h
        fill_corners(q, "y", self.corner_list)
        yppm_flux(
            q, cry, self.fy_v,
            origin=(0, h, 0), domain=(nx + 2 * h, ny + 1, nk),
        )
        transverse_update_y(
            q, self.fy_v, yfx, self.rarea, self.q_y,
            origin=(0, h, 0), domain=(nx + 2 * h, ny, nk),
        )
        fill_corners(q, "x", self.corner_list)
        xppm_flux(
            q, crx, self.fx_v,
            origin=(h, 0, 0), domain=(nx + 1, ny + 2 * h, nk),
        )
        transverse_update_x(
            q, self.fx_v, xfx, self.rarea, self.q_x,
            origin=(h, 0, 0), domain=(nx, ny + 2 * h, nk),
        )
        xppm_flux(
            self.q_y, crx, self.fxv2,
            origin=(h, h, 0), domain=(nx + 1, ny, nk),
        )
        scale_flux_x(
            self.fxv2, mfx, fx, origin=(h, h, 0), domain=(nx + 1, ny, nk)
        )
        yppm_flux(
            self.q_x, cry, self.fyv2,
            origin=(h, h, 0), domain=(nx, ny + 1, nk),
        )
        scale_flux_y(
            self.fyv2, mfy, fy, origin=(h, h, 0), domain=(nx, ny + 1, nk)
        )
