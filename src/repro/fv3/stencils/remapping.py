"""Vertical Lagrangian-to-Eulerian remapping (the FORTRAN
``Lagrangian_to_Eulerian`` / ``map_single``, the green hexagon of Fig. 2).

The deformed Lagrangian layers (pressure thickness δp drifts during the
acoustic sub-steps) are conservatively remapped back to the reference
Eulerian coordinate pe2(k) = ptop + bk(k)·(ps − ptop), which follows the
column's new surface pressure so column mass is conserved by construction
(FV3's hybrid ak/bk coordinate).

This implementation assumes interface displacements of at most one layer
per remap step (a CFL-like condition satisfied by FV3's sub-stepping), so
each target layer overlaps only source layers k−1, k, k+1 and the remap
is expressible with constant offsets — a DSL concession analogous to
Sec. IV-D. Reconstruction is piecewise-constant (FV3 uses PPM vertically;
see DESIGN.md "Known simplifications").
"""

from __future__ import annotations

import numpy as np

from repro.dsl import (
    BACKWARD,
    FORWARD,
    Field,
    FieldK,
    PARALLEL,
    computation,
    interval,
    stencil,
)
from repro.fv3 import constants
from repro.orchestration import orchestrate


@stencil
def interface_pressures(delp: Field, pe1: Field, ptop: float):
    """Source (Lagrangian) interface pressures: cumulative δp (FORWARD).

    ``pe1`` has nk+1 levels; level k is the top interface of layer k.
    """
    with computation(FORWARD):
        with interval(0, 1):
            pe1 = ptop
        with interval(1, None):
            pe1 = pe1[0, 0, -1] + delp[0, 0, -1]


@stencil
def target_levels(pe1: Field, pe2: Field, bk: FieldK, ptop: float):
    """Eulerian target interfaces following the new surface pressure.

    The surface pressure (bottom interface of pe1) is propagated upward
    by a BACKWARD solve.
    """
    with computation(BACKWARD):
        with interval(-1, None):
            ps = pe1
            pe2 = pe1
        with interval(0, -1):
            ps = ps[0, 0, 1]
            pe2 = ptop + bk * (ps - ptop)


@stencil
def remap_layer(q: Field, q_new: Field, pe1: Field, pe2: Field):
    """Conservative piecewise-constant remap with ±1-layer overlap.

    overlap(src) = max(0, min(pe1[src+1], pe2[k+1]) − max(pe1[src], pe2[k]))
    """
    with computation(PARALLEL):
        with interval(0, 1):
            ov0 = max(0.0, min(pe1[0, 0, 1], pe2[0, 0, 1]) - max(pe1, pe2))
            ov1 = max(
                0.0,
                min(pe1[0, 0, 2], pe2[0, 0, 1]) - max(pe1[0, 0, 1], pe2),
            )
            q_new = (ov0 * q + ov1 * q[0, 0, 1]) / (pe2[0, 0, 1] - pe2)
        with interval(1, -1):
            ovm = max(0.0, min(pe1, pe2[0, 0, 1]) - max(pe1[0, 0, -1], pe2))
            ov0 = max(0.0, min(pe1[0, 0, 1], pe2[0, 0, 1]) - max(pe1, pe2))
            ov1 = max(
                0.0,
                min(pe1[0, 0, 2], pe2[0, 0, 1]) - max(pe1[0, 0, 1], pe2),
            )
            q_new = (ovm * q[0, 0, -1] + ov0 * q + ov1 * q[0, 0, 1]) / (
                pe2[0, 0, 1] - pe2
            )
        with interval(-1, None):
            ovm = max(0.0, min(pe1, pe2[0, 0, 1]) - max(pe1[0, 0, -1], pe2))
            ov0 = max(0.0, min(pe1[0, 0, 1], pe2[0, 0, 1]) - max(pe1, pe2))
            q_new = (ovm * q[0, 0, -1] + ov0 * q) / (pe2[0, 0, 1] - pe2)


@stencil
def copy_back(q: Field, q_new: Field):
    with computation(PARALLEL), interval(...):
        q = q_new


@stencil
def install_target_delp(delp: Field, pe2: Field):
    with computation(PARALLEL), interval(...):
        delp = pe2[0, 0, 1] - pe2


class LagrangianToEulerian:
    """One rank's vertical remapping module."""

    def __init__(self, nx, ny, nk, bk: np.ndarray, ptop: float = 100.0,
                 n_halo: int = constants.N_HALO):
        """``bk``: hybrid coefficients at interfaces, shape (nk+1,),
        monotone from 0 (top) to 1 (surface)."""
        self.nx, self.ny, self.nk, self.h = nx, ny, nk, n_halo
        self.ptop = ptop
        self.bk = np.ascontiguousarray(bk, dtype=float)
        shape2 = (nx + 2 * n_halo, ny + 2 * n_halo)
        self.pe1 = np.zeros(shape2 + (nk + 1,))
        self.pe2 = np.zeros(shape2 + (nk + 1,))
        self.q_new = np.zeros(shape2 + (nk,))

    @orchestrate
    def compute_levels(self, delp: np.ndarray):
        """Interface pressures of the deformed and target coordinates."""
        h, nx, ny, nk = self.h, self.nx, self.ny, self.nk
        iface = dict(origin=(h, h, 0), domain=(nx, ny, nk + 1))
        interface_pressures(delp, self.pe1, self.ptop, **iface)
        target_levels(self.pe1, self.pe2, self.bk, self.ptop, **iface)

    @orchestrate
    def remap_field(self, q: np.ndarray):
        """Remap one mass-weighted field to the target levels."""
        h, nx, ny, nk = self.h, self.nx, self.ny, self.nk
        interior = dict(origin=(h, h, 0), domain=(nx, ny, nk))
        remap_layer(q, self.q_new, self.pe1, self.pe2, **interior)
        copy_back(q, self.q_new, **interior)

    @orchestrate
    def finalize(self, delp: np.ndarray):
        """Install the target thicknesses as the new δp."""
        h, nx, ny, nk = self.h, self.nx, self.ny, self.nk
        install_target_delp(
            delp, self.pe2, origin=(h, h, 0), domain=(nx, ny, nk)
        )
