"""DSL stencil modules of the dynamical core (one file per FORTRAN
subroutine kept by the port, Sec. IV-A)."""
