"""PPM reconstruction and upwind flux in the y direction.

A duplicate of :mod:`xppm` with the offsets on the second horizontal
dimension — the module-duplication concession of Sec. IV-D (variable
offsets are not expressible in the DSL).
"""

from repro.dsl import Field, PARALLEL, computation, interval, stencil


@stencil
def yppm_flux(q: Field, cr: Field, flux: Field):
    """PPM flux through the *south* interface of each cell.

    ``cr`` is the Courant number at the interface between cells j-1 and j.
    """
    with computation(PARALLEL), interval(...):
        al = 7.0 / 12.0 * (q[0, -1, 0] + q) - 1.0 / 12.0 * (
            q[0, -2, 0] + q[0, 1, 0]
        )
        # interface values are clamped between the adjacent cell means
        al = min(max(al, min(q[0, -1, 0], q)), max(q[0, -1, 0], q))
        bl = al - q
        br = al[0, 1, 0] - q
        if bl * br >= 0.0:
            bl = 0.0
            br = 0.0
        else:
            da = br - bl
            a6 = -3.0 * (bl + br)
            if da * a6 > da * da:
                bl = -2.0 * br
            elif da * a6 < -(da * da):
                br = -2.0 * bl
        b0 = bl + br
        if cr > 0.0:
            flux = q[0, -1, 0] + (1.0 - cr) * (
                br[0, -1, 0] - cr * b0[0, -1, 0]
            )
        else:
            flux = q + (1.0 + cr) * (bl + cr * b0)
