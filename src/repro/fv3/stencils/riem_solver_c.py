"""Nonhydrostatic vertical Riemann solver (the FORTRAN ``riem_solver_c``).

Solves for the nonhydrostatic terms of vertical velocity and pressure
perturbation (Sec. VIII-B) with a semi-implicit discretization of the
vertically propagating sound waves: an implicit column problem

    (I + c²Δt² L) w^{n+1} = w^n + Δt · b

with L the vertical Laplacian over the layer heights, solved by the
Thomas algorithm. Per the paper, the module "is divided into three GT4Py
stencils": coefficient precomputation, the tridiagonal solve (forward
elimination + back substitution), and the height/pressure update.
"""

from __future__ import annotations

import numpy as np

from repro.dsl import (
    BACKWARD,
    FORWARD,
    Field,
    PARALLEL,
    computation,
    interval,
    stencil,
)
from repro.fv3 import constants
from repro.fv3.constants import GRAV, RDGAS, SOUND_SPEED
from repro.orchestration import orchestrate


@stencil
def precompute_coefficients(
    delz: Field,
    pt: Field,
    w: Field,
    delp: Field,
    aa: Field,
    bb: Field,
    cc: Field,
    dd: Field,
    dt: float,
    ptop: float,
):
    """Tridiagonal coefficients and right-hand side.

    δz is negative; layer heights dz = −δz. The source term is the
    *nonhydrostatic imbalance*: g·(δz_hydro/δz − 1), which vanishes for a
    hydrostatically balanced column so the solver only responds to (and
    damps) vertically propagating acoustic/gravity disturbances.
    """
    with computation(FORWARD):
        with interval(0, 1):
            pmid = ptop + 0.5 * delp
            pcum = ptop + delp
        with interval(1, None):
            pmid = pcum[0, 0, -1] + 0.5 * delp
            pcum = pcum[0, 0, -1] + delp
    with computation(PARALLEL):
        with interval(...):
            dz_hydro = -RDGAS * pt * delp / (GRAV * pmid)
            buoy = GRAV * (dz_hydro / delz - 1.0)
            dd = w + dt * buoy
        with interval(0, 1):
            dz0 = -delz
            aa = 0.0
            cc = SOUND_SPEED * SOUND_SPEED * dt * dt / (
                dz0 * 0.5 * (dz0 - delz[0, 0, 1])
            )
            bb = 1.0 + cc
        with interval(1, -1):
            dzm = -delz
            aa = SOUND_SPEED * SOUND_SPEED * dt * dt / (
                dzm * 0.5 * (dzm - delz[0, 0, -1])
            )
            cc = SOUND_SPEED * SOUND_SPEED * dt * dt / (
                dzm * 0.5 * (dzm - delz[0, 0, 1])
            )
            bb = 1.0 + aa + cc
        with interval(-1, None):
            dzn = -delz
            aa = SOUND_SPEED * SOUND_SPEED * dt * dt / (
                dzn * 0.5 * (dzn - delz[0, 0, -1])
            )
            cc = 0.0
            bb = 1.0 + aa


@stencil
def tridiagonal_solve(
    aa: Field, bb: Field, cc: Field, dd: Field, w: Field, gam: Field
):
    """Thomas algorithm: forward elimination then back substitution."""
    with computation(FORWARD):
        with interval(0, 1):
            gam = -cc / bb
            w = dd / bb
        with interval(1, None):
            denom = bb + aa * gam[0, 0, -1]
            gam = -cc / denom
            w = (dd + aa * w[0, 0, -1]) / denom
    with computation(BACKWARD):
        with interval(0, -1):
            w = w - gam * w[0, 0, 1]


@stencil
def update_heights_pressure(
    w: Field, delz: Field, pe: Field, delp: Field, pt: Field,
    dt: float, ptop: float,
):
    """Advance δz with the implicit w and diagnose the nonhydrostatic
    pressure perturbation (ideal-gas layer pressure minus the hydrostatic
    reconstruction)."""
    with computation(PARALLEL), interval(0, -1):
        delz = delz - dt * (w[0, 0, 1] - w)
    with computation(FORWARD):
        with interval(0, 1):
            pe = RDGAS * pt * delp / (GRAV * (0.0 - delz)) - (
                ptop + 0.5 * delp
            )
            pcum = ptop + delp
        with interval(1, None):
            pe = RDGAS * pt * delp / (GRAV * (0.0 - delz)) - (
                pcum[0, 0, -1] + 0.5 * delp
            )
            pcum = pcum[0, 0, -1] + delp


class RiemannSolverC:
    """One rank's riem_solver_c module."""

    def __init__(self, nx, ny, nk, n_halo: int = constants.N_HALO):
        self.nx, self.ny, self.nk, self.h = nx, ny, nk, n_halo
        shape = (nx + 2 * n_halo, ny + 2 * n_halo, nk)
        self.aa = np.zeros(shape)
        self.bb = np.zeros(shape)
        self.cc = np.zeros(shape)
        self.dd = np.zeros(shape)
        self.gam = np.zeros(shape)

    @orchestrate
    def __call__(
        self,
        w: np.ndarray,
        delz: np.ndarray,
        pt: np.ndarray,
        delp: np.ndarray,
        pe: np.ndarray,
        dt: float,
    ):
        h, nx, ny, nk = self.h, self.nx, self.ny, self.nk
        interior = dict(origin=(h, h, 0), domain=(nx, ny, nk))
        precompute_coefficients(
            delz, pt, w, delp, self.aa, self.bb, self.cc, self.dd,
            dt, 100.0, **interior,
        )
        tridiagonal_solve(
            self.aa, self.bb, self.cc, self.dd, w, self.gam, **interior
        )
        update_heights_pressure(
            w, delz, pe, delp, pt, dt, 100.0, **interior
        )
