"""D-grid shallow-water solver (the FORTRAN ``d_sw``): the Lagrangian
dynamics of one acoustic substep.

Contains the motifs the paper discusses: vector-invariant momentum update
(vorticity + kinetic-energy gradient + pressure gradient), Smagorinsky
diffusion with the power-operator kernel of Sec. VI-C1, divergence (del-2)
damping, and horizontal regions applying one-sided differences at tile
edges (Sec. IV-B).
"""

from __future__ import annotations

import numpy as np

from repro.dsl import (
    BACKWARD,
    FORWARD,
    Field,
    FieldIJ,
    PARALLEL,
    computation,
    horizontal,
    i_end,
    i_start,
    interval,
    j_end,
    j_start,
    region,
    stencil,
)
from repro.fv3 import constants
from repro.fv3.constants import GRAV, RDGAS
from repro.fv3.stencils.basic_ops import copy_stencil, flux_divergence
from repro.fv3.stencils.delnflux import (
    add_flux_divergence,
    del2_flux_x,
    del2_flux_y,
)
from repro.orchestration import orchestrate


@stencil
def vorticity_kinetic_energy(
    u: Field, v: Field, rdx: FieldIJ, rdy: FieldIJ, vort: Field, ke: Field
):
    """Relative vorticity and kinetic energy at cell centers.

    Centered differences in the interior; one-sided differences on the
    tile edges where the across-edge neighbor lives in a rotated frame
    (the cubed-sphere edge corrections of Sec. IV-B).
    """
    with computation(PARALLEL), interval(...):
        vort = 0.5 * (v[1, 0, 0] - v[-1, 0, 0]) * rdx - 0.5 * (
            u[0, 1, 0] - u[0, -1, 0]
        ) * rdy
        with horizontal(region[i_start, :]):
            vort = (v[1, 0, 0] - v) * rdx - 0.5 * (
                u[0, 1, 0] - u[0, -1, 0]
            ) * rdy
        with horizontal(region[i_end, :]):
            vort = (v - v[-1, 0, 0]) * rdx - 0.5 * (
                u[0, 1, 0] - u[0, -1, 0]
            ) * rdy
        with horizontal(region[:, j_start]):
            vort = 0.5 * (v[1, 0, 0] - v[-1, 0, 0]) * rdx - (
                u[0, 1, 0] - u
            ) * rdy
        with horizontal(region[:, j_end]):
            vort = 0.5 * (v[1, 0, 0] - v[-1, 0, 0]) * rdx - (
                u - u[0, -1, 0]
            ) * rdy
        ke = 0.5 * (u * u + v * v)


@stencil
def pressure_logs(delp: Field, lnp: Field, ptop: float):
    """Layer-mid log pressure from cumulative thickness (FORWARD solve)."""
    with computation(FORWARD):
        with interval(0, 1):
            lnp = log(ptop + 0.5 * delp)  # noqa: F821 - DSL builtin
            pe = ptop + delp
        with interval(1, None):
            lnp = log(pe[0, 0, -1] + 0.5 * delp)  # noqa: F821
            pe = pe[0, 0, -1] + delp


@stencil
def smagorinsky_diffusion(delpc: Field, vort: Field, smag: Field, dt: float):
    """The Sec. VI-C1 case-study kernel, verbatim power-operator form:

        vort = dt * (delpc**2.0 + vort**2.0) ** 0.5
    """
    with computation(PARALLEL), interval(...):
        smag = dt * (delpc**2.0 + vort**2.0) ** 0.5


@stencil
def geopotential(delz: Field, gz: Field):
    """Layer-mid geopotential by integrating δz upward.

    k increases downward; δz is negative (FV3 convention), the surface is
    below the last level.
    """
    with computation(BACKWARD):
        with interval(-1, None):
            gz = -0.5 * delz * GRAV
        with interval(0, -1):
            gz = gz[0, 0, 1] - 0.5 * GRAV * (delz + delz[0, 0, 1])


@stencil
def momentum_update(
    u: Field,
    v: Field,
    vort: Field,
    ke: Field,
    gz: Field,
    lnp: Field,
    pt: Field,
    f_cor: FieldIJ,
    rdx: FieldIJ,
    rdy: FieldIJ,
    dt: float,
):
    """Vector-invariant momentum update:

    du/dt = +(f+ζ)·v − ∂x(KE + gz) − R·T·∂x(ln p)
    dv/dt = −(f+ζ)·u − ∂y(KE + gz) − R·T·∂y(ln p)
    """
    with computation(PARALLEL), interval(...):
        energy = ke + gz
        px = (
            0.5 * (energy[1, 0, 0] - energy[-1, 0, 0])
            + RDGAS * pt * 0.5 * (lnp[1, 0, 0] - lnp[-1, 0, 0])
        ) * rdx
        py = (
            0.5 * (energy[0, 1, 0] - energy[0, -1, 0])
            + RDGAS * pt * 0.5 * (lnp[0, 1, 0] - lnp[0, -1, 0])
        ) * rdy
        u_new = u + dt * ((f_cor + vort) * v - px)
        v_new = v + dt * (-(f_cor + vort) * u - py)
        u = u_new
        v = v_new


@stencil
def apply_wind_damping(u: Field, v: Field, smag: Field, damp: float):
    """Smagorinsky damping applied implicitly (unconditionally stable)."""
    with computation(PARALLEL), interval(...):
        coeff = damp * smag
        u = u / (1.0 + coeff)
        v = v / (1.0 + coeff)


@stencil
def update_mass_weighted(
    q: Field,
    delp_old: Field,
    delp_new: Field,
    fq_x: Field,
    fq_y: Field,
    rarea: FieldIJ,
):
    """q_new = (q·δp_old + div(q̂ · mass flux)) / δp_new."""
    with computation(PARALLEL), interval(...):
        q = (
            q * delp_old
            + (fq_x - fq_x[1, 0, 0] + fq_y - fq_y[0, 1, 0]) * rarea
        ) / delp_new


class DGridSolver:
    """One rank's d_sw module (paper OOP design, Sec. IV-A)."""

    def __init__(self, grid, transport, config, bounds=None,
                 n_halo=constants.N_HALO):
        self.grid = grid
        self.transport = transport  # FiniteVolumeTransport
        self.config = config
        self.h = n_halo
        self.nx = grid.shape[0] - 2 * n_halo
        self.ny = grid.shape[1] - 2 * n_halo
        nk = config.npz
        shape = (grid.shape[0], grid.shape[1], nk)
        self.vort = np.zeros(shape)
        self.ke = np.zeros(shape)
        self.smag = np.zeros(shape)
        self.gz = np.zeros(shape)
        self.lnp = np.zeros(shape)
        self.fx = np.zeros(shape)
        self.fy = np.zeros(shape)
        self.fx2 = np.zeros(shape)
        self.fy2 = np.zeros(shape)
        self.delp_old = np.zeros(shape)
        self.ptop = 100.0
        self.bounds = bounds

    @orchestrate
    def momentum(
        self,
        u: np.ndarray,
        v: np.ndarray,
        pt: np.ndarray,
        delp: np.ndarray,
        delz: np.ndarray,
        delpc: np.ndarray,
        dt: float,
    ):
        """Vorticity/KE/pressure-gradient/Smagorinsky wind update."""
        h, nx, ny, nk = self.h, self.nx, self.ny, self.config.npz
        g = self.grid
        # diagnostics on a one-cell-extended domain so the momentum update
        # covers the whole interior
        extended = dict(origin=(h - 1, h - 1, 0), domain=(nx + 2, ny + 2, nk))
        interior = dict(origin=(h, h, 0), domain=(nx, ny, nk))
        vorticity_kinetic_energy(
            u, v, g.rdx, g.rdy, self.vort, self.ke,
            bounds=self.bounds, **extended,
        )
        pressure_logs(delp, self.lnp, self.ptop, **extended)
        geopotential(delz, self.gz, **extended)
        momentum_update(
            u, v, self.vort, self.ke, self.gz, self.lnp, pt,
            g.f_cor, g.rdx, g.rdy, dt, **interior,
        )
        smagorinsky_diffusion(
            delpc, self.vort, self.smag, dt * self.config.smag_coeff,
            **interior,
        )
        apply_wind_damping(u, v, self.smag, 1.0, **interior)

    @orchestrate
    def transport_fields(
        self,
        delp: np.ndarray,
        pt: np.ndarray,
        w: np.ndarray,
        crx: np.ndarray,
        cry: np.ndarray,
        xfx: np.ndarray,
        yfx: np.ndarray,
    ):
        """Advance δp, pt and w with the finite-volume transport."""
        h, nx, ny, nk = self.h, self.nx, self.ny, self.config.npz
        interior = dict(origin=(h, h, 0), domain=(nx, ny, nk))
        copy_stencil(delp, self.delp_old, origin=(0, 0, 0),
                     domain=(nx + 2 * h, ny + 2 * h, nk))
        # δp fluxes and update
        self.transport(delp, crx, cry, xfx, yfx, self.fx, self.fy)
        flux_divergence(delp, self.fx, self.fy, self.grid.rarea, **interior)
        # mass-weighted scalars ride the δp mass fluxes
        self.transport.mass_weighted(
            pt, crx, cry, xfx, yfx, self.fx, self.fy, self.fx2, self.fy2
        )
        update_mass_weighted(
            pt, self.delp_old, delp, self.fx2, self.fy2, self.grid.rarea,
            **interior,
        )
        self.transport.mass_weighted(
            w, crx, cry, xfx, yfx, self.fx, self.fy, self.fx2, self.fy2
        )
        update_mass_weighted(
            w, self.delp_old, delp, self.fx2, self.fy2, self.grid.rarea,
            **interior,
        )

    @orchestrate
    def damp_fields(self, delp: np.ndarray, pt: np.ndarray):
        """Divergence (del-2) damping of the transported fields."""
        h, nx, ny, nk = self.h, self.nx, self.ny, self.config.npz
        g = self.grid
        damp = self.config.d2_damp
        flux_domain = dict(origin=(h, h, 0), domain=(nx + 1, ny + 1, nk))
        interior = dict(origin=(h, h, 0), domain=(nx, ny, nk))
        del2_flux_x(delp, g.dy, g.rdx, self.fx2, damp, **flux_domain)
        del2_flux_y(delp, g.dx, g.rdy, self.fy2, damp, **flux_domain)
        add_flux_divergence(delp, self.fx2, self.fy2, g.rarea, **interior)
        del2_flux_x(pt, g.dy, g.rdx, self.fx2, damp, **flux_domain)
        del2_flux_y(pt, g.dx, g.rdy, self.fy2, damp, **flux_domain)
        add_flux_divergence(pt, self.fx2, self.fy2, g.rarea, **interior)
