"""Del-n damping fluxes (the FORTRAN ``deln_flux``): second-order
diffusive fluxes added to the transported quantities to control grid-scale
noise (Sec. II: divergence/vorticity damping options)."""

from repro.dsl import Field, FieldIJ, PARALLEL, computation, interval, stencil


@stencil
def del2_flux_x(q: Field, dy: FieldIJ, rdx: FieldIJ, fx2: Field, damp: float):
    """Diffusive x flux: damp · ∂q/∂x · dy (down-gradient)."""
    with computation(PARALLEL), interval(...):
        fx2 = damp * (q[-1, 0, 0] - q) * 0.5 * (dy[-1, 0, 0] + dy) * rdx


@stencil
def del2_flux_y(q: Field, dx: FieldIJ, rdy: FieldIJ, fy2: Field, damp: float):
    with computation(PARALLEL), interval(...):
        fy2 = damp * (q[0, -1, 0] - q) * 0.5 * (dx[0, -1, 0] + dx) * rdy


@stencil
def add_flux_divergence(q: Field, fx2: Field, fy2: Field, rarea: FieldIJ):
    """Apply the damping flux divergence.

    ``fx2`` is the down-gradient flux through the west interface (positive
    in +x); accumulation = inflow − outflow, which smooths extrema.
    """
    with computation(PARALLEL), interval(...):
        q = q + (fx2 - fx2[1, 0, 0] + fy2 - fy2[0, 1, 0]) * rarea
