"""C-grid preparation (the FORTRAN ``c_sw``): interface winds, Courant
numbers and swept areas for the transport operators."""

from __future__ import annotations

import numpy as np

from repro.dsl import Field, FieldIJ, PARALLEL, computation, interval, stencil
from repro.fv3 import constants
from repro.orchestration import orchestrate


@stencil
def cgrid_winds_x(
    ua: Field, dx: FieldIJ, dy: FieldIJ, crx: Field, xfx: Field, dt: float
):
    """Interface wind, Courant number and swept area at west interfaces."""
    with computation(PARALLEL), interval(...):
        uc = 0.5 * (ua[-1, 0, 0] + ua)
        crx = uc * dt * 2.0 / (dx[-1, 0, 0] + dx)
        xfx = uc * dt * 0.5 * (dy[-1, 0, 0] + dy)


@stencil
def cgrid_winds_y(
    va: Field, dx: FieldIJ, dy: FieldIJ, cry: Field, yfx: Field, dt: float
):
    with computation(PARALLEL), interval(...):
        vc = 0.5 * (va[0, -1, 0] + va)
        cry = vc * dt * 2.0 / (dy[0, -1, 0] + dy)
        yfx = vc * dt * 0.5 * (dx[0, -1, 0] + dx)


@stencil
def divergence_cgrid(
    xfx: Field, yfx: Field, rarea: FieldIJ, delpc: Field, dt: float
):
    """Normalized wind divergence from the swept areas (the ``delpc``
    input of the Smagorinsky kernel, Sec. VI-C1)."""
    with computation(PARALLEL), interval(...):
        delpc = (xfx[1, 0, 0] - xfx + yfx[0, 1, 0] - yfx) * rarea / dt


class CGridSolver:
    """Computes the C-grid quantities consumed by the acoustic step."""

    def __init__(self, nx, ny, nk, dx, dy, rarea, n_halo=constants.N_HALO):
        self.nx, self.ny, self.nk, self.h = nx, ny, nk, n_halo
        self.dx, self.dy, self.rarea = dx, dy, rarea

    @orchestrate
    def __call__(
        self,
        ua: np.ndarray,
        va: np.ndarray,
        crx: np.ndarray,
        cry: np.ndarray,
        xfx: np.ndarray,
        yfx: np.ndarray,
        delpc: np.ndarray,
        dt: float,
    ):
        nx, ny, nk, h = self.nx, self.ny, self.nk, self.h
        # interface quantities on the extended domain (the transport
        # operator reads them in the halo)
        cgrid_winds_x(
            ua, self.dx, self.dy, crx, xfx, dt,
            origin=(1, 0, 0), domain=(nx + 2 * h - 1, ny + 2 * h, nk),
        )
        cgrid_winds_y(
            va, self.dx, self.dy, cry, yfx, dt,
            origin=(0, 1, 0), domain=(nx + 2 * h, ny + 2 * h - 1, nk),
        )
        divergence_cgrid(
            xfx, yfx, self.rarea, delpc, dt,
            origin=(h - 1, h - 1, 0), domain=(nx + 1, ny + 1, nk),
        )
