"""Sub-cycled tracer advection (the FORTRAN ``tracer_2d``, the red hexagon
of Fig. 2): tracers are advected once per remapping step using the mass
fluxes and Courant numbers accumulated over the acoustic sub-steps."""

from __future__ import annotations

import numpy as np

from repro.dsl import Field, FieldIJ, PARALLEL, computation, interval, stencil
from repro.fv3 import constants
from repro.fv3.stencils.d_sw import update_mass_weighted
from repro.orchestration import orchestrate


@stencil
def accumulate_fluxes(
    crx: Field, cry: Field, xfx: Field, yfx: Field,
    crx_adv: Field, cry_adv: Field, xfx_adv: Field, yfx_adv: Field,
    weight: float,
):
    """Accumulate acoustic-step Courant numbers and swept areas."""
    with computation(PARALLEL), interval(...):
        crx_adv = crx_adv + weight * crx
        cry_adv = cry_adv + weight * cry
        xfx_adv = xfx_adv + weight * xfx
        yfx_adv = yfx_adv + weight * yfx


@stencil
def transported_delp(
    delp_old: Field, fx: Field, fy: Field, rarea: FieldIJ, delp_tr: Field
):
    """δp after the accumulated transport — the consistent denominator of
    the tracer update (uniform tracers stay exactly uniform)."""
    with computation(PARALLEL), interval(...):
        delp_tr = delp_old + (fx - fx[1, 0, 0] + fy - fy[0, 1, 0]) * rarea


class TracerAdvection:
    """Advects all tracer species with the accumulated transport."""

    def __init__(self, transport, rarea, nx, ny, nk,
                 n_halo=constants.N_HALO):
        self.transport = transport  # FiniteVolumeTransport
        self.rarea = rarea
        self.nx, self.ny, self.nk, self.h = nx, ny, nk, n_halo
        shape = (nx + 2 * n_halo, ny + 2 * n_halo, nk)
        self.fx = np.zeros(shape)
        self.fy = np.zeros(shape)
        self.mfx = np.zeros(shape)
        self.mfy = np.zeros(shape)
        self.delp_tr = np.zeros(shape)

    @orchestrate
    def prepare(
        self,
        delp_old: np.ndarray,
        crx_adv: np.ndarray,
        cry_adv: np.ndarray,
        xfx_adv: np.ndarray,
        yfx_adv: np.ndarray,
    ):
        """Mass fluxes of the accumulated motion plus the consistent
        post-transport δp (shared by all tracer species)."""
        h, nx, ny, nk = self.h, self.nx, self.ny, self.nk
        self.transport(
            delp_old, crx_adv, cry_adv, xfx_adv, yfx_adv, self.mfx, self.mfy
        )
        transported_delp(
            delp_old, self.mfx, self.mfy, self.rarea, self.delp_tr,
            origin=(h, h, 0), domain=(nx, ny, nk),
        )

    @orchestrate
    def __call__(
        self,
        tracer: np.ndarray,
        delp_old: np.ndarray,
        crx_adv: np.ndarray,
        cry_adv: np.ndarray,
        xfx_adv: np.ndarray,
        yfx_adv: np.ndarray,
    ):
        """Advect one tracer with the accumulated mass transport."""
        h, nx, ny, nk = self.h, self.nx, self.ny, self.nk
        self.transport.mass_weighted(
            tracer, crx_adv, cry_adv, xfx_adv, yfx_adv,
            self.mfx, self.mfy, self.fx, self.fy,
        )
        update_mass_weighted(
            tracer, delp_old, self.delp_tr, self.fx, self.fy, self.rarea,
            origin=(h, h, 0), domain=(nx, ny, nk),
        )
