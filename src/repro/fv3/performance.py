"""Single-rank whole-program orchestration of the dynamical core.

For performance engineering, the paper builds one SDFG spanning the entire
dynamical-core time step (Sec. V-B) and runs the optimization pipeline on
it. This module builds that graph for one rank: module calls are inlined,
the remapping and acoustic loops become SDFG loop regions, and the halo
exchanges appear as ``__pystate``-serialized callback nodes (communication
is overlapped/external in the paper's kernel analysis; the callbacks here
are local stand-ins that keep the graph structure and execution order).
"""

from __future__ import annotations

import numpy as np

from repro.fv3 import constants
from repro.fv3.config import DynamicalCoreConfig
from repro.fv3.corners import rank_corners
from repro.fv3.grid import CubedSphereGrid
from repro.fv3.initial import reference_coordinate
from repro.fv3.partitioner import CubedSpherePartitioner
from repro.fv3.acoustics import RankWorkspace
from repro.fv3.stencils.c_sw import CGridSolver
from repro.fv3.stencils.d_sw import DGridSolver
from repro.fv3.stencils.fvtp2d import FiniteVolumeTransport
from repro.fv3.stencils.riem_solver_c import RiemannSolverC
from repro.fv3.stencils.remapping import LagrangianToEulerian
from repro.fv3.stencils.tracer2d import TracerAdvection, accumulate_fluxes
from repro.orchestration import orchestrate


def _local_halo_fill(*arrays) -> None:
    """Stand-in halo exchange for the single-rank performance graph.

    Extends the interior into the halo by edge replication so downstream
    stencils read finite values; on a real run this node is the
    nonblocking MPI exchange (Sec. IV-C).
    """
    h = constants.N_HALO
    for arr in arrays:
        arr[:h] = arr[h : h + 1]
        arr[-h:] = arr[-h - 1 : -h]
        arr[:, :h] = arr[:, h : h + 1]
        arr[:, -h:] = arr[:, -h - 1 : -h]


class SingleRankDynCore:
    """One rank's full time step as a single orchestrated program."""

    def __init__(self, config: DynamicalCoreConfig):
        if config.layout != 1:
            raise ValueError(
                "the single-rank performance graph uses layout=1 "
                "(one full tile per rank, the paper's 6-node case study)"
            )
        self.config = config
        self.h = constants.N_HALO
        self.partitioner = CubedSpherePartitioner(config.npx, 1)
        self.grid = CubedSphereGrid.build(self.partitioner, 0, self.h)
        from repro.scenarios.library import baroclinic_state

        self.state = baroclinic_state(self.grid, config)
        nx = ny = config.npx
        nk = config.npz
        self.work = RankWorkspace(nx, ny, nk, self.h)
        corners = rank_corners(self.partitioner, 0)
        self.transport = FiniteVolumeTransport(
            nx, ny, nk, self.grid.rarea, corners, n_halo=self.h
        )
        self.c_sw = CGridSolver(
            nx, ny, nk, self.grid.dx, self.grid.dy, self.grid.rarea,
            n_halo=self.h,
        )
        self.d_sw = DGridSolver(
            self.grid, self.transport, config,
            bounds=self.partitioner.bounds(0), n_halo=self.h,
        )
        self.riemann = RiemannSolverC(nx, ny, nk, n_halo=self.h)
        bk, ptop = reference_coordinate(config)
        self.remap = LagrangianToEulerian(nx, ny, nk, bk, ptop, n_halo=self.h)
        self.tracer_adv = TracerAdvection(
            self.transport, self.grid.rarea, nx, ny, nk, n_halo=self.h
        )
        self._delp_start = np.zeros_like(self.state.delp)
        self.n_split = config.n_split
        self.k_split = config.k_split
        self.nx, self.ny, self.nk = nx, ny, nk

    @orchestrate
    def step(self, dt_acoustic: float):
        """One full dynamical-core step (Fig. 2) on this rank."""
        for _ in range(self.k_split):
            snapshot_delp(
                self.state.delp, self._delp_start,
                origin=(0, 0, 0),
                domain=(self.nx + 6, self.ny + 6, self.nk),
            )
            for _ in range(self.n_split):
                _local_halo_fill(self.state.u, self.state.v)
                self.c_sw(
                    self.state.u, self.state.v,
                    self.work.crx, self.work.cry,
                    self.work.xfx, self.work.yfx,
                    self.work.delpc, dt_acoustic,
                )
                self.riemann(
                    self.state.w, self.state.delz, self.state.pt,
                    self.state.delp, self.work.pe_nh, dt_acoustic,
                )
                _local_halo_fill(
                    self.state.delp, self.state.pt, self.state.w
                )
                self.d_sw.transport_fields(
                    self.state.delp, self.state.pt, self.state.w,
                    self.work.crx, self.work.cry,
                    self.work.xfx, self.work.yfx,
                )
                self.d_sw.momentum(
                    self.state.u, self.state.v, self.state.pt,
                    self.state.delp, self.state.delz, self.work.delpc,
                    dt_acoustic,
                )
                self.d_sw.damp_fields(self.state.delp, self.state.pt)
                accumulate_fluxes(
                    self.work.crx, self.work.cry,
                    self.work.xfx, self.work.yfx,
                    self.work.crx_adv, self.work.cry_adv,
                    self.work.xfx_adv, self.work.yfx_adv,
                    1.0,
                    origin=(0, 0, 0),
                    domain=(self.nx + 6, self.ny + 6, self.nk),
                )
            _local_halo_fill(self._delp_start, self.state.tracers[0])
            self.tracer_adv.prepare(
                self._delp_start,
                self.work.crx_adv, self.work.cry_adv,
                self.work.xfx_adv, self.work.yfx_adv,
            )
            self.tracer_adv(
                self.state.tracers[0], self._delp_start,
                self.work.crx_adv, self.work.cry_adv,
                self.work.xfx_adv, self.work.yfx_adv,
            )
            self.remap.compute_levels(self.state.delp)
            self.remap.remap_field(self.state.pt)
            self.remap.remap_field(self.state.u)
            self.remap.remap_field(self.state.v)
            self.remap.remap_field(self.state.w)
            self.remap.remap_field(self.state.tracers[0])
            self.remap.finalize(self.state.delp)

    # ------------------------------------------------------------------
    def build_sdfg(self, dt_acoustic: float = None):
        """Build (and return) the whole-step SDFG."""
        dt = dt_acoustic or self.config.dt_acoustic
        program = self.step  # bound OrchestratedProgram
        program.build(dt)
        return program


from repro.dsl import Field, PARALLEL, computation, interval, stencil


@stencil
def snapshot_delp(delp: Field, delp_start: Field):
    with computation(PARALLEL), interval(...):
        delp_start = delp
