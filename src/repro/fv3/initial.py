"""Initial conditions: the per-rank state container and the vertical
reference coordinate.

State *construction* moved to the scenario registry
(:mod:`repro.scenarios`): every initial-condition generator is now a
named, reference-checked :class:`~repro.scenarios.Scenario`, and runs
are launched through the :mod:`repro.run` facade. The former builder
functions (``baroclinic_state``, ``solid_body_rotation_winds``,
``gaussian_tracer``) remain importable here as thin deprecation shims
that delegate to :mod:`repro.scenarios.library`.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import List

import numpy as np


@dataclasses.dataclass
class RankFields:
    """Prognostic state of one rank (arrays include halos)."""

    u: np.ndarray  # local-x wind component [m/s]
    v: np.ndarray  # local-y wind component [m/s]
    w: np.ndarray  # vertical velocity [m/s]
    pt: np.ndarray  # temperature [K]
    delp: np.ndarray  # layer pressure thickness [Pa]
    delz: np.ndarray  # layer height thickness [m], negative
    tracers: List[np.ndarray]


def reference_coordinate(config, ptop: float = 100.0):
    """Hybrid coefficients: pure sigma levels (bk from 0 to 1)."""
    nk = config.npz
    bk = np.linspace(0.0, 1.0, nk + 1)
    return bk, ptop


# ---------------------------------------------------------------------------
# deprecation shims (the PR-1 ``set_default_backend`` pattern): the real
# builders live in repro.scenarios.library, looked up lazily to avoid an
# import cycle
# ---------------------------------------------------------------------------


def _deprecated(old: str, new: str):
    warnings.warn(
        f"repro.fv3.initial.{old}() is deprecated; use the scenario "
        f"registry instead — repro.scenarios.{new} (and launch runs "
        f"through repro.run.run(scenario, ...))",
        DeprecationWarning,
        stacklevel=3,
    )


def baroclinic_state(grid, config, ptop: float = 100.0) -> RankFields:
    """Deprecated: use ``get_scenario("baroclinic_wave")`` instead."""
    from repro.scenarios import library

    _deprecated("baroclinic_state", 'get_scenario("baroclinic_wave")')
    return library.baroclinic_state(grid, config, ptop)


def solid_body_rotation_winds(grid, nk: int, u0: float = 40.0,
                              angle: float = 0.0):
    """Deprecated: use ``repro.scenarios.solid_body_rotation_winds``."""
    from repro.scenarios import library

    _deprecated("solid_body_rotation_winds", "solid_body_rotation_winds")
    return library.solid_body_rotation_winds(grid, nk, u0=u0, angle=angle)


def gaussian_tracer(grid, nk: int, lon0=0.0, lat0=0.0,
                    width=0.35) -> np.ndarray:
    """Deprecated: use ``repro.scenarios.gaussian_tracer``."""
    from repro.scenarios import library

    _deprecated("gaussian_tracer", "gaussian_tracer")
    return library.gaussian_tracer(grid, nk, lon0=lon0, lat0=lat0,
                                   width=width)
