"""Initial conditions.

The paper's test case (Sec. IX) sets "the initial state of the model
corresponding to a uniform zonal flow with a perturbation which evolves
into a baroclinic instability" (Ullrich et al. 2014). This module builds a
simplified variant of that state — a balanced-ish mid-latitude zonal jet
with a localized perturbation — plus the solid-body-rotation tracer test
used for transport validation.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

import numpy as np

from repro.fv3 import constants
from repro.fv3.config import DynamicalCoreConfig
from repro.fv3.grid import CubedSphereGrid

#: jet parameters (Ullrich et al. scaled down for the coarse demo grids)
U_JET = 35.0  # m/s
T_SURFACE = 300.0  # K
LAPSE_FRACTION = 0.18  # fractional temperature drop top-to-bottom
PERTURBATION_U = 1.0  # m/s
PERT_LON = np.pi / 9.0
PERT_LAT = 2.0 * np.pi / 9.0
PERT_WIDTH = 0.2  # rad


@dataclasses.dataclass
class RankFields:
    """Prognostic state of one rank (arrays include halos)."""

    u: np.ndarray  # local-x wind component [m/s]
    v: np.ndarray  # local-y wind component [m/s]
    w: np.ndarray  # vertical velocity [m/s]
    pt: np.ndarray  # temperature [K]
    delp: np.ndarray  # layer pressure thickness [Pa]
    delz: np.ndarray  # layer height thickness [m], negative
    tracers: List[np.ndarray]


def reference_coordinate(config: DynamicalCoreConfig, ptop: float = 100.0):
    """Hybrid coefficients: pure sigma levels (bk from 0 to 1)."""
    nk = config.npz
    bk = np.linspace(0.0, 1.0, nk + 1)
    return bk, ptop


def baroclinic_state(
    grid: CubedSphereGrid, config: DynamicalCoreConfig, ptop: float = 100.0
) -> RankFields:
    """Build the perturbed zonal-jet initial state on one rank."""
    nk = config.npz
    shape2 = grid.shape
    shape3 = shape2 + (nk,)
    lon, lat = grid.lon, grid.lat

    bk, _ = reference_coordinate(config, ptop)
    ps = constants.P_REF
    pe = ptop + bk[None, None, :] * (ps - ptop)  # interfaces, same everywhere
    delp = np.broadcast_to(np.diff(pe, axis=-1), shape3).copy()
    p_mid = 0.5 * (pe[..., :-1] + pe[..., 1:])
    sigma_mid = (p_mid - ptop) / (ps - ptop)

    # temperature: warm surface, cooler aloft, meridional gradient
    t_profile = T_SURFACE * (1.0 - LAPSE_FRACTION * (1.0 - sigma_mid))
    pt = t_profile * (1.0 - 0.1 * np.sin(lat[..., None]) ** 2)

    # zonal jet peaked at mid-latitudes and at upper levels
    u_east = (
        U_JET
        * np.sin(2.0 * np.abs(lat[..., None])) ** 2
        * np.cos(0.5 * np.pi * sigma_mid)
    )
    # localized wind perturbation (the instability trigger)
    r2 = (lon[..., None] - PERT_LON) ** 2 + (lat[..., None] - PERT_LAT) ** 2
    u_east = u_east + PERTURBATION_U * np.exp(-r2 / PERT_WIDTH**2)
    v_north = np.zeros(shape3)

    u = np.zeros(shape3)
    v = np.zeros(shape3)
    for k in range(nk):
        u[..., k], v[..., k] = grid.wind_to_local(
            u_east[..., k], v_north[..., k]
        )

    # hydrostatic layer heights (δz < 0 by FV3 convention)
    delz = -constants.RDGAS * pt * delp / (constants.GRAV * p_mid)
    w = np.zeros(shape3)

    tracers = []
    for n in range(config.n_tracers):
        blob_lon = PERT_LON + n * 0.5
        r2t = (lon[..., None] - blob_lon) ** 2 + (lat[..., None]) ** 2
        tracers.append(np.exp(-r2t / 0.5**2) * np.ones(shape3))
    return RankFields(
        u=u, v=v, w=w, pt=pt, delp=delp, delz=delz, tracers=tracers
    )


def solid_body_rotation_winds(
    grid: CubedSphereGrid, nk: int, u0: float = 40.0, angle: float = 0.0
):
    """Winds of solid-body rotation (Williamson test 1), for transport
    tests: u_east = u0 (cos φ cos α + sin φ cos λ sin α)."""
    lon, lat = grid.lon, grid.lat
    u_east = u0 * (
        np.cos(lat) * np.cos(angle)
        + np.sin(lat) * np.cos(lon) * np.sin(angle)
    )
    v_north = -u0 * np.sin(lon) * np.sin(angle)
    u = np.zeros(grid.shape + (nk,))
    v = np.zeros(grid.shape + (nk,))
    for k in range(nk):
        u[..., k], v[..., k] = grid.wind_to_local(u_east, v_north)
    return u, v


def gaussian_tracer(grid: CubedSphereGrid, nk: int, lon0=0.0, lat0=0.0,
                    width=0.35) -> np.ndarray:
    """A smooth blob for advection tests (great-circle distance based)."""
    lon, lat = grid.lon, grid.lat
    cosd = np.sin(lat0) * np.sin(lat) + np.cos(lat0) * np.cos(lat) * np.cos(
        lon - lon0
    )
    dist = np.arccos(np.clip(cosd, -1.0, 1.0))
    blob = np.exp(-((dist / width) ** 2))
    return np.repeat(blob[..., None], nk, axis=-1)
