"""Model configuration (the namelist analogue).

The configuration drives orchestration-time constant propagation: loop
counts (``k_split``, ``n_split``, tracer count) and option flags
(hydrostatic branch elimination, damping options) are compile-time
constants of the built SDFG, as in the paper (Sec. V-B).
"""

from __future__ import annotations

import dataclasses

from repro.fv3 import constants


@dataclasses.dataclass(frozen=True)
class DynamicalCoreConfig:
    """Configuration of the dynamical core.

    Attributes:
        npx: number of cells along one tile edge (a "cN" resolution has
            ``npx = N``).
        npz: number of vertical levels.
        layout: ranks per tile edge (total ranks = 6 * layout**2).
        dt_atmos: physics (outermost) time step [s].
        k_split: remapping sub-steps per physics step.
        n_split: acoustic sub-steps per remapping step.
        n_tracers: number of advected tracer species.
        hydrostatic: hydrostatic option (False in the paper's evaluation).
        d2_damp: divergence-damping coefficient (nondimensional).
        smag_coeff: Smagorinsky diffusion coefficient (cs in Sec. VI-C1).
        tau: Rayleigh-ish damping timescale for winds [s] (0 disables).
    """

    npx: int = 24
    npz: int = 16
    layout: int = 1
    dt_atmos: float = 225.0
    k_split: int = 2
    n_split: int = 4
    n_tracers: int = 1
    hydrostatic: bool = False
    d2_damp: float = 0.15
    smag_coeff: float = 0.2
    tau: float = 0.0

    def __post_init__(self):
        if self.npx < 4:
            raise ValueError("npx must be at least 4")
        if self.npx % self.layout:
            raise ValueError(
                f"layout {self.layout} does not divide npx {self.npx}"
            )
        if self.npz < 3:
            raise ValueError("npz must be at least 3")
        if (
            self.npx // self.layout < 2 * constants.N_HALO
            and self.layout > 1
        ):
            raise ValueError(
                "subdomain too small for the halo width "
                f"({self.npx // self.layout} < {2 * constants.N_HALO})"
            )

    @property
    def total_ranks(self) -> int:
        return constants.N_TILES * self.layout**2

    @property
    def nx_rank(self) -> int:
        """Cells per rank along x."""
        return self.npx // self.layout

    @property
    def ny_rank(self) -> int:
        return self.npx // self.layout

    @property
    def dt_remap(self) -> float:
        return self.dt_atmos / self.k_split

    @property
    def dt_acoustic(self) -> float:
        return self.dt_remap / self.n_split

    def grid_spacing_km(self) -> float:
        """Approximate horizontal grid spacing at the tile center."""
        import math

        from repro.fv3.constants import RADIUS

        return (0.5 * math.pi * RADIUS / 1000.0) / self.npx
