"""The acoustic sub-step loop (the blue region of Fig. 2).

One acoustic sub-step of the Lagrangian dynamics:

1. halo exchange of the winds (nonblocking in the paper; routed through
   the in-process communicator here),
2. ``c_sw``: interface winds, Courant numbers, swept areas, divergence,
3. ``riem_solver_c``: the semi-implicit vertical solve for w and δz,
4. halo exchange of the transported scalars,
5. ``d_sw``: finite-volume transport of δp/pt/w, vector-invariant momentum
   update with Smagorinsky and divergence damping,
6. accumulation of Courant numbers/mass fluxes for the tracer transport.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.fv3 import constants
from repro.fv3.communicator import LocalComm
from repro.fv3.config import DynamicalCoreConfig
from repro.fv3.corners import rank_corners
from repro.fv3.grid import CubedSphereGrid
from repro.fv3.halo import HaloUpdater
from repro.fv3.initial import RankFields
from repro.fv3.partitioner import CubedSpherePartitioner
from repro.fv3.stencils.c_sw import CGridSolver
from repro.fv3.stencils.d_sw import DGridSolver
from repro.fv3.stencils.fvtp2d import FiniteVolumeTransport
from repro.fv3.stencils.riem_solver_c import RiemannSolverC
from repro.fv3.stencils.tracer2d import accumulate_fluxes
from repro.obs import tracer as _obs
from repro.runtime import ranks as _ranks

_TRACER = _obs.get_tracer()


def acoustic_comm_plan(halo: HaloUpdater | None = None, *,
                       overlap: bool = True):
    """The acoustic sub-step's communication schedule as a static
    :class:`repro.lint.plan_ir.CommPlan`.

    This is the declared contract the C3xx protocol rules verify: the
    split wind and scalar exchanges with their tag-slot bases, and the
    compute ops between them with read/write footprints taken from the
    real stencil extents. ``overlap=True`` mirrors ``_substep_rank``'s
    pipelined path, ``overlap=False`` the ``REPRO_OVERLAP=0`` ordering.
    Message edges come from ``halo.comm_schedule()`` (a default 6-rank
    decomposition when no updater is passed).
    """
    from repro.lint import plan_ir
    from repro.fv3.stencils.c_sw import cgrid_winds_x, cgrid_winds_y
    from repro.fv3.stencils.riem_solver_c import (
        precompute_coefficients,
        tridiagonal_solve,
        update_heights_pressure,
    )

    if halo is None:
        halo = HaloUpdater(CubedSpherePartitioner(12, 1))
    h = halo.n_halo
    winds = plan_ir.ExchangeDecl("winds", ("u", "v"), fslot_base=0,
                                 vector=True)
    # in the overlap path the transported scalars fly concurrently with
    # the winds, so they sit past the wind exchange's two slots; the
    # sequential path runs them after finish_vector on the default base
    scalars = plan_ir.ExchangeDecl(
        "scalars", ("delp", "pt", "w"), fslot_base=2 if overlap else 0
    )
    riemann_op = plan_ir.compute_op_from_stencils("riem_solver_c", [
        (precompute_coefficients,
         {"delz": "delz", "pt": "pt", "w": "w", "delp": "delp"}),
        (tridiagonal_solve, {"w": "w"}),
        (update_heights_pressure,
         {"w": "w", "delz": "delz", "pe": "pe_nh", "delp": "delp",
          "pt": "pt"}),
    ])
    # c_sw computes interface quantities over the halo-extended domain,
    # reading the full wind halos (its other parameters are private
    # workspace arrays, not exchanged fields)
    c_sw_op = plan_ir.compute_op_from_stencils("c_sw", [
        (cgrid_winds_x, {"ua": "u"}, h),
        (cgrid_winds_y, {"va": "v"}, h),
    ])
    d_sw_op = plan_ir.ComputeOp(
        "d_sw",
        reads={f: plan_ir.halo_extent(h)
               for f in ("u", "v", "delp", "pt", "w")},
        writes={f: plan_ir.halo_extent(0)
                for f in ("u", "v", "delp", "pt", "w")},
    )
    if overlap:
        program = (
            plan_ir.StartOp("winds"),
            riemann_op,
            plan_ir.StartOp("scalars"),
            plan_ir.AdvanceOp("winds"),
            plan_ir.AdvanceOp("scalars"),
            plan_ir.FinishOp("winds"),
            c_sw_op,
            plan_ir.FinishOp("scalars"),
            d_sw_op,
        )
    else:
        # The C305 exposed-window findings below are real and accepted:
        # with overlap disabled the split API degenerates to an atomic
        # exchange (start immediately followed by finish, nothing inside
        # the window). That is the point of REPRO_OVERLAP=0 — it keeps
        # the exact sequential op order that the bit-identity contract
        # of the scaling tests compares against, trading latency hiding
        # away on purpose, so the "window hides no latency" warning is
        # expected rather than a scheduling bug.
        program = (
            plan_ir.StartOp("winds"),  # lint: ignore[C305] — deliberate empty window, see above
            plan_ir.FinishOp("winds"),
            riemann_op,
            c_sw_op,
            plan_ir.StartOp("scalars"),  # lint: ignore[C305] — deliberate empty window, see above
            plan_ir.FinishOp("scalars"),
            d_sw_op,
        )
    return plan_ir.CommPlan.spmd(
        name=(
            "acoustics.substep.overlap"
            if overlap else "acoustics.substep.sequential"
        ),
        n_ranks=halo.partitioner.total_ranks,
        exchanges=(winds, scalars),
        program=program,
        edges=halo.comm_schedule(),
    )


def build_comm_plans():
    """Discovery hook for ``python -m repro.lint --comm``: both acoustic
    schedules, on the default 6-rank decomposition."""
    return [
        acoustic_comm_plan(overlap=True),
        acoustic_comm_plan(overlap=False),
    ]


class RankWorkspace:
    """Per-rank work arrays of the acoustic step."""

    def __init__(self, nx, ny, nk, h):
        shape = (nx + 2 * h, ny + 2 * h, nk)
        self.crx = np.zeros(shape)
        self.cry = np.zeros(shape)
        self.xfx = np.zeros(shape)
        self.yfx = np.zeros(shape)
        self.crx_adv = np.zeros(shape)
        self.cry_adv = np.zeros(shape)
        self.xfx_adv = np.zeros(shape)
        self.yfx_adv = np.zeros(shape)
        self.delpc = np.zeros(shape)
        self.pe_nh = np.zeros(shape)

    def zero_accumulators(self):
        self.crx_adv[:] = 0.0
        self.cry_adv[:] = 0.0
        self.xfx_adv[:] = 0.0
        self.yfx_adv[:] = 0.0


class AcousticDynamics:
    """Drives the acoustic loop across all simulated ranks."""

    def __init__(
        self,
        config: DynamicalCoreConfig,
        partitioner: CubedSpherePartitioner,
        grids: List[CubedSphereGrid],
        states: List[RankFields],
        halo: HaloUpdater,
        n_halo: int = constants.N_HALO,
        executor: "_ranks.RankExecutor | None" = None,
    ):
        self.config = config
        self.partitioner = partitioner
        self.grids = grids
        self.states = states
        self.halo = halo
        self.h = n_halo
        self.executor = executor
        # stable per-field rank lists for the split halo API (snapshots
        # restore into these arrays in place, so the views stay valid)
        self._u = [s.u for s in states]
        self._v = [s.v for s in states]
        self._delp = [s.delp for s in states]
        self._pt = [s.pt for s in states]
        self._w = [s.w for s in states]
        nx, ny, nk = partitioner.nx, partitioner.ny, config.npz
        self.work = [
            RankWorkspace(nx, ny, nk, n_halo)
            for _ in range(partitioner.total_ranks)
        ]
        self.c_sw = []
        self.d_sw = []
        self.riemann = []
        self.transports = []
        for rank in range(partitioner.total_ranks):
            grid = grids[rank]
            transport = FiniteVolumeTransport(
                nx, ny, nk, grid.rarea, rank_corners(partitioner, rank),
                n_halo=n_halo,
            )
            self.transports.append(transport)
            self.c_sw.append(
                CGridSolver(nx, ny, nk, grid.dx, grid.dy, grid.rarea,
                            n_halo=n_halo)
            )
            self.d_sw.append(
                DGridSolver(grid, transport, config,
                            bounds=partitioner.bounds(rank), n_halo=n_halo)
            )
            self.riemann.append(RiemannSolverC(nx, ny, nk, n_halo=n_halo))

    def comm_plan(self, overlap: bool | None = None):
        """This instance's communication schedule over its real halo
        topology, for the C3xx protocol checker and the transformation
        audit. ``overlap=None`` resolves from ``REPRO_OVERLAP``."""
        if overlap is None:
            overlap = _ranks.overlap_enabled()
        return acoustic_comm_plan(self.halo, overlap=overlap)

    # ------------------------------------------------------------------
    def substep(self, dt: float) -> None:
        """One acoustic sub-step across all ranks."""
        with _TRACER.span("acoustics.substep"):
            ex = self.executor
            if ex is not None and ex.parallel:
                ex.run(
                    lambda r: self._substep_rank(r, dt),
                    self.partitioner.total_ranks,
                    label="acoustics.substep",
                )
            else:
                self._substep(dt)

    def _substep_rank(self, rank: int, dt: float) -> None:
        """SPMD body: one rank's acoustic sub-step on its own thread.

        The Riemann solve reads and writes only w/δz/pt/δp — independent
        of the winds — so with overlap enabled it runs inside the window
        of the in-flight wind exchange. Reordering it against ``c_sw``
        (which is also independent of it) leaves every floating-point
        result bit-identical to the sequential path.
        """
        s, w = self.states[rank], self.work[rank]
        halo = self.halo
        hx = halo.start_vector(self._u, self._v, rank)
        if _ranks.overlap_enabled():
            # software-pipelined exchanges: riemann fills the wind
            # exchange's phase-0 window; the transported scalars (which
            # riemann just finished writing, and which c_sw never reads)
            # go in flight on disjoint tag slots immediately after, so
            # both scalar phases ride inside the wind exchange's waits.
            # Per sub-step only the two wind phases are exposed. Every
            # reordered pair is independent — c_sw still runs on
            # completely filled u/v halos — so all results stay
            # bit-identical to the sequential path.
            self.riemann[rank](s.w, s.delz, s.pt, s.delp, w.pe_nh, dt)
            sx = halo.start_scalars(
                (self._delp, self._pt, self._w), rank, fslot_base=2
            )
            halo.advance(hx)
            halo.advance(sx)
            halo.finish_vector(hx)
            self.c_sw[rank](
                s.u, s.v, w.crx, w.cry, w.xfx, w.yfx, w.delpc, dt
            )
            halo.finish_scalars(sx)
        else:
            halo.finish_vector(hx)
            self.riemann[rank](s.w, s.delz, s.pt, s.delp, w.pe_nh, dt)
            self.c_sw[rank](
                s.u, s.v, w.crx, w.cry, w.xfx, w.yfx, w.delpc, dt
            )
            sx = halo.start_scalars((self._delp, self._pt, self._w), rank)
            halo.finish_scalars(sx)
        self.d_sw[rank].transport_fields(
            s.delp, s.pt, s.w, w.crx, w.cry, w.xfx, w.yfx
        )
        self.d_sw[rank].momentum(
            s.u, s.v, s.pt, s.delp, s.delz, w.delpc, dt
        )
        self.d_sw[rank].damp_fields(s.delp, s.pt)
        nx, ny, nk = (
            self.partitioner.nx, self.partitioner.ny, self.config.npz,
        )
        accumulate_fluxes(
            w.crx, w.cry, w.xfx, w.yfx,
            w.crx_adv, w.cry_adv, w.xfx_adv, w.yfx_adv,
            1.0,
            origin=(0, 0, 0),
            domain=(nx + 2 * self.h, ny + 2 * self.h, nk),
        )

    def _substep(self, dt: float) -> None:
        states, work = self.states, self.work
        nranks = self.partitioner.total_ranks
        # winds with rotated halos
        self.halo.update_vector(
            [s.u for s in states], [s.v for s in states]
        )
        for r in range(nranks):
            self.c_sw[r](
                states[r].u, states[r].v,
                work[r].crx, work[r].cry, work[r].xfx, work[r].yfx,
                work[r].delpc, dt,
            )
            self.riemann[r](
                states[r].w, states[r].delz, states[r].pt,
                states[r].delp, work[r].pe_nh, dt,
            )
        for field in ("delp", "pt", "w"):
            self.halo.update_scalar([getattr(s, field) for s in states])
        for r in range(nranks):
            self.d_sw[r].transport_fields(
                states[r].delp, states[r].pt, states[r].w,
                work[r].crx, work[r].cry, work[r].xfx, work[r].yfx,
            )
            self.d_sw[r].momentum(
                states[r].u, states[r].v, states[r].pt, states[r].delp,
                states[r].delz, work[r].delpc, dt,
            )
            self.d_sw[r].damp_fields(states[r].delp, states[r].pt)
            nx, ny, nk = (
                self.partitioner.nx, self.partitioner.ny, self.config.npz,
            )
            accumulate_fluxes(
                work[r].crx, work[r].cry, work[r].xfx, work[r].yfx,
                work[r].crx_adv, work[r].cry_adv,
                work[r].xfx_adv, work[r].yfx_adv,
                1.0,
                origin=(0, 0, 0),
                domain=(nx + 2 * self.h, ny + 2 * self.h, nk),
            )

    def run(self, dt_acoustic: float, n_split: int) -> None:
        with _TRACER.span("acoustics"):
            for w in self.work:
                w.zero_accumulators()
            for _ in range(n_split):
                self.substep(dt_acoustic)
