"""The acoustic sub-step loop (the blue region of Fig. 2).

One acoustic sub-step of the Lagrangian dynamics:

1. halo exchange of the winds (nonblocking in the paper; routed through
   the in-process communicator here),
2. ``c_sw``: interface winds, Courant numbers, swept areas, divergence,
3. ``riem_solver_c``: the semi-implicit vertical solve for w and δz,
4. halo exchange of the transported scalars,
5. ``d_sw``: finite-volume transport of δp/pt/w, vector-invariant momentum
   update with Smagorinsky and divergence damping,
6. accumulation of Courant numbers/mass fluxes for the tracer transport.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.fv3 import constants
from repro.fv3.communicator import LocalComm
from repro.fv3.config import DynamicalCoreConfig
from repro.fv3.corners import rank_corners
from repro.fv3.grid import CubedSphereGrid
from repro.fv3.halo import HaloUpdater
from repro.fv3.initial import RankFields
from repro.fv3.partitioner import CubedSpherePartitioner
from repro.fv3.stencils.c_sw import CGridSolver
from repro.fv3.stencils.d_sw import DGridSolver
from repro.fv3.stencils.fvtp2d import FiniteVolumeTransport
from repro.fv3.stencils.riem_solver_c import RiemannSolverC
from repro.fv3.stencils.tracer2d import accumulate_fluxes
from repro.obs import tracer as _obs
from repro.runtime import ranks as _ranks

_TRACER = _obs.get_tracer()


class RankWorkspace:
    """Per-rank work arrays of the acoustic step."""

    def __init__(self, nx, ny, nk, h):
        shape = (nx + 2 * h, ny + 2 * h, nk)
        self.crx = np.zeros(shape)
        self.cry = np.zeros(shape)
        self.xfx = np.zeros(shape)
        self.yfx = np.zeros(shape)
        self.crx_adv = np.zeros(shape)
        self.cry_adv = np.zeros(shape)
        self.xfx_adv = np.zeros(shape)
        self.yfx_adv = np.zeros(shape)
        self.delpc = np.zeros(shape)
        self.pe_nh = np.zeros(shape)

    def zero_accumulators(self):
        self.crx_adv[:] = 0.0
        self.cry_adv[:] = 0.0
        self.xfx_adv[:] = 0.0
        self.yfx_adv[:] = 0.0


class AcousticDynamics:
    """Drives the acoustic loop across all simulated ranks."""

    def __init__(
        self,
        config: DynamicalCoreConfig,
        partitioner: CubedSpherePartitioner,
        grids: List[CubedSphereGrid],
        states: List[RankFields],
        halo: HaloUpdater,
        n_halo: int = constants.N_HALO,
        executor: "_ranks.RankExecutor | None" = None,
    ):
        self.config = config
        self.partitioner = partitioner
        self.grids = grids
        self.states = states
        self.halo = halo
        self.h = n_halo
        self.executor = executor
        # stable per-field rank lists for the split halo API (snapshots
        # restore into these arrays in place, so the views stay valid)
        self._u = [s.u for s in states]
        self._v = [s.v for s in states]
        self._delp = [s.delp for s in states]
        self._pt = [s.pt for s in states]
        self._w = [s.w for s in states]
        nx, ny, nk = partitioner.nx, partitioner.ny, config.npz
        self.work = [
            RankWorkspace(nx, ny, nk, n_halo)
            for _ in range(partitioner.total_ranks)
        ]
        self.c_sw = []
        self.d_sw = []
        self.riemann = []
        self.transports = []
        for rank in range(partitioner.total_ranks):
            grid = grids[rank]
            transport = FiniteVolumeTransport(
                nx, ny, nk, grid.rarea, rank_corners(partitioner, rank),
                n_halo=n_halo,
            )
            self.transports.append(transport)
            self.c_sw.append(
                CGridSolver(nx, ny, nk, grid.dx, grid.dy, grid.rarea,
                            n_halo=n_halo)
            )
            self.d_sw.append(
                DGridSolver(grid, transport, config,
                            bounds=partitioner.bounds(rank), n_halo=n_halo)
            )
            self.riemann.append(RiemannSolverC(nx, ny, nk, n_halo=n_halo))

    # ------------------------------------------------------------------
    def substep(self, dt: float) -> None:
        """One acoustic sub-step across all ranks."""
        with _TRACER.span("acoustics.substep"):
            ex = self.executor
            if ex is not None and ex.parallel:
                ex.run(
                    lambda r: self._substep_rank(r, dt),
                    self.partitioner.total_ranks,
                    label="acoustics.substep",
                )
            else:
                self._substep(dt)

    def _substep_rank(self, rank: int, dt: float) -> None:
        """SPMD body: one rank's acoustic sub-step on its own thread.

        The Riemann solve reads and writes only w/δz/pt/δp — independent
        of the winds — so with overlap enabled it runs inside the window
        of the in-flight wind exchange. Reordering it against ``c_sw``
        (which is also independent of it) leaves every floating-point
        result bit-identical to the sequential path.
        """
        s, w = self.states[rank], self.work[rank]
        halo = self.halo
        hx = halo.start_vector(self._u, self._v, rank)
        if _ranks.overlap_enabled():
            # software-pipelined exchanges: riemann fills the wind
            # exchange's phase-0 window; the transported scalars (which
            # riemann just finished writing, and which c_sw never reads)
            # go in flight on disjoint tag slots immediately after, so
            # both scalar phases ride inside the wind exchange's waits.
            # Per sub-step only the two wind phases are exposed. Every
            # reordered pair is independent — c_sw still runs on
            # completely filled u/v halos — so all results stay
            # bit-identical to the sequential path.
            self.riemann[rank](s.w, s.delz, s.pt, s.delp, w.pe_nh, dt)
            sx = halo.start_scalars(
                (self._delp, self._pt, self._w), rank, fslot_base=2
            )
            halo.advance(hx)
            halo.advance(sx)
            halo.finish_vector(hx)
            self.c_sw[rank](
                s.u, s.v, w.crx, w.cry, w.xfx, w.yfx, w.delpc, dt
            )
            halo.finish_scalars(sx)
        else:
            halo.finish_vector(hx)
            self.riemann[rank](s.w, s.delz, s.pt, s.delp, w.pe_nh, dt)
            self.c_sw[rank](
                s.u, s.v, w.crx, w.cry, w.xfx, w.yfx, w.delpc, dt
            )
            sx = halo.start_scalars((self._delp, self._pt, self._w), rank)
            halo.finish_scalars(sx)
        self.d_sw[rank].transport_fields(
            s.delp, s.pt, s.w, w.crx, w.cry, w.xfx, w.yfx
        )
        self.d_sw[rank].momentum(
            s.u, s.v, s.pt, s.delp, s.delz, w.delpc, dt
        )
        self.d_sw[rank].damp_fields(s.delp, s.pt)
        nx, ny, nk = (
            self.partitioner.nx, self.partitioner.ny, self.config.npz,
        )
        accumulate_fluxes(
            w.crx, w.cry, w.xfx, w.yfx,
            w.crx_adv, w.cry_adv, w.xfx_adv, w.yfx_adv,
            1.0,
            origin=(0, 0, 0),
            domain=(nx + 2 * self.h, ny + 2 * self.h, nk),
        )

    def _substep(self, dt: float) -> None:
        states, work = self.states, self.work
        nranks = self.partitioner.total_ranks
        # winds with rotated halos
        self.halo.update_vector(
            [s.u for s in states], [s.v for s in states]
        )
        for r in range(nranks):
            self.c_sw[r](
                states[r].u, states[r].v,
                work[r].crx, work[r].cry, work[r].xfx, work[r].yfx,
                work[r].delpc, dt,
            )
            self.riemann[r](
                states[r].w, states[r].delz, states[r].pt,
                states[r].delp, work[r].pe_nh, dt,
            )
        for field in ("delp", "pt", "w"):
            self.halo.update_scalar([getattr(s, field) for s in states])
        for r in range(nranks):
            self.d_sw[r].transport_fields(
                states[r].delp, states[r].pt, states[r].w,
                work[r].crx, work[r].cry, work[r].xfx, work[r].yfx,
            )
            self.d_sw[r].momentum(
                states[r].u, states[r].v, states[r].pt, states[r].delp,
                states[r].delz, work[r].delpc, dt,
            )
            self.d_sw[r].damp_fields(states[r].delp, states[r].pt)
            nx, ny, nk = (
                self.partitioner.nx, self.partitioner.ny, self.config.npz,
            )
            accumulate_fluxes(
                work[r].crx, work[r].cry, work[r].xfx, work[r].yfx,
                work[r].crx_adv, work[r].cry_adv,
                work[r].xfx_adv, work[r].yfx_adv,
                1.0,
                origin=(0, 0, 0),
                domain=(nx + 2 * self.h, ny + 2 * self.h, nk),
            )

    def run(self, dt_acoustic: float, n_split: int) -> None:
        with _TRACER.span("acoustics"):
            for w in self.work:
                w.zero_accumulators()
            for _ in range(n_split):
                self.substep(dt_acoustic)
