"""In-process communicator with an mpi4py-style nonblocking interface.

The paper runs MPI over Cray Aries; this reproduction runs all ranks in
one process (the substitution documented in DESIGN.md). The communicator
preserves the *communication pattern*: data is exchanged through packed
contiguous buffers with explicit ``Isend``/``Irecv``/``wait`` lifecycles
(the mpi4py buffer idiom), and every message's byte count is recorded so
the network model can replay the exchange at scale (Fig. 11).

Concurrency (the threaded-ranks substrate, PR 5): the mailbox is a
lock + condition-variable structure, safe against ranks running on the
:class:`~repro.runtime.ranks.RankExecutor` thread pool.

- ``Request.wait`` on a receive *blocks* on the condition variable until
  the matching send lands (or a real-time budget of
  ``max_polls * poll_interval`` seconds runs out, raising
  :class:`~repro.resilience.errors.HaloTimeoutError` naming the ranks,
  tag, phase and the mailbox keys still pending).
- ``Request.wait`` on a send blocks until the receiver drains the slot —
  the documented ``test()`` semantics, now enforced rather than skipped.
- Every message carries a *deliverable-at* instant: simulated network
  latency (``latency`` / ``REPRO_NET_LATENCY``, seconds per message) and
  chaos ``halo.delay`` are both delivery-time conditions on the message
  itself, so seeded chaos replays are independent of how often a waiter
  happens to wake.
- The message log and the byte/size counters are guarded by the mailbox
  lock, so obs accounting stays exact under concurrent ranks.

Failure semantics (the resilience layer, PR 4) are unchanged: the chaos
harness can drop, delay or corrupt individual messages at the
``halo.drop`` / ``halo.delay`` / ``halo.corrupt`` sites (every ``Isend``
consults the active plan — one ``is None`` check when chaos is off);
``finalize()`` reports sent-but-never-received messages; ``drain()``
clears in-flight state so an aborted exchange can be retried cleanly.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
import warnings
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.resilience import chaos as _chaos
from repro.resilience import record as _record
from repro.resilience.chaos import DEFAULT_DELAY_POLLS
from repro.resilience.errors import HaloTimeoutError, OrphanedMessagesWarning

_Key = Tuple[int, int, int]  # (source, dest, tag)

# cached module reference for the compute-slot handoff around blocking
# waits; imported lazily so loading the communicator alone stays light
_ranks_mod = None


def _io_wait():
    global _ranks_mod
    if _ranks_mod is None:
        from repro.runtime import ranks
        _ranks_mod = ranks
    return _ranks_mod.io_wait()


@dataclasses.dataclass
class MessageRecord:
    source: int
    dest: int
    nbytes: int
    tag: int


class _Message:
    """One in-flight payload plus the instant it becomes deliverable.

    ``delayed`` marks a chaos-withheld message so its eventual pickup is
    counted as a redelivery — waiting on an ordinarily slow (latency)
    message is not a recovery event.
    """

    __slots__ = ("payload", "deliverable_at", "delayed")

    def __init__(self, payload: np.ndarray, deliverable_at: float,
                 delayed: bool = False):
        self.payload = payload
        self.deliverable_at = deliverable_at
        self.delayed = delayed


class Request:
    """Completion handle for a nonblocking operation.

    Semantics of the two kinds:

    - ``recv``: ``wait()`` blocks until the matching send is deliverable
      (bounded by ``comm.timeout`` seconds of *absence*; modeled latency
      and chaos delays on a present message never count against the
      budget) and copies the payload into the posted buffer. ``test()``
      is true once the payload is deliverable.
    - ``send``: the transport copies eagerly (the buffer is reusable the
      moment ``Isend`` returns), but the *operation* completes only when
      the receiver drains the slot: ``wait()`` blocks until then (or the
      timeout budget expires), matching ``test()``, which reports
      delivery — false while the message still sits undelivered in the
      mailbox, true once the receiver picked it up. A dropped message
      never occupied a slot, so its send completes immediately (the
      fault is invisible to the sender, as on a real network).
    """

    def __init__(self, comm: "LocalComm", kind: str, key: _Key, buf,
                 dropped: bool = False):
        self._comm = comm
        self._kind = kind
        self._key = key
        self._buf = buf
        self._done = False
        self._dropped = dropped

    def wait(self, timeout: Optional[float] = None) -> None:
        if self._done:
            return
        if self._kind == "recv":
            self._wait_recv(timeout)
        else:
            self._wait_send(timeout)
        self._done = True

    def _wait_recv(self, timeout: Optional[float]) -> None:
        comm, key = self._comm, self._key
        budget = comm.timeout if timeout is None else timeout
        deadline: Optional[float] = None
        payload: Optional[np.ndarray] = None
        delayed = False
        with _io_wait():
            with comm._cv:
                while True:
                    msg = comm._mailbox.get(key)
                    now = time.monotonic()
                    if msg is not None:
                        if msg.deliverable_at <= now:
                            del comm._mailbox[key]
                            comm._cv.notify_all()
                            payload = msg.payload
                            delayed = msg.delayed
                            break
                        # present but in flight (modeled latency / chaos
                        # delay): wake at the delivery instant — this
                        # wait is not charged to the timeout budget
                        comm._cv.wait(msg.deliverable_at - now)
                        continue
                    if deadline is None:
                        deadline = now + budget
                    elif now >= deadline:
                        source, dest, tag = key
                        raise HaloTimeoutError(
                            source=source,
                            dest=dest,
                            tag=tag,
                            polls=comm.max_polls,
                            pending=sorted(comm._mailbox),
                        )
                    comm._cv.wait(min(comm.poll_interval, deadline - now))
        np.copyto(self._buf, payload.reshape(self._buf.shape))
        if delayed:
            _record("halo_redeliveries")

    def _wait_send(self, timeout: Optional[float]) -> None:
        if self._dropped:
            return
        comm, key = self._comm, self._key
        budget = comm.timeout if timeout is None else timeout
        with _io_wait():
            with comm._cv:
                deadline = time.monotonic() + budget
                while key in comm._mailbox:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        source, dest, tag = key
                        raise HaloTimeoutError(
                            source=source,
                            dest=dest,
                            tag=tag,
                            polls=comm.max_polls,
                            pending=sorted(comm._mailbox),
                        )
                    comm._cv.wait(min(comm.poll_interval, remaining))

    def test(self) -> bool:
        if self._done:
            return True
        comm = self._comm
        with comm._lock:
            msg = comm._mailbox.get(self._key)
            if self._kind == "recv":
                return msg is not None and (
                    msg.deliverable_at <= time.monotonic()
                )
            return self._dropped or msg is None


class LocalComm:
    """A communicator routing buffers between in-process ranks.

    Matching follows MPI semantics on (source, dest, tag). Sends deliver
    eagerly (buffered), so a driver may still run ranks sequentially —
    post all sends, then complete all receives — while concurrent ranks
    block productively on the condition variable.

    ``latency`` (seconds, default ``REPRO_NET_LATENCY`` or 0) delays
    every message's deliverable-at instant, modeling the network the
    paper's Cray Aries interconnect provides: with it set, comm/compute
    overlap becomes measurable in one process.
    """

    #: receive budget, expressed as polls of ``poll_interval`` seconds so
    #: the recorded ``HaloTimeoutError.polls`` stays meaningful
    max_polls: int = 8
    #: condition-variable wake interval while a wanted key is absent
    poll_interval: float = 0.05

    def __init__(self, size: int, latency: Optional[float] = None):
        self.size = size
        if latency is None:
            latency = float(os.environ.get("REPRO_NET_LATENCY", "0") or "0")
        self.latency = latency
        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)
        self._mailbox: Dict[_Key, _Message] = {}
        self.log: List[MessageRecord] = []

    @property
    def timeout(self) -> float:
        """Seconds of absence a wait tolerates before raising."""
        return self.max_polls * self.poll_interval

    @property
    def delay_seconds(self) -> float:
        """How long a chaos ``halo.delay`` withholds delivery."""
        return DEFAULT_DELAY_POLLS * self.poll_interval

    def pending(self) -> List[_Key]:
        """Sorted (source, dest, tag) triples still in the mailbox."""
        with self._lock:
            return sorted(self._mailbox)

    # ---- nonblocking operations -----------------------------------------

    def Isend(self, buf: np.ndarray, source: int, dest: int, tag: int = 0) -> Request:
        if not (0 <= dest < self.size):
            raise ValueError(f"invalid destination rank {dest}")
        key = (source, dest, tag)
        record = MessageRecord(source, dest, buf.nbytes, tag)
        dropped = False
        delayed = False
        payload: Optional[np.ndarray] = None
        if _chaos._PLAN is not None:
            if _chaos.consult(
                "halo.drop", source=source, dest=dest, tag=tag
            ):
                # the message vanishes in transit: bytes left the source
                # (logged below) but the mailbox never sees them
                dropped = True
            else:
                payload = np.ascontiguousarray(buf).copy()
                fault = _chaos.consult(
                    "halo.corrupt", source=source, dest=dest, tag=tag
                )
                if fault is not None:
                    index = _chaos.get_plan().rng(
                        "halo.corrupt.index"
                    ).randrange(payload.size)
                    payload.flat[index] = np.nan
                    fault.detail["index"] = index
                if _chaos.consult(
                    "halo.delay", source=source, dest=dest, tag=tag
                ):
                    delayed = True
        if payload is None and not dropped:
            payload = np.ascontiguousarray(buf).copy()
        with _io_wait():
            with self._cv:
                self.log.append(record)
                if dropped:
                    return Request(self, "send", key, buf, dropped=True)
                # an occupied slot means the receiver has not consumed the
                # previous message on this key yet: block until it does
                # (concurrent ranks) or the budget expires (a genuine
                # duplicate post)
                deadline: Optional[float] = None
                while key in self._mailbox:
                    now = time.monotonic()
                    if deadline is None:
                        deadline = now + self.timeout
                    elif now >= deadline:
                        raise RuntimeError(
                            f"message {key} already in flight"
                        )
                    self._cv.wait(min(self.poll_interval, deadline - now))
                at = time.monotonic() + self.latency
                if delayed:
                    at += self.delay_seconds
                self._mailbox[key] = _Message(payload, at, delayed)
                self._cv.notify_all()
        return Request(self, "send", key, buf)

    def Irecv(self, buf: np.ndarray, source: int, dest: int, tag: int = 0) -> Request:
        return Request(self, "recv", (source, dest, tag), buf)

    # ---- lifecycle -------------------------------------------------------

    def drain(self) -> List[_Key]:
        """Drop all in-flight messages (delays included — a delay is a
        property of the message itself), returning the orphaned
        (source, dest, tag) triples.

        Called after an aborted exchange so the retry can repost every
        send without tripping the duplicate-key check.
        """
        with self._cv:
            orphans = sorted(self._mailbox)
            self._mailbox.clear()
            self._cv.notify_all()
        return orphans

    def finalize(self, strict: bool = False) -> List[_Key]:
        """Drain check at teardown: report sent-but-never-received
        messages instead of leaking them silently.

        Returns the orphaned (source, dest, tag) triples; warns about
        them (:class:`OrphanedMessagesWarning`), or raises when
        ``strict`` is set.
        """
        orphans = self.drain()
        if orphans:
            _record("orphaned_messages", len(orphans))
            triples = ", ".join(
                f"(src={s}, dst={d}, tag={t})" for s, d, t in orphans
            )
            message = (
                f"{len(orphans)} message(s) sent but never received: "
                f"{triples}"
            )
            if strict:
                raise RuntimeError(message)
            warnings.warn(message, OrphanedMessagesWarning, stacklevel=2)
        return orphans

    # ---- statistics for the network model -------------------------------

    def reset_log(self) -> None:
        with self._lock:
            self.log.clear()

    def bytes_by_rank(self) -> Dict[int, int]:
        out: Dict[int, int] = {}
        with self._lock:
            records = list(self.log)
        for rec in records:
            out[rec.source] = out.get(rec.source, 0) + rec.nbytes
        return out

    def message_sizes(self, rank: Optional[int] = None) -> List[int]:
        with self._lock:
            records = list(self.log)
        return [
            rec.nbytes
            for rec in records
            if rank is None or rec.source == rank
        ]
