"""In-process communicator with an mpi4py-style nonblocking interface.

The paper runs MPI over Cray Aries; this reproduction runs all ranks in
one process (the substitution documented in DESIGN.md). The communicator
preserves the *communication pattern*: data is exchanged through packed
contiguous buffers with explicit ``Isend``/``Irecv``/``wait`` lifecycles
(the mpi4py buffer idiom), and every message's byte count is recorded so
the network model can replay the exchange at scale (Fig. 11).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np


@dataclasses.dataclass
class MessageRecord:
    source: int
    dest: int
    nbytes: int
    tag: int


class Request:
    """Completion handle for a nonblocking operation."""

    def __init__(self, comm: "LocalComm", kind: str, key, buf):
        self._comm = comm
        self._kind = kind
        self._key = key
        self._buf = buf
        self._done = False

    def wait(self) -> None:
        if self._done:
            return
        if self._kind == "recv":
            payload = self._comm._mailbox.pop(self._key, None)
            if payload is None:
                raise RuntimeError(
                    f"Irecv {self._key}: no matching Isend was posted"
                )
            np.copyto(self._buf, payload.reshape(self._buf.shape))
        self._done = True

    def test(self) -> bool:
        if self._kind == "recv" and not self._done:
            return self._key in self._comm._mailbox
        return True


class LocalComm:
    """A communicator routing buffers between in-process ranks.

    Matching follows MPI semantics on (source, dest, tag). Sends deliver
    eagerly (buffered), so the driver may run ranks sequentially: post all
    sends, then complete all receives.
    """

    def __init__(self, size: int):
        self.size = size
        self._mailbox: Dict[Tuple[int, int, int], np.ndarray] = {}
        self.log: List[MessageRecord] = []

    def Isend(self, buf: np.ndarray, source: int, dest: int, tag: int = 0) -> Request:
        if not (0 <= dest < self.size):
            raise ValueError(f"invalid destination rank {dest}")
        key = (source, dest, tag)
        if key in self._mailbox:
            raise RuntimeError(f"message {key} already in flight")
        self._mailbox[key] = np.ascontiguousarray(buf).copy()
        self.log.append(MessageRecord(source, dest, buf.nbytes, tag))
        return Request(self, "send", key, buf)

    def Irecv(self, buf: np.ndarray, source: int, dest: int, tag: int = 0) -> Request:
        return Request(self, "recv", (source, dest, tag), buf)

    # ---- statistics for the network model -------------------------------

    def reset_log(self) -> None:
        self.log.clear()

    def bytes_by_rank(self) -> Dict[int, int]:
        out: Dict[int, int] = {}
        for rec in self.log:
            out[rec.source] = out.get(rec.source, 0) + rec.nbytes
        return out

    def message_sizes(self, rank: Optional[int] = None) -> List[int]:
        return [
            rec.nbytes
            for rec in self.log
            if rank is None or rec.source == rank
        ]
