"""In-process communicator with an mpi4py-style nonblocking interface.

The paper runs MPI over Cray Aries; this reproduction runs all ranks in
one process (the substitution documented in DESIGN.md). The communicator
preserves the *communication pattern*: data is exchanged through packed
contiguous buffers with explicit ``Isend``/``Irecv``/``wait`` lifecycles
(the mpi4py buffer idiom), and every message's byte count is recorded so
the network model can replay the exchange at scale (Fig. 11).

Failure semantics (the resilience layer, PR 4):

- ``Request.wait`` on a receive *polls* with a bounded budget
  (``max_polls``) instead of crashing on the first unmatched probe, so
  a delayed message is simply re-polled; an exhausted budget raises
  :class:`~repro.resilience.errors.HaloTimeoutError` naming the ranks,
  tag, phase and the mailbox keys still pending.
- The chaos harness can drop, delay or corrupt individual messages at
  the ``halo.drop`` / ``halo.delay`` / ``halo.corrupt`` sites — every
  ``Isend`` consults the active plan (one ``is None`` check when chaos
  is off).
- ``finalize()`` reports sent-but-never-received messages, closing the
  silent mailbox leak; ``drain()`` clears in-flight state so an aborted
  exchange can be retried cleanly.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.resilience import chaos as _chaos
from repro.resilience import record as _record
from repro.resilience.chaos import DEFAULT_DELAY_POLLS
from repro.resilience.errors import HaloTimeoutError, OrphanedMessagesWarning

_Key = Tuple[int, int, int]  # (source, dest, tag)


@dataclasses.dataclass
class MessageRecord:
    source: int
    dest: int
    nbytes: int
    tag: int


class Request:
    """Completion handle for a nonblocking operation.

    Semantics of the two kinds:

    - ``recv``: ``wait()`` polls for the matching send (bounded by
      ``comm.max_polls``) and copies the payload into the posted buffer;
      ``test()`` is true once the payload is deliverable.
    - ``send``: the transport copies eagerly, so ``wait()`` returns
      immediately (the buffer is reusable). ``test()`` before ``wait()``
      reports *delivery*: false while the message still sits undelivered
      in the mailbox, true once the receiver picked it up. After
      ``wait()`` it is true unconditionally (mpi4py semantics: the
      operation — buffer hand-off — is complete).
    """

    def __init__(self, comm: "LocalComm", kind: str, key: _Key, buf,
                 dropped: bool = False):
        self._comm = comm
        self._kind = kind
        self._key = key
        self._buf = buf
        self._done = False
        self._dropped = dropped

    def wait(self) -> None:
        if self._done:
            return
        if self._kind == "recv":
            comm = self._comm
            key = self._key
            polls = 0
            while True:
                if comm._deliverable(key):
                    payload = comm._mailbox.pop(key)
                    np.copyto(self._buf, payload.reshape(self._buf.shape))
                    if polls:
                        _record("halo_redeliveries")
                    break
                polls += 1
                if polls > comm.max_polls:
                    source, dest, tag = key
                    raise HaloTimeoutError(
                        source=source,
                        dest=dest,
                        tag=tag,
                        polls=comm.max_polls,
                        pending=comm.pending(),
                    )
        self._done = True

    def test(self) -> bool:
        if self._done:
            return True
        if self._kind == "recv":
            return self._comm._deliverable(self._key)
        # send: complete once the receiver drained the mailbox slot (a
        # dropped message never occupied one — the fault is invisible to
        # the sender, as on a real network)
        return self._dropped or self._key not in self._comm._mailbox


class LocalComm:
    """A communicator routing buffers between in-process ranks.

    Matching follows MPI semantics on (source, dest, tag). Sends deliver
    eagerly (buffered), so the driver may run ranks sequentially: post all
    sends, then complete all receives.
    """

    #: receive-poll budget before an unmatched wait raises
    max_polls: int = 8

    def __init__(self, size: int):
        self.size = size
        self._mailbox: Dict[_Key, np.ndarray] = {}
        #: keys whose delivery is withheld for N more polls (chaos)
        self._delays: Dict[_Key, int] = {}
        self.log: List[MessageRecord] = []

    # ---- delivery progress ----------------------------------------------

    def _deliverable(self, key: _Key) -> bool:
        """Whether ``key`` can be delivered now; each miss on a delayed
        key advances its countdown (the poll *is* the progress engine)."""
        remaining = self._delays.get(key)
        if remaining is not None:
            if remaining <= 1:
                del self._delays[key]
            else:
                self._delays[key] = remaining - 1
            return False
        return key in self._mailbox

    def pending(self) -> List[_Key]:
        """Sorted (source, dest, tag) triples still in the mailbox."""
        return sorted(self._mailbox)

    # ---- nonblocking operations -----------------------------------------

    def Isend(self, buf: np.ndarray, source: int, dest: int, tag: int = 0) -> Request:
        if not (0 <= dest < self.size):
            raise ValueError(f"invalid destination rank {dest}")
        key = (source, dest, tag)
        if key in self._mailbox:
            raise RuntimeError(f"message {key} already in flight")
        self.log.append(MessageRecord(source, dest, buf.nbytes, tag))
        if _chaos._PLAN is not None:
            if _chaos.consult(
                "halo.drop", source=source, dest=dest, tag=tag
            ):
                # the message vanishes in transit: bytes left the source
                # (already logged) but the mailbox never sees them
                return Request(self, "send", key, buf, dropped=True)
            payload = np.ascontiguousarray(buf).copy()
            fault = _chaos.consult(
                "halo.corrupt", source=source, dest=dest, tag=tag
            )
            if fault is not None:
                index = _chaos.get_plan().rng("halo.corrupt.index").randrange(
                    payload.size
                )
                payload.flat[index] = np.nan
                fault.detail["index"] = index
            if _chaos.consult(
                "halo.delay", source=source, dest=dest, tag=tag
            ):
                self._delays[key] = DEFAULT_DELAY_POLLS
            self._mailbox[key] = payload
            return Request(self, "send", key, buf)
        self._mailbox[key] = np.ascontiguousarray(buf).copy()
        return Request(self, "send", key, buf)

    def Irecv(self, buf: np.ndarray, source: int, dest: int, tag: int = 0) -> Request:
        return Request(self, "recv", (source, dest, tag), buf)

    # ---- lifecycle -------------------------------------------------------

    def drain(self) -> List[_Key]:
        """Drop all in-flight messages (and pending delays), returning
        the orphaned (source, dest, tag) triples.

        Called after an aborted exchange so the retry can repost every
        send without tripping the duplicate-key check.
        """
        orphans = self.pending()
        self._mailbox.clear()
        self._delays.clear()
        return orphans

    def finalize(self, strict: bool = False) -> List[_Key]:
        """Drain check at teardown: report sent-but-never-received
        messages instead of leaking them silently.

        Returns the orphaned (source, dest, tag) triples; warns about
        them (:class:`OrphanedMessagesWarning`), or raises when
        ``strict`` is set.
        """
        orphans = self.drain()
        if orphans:
            _record("orphaned_messages", len(orphans))
            triples = ", ".join(
                f"(src={s}, dst={d}, tag={t})" for s, d, t in orphans
            )
            message = (
                f"{len(orphans)} message(s) sent but never received: "
                f"{triples}"
            )
            if strict:
                raise RuntimeError(message)
            warnings.warn(message, OrphanedMessagesWarning, stacklevel=2)
        return orphans

    # ---- statistics for the network model -------------------------------

    def reset_log(self) -> None:
        self.log.clear()

    def bytes_by_rank(self) -> Dict[int, int]:
        out: Dict[int, int] = {}
        for rec in self.log:
            out[rec.source] = out.get(rec.source, 0) + rec.nbytes
        return out

    def message_sizes(self, rank: Optional[int] = None) -> List[int]:
        return [
            rec.nbytes
            for rec in self.log
            if rank is None or rec.source == rank
        ]
