"""The dynamical core driver (Fig. 2): physics step → remapping loop →
acoustic loop, plus tracer advection and vertical remapping."""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.fv3 import constants
from repro.fv3.acoustics import AcousticDynamics
from repro.fv3.config import DynamicalCoreConfig
from repro.fv3.corners import rank_corners
from repro.fv3.grid import CubedSphereGrid
from repro.fv3.halo import HaloUpdater
from repro.fv3.initial import (
    RankFields,
    baroclinic_state,
    reference_coordinate,
)
from repro.fv3.partitioner import CubedSpherePartitioner
from repro.fv3.stencils.fvtp2d import FiniteVolumeTransport
from repro.fv3.stencils.remapping import LagrangianToEulerian
from repro.fv3.stencils.tracer2d import TracerAdvection
from repro.obs import tracer as _obs

_TRACER = _obs.get_tracer()


class DynamicalCore:
    """The Python FV3 dynamical core on simulated ranks.

    Owns per-rank state, grids and module instances; ``step_dynamics``
    advances one physics time step through ``k_split`` remapping sub-steps
    of ``n_split`` acoustic sub-steps each (Sec. II).
    """

    def __init__(
        self,
        config: DynamicalCoreConfig,
        n_halo: int = constants.N_HALO,
        init=baroclinic_state,
    ):
        self.config = config
        self.h = n_halo
        self.partitioner = CubedSpherePartitioner(config.npx, config.layout)
        self.halo = HaloUpdater(self.partitioner, n_halo=n_halo)
        self.grids = [
            CubedSphereGrid.build(self.partitioner, rank, n_halo=n_halo)
            for rank in range(self.partitioner.total_ranks)
        ]
        self.states: List[RankFields] = [
            init(grid, config) for grid in self.grids
        ]
        self.acoustics = AcousticDynamics(
            config, self.partitioner, self.grids, self.states, self.halo,
            n_halo=n_halo,
        )
        bk, ptop = reference_coordinate(config)
        nx, ny, nk = self.partitioner.nx, self.partitioner.ny, config.npz
        self.remap = [
            LagrangianToEulerian(nx, ny, nk, bk, ptop, n_halo=n_halo)
            for _ in range(self.partitioner.total_ranks)
        ]
        self.tracer_adv = [
            TracerAdvection(
                self.acoustics.transports[rank], self.grids[rank].rarea,
                nx, ny, nk, n_halo=n_halo,
            )
            for rank in range(self.partitioner.total_ranks)
        ]
        self._delp_start = [
            np.zeros_like(s.delp) for s in self.states
        ]
        self.time = 0.0

    # ------------------------------------------------------------------
    def step_dynamics(self) -> None:
        """Advance the model by one physics time step (Fig. 2 outer box)."""
        cfg = self.config
        with _TRACER.span("dyncore.step"):
            for _ in range(cfg.k_split):
                self._remapping_step(cfg.dt_remap)
        self.time += cfg.dt_atmos

    def _remapping_step(self, dt_remap: float) -> None:
        cfg = self.config
        nranks = self.partitioner.total_ranks
        # snapshot δp for the tracer transport (consistent bracketing)
        for r in range(nranks):
            self._delp_start[r][:] = self.states[r].delp
        # acoustic loop (accumulates tracer Courant numbers/mass fluxes)
        self.acoustics.run(cfg.dt_acoustic, cfg.n_split)
        # sub-cycled tracer advection with the accumulated transport
        with _TRACER.span("dyncore.tracer_advection"):
            self._advect_tracers()
        # Lagrangian-to-Eulerian vertical remap
        with _TRACER.span("dyncore.vertical_remap"):
            self._vertical_remap()

    def _advect_tracers(self) -> None:
        nranks = self.partitioner.total_ranks
        work = self.acoustics.work
        self.halo.update_scalar(self._delp_start)
        for tr in range(self.config.n_tracers):
            self.halo.update_scalar([s.tracers[tr] for s in self.states])
        for r in range(nranks):
            self.tracer_adv[r].prepare(
                self._delp_start[r],
                work[r].crx_adv, work[r].cry_adv,
                work[r].xfx_adv, work[r].yfx_adv,
            )
            for tr in range(self.config.n_tracers):
                self.tracer_adv[r](
                    self.states[r].tracers[tr], self._delp_start[r],
                    work[r].crx_adv, work[r].cry_adv,
                    work[r].xfx_adv, work[r].yfx_adv,
                )

    def _vertical_remap(self) -> None:
        for r in range(self.partitioner.total_ranks):
            state = self.states[r]
            remap = self.remap[r]
            remap.compute_levels(state.delp)
            for field in (state.pt, state.u, state.v, state.w):
                remap.remap_field(field)
            for tracer in state.tracers:
                remap.remap_field(tracer)
            remap.finalize(state.delp)
            self._recompute_delz(r)

    def _recompute_delz(self, rank: int) -> None:
        """Hydrostatic δz from the remapped temperature and pressures
        (interior only: pe2 is computed on the compute domain)."""
        state = self.states[rank]
        h = self.h
        sl = (slice(h, -h), slice(h, -h))
        pe2 = self.remap[rank].pe2[sl]
        p_mid = 0.5 * (pe2[..., :-1] + pe2[..., 1:])
        state.delz[sl] = (
            -constants.RDGAS * state.pt[sl] * state.delp[sl]
            / (constants.GRAV * p_mid)
        )

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def global_integral(self, attr: str = "delp") -> float:
        """Σ field·area over the whole sphere (mass proxy for δp)."""
        total = 0.0
        h = self.h
        for r in range(self.partitioner.total_ranks):
            field = getattr(self.states[r], attr)
            area = self.grids[r].area[h:-h, h:-h]
            total += float(
                np.sum(field[h:-h, h:-h] * area[..., None])
            )
        return total

    def tracer_integral(self, index: int = 0) -> float:
        """Σ tracer·δp·area (the conserved tracer mass)."""
        total = 0.0
        h = self.h
        for r in range(self.partitioner.total_ranks):
            s = self.states[r]
            area = self.grids[r].area[h:-h, h:-h]
            total += float(
                np.sum(
                    s.tracers[index][h:-h, h:-h]
                    * s.delp[h:-h, h:-h]
                    * area[..., None]
                )
            )
        return total

    def max_wind(self) -> float:
        h = self.h
        return max(
            float(
                np.max(
                    np.hypot(
                        s.u[h:-h, h:-h], s.v[h:-h, h:-h]
                    )
                )
            )
            for s in self.states
        )

    def state_summary(self) -> Dict[str, float]:
        return {
            "time": self.time,
            "mass": self.global_integral("delp"),
            "max_wind": self.max_wind(),
            "max_w": max(
                float(np.max(np.abs(s.w[self.h:-self.h, self.h:-self.h])))
                for s in self.states
            ),
        }
