"""The dynamical core driver (Fig. 2): physics step → remapping loop →
acoustic loop, plus tracer advection and vertical remapping.

With a :class:`~repro.resilience.ResilienceConfig` attached, every
remapping step runs under a rollback/retry harness: the state is
snapshotted, the step advances, the state guard scans for blowup, and
any recoverable fault (guard trip under the ``rollback`` policy, halo
timeout, injected fault) restores the snapshot and re-advances — up to
a bounded retry budget with exponential backoff. Because injected
faults fire once per planned occurrence and the model is deterministic,
a recovered run finishes bit-identical to a fault-free one.
"""

from __future__ import annotations

import pathlib
import time as _time
import warnings
from typing import Dict, List, Optional

import numpy as np

from repro import resilience as _resilience
from repro.fv3 import constants
from repro.fv3.acoustics import AcousticDynamics
from repro.fv3.config import DynamicalCoreConfig
from repro.fv3.corners import rank_corners
from repro.fv3.grid import CubedSphereGrid
from repro.fv3.halo import HaloUpdater
from repro.fv3.initial import RankFields, reference_coordinate
from repro.fv3.partitioner import CubedSpherePartitioner
from repro.fv3.stencils.fvtp2d import FiniteVolumeTransport
from repro.fv3.stencils.remapping import LagrangianToEulerian
from repro.fv3.stencils.tracer2d import TracerAdvection
from repro.obs import tracer as _obs
from repro.runtime import ranks as _ranks
from repro.resilience import (
    GuardError,
    GuardWarning,
    RecoverableFault,
    ResilienceConfig,
    RetriesExhaustedError,
    Snapshot,
    StateGuard,
    chaos as _chaos,
    load_checkpoint,
    save_checkpoint,
)

_TRACER = _obs.get_tracer()


class DynamicalCore:
    """The Python FV3 dynamical core on simulated ranks.

    Owns per-rank state, grids and module instances; ``step_dynamics``
    advances one physics time step through ``k_split`` remapping sub-steps
    of ``n_split`` acoustic sub-steps each (Sec. II).
    """

    def __init__(
        self,
        config: DynamicalCoreConfig,
        n_halo: int = constants.N_HALO,
        init=None,
        resilience: Optional[ResilienceConfig] = None,
        executor: Optional[_ranks.RankExecutor] = None,
        grids: Optional[List[CubedSphereGrid]] = None,
        comm=None,
    ):
        if init is None:
            # the default workload is the registered baroclinic-wave
            # scenario (imported lazily: scenarios ← fv3 is the stable
            # direction, dyncore → scenarios only for this default)
            from repro.scenarios import get_scenario

            init = get_scenario("baroclinic_wave").initializer()
        self.config = config
        self.h = n_halo
        self.partitioner = CubedSpherePartitioner(config.npx, config.layout)
        # ``comm`` is any LocalComm-shaped transport: the in-process
        # mailbox (default) or the shared-memory mailbox a process-based
        # rank worker is attached to — the halo updater never knows which
        self.halo = HaloUpdater(self.partitioner, n_halo=n_halo, comm=comm)
        # the rank executor decides sequential vs SPMD stepping; the
        # default reads REPRO_RANKS (1 → the original sequential path)
        self.executor = executor if executor is not None \
            else _ranks.get_executor()
        if grids is None:
            grids = [
                CubedSphereGrid.build(self.partitioner, rank, n_halo=n_halo)
                for rank in range(self.partitioner.total_ranks)
            ]
        elif len(grids) != self.partitioner.total_ranks:
            raise ValueError(
                f"got {len(grids)} prebuilt grids for "
                f"{self.partitioner.total_ranks} ranks"
            )
        # grids are immutable geometry — ensemble members share them
        self.grids = grids
        self.states: List[RankFields] = [
            init(grid, config) for grid in self.grids
        ]
        self.acoustics = AcousticDynamics(
            config, self.partitioner, self.grids, self.states, self.halo,
            n_halo=n_halo, executor=self.executor,
        )
        bk, ptop = reference_coordinate(config)
        nx, ny, nk = self.partitioner.nx, self.partitioner.ny, config.npz
        self.remap = [
            LagrangianToEulerian(nx, ny, nk, bk, ptop, n_halo=n_halo)
            for _ in range(self.partitioner.total_ranks)
        ]
        self.tracer_adv = [
            TracerAdvection(
                self.acoustics.transports[rank], self.grids[rank].rarea,
                nx, ny, nk, n_halo=n_halo,
            )
            for rank in range(self.partitioner.total_ranks)
        ]
        self._delp_start = [
            np.zeros_like(s.delp) for s in self.states
        ]
        # stable per-tracer rank lists for the split halo API
        self._tracer_fields = [
            [s.tracers[tr] for s in self.states]
            for tr in range(config.n_tracers)
        ]
        self.time = 0.0
        self.step_count = 0
        self.resilience = resilience
        self._guard: Optional[StateGuard] = (
            StateGuard(resilience.guard) if resilience is not None else None
        )

    # ------------------------------------------------------------------
    def step_dynamics(self) -> None:
        """Advance the model by one physics time step (Fig. 2 outer box).

        Without a resilience config this is the original straight-line
        path — no snapshots, no guard scans, zero overhead.
        """
        cfg = self.config
        with _TRACER.span("dyncore.step"):
            if self.resilience is None:
                for _ in range(cfg.k_split):
                    self._remapping_step(cfg.dt_remap)
            else:
                _chaos.set_step(self.step_count)
                for _ in range(cfg.k_split):
                    self._guarded_remapping_step(cfg.dt_remap)
        self.time += cfg.dt_atmos
        self.step_count += 1
        self._maybe_periodic_checkpoint()

    def _guarded_remapping_step(self, dt_remap: float) -> None:
        """One remapping step under the rollback/retry harness."""
        res = self.resilience
        snapshot = Snapshot.capture(self.states, self.time, self.step_count)
        attempt = 0
        while True:
            failure: Optional[BaseException] = None
            try:
                self._remapping_step(dt_remap)
                violations = self._guard.check_states(
                    self.states, step=self.step_count
                )
                if violations:
                    _resilience.record("guard_trips")
                    policy = res.guard.policy
                    if policy == "warn":
                        warnings.warn(
                            str(GuardError(violations)), GuardWarning,
                            stacklevel=3,
                        )
                    elif policy == "raise":
                        # GuardError is not a RecoverableFault, so it
                        # escapes the retry loop and fails the run
                        raise GuardError(violations)
                    else:  # rollback
                        failure = GuardError(violations)
            except RecoverableFault as exc:
                failure = exc
            if failure is None:
                return
            attempt += 1
            _resilience.record("retries")
            if attempt > res.max_retries:
                raise RetriesExhaustedError(
                    self.step_count, attempt - 1, failure
                ) from failure
            with _TRACER.span("dyncore.rollback"):
                _resilience.record("rollbacks")
                # drop messages stranded by an aborted exchange so the
                # re-advance can repost every send cleanly
                self.halo.comm.drain()
                snapshot.restore(self.states)
                self.time = snapshot.time
            if res.backoff_base > 0.0:
                _time.sleep(res.backoff_base * 2 ** (attempt - 1))

    # ------------------------------------------------------------------
    # checkpoint/restart
    # ------------------------------------------------------------------
    def save_checkpoint(self, path=None) -> pathlib.Path:
        """Write a versioned on-disk checkpoint (see
        :mod:`repro.resilience.checkpoint`); returns the written path."""
        if path is None:
            res = self.resilience
            if res is None or not res.checkpoint_dir:
                raise ValueError(
                    "no path given and no checkpoint_dir configured"
                )
            path = (
                pathlib.Path(res.checkpoint_dir)
                / f"ckpt_step{self.step_count:06d}.npz"
            )
        written = save_checkpoint(
            path, self.states, self.time, self.step_count,
            extra_meta={"npx": self.config.npx, "npz": self.config.npz,
                        "layout": self.config.layout},
        )
        _resilience.record("checkpoints_saved")
        return written

    def restore_checkpoint(self, path) -> Dict[str, object]:
        """Restore all rank states, model time and step counter from a
        checkpoint file; returns its metadata."""
        meta = load_checkpoint(path, self.states)
        self.time = float(meta["time"])
        self.step_count = int(meta["step"])
        _resilience.record("checkpoints_restored")
        return meta

    def _maybe_periodic_checkpoint(self) -> None:
        res = self.resilience
        if (
            res is not None
            and res.checkpoint_every > 0
            and self.step_count % res.checkpoint_every == 0
        ):
            self.save_checkpoint()

    def finalize(self, strict: bool = False):
        """Teardown: run the halo updater's drain check for orphaned
        messages; returns the orphaned (source, dest, tag) triples."""
        return self.halo.finalize(strict=strict)

    def _remapping_step(self, dt_remap: float) -> None:
        cfg = self.config
        nranks = self.partitioner.total_ranks
        ex = self.executor
        parallel = ex is not None and ex.parallel
        # snapshot δp for the tracer transport (consistent bracketing)
        for r in range(nranks):
            self._delp_start[r][:] = self.states[r].delp
        # acoustic loop (accumulates tracer Courant numbers/mass fluxes)
        self.acoustics.run(cfg.dt_acoustic, cfg.n_split)
        # sub-cycled tracer advection with the accumulated transport
        with _TRACER.span("dyncore.tracer_advection"):
            if parallel:
                ex.run(self._advect_tracers_rank, nranks,
                       label="tracer_advection")
            else:
                self._advect_tracers()
        # Lagrangian-to-Eulerian vertical remap
        with _TRACER.span("dyncore.vertical_remap"):
            if parallel:
                ex.run(self._vertical_remap_rank, nranks,
                       label="vertical_remap")
            else:
                self._vertical_remap()

    def _advect_tracers(self) -> None:
        nranks = self.partitioner.total_ranks
        self.halo.update_scalar(self._delp_start)
        for tr in range(self.config.n_tracers):
            self.halo.update_scalar([s.tracers[tr] for s in self.states])
        for r in range(nranks):
            self._advect_tracers_compute(r)

    def _advect_tracers_rank(self, r: int) -> None:
        """SPMD body: one fused halo exchange of δp_start plus every
        tracer (per-field tag slots), then this rank's advection."""
        hx = self.halo.start_scalars(
            [self._delp_start] + self._tracer_fields, r
        )
        self.halo.finish_scalars(hx)
        self._advect_tracers_compute(r)

    def _advect_tracers_compute(self, r: int) -> None:
        work = self.acoustics.work
        self.tracer_adv[r].prepare(
            self._delp_start[r],
            work[r].crx_adv, work[r].cry_adv,
            work[r].xfx_adv, work[r].yfx_adv,
        )
        for tr in range(self.config.n_tracers):
            self.tracer_adv[r](
                self.states[r].tracers[tr], self._delp_start[r],
                work[r].crx_adv, work[r].cry_adv,
                work[r].xfx_adv, work[r].yfx_adv,
            )

    def _vertical_remap(self) -> None:
        for r in range(self.partitioner.total_ranks):
            self._vertical_remap_rank(r)

    def _vertical_remap_rank(self, r: int) -> None:
        state = self.states[r]
        remap = self.remap[r]
        remap.compute_levels(state.delp)
        for field in (state.pt, state.u, state.v, state.w):
            remap.remap_field(field)
        for tracer in state.tracers:
            remap.remap_field(tracer)
        remap.finalize(state.delp)
        self._recompute_delz(r)

    def _recompute_delz(self, rank: int) -> None:
        """Hydrostatic δz from the remapped temperature and pressures
        (interior only: pe2 is computed on the compute domain)."""
        state = self.states[rank]
        h = self.h
        sl = (slice(h, -h), slice(h, -h))
        pe2 = self.remap[rank].pe2[sl]
        p_mid = 0.5 * (pe2[..., :-1] + pe2[..., 1:])
        state.delz[sl] = (
            -constants.RDGAS * state.pt[sl] * state.delp[sl]
            / (constants.GRAV * p_mid)
        )

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def global_integral(self, attr: str = "delp") -> float:
        """Σ field·area over the whole sphere (mass proxy for δp)."""
        total = 0.0
        h = self.h
        for r in range(self.partitioner.total_ranks):
            field = getattr(self.states[r], attr)
            area = self.grids[r].area[h:-h, h:-h]
            total += float(
                np.sum(field[h:-h, h:-h] * area[..., None])
            )
        return total

    def tracer_integral(self, index: int = 0) -> float:
        """Σ tracer·δp·area (the conserved tracer mass)."""
        total = 0.0
        h = self.h
        for r in range(self.partitioner.total_ranks):
            s = self.states[r]
            area = self.grids[r].area[h:-h, h:-h]
            total += float(
                np.sum(
                    s.tracers[index][h:-h, h:-h]
                    * s.delp[h:-h, h:-h]
                    * area[..., None]
                )
            )
        return total

    def max_wind(self) -> float:
        h = self.h
        return max(
            float(
                np.max(
                    np.hypot(
                        s.u[h:-h, h:-h], s.v[h:-h, h:-h]
                    )
                )
            )
            for s in self.states
        )

    def state_summary(self) -> Dict[str, float]:
        return {
            "time": self.time,
            "mass": self.global_integral("delp"),
            "max_wind": self.max_wind(),
            "max_w": max(
                float(np.max(np.abs(s.w[self.h:-self.h, self.h:-self.h])))
                for s in self.states
            ),
        }
