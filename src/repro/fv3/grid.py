"""Gnomonic cubed-sphere grid generation and metric terms (Sec. II).

Equiangular gnomonic projection: each tile covers local angles
(x, y) ∈ [-π/4, π/4]²; a point is the central projection of
``n + tan(x)·e_x + tan(y)·e_y`` onto the unit sphere, where (n, e_x, e_y)
is the tile's face frame. Metric terms (cell areas from spherical excess,
edge lengths from great-circle distances, Coriolis parameter) are computed
per rank subdomain including halo cells so stencils can read them without
extra communication.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np

from repro.fv3 import constants
from repro.fv3.partitioner import FACES, CubedSpherePartitioner


def _project(tile: int, x_ang: np.ndarray, y_ang: np.ndarray) -> np.ndarray:
    """Gnomonic projection of local tile angles onto the unit sphere.

    Returns an array (..., 3) of unit vectors.
    """
    n, ex, ey = (np.asarray(v, dtype=float) for v in FACES[tile])
    p = (
        n[None, None, :]
        + np.tan(x_ang)[..., None] * ex[None, None, :]
        + np.tan(y_ang)[..., None] * ey[None, None, :]
    )
    return p / np.linalg.norm(p, axis=-1, keepdims=True)


def _great_circle(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Great-circle distance between unit vectors (radius 1)."""
    cross = np.linalg.norm(np.cross(a, b), axis=-1)
    dot = np.sum(a * b, axis=-1)
    return np.arctan2(cross, dot)


def _triangle_area(a, b, c) -> np.ndarray:
    """Spherical triangle area via l'Huilier's theorem (radius 1)."""
    ta = _great_circle(b, c)
    tb = _great_circle(a, c)
    tc = _great_circle(a, b)
    s = 0.5 * (ta + tb + tc)
    inner = (
        np.tan(0.5 * s)
        * np.tan(0.5 * (s - ta))
        * np.tan(0.5 * (s - tb))
        * np.tan(0.5 * (s - tc))
    )
    return 4.0 * np.arctan(np.sqrt(np.maximum(inner, 0.0)))


@dataclasses.dataclass
class CubedSphereGrid:
    """Metric terms of one rank's subdomain (with halo).

    All horizontal arrays are shaped (nx + 2h, ny + 2h).
    """

    rank: int
    partitioner: CubedSpherePartitioner
    n_halo: int
    lon: np.ndarray  # cell-center longitude [rad]
    lat: np.ndarray  # cell-center latitude [rad]
    area: np.ndarray  # cell area [m^2]
    rarea: np.ndarray  # 1 / area
    dx: np.ndarray  # west-east cell extent through the center [m]
    dy: np.ndarray  # south-north cell extent [m]
    rdx: np.ndarray
    rdy: np.ndarray
    f_cor: np.ndarray  # Coriolis parameter [1/s]
    #: local index-basis unit vectors expressed in (east, north) components
    ex_east: np.ndarray = None
    ex_north: np.ndarray = None
    ey_east: np.ndarray = None
    ey_north: np.ndarray = None

    @classmethod
    def build(
        cls,
        partitioner: CubedSpherePartitioner,
        rank: int,
        n_halo: int = constants.N_HALO,
        radius: float = constants.RADIUS,
    ) -> "CubedSphereGrid":
        p = partitioner
        h = n_halo
        tile = p.tile_of(rank)
        ox, oy = p.subdomain_origin(rank)
        npx = p.npx
        dang = (np.pi / 2.0) / npx

        # cell-corner angles for indices [-h, nx+h] (inclusive corners)
        gi = np.arange(ox - h, ox + p.nx + h + 1)
        gj = np.arange(oy - h, oy + p.ny + h + 1)
        xc = -np.pi / 4.0 + gi * dang
        yc = -np.pi / 4.0 + gj * dang
        xcg, ycg = np.meshgrid(xc, yc, indexing="ij")
        corners = _project(tile, xcg, ycg)

        # cell-center angles
        xm = 0.5 * (xc[:-1] + xc[1:])
        ym = 0.5 * (yc[:-1] + yc[1:])
        xmg, ymg = np.meshgrid(xm, ym, indexing="ij")
        centers = _project(tile, xmg, ymg)

        lon = np.arctan2(centers[..., 1], centers[..., 0])
        lat = np.arcsin(np.clip(centers[..., 2], -1.0, 1.0))

        # areas from the two spherical triangles of each corner quad
        a = corners[:-1, :-1]
        b = corners[1:, :-1]
        c = corners[1:, 1:]
        d = corners[:-1, 1:]
        area = (_triangle_area(a, b, c) + _triangle_area(a, c, d)) * radius**2

        # through-center extents (midpoints of opposite edges)
        west = _project(tile, xcg[:-1, :-1] * 0 + xc[:-1, None], 0 * ycg[:-1, :-1] + ym[None, :])
        east = _project(tile, 0 * xcg[1:, :-1] + xc[1:, None], 0 * ycg[1:, :-1] + ym[None, :])
        south = _project(tile, 0 * xcg[:-1, :-1] + xm[:, None], 0 * ycg[:-1, :-1] + yc[None, :-1])
        north = _project(tile, 0 * xcg[:-1, 1:] + xm[:, None], 0 * ycg[:-1, 1:] + yc[None, 1:])
        dx = _great_circle(west, east) * radius
        dy = _great_circle(south, north) * radius

        f_cor = 2.0 * constants.OMEGA * np.sin(lat)

        # local basis unit vectors in the (east, north) tangent frame
        east3 = np.stack(
            [-np.sin(lon), np.cos(lon), np.zeros_like(lon)], axis=-1
        )
        north3 = np.stack(
            [
                -np.sin(lat) * np.cos(lon),
                -np.sin(lat) * np.sin(lon),
                np.cos(lat),
            ],
            axis=-1,
        )
        ex3 = east - west
        ex3 = ex3 / np.linalg.norm(ex3, axis=-1, keepdims=True)
        ey3 = north - south
        ey3 = ey3 / np.linalg.norm(ey3, axis=-1, keepdims=True)
        ex_east = np.sum(ex3 * east3, axis=-1)
        ex_north = np.sum(ex3 * north3, axis=-1)
        ey_east = np.sum(ey3 * east3, axis=-1)
        ey_north = np.sum(ey3 * north3, axis=-1)

        return cls(
            rank=rank,
            partitioner=p,
            n_halo=h,
            lon=lon,
            lat=lat,
            area=area,
            rarea=1.0 / area,
            dx=dx,
            dy=dy,
            rdx=1.0 / dx,
            rdy=1.0 / dy,
            f_cor=f_cor,
            ex_east=ex_east,
            ex_north=ex_north,
            ey_east=ey_east,
            ey_north=ey_north,
        )

    def wind_to_local(
        self, u_east: np.ndarray, v_north: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Project an (east, north) wind onto the local index basis.

        Solves the per-cell 2×2 system [e_x e_y]·(u_loc, v_loc) = wind.
        """
        det = self.ex_east * self.ey_north - self.ey_east * self.ex_north
        u_loc = (u_east * self.ey_north - v_north * self.ey_east) / det
        v_loc = (v_north * self.ex_east - u_east * self.ex_north) / det
        if u_east.ndim == 3 or v_north.ndim == 3:  # pragma: no cover
            raise ValueError("wind_to_local expects 2D horizontal fields")
        return u_loc, v_loc

    def wind_to_earth(
        self, u_loc: np.ndarray, v_loc: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Local index-basis components back to (east, north)."""
        u_east = u_loc * self.ex_east + v_loc * self.ey_east
        v_north = u_loc * self.ex_north + v_loc * self.ey_north
        return u_east, v_north

    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return self.area.shape

    def global_area(self) -> float:
        """Sum of compute-domain cell areas on this rank."""
        h = self.n_halo
        return float(np.sum(self.area[h:-h, h:-h]))
