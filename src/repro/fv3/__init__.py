"""The Python FV3 dynamical core port (Sec. II, IV) and its substrate.

Module layout mirrors the FORTRAN model structure kept by the paper
(Fig. 2): the remapping loop calls tracer advection, the vertical
Lagrangian-to-Eulerian remap and the acoustic-substep loop; the acoustic
loop calls the C-grid solver, the nonhydrostatic vertical Riemann solver
and the D-grid solver, with nonblocking halo exchanges between them.
"""

from repro.fv3.config import DynamicalCoreConfig
from repro.fv3.grid import CubedSphereGrid
from repro.fv3.partitioner import CubedSpherePartitioner
from repro.fv3.quantity import Quantity

__all__ = [
    "CubedSphereGrid",
    "CubedSpherePartitioner",
    "DynamicalCoreConfig",
    "Quantity",
]


def __getattr__(name):
    # lazy: the dynamical core pulls in the whole stencil suite
    if name == "DynamicalCore":
        from repro.fv3.dyncore import DynamicalCore

        return DynamicalCore
    raise AttributeError(name)
