"""Physical constants (GFDL FV3 values)."""

#: Earth radius [m]
RADIUS = 6.3712e6
#: Rotation rate of Earth [1/s]
OMEGA = 7.292e-5
#: Gravitational acceleration [m/s^2]
GRAV = 9.80665
#: Gas constant for dry air [J/kg/K]
RDGAS = 287.04
#: Specific heat at constant pressure [J/kg/K]
CP_AIR = 1004.6
#: kappa = R/cp
KAPPA = RDGAS / CP_AIR
#: Reference surface pressure [Pa]
P_REF = 1.0e5
#: Speed-of-sound-ish constant for the simplified nonhydrostatic solver
SOUND_SPEED = 340.0
#: Number of cubed-sphere tiles
N_TILES = 6
#: Halo width used by the transport scheme (PPM needs 3 upwind cells)
N_HALO = 3
