"""Quantity: a model field with units, dims and halo-aware views."""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from repro.dsl.storage import StorageSpec, make_storage
from repro.fv3 import constants


@dataclasses.dataclass
class Quantity:
    """A named field with halo metadata.

    The backing ``data`` array includes halos on the horizontal axes; the
    ``view`` property exposes the compute domain, matching the paper's
    productivity goal of fields with clear metadata (Sec. IV-A).
    """

    name: str
    data: np.ndarray
    units: str = ""
    n_halo: int = constants.N_HALO
    dims: Tuple[str, ...] = ("x", "y", "z")

    @classmethod
    def zeros(
        cls,
        name: str,
        nx: int,
        ny: int,
        nz: Optional[int] = None,
        units: str = "",
        n_halo: int = constants.N_HALO,
        spec: Optional[StorageSpec] = None,
    ) -> "Quantity":
        h = n_halo
        shape = (nx + 2 * h, ny + 2 * h) + ((nz,) if nz else ())
        data = make_storage(
            shape, spec=spec or StorageSpec(), aligned_index=(h, h) + ((0,) if nz else ())
        )
        dims = ("x", "y", "z") if nz else ("x", "y")
        return cls(name=name, data=data, units=units, n_halo=h, dims=dims)

    @property
    def view(self) -> np.ndarray:
        """Compute-domain view (halos excluded)."""
        h = self.n_halo
        sl = (slice(h, self.data.shape[0] - h), slice(h, self.data.shape[1] - h))
        return self.data[sl]

    @property
    def origin(self) -> Tuple[int, ...]:
        if len(self.dims) == 3:
            return (self.n_halo, self.n_halo, 0)
        return (self.n_halo, self.n_halo)

    @property
    def domain(self) -> Tuple[int, ...]:
        h = self.n_halo
        base = (self.data.shape[0] - 2 * h, self.data.shape[1] - 2 * h)
        if len(self.dims) == 3:
            return base + (self.data.shape[2],)
        return base

    def copy(self) -> "Quantity":
        return Quantity(
            self.name, self.data.copy(), self.units, self.n_halo, self.dims
        )

    def __repr__(self) -> str:
        return (
            f"Quantity({self.name!r}, domain={self.domain}, "
            f"halo={self.n_halo}, units={self.units!r})"
        )
