"""Cubed-sphere topology and domain decomposition.

The cube topology (which tile borders which, with what orientation) is
*derived geometrically* from the six faces of a cube rather than written
as tables: each face has a 3D origin and right-handed in-plane axes; two
faces are neighbors along an edge when they share its 3D endpoints, and
the index-space rotation between their frames is the unique 90°-multiple
rotation consistent with the shared edge. This gives the orientation
transforms the paper's halo updater applies "based on the pair of ranks"
(Sec. IV-C).

The rank decomposition is the paper's 2D horizontal layout: each of the 6
tiles is split into ``layout × layout`` rectangular subdomains.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dsl.backend_numpy import GridBounds
from repro.fv3 import constants

Vec3 = Tuple[int, int, int]

#: Right-handed face frames: (normal, x-axis, y-axis) with x × y = n.
FACES: List[Tuple[Vec3, Vec3, Vec3]] = [
    ((1, 0, 0), (0, 1, 0), (0, 0, 1)),
    ((0, 1, 0), (0, 0, 1), (1, 0, 0)),
    ((0, 0, 1), (1, 0, 0), (0, 1, 0)),
    ((-1, 0, 0), (0, 0, 1), (0, 1, 0)),
    ((0, -1, 0), (1, 0, 0), (0, 0, 1)),
    ((0, 0, -1), (0, 1, 0), (1, 0, 0)),
]

EDGES = ("W", "E", "S", "N")

#: outward direction of each edge in local (i, j) index space
_OUTWARD = {"E": (1, 0), "W": (-1, 0), "N": (0, 1), "S": (0, -1)}
#: direction of increasing edge parameter
_ALONG = {"E": (0, 1), "W": (0, 1), "N": (1, 0), "S": (1, 0)}

#: the four 90°-multiple rotations as 2x2 integer matrices, indexed by the
#: number of counter-clockwise quarter turns
_ROTATIONS = [
    np.array([[1, 0], [0, 1]]),
    np.array([[0, -1], [1, 0]]),
    np.array([[-1, 0], [0, -1]]),
    np.array([[0, 1], [-1, 0]]),
]


def _edge_endpoints(face: int, edge: str) -> Tuple[Vec3, Vec3]:
    """3D endpoints of a face edge, ordered by increasing edge parameter."""
    n, x, y = (np.array(v) for v in FACES[face])
    corners = {
        "E": (n + x - y, n + x + y),
        "W": (n - x - y, n - x + y),
        "S": (n - x - y, n + x - y),
        "N": (n - x + y, n + x + y),
    }
    a, b = corners[edge]
    return tuple(a), tuple(b)


@dataclasses.dataclass(frozen=True)
class EdgeNeighbor:
    """Connectivity of one tile edge."""

    tile: int  # neighboring tile
    edge: str  # the neighbor's edge touching ours
    reversed: bool  # edge parameter runs the other way on the neighbor
    rotations: int  # CCW quarter turns mapping neighbor frame → our frame


def _solve_rotation(edge: str, nedge: str, reversed_: bool) -> int:
    """Quarter turns R with R·outward(nedge') = constraints of the seam.

    Crossing our edge E onto the neighbor's edge E': our outward direction
    equals the neighbor's inward direction, and our along-edge direction
    equals theirs (negated when reversed). R maps neighbor index space
    into ours.
    """
    out_mine = np.array(_OUTWARD[edge])
    along_mine = np.array(_ALONG[edge])
    out_theirs = np.array(_OUTWARD[nedge])
    along_theirs = np.array(_ALONG[nedge])
    sign = -1 if reversed_ else 1
    for r, rot in enumerate(_ROTATIONS):
        if np.array_equal(rot @ (-out_theirs), out_mine) and np.array_equal(
            rot @ (sign * along_theirs), along_mine
        ):
            return r
    raise RuntimeError(f"no rotation solves seam {edge}->{nedge}")


def _build_connectivity() -> Dict[Tuple[int, str], EdgeNeighbor]:
    table: Dict[Tuple[int, str], EdgeNeighbor] = {}
    endpoints = {
        (f, e): _edge_endpoints(f, e)
        for f in range(constants.N_TILES)
        for e in EDGES
    }
    for (f, e), (a, b) in endpoints.items():
        for (g, e2), (c, d) in endpoints.items():
            if g == f:
                continue
            if {a, b} == {c, d}:
                reversed_ = a != c
                table[(f, e)] = EdgeNeighbor(
                    tile=g,
                    edge=e2,
                    reversed=reversed_,
                    rotations=_solve_rotation(e, e2, reversed_),
                )
                break
        else:  # pragma: no cover - geometry guarantees a match
            raise RuntimeError(f"unmatched edge {(f, e)}")
    return table


#: tile-edge connectivity of the cube, derived once at import
CONNECTIVITY: Dict[Tuple[int, str], EdgeNeighbor] = _build_connectivity()


@dataclasses.dataclass(frozen=True)
class RankNeighbor:
    """One communication partner of a rank across one edge."""

    rank: int
    rotations: int  # CCW quarter turns: neighbor frame → my frame
    edge: str  # my edge ("W"/"E"/"S"/"N")
    neighbor_edge: str  # which of the neighbor's edges touches mine
    reversed: bool


class CubedSpherePartitioner:
    """6-tile × (layout × layout) rank decomposition."""

    def __init__(self, npx: int, layout: int = 1):
        if npx % layout:
            raise ValueError("layout must divide npx")
        self.npx = npx
        self.layout = layout
        self.nx = npx // layout
        self.ny = npx // layout

    # ---- rank addressing -------------------------------------------------

    @property
    def total_ranks(self) -> int:
        return constants.N_TILES * self.layout**2

    def tile_of(self, rank: int) -> int:
        return rank // self.layout**2

    def subtile_of(self, rank: int) -> Tuple[int, int]:
        """(px, py) position of a rank within its tile."""
        local = rank % self.layout**2
        return local % self.layout, local // self.layout

    def rank_at(self, tile: int, px: int, py: int) -> int:
        return tile * self.layout**2 + py * self.layout + px

    def subdomain_origin(self, rank: int) -> Tuple[int, int]:
        """Global (tile-frame) cell index of the rank's first cell."""
        px, py = self.subtile_of(rank)
        return px * self.nx, py * self.ny

    def bounds(self, rank: int) -> GridBounds:
        """GridBounds for horizontal-region resolution on this rank."""
        gi, gj = self.subdomain_origin(rank)
        return GridBounds(origin=(gi, gj), tile_shape=(self.npx, self.npx))

    def on_tile_edge(self, rank: int, edge: str) -> bool:
        px, py = self.subtile_of(rank)
        return {
            "W": px == 0,
            "E": px == self.layout - 1,
            "S": py == 0,
            "N": py == self.layout - 1,
        }[edge]

    # ---- neighbor resolution ----------------------------------------------

    def edge_neighbor(self, rank: int, edge: str) -> RankNeighbor:
        """The rank across one edge, with the orientation transform."""
        tile = self.tile_of(rank)
        px, py = self.subtile_of(rank)
        steps = {"W": (-1, 0), "E": (1, 0), "S": (0, -1), "N": (0, 1)}
        dx, dy = steps[edge]
        nx_, ny_ = px + dx, py + dy
        if 0 <= nx_ < self.layout and 0 <= ny_ < self.layout:
            return RankNeighbor(
                rank=self.rank_at(tile, nx_, ny_),
                rotations=0,
                edge=edge,
                neighbor_edge={"W": "E", "E": "W", "S": "N", "N": "S"}[edge],
                reversed=False,
            )
        conn = CONNECTIVITY[(tile, edge)]
        # position along my edge, possibly reversed on the neighbor tile
        s = py if edge in ("W", "E") else px
        s_n = (self.layout - 1 - s) if conn.reversed else s
        # the neighbor subtile sits along the neighbor's edge `conn.edge`
        if conn.edge == "W":
            npx_, npy_ = 0, s_n
        elif conn.edge == "E":
            npx_, npy_ = self.layout - 1, s_n
        elif conn.edge == "S":
            npx_, npy_ = s_n, 0
        else:
            npx_, npy_ = s_n, self.layout - 1
        return RankNeighbor(
            rank=self.rank_at(conn.tile, npx_, npy_),
            rotations=conn.rotations,
            edge=edge,
            neighbor_edge=conn.edge,
            reversed=conn.reversed,
        )

    def neighbors(self, rank: int) -> Dict[str, RankNeighbor]:
        return {edge: self.edge_neighbor(rank, edge) for edge in EDGES}

    def boundary_message_bytes(
        self, n_halo: int, npz: int, n_fields: int, itemsize: int = 8
    ) -> List[int]:
        """Per-neighbor message sizes of one halo exchange (for the
        network model of Fig. 11)."""
        nx = self.nx
        return [nx * n_halo * npz * n_fields * itemsize] * 4
