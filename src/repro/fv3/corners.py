"""Tile-corner halo filling (the FORTRAN ``copy_corners``).

The cubed sphere has no cells diagonally across a tile corner: after a
halo exchange, corner halo cells contain the neighbor's own halo data.
Before a directional transport sweep, FV3 overwrites them with values
copied from the perpendicular halo so the sweep sees a consistent
continuation. This runs as interpreted Python (an automatic callback in
orchestrated programs, Sec. V-B) since the index transposes are not
constant-offset stencils.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.fv3 import constants
from repro.fv3.partitioner import CubedSpherePartitioner


def _fill_sw_x(q: np.ndarray, h: int) -> None:
    """x-direction fill of the southwest corner block.

    Derived from the FORTRAN copy_corners: in compute coordinates,
    ``q[i, j] = q[j, -1-i]`` for i, j in [-h, 0): corner cells read the
    west-halo columns at the first interior rows.
    """
    # dst[a, b] = q[b, 2h-1-a]  for a, b in [0, h)
    q[:h, :h] = q[:h, h : 2 * h].swapaxes(0, 1)[::-1]


def fill_corners(
    q: np.ndarray,
    direction: str,
    corners: Iterable[str] = ("sw", "se", "nw", "ne"),
    n_halo: int = constants.N_HALO,
) -> None:
    """Fill tile-corner halo blocks of one rank's array in place.

    Args:
        q: array shaped (nx + 2h, ny + 2h[, nk]).
        direction: "x" before x sweeps, "y" before y sweeps.
        corners: which tile corners this rank owns.
    """
    h = n_halo
    view = q if direction == "x" else q.swapaxes(0, 1)
    # map every corner onto the SW case by flipping axes
    flips = {
        "sw": view,
        "se": view[::-1, :],
        "nw": view[:, ::-1],
        "ne": view[::-1, ::-1],
    }
    wanted = set(corners)
    if direction == "y":
        # transposing swaps the roles of se and nw
        remap = {"sw": "sw", "se": "nw", "nw": "se", "ne": "ne"}
        wanted = {remap[c] for c in wanted}
    for name, v in flips.items():
        if name in wanted:
            _fill_sw_x(v, h)


def rank_corners(partitioner: CubedSpherePartitioner, rank: int):
    """Which tile corners a rank's subdomain touches."""
    out = []
    if partitioner.on_tile_edge(rank, "W") and partitioner.on_tile_edge(rank, "S"):
        out.append("sw")
    if partitioner.on_tile_edge(rank, "E") and partitioner.on_tile_edge(rank, "S"):
        out.append("se")
    if partitioner.on_tile_edge(rank, "W") and partitioner.on_tile_edge(rank, "N"):
        out.append("nw")
    if partitioner.on_tile_edge(rank, "E") and partitioner.on_tile_edge(rank, "N"):
        out.append("ne")
    return out
