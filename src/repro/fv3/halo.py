"""Halo exchange on the cubed sphere (Sec. IV-C).

"Halo updates are slightly more complex on the cubed-sphere grid, as data
must be transformed according to the orientation of the coordinate system
of the adjoining faces of the cube. We thus design a halo updater object
in Python that takes care of nonblocking communication, data packing, and
transformation based on the pair of ranks."

Implementation: gather plans are precomputed once per (rank, phase) —
for every halo cell, the owning source rank, the source array indices and
the frame rotation. The exchange runs in two phases (x-direction first,
then y-direction including corner columns) so that cube-corner halo cells
are sourced from already-updated neighbor halos, making the result
independent of the rank layout. Data travels through packed contiguous
buffers over the mpi4py-style communicator.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.fv3 import constants
from repro.fv3.communicator import LocalComm
from repro.fv3.partitioner import (
    CONNECTIVITY,
    _ROTATIONS,
    CubedSpherePartitioner,
)
from repro.obs import tracer as _obs
from repro.resilience import record as _record
from repro.resilience.errors import HaloTimeoutError

_TRACER = _obs.get_tracer()


def _tag(fslot: int, phase: int, pi: int) -> int:
    """Message tag for plan ``pi`` of ``phase``, field slot ``fslot``.

    Slot 0 reproduces the historical ``phase * 1000 + pi`` encoding;
    higher slots let one split exchange carry several fields (u/v, or
    δp/pt/w) with disjoint (source, dest, tag) keys while all are in
    flight concurrently.
    """
    return fslot * 10000 + phase * 1000 + pi


def _record_overlap(hidden_seconds: float, exposed_seconds: float) -> None:
    from repro.runtime import ranks as _ranks

    _ranks.record_overlap(hidden_seconds, exposed_seconds)


@dataclasses.dataclass
class RankHaloExchange:
    """An in-flight split exchange for one rank: phase-0 sends and
    receives are posted; ``finish_*`` completes phase 0, runs phase 1
    and (for vectors) the seam rotations.

    Between ``start_*`` and ``finish_*`` the rank may compute anything
    that does not read the halo cells of the exchanged fields — that
    window is what hides the communication latency.
    """

    rank: int
    slots: Tuple[Sequence[np.ndarray], ...]
    vector: bool
    reqs: List[tuple]
    t_start: float
    #: next phase to complete: 0 after ``start_*``, 1 after ``advance``
    phase: int = 0
    #: seconds spent blocked in waits so far (accumulated by ``advance``)
    blocked: float = 0.0
    #: first tag slot: two exchanges in flight concurrently (e.g. the
    #: wind exchange and the transported scalars) need disjoint slots
    fslot_base: int = 0


@dataclasses.dataclass
class GatherPlan:
    """Vectorized copy plan: dst[dst_i, dst_j] = rot(src[src_i, src_j])."""

    src_rank: int
    dst_i: np.ndarray
    dst_j: np.ndarray
    src_i: np.ndarray
    src_j: np.ndarray
    rotations: int  # CCW quarter turns applied to vector components
    #: row-major flat equivalents of (src_i, src_j) / (dst_i, dst_j) for
    #: single-axis gathers into persistent pack buffers (``np.take``)
    flat_src: np.ndarray = None
    flat_dst: np.ndarray = None

    @property
    def cells(self) -> int:
        return len(self.dst_i)


def _tile_edge_map(npx: int, tile: int, gi: int, gj: int):
    """Map an out-of-tile cell through the adjoining face.

    Returns (neighbor_tile, gi', gj', rotations). Exactly one of gi/gj must
    be out of [0, npx); crossing resolves that axis.
    """
    if gj >= npx:
        edge, g, s = "N", gj - npx, gi
    elif gj < 0:
        edge, g, s = "S", -1 - gj, gi
    elif gi >= npx:
        edge, g, s = "E", gi - npx, gj
    elif gi < 0:
        edge, g, s = "W", -1 - gi, gj
    else:
        raise ValueError("cell is inside the tile")
    conn = CONNECTIVITY[(tile, edge)]
    s2 = (npx - 1 - s) if conn.reversed else s
    if conn.edge == "E":
        gi2, gj2 = npx - 1 - g, s2
    elif conn.edge == "W":
        gi2, gj2 = g, s2
    elif conn.edge == "N":
        gi2, gj2 = s2, npx - 1 - g
    else:  # "S"
        gi2, gj2 = s2, g
    return conn.tile, gi2, gj2, conn.rotations


class HaloUpdater:
    """Precomputed cubed-sphere halo exchange for one decomposition."""

    def __init__(
        self,
        partitioner: CubedSpherePartitioner,
        n_halo: int = constants.N_HALO,
        comm: LocalComm | None = None,
    ):
        self.partitioner = partitioner
        self.n_halo = n_halo
        self.comm = comm or LocalComm(partitioner.total_ranks)
        #: plans[rank] = [phase0 plans, phase1 plans]
        self.plans: List[List[List[GatherPlan]]] = [
            self._build_rank_plans(rank)
            for rank in range(partitioner.total_ranks)
        ]
        # persistent pack buffers: gather plans are static per (rank,
        # phase), so each message reuses one buffer for its whole lifetime
        # (pack → send → receive back into it → scatter). Keyed also by the
        # field's trailing shape and dtype since one updater serves both 2D
        # and 3D fields.
        self._bufs: Dict[tuple, np.ndarray] = {}
        self._buf_lock = threading.Lock()
        #: send-side inverse of ``plans``: for each source rank and
        #: phase, the (dest rank, plan index, plan) triples it must pack
        #: and post — what a rank thread needs to run its own sends
        self._send_index: List[List[List[Tuple[int, int, GatherPlan]]]] = [
            [[], []] for _ in range(partitioner.total_ranks)
        ]
        for dst in range(partitioner.total_ranks):
            for phase in (0, 1):
                for pi, plan in enumerate(self.plans[dst][phase]):
                    self._send_index[plan.src_rank][phase].append(
                        (dst, pi, plan)
                    )

    def comm_schedule(self) -> List[Tuple[int, int, int, int, int]]:
        """The message topology as plain ``(src, dst, phase, plan_index,
        cells)`` tuples — what one full exchange posts, per phase.

        This is the extraction point for the static protocol checker
        (``repro.lint.plan_ir.edges_from_schedule``): plain tuples so the
        lint layer needs nothing from this module.
        """
        edges = []
        for dst in range(self.partitioner.total_ranks):
            for phase in (0, 1):
                for pi, plan in enumerate(self.plans[dst][phase]):
                    edges.append(
                        (plan.src_rank, dst, phase, pi, plan.cells)
                    )
        return edges

    def _plan_buf(self, key: tuple, shape, dtype) -> np.ndarray:
        buf = self._bufs.get(key)
        if buf is None or buf.shape != shape or buf.dtype != dtype:
            with self._buf_lock:
                buf = self._bufs.get(key)
                if buf is None or buf.shape != shape or buf.dtype != dtype:
                    buf = np.empty(shape, dtype=dtype)
                    self._bufs[key] = buf
        return buf

    @staticmethod
    def _gather(field: np.ndarray, flat: np.ndarray, buf: np.ndarray,
                ij: Tuple[np.ndarray, np.ndarray]) -> None:
        """buf[...] = field[ij] without allocating: a single-axis ``take``
        on the row-major flattened view when the field is contiguous."""
        if field.flags["C_CONTIGUOUS"]:
            np.take(
                field.reshape((-1,) + field.shape[2:]), flat, axis=0, out=buf
            )
        else:
            buf[...] = field[ij]

    # ------------------------------------------------------------------
    def _build_rank_plans(self, rank: int) -> List[List[GatherPlan]]:
        p = self.partitioner
        h, nx, ny, npx = self.n_halo, p.nx, p.ny, p.npx
        ox, oy = p.subdomain_origin(rank)
        tile = p.tile_of(rank)

        def resolve(gi: int, gj: int):
            """(src_rank, array_i, array_j, rotations) for one halo cell."""
            t, rot = tile, 0
            if not (0 <= gi < npx and 0 <= gj < npx):
                t, gi, gj, rot = _tile_edge_map(npx, tile, gi, gj)
            # owner rank on tile t: clamp coordinates still outside (cube
            # corners read the neighbor's own, phase-1-filled halo)
            ci = min(max(gi, 0), npx - 1)
            cj = min(max(gj, 0), npx - 1)
            px, py = ci // p.nx, cj // p.ny
            src = p.rank_at(t, px, py)
            sx, sy = px * p.nx, py * p.ny
            return src, gi - sx + h, gj - sy + h, rot

        phases = []
        for phase in (0, 1):
            cells: Dict[Tuple[int, int], List[Tuple[int, int, int, int]]] = {}
            if phase == 0:  # x-direction halos, interior j only
                targets = [
                    (i, j)
                    for i in list(range(-h, 0)) + list(range(nx, nx + h))
                    for j in range(0, ny)
                ]
            else:  # y-direction halos including corner columns
                targets = [
                    (i, j)
                    for i in range(-h, nx + h)
                    for j in list(range(-h, 0)) + list(range(ny, ny + h))
                ]
            for (i, j) in targets:
                src, si, sj, rot = resolve(ox + i, oy + j)
                cells.setdefault((src, rot), []).append((i + h, j + h, si, sj))
            plans = []
            ncols = ny + 2 * h  # row-major second-axis stride, all ranks
            for (src, rot), quads in sorted(cells.items()):
                arr = np.array(quads, dtype=np.int64)
                plans.append(
                    GatherPlan(
                        src_rank=src,
                        dst_i=arr[:, 0],
                        dst_j=arr[:, 1],
                        src_i=arr[:, 2],
                        src_j=arr[:, 3],
                        rotations=rot,
                        flat_src=arr[:, 2] * ncols + arr[:, 3],
                        flat_dst=arr[:, 0] * ncols + arr[:, 1],
                    )
                )
            phases.append(plans)
        return phases

    # ------------------------------------------------------------------
    def _exchange_phase(
        self, fields: Sequence[np.ndarray], phase: int
    ) -> None:
        """Run one phase: pack → Isend/Irecv → wait → unpack (+rotate)."""
        comm = self.comm
        requests = []
        messages = 0
        nbytes = 0
        with _TRACER.span("halo.exchange") as sp:
            # post sends: the source rank packs the requested cells into the
            # message's persistent buffer. The pack is already contiguous,
            # so nothing is copied between pack and send.
            for rank in range(self.partitioner.total_ranks):
                for pi, plan in enumerate(self.plans[rank][phase]):
                    src_field = fields[plan.src_rank]
                    shape = (plan.cells,) + src_field.shape[2:]
                    buf = self._plan_buf(
                        (rank, phase, pi), shape, src_field.dtype
                    )
                    self._gather(
                        src_field, plan.flat_src, buf,
                        (plan.src_i, plan.src_j),
                    )
                    messages += 1
                    nbytes += buf.nbytes
                    comm.Isend(
                        buf,
                        source=plan.src_rank,
                        dest=rank,
                        tag=phase * 1000 + pi,
                    )
            # post receives and complete them; each message's buffer is
            # free for reuse the moment its send is posted (Isend hands a
            # stable copy to the transport), so the receive lands in the
            # same buffer
            for rank in range(self.partitioner.total_ranks):
                for pi, plan in enumerate(self.plans[rank][phase]):
                    shape = (plan.cells,) + fields[rank].shape[2:]
                    buf = self._plan_buf(
                        (rank, phase, pi), shape, fields[rank].dtype
                    )
                    req = comm.Irecv(
                        buf, source=plan.src_rank, dest=rank,
                        tag=phase * 1000 + pi,
                    )
                    requests.append((rank, plan, buf, req))
            try:
                for rank, plan, buf, req in requests:
                    req.wait()
                    fields[rank][plan.dst_i, plan.dst_j] = buf
            except HaloTimeoutError as exc:
                # the tag encoding is ours, so the phase and tag slot are
                # named here; drain the aborted exchange so a retry can
                # repost every send without tripping the duplicate-key
                # check
                exc.phase = phase
                exc.fslot_base = 0  # the atomic path always uses slot 0
                _record("halo_timeouts")
                comm.drain()
                raise
            sp.add("messages", messages)
            sp.add("bytes", nbytes)

    def _rotate_rank(self, rank: int, u_fields, v_fields,
                     phase: int) -> int:
        """Rotate one rank's received vector halo cells into its local
        tile basis; returns the number of cells rotated."""
        from repro.runtime.pool import get_pool

        pool = get_pool()
        rotated = 0
        for pi, plan in enumerate(self.plans[rank][phase]):
            if plan.rotations == 0:
                continue
            rot = _ROTATIONS[plan.rotations]
            rotated += plan.cells
            uf, vf = u_fields[rank], v_fields[rank]
            shape = (plan.cells,) + uf.shape[2:]
            ij = (plan.dst_i, plan.dst_j)
            # gather both components into persistent buffers, form
            # the rotated combinations in pooled scratch, scatter
            ub = self._plan_buf(("rotu", phase, rank, pi), shape,
                                uf.dtype)
            vb = self._plan_buf(("rotv", phase, rank, pi), shape,
                                vf.dtype)
            self._gather(uf, plan.flat_dst, ub, ij)
            self._gather(vf, plan.flat_dst, vb, ij)
            t1 = pool.checkout(shape, uf.dtype)
            t2 = pool.checkout(shape, uf.dtype)
            np.multiply(rot[0, 0], ub, out=t1)
            np.multiply(rot[0, 1], vb, out=t2)
            np.add(t1, t2, out=t1)
            uf[ij] = t1
            np.multiply(rot[1, 0], ub, out=t1)
            np.multiply(rot[1, 1], vb, out=t2)
            np.add(t1, t2, out=t1)
            vf[ij] = t1
            pool.release(t2)
            pool.release(t1)
        return rotated

    def _rotate_vectors(self, vector_pair, phase: int) -> None:
        u_fields, v_fields = vector_pair
        with _TRACER.span("halo.rotate_vectors") as sp:
            rotated = 0
            for rank in range(self.partitioner.total_ranks):
                rotated += self._rotate_rank(rank, u_fields, v_fields, phase)
            sp.add("cells", rotated)

    # ------------------------------------------------------------------
    # split per-rank exchange (the SPMD path)
    # ------------------------------------------------------------------
    def _post_rank_sends(self, rank: int, slots, phase: int,
                         fslot_base: int = 0) -> None:
        """Pack and post every message ``rank`` owes its neighbors for
        one phase, all field slots."""
        comm = self.comm
        for dst, pi, plan in self._send_index[rank][phase]:
            for fslot, fields in enumerate(slots, start=fslot_base):
                field = fields[rank]
                shape = (plan.cells,) + field.shape[2:]
                # "snd"-keyed, distinct from the receiver's "rcv" buffer:
                # the sender's thread may repack for the next exchange
                # while the receiver is still scattering this one, so the
                # two sides must never share storage (Isend snapshots the
                # payload, making the pack buffer free on return)
                buf = self._plan_buf(
                    ("snd", dst, phase, pi, fslot), shape, field.dtype
                )
                self._gather(
                    field, plan.flat_src, buf, (plan.src_i, plan.src_j)
                )
                comm.Isend(
                    buf, source=rank, dest=dst, tag=_tag(fslot, phase, pi)
                )

    def _post_rank_recvs(self, rank: int, slots, phase: int,
                         fslot_base: int = 0) -> List[tuple]:
        """Post ``rank``'s receives for one phase; returns
        (slot index, plan, buffer, request) tuples for the wait/unpack."""
        reqs = []
        for pi, plan in enumerate(self.plans[rank][phase]):
            for si, fields in enumerate(slots):
                fslot = fslot_base + si
                field = fields[rank]
                shape = (plan.cells,) + field.shape[2:]
                buf = self._plan_buf(
                    ("rcv", rank, phase, pi, fslot), shape, field.dtype
                )
                req = self.comm.Irecv(
                    buf, source=plan.src_rank, dest=rank,
                    tag=_tag(fslot, phase, pi),
                )
                reqs.append((si, plan, buf, req))
        return reqs

    def _finish_rank_phase(self, rank: int, slots, reqs,
                           phase: int, fslot_base: int = 0) -> float:
        """Complete one phase's receives and scatter the halo cells;
        returns the seconds this rank spent blocked in waits.

        Unlike the sequential path, a timeout does *not* drain the
        communicator here — other rank threads are still exchanging.
        The driver (the dyncore rollback loop) drains after joining
        every rank.
        """
        blocked = 0.0
        try:
            for fslot, plan, buf, req in reqs:
                t0 = time.perf_counter()
                req.wait()
                blocked += time.perf_counter() - t0
                slots[fslot][rank][plan.dst_i, plan.dst_j] = buf
        except HaloTimeoutError as exc:
            # name the owning exchange's tag-slot window so the timeout
            # is cross-referenceable with the C3xx protocol findings
            exc.phase = phase
            exc.fslot_base = fslot_base
            _record("halo_timeouts")
            raise
        return blocked

    def _start(self, slots, rank: int, vector: bool,
               fslot_base: int = 0) -> RankHaloExchange:
        with _TRACER.span("halo.start"):
            self._post_rank_sends(rank, slots, 0, fslot_base)
            reqs = self._post_rank_recvs(rank, slots, 0, fslot_base)
        return RankHaloExchange(
            rank=rank, slots=slots, vector=vector, reqs=reqs,
            t_start=time.perf_counter(), fslot_base=fslot_base,
        )

    def advance(self, ex: RankHaloExchange) -> None:
        """Complete phase 0 and post phase 1 without blocking on it.

        Optional pipelining step between ``start_*`` and ``finish_*``:
        after ``advance`` the rank may post *another* exchange (or
        compute) while phase 1's messages are in flight, so a subsequent
        exchange's phase-0 latency elapses inside this one's phase-1
        wait. The exchanged fields' edge halos are valid after
        ``advance``; corners (and seam rotations) only after
        ``finish_*``.
        """
        if ex.phase != 0:
            raise ValueError("advance() called twice on one exchange")
        rank, slots = ex.rank, ex.slots
        with _TRACER.span("halo.advance"):
            ex.blocked += self._finish_rank_phase(
                rank, slots, ex.reqs, 0, ex.fslot_base
            )
            if ex.vector:
                self._rotate_rank(rank, slots[0], slots[1], 0)
            self._post_rank_sends(rank, slots, 1, ex.fslot_base)
            ex.reqs = self._post_rank_recvs(rank, slots, 1, ex.fslot_base)
        ex.phase = 1

    def _finish(self, ex: RankHaloExchange) -> None:
        hidden = time.perf_counter() - ex.t_start
        rank, slots = ex.rank, ex.slots
        with _TRACER.span("halo.finish"):
            if ex.phase == 0:
                ex.blocked += self._finish_rank_phase(
                    rank, slots, ex.reqs, 0, ex.fslot_base
                )
                if ex.vector:
                    self._rotate_rank(rank, slots[0], slots[1], 0)
                self._post_rank_sends(rank, slots, 1, ex.fslot_base)
                ex.reqs = self._post_rank_recvs(rank, slots, 1, ex.fslot_base)
            blocked = ex.blocked + self._finish_rank_phase(
                rank, slots, ex.reqs, 1, ex.fslot_base
            )
            if ex.vector:
                self._rotate_rank(rank, slots[0], slots[1], 1)
        _record_overlap(hidden, blocked)

    def start_scalar(self, fields: Sequence[np.ndarray],
                     rank: int) -> RankHaloExchange:
        """Post phase 0 of one rank's scalar halo exchange (SPMD: every
        rank calls this on its own thread). Pair with
        :meth:`finish_scalar`."""
        return self._start((fields,), rank, vector=False)

    def start_scalars(self, fields_list: Sequence[Sequence[np.ndarray]],
                      rank: int, fslot_base: int = 0) -> RankHaloExchange:
        """Like :meth:`start_scalar` for several fields at once — one
        fused exchange with per-field tag slots. ``fslot_base`` offsets
        the slots so this exchange can be in flight concurrently with
        another one using lower slots (disjoint message keys)."""
        return self._start(
            tuple(fields_list), rank, vector=False, fslot_base=fslot_base
        )

    def start_vector(self, u_fields: Sequence[np.ndarray],
                     v_fields: Sequence[np.ndarray],
                     rank: int) -> RankHaloExchange:
        """Post phase 0 of one rank's vector exchange (both components
        in flight together). Pair with :meth:`finish_vector`."""
        return self._start((u_fields, v_fields), rank, vector=True)

    def finish_scalar(self, ex: RankHaloExchange) -> None:
        """Complete a scalar exchange: wait out phase 0, run phase 1."""
        if ex.vector:
            raise ValueError("vector exchange passed to finish_scalar")
        self._finish(ex)

    finish_scalars = finish_scalar

    def finish_vector(self, ex: RankHaloExchange) -> None:
        """Complete a vector exchange: phases 0/1 plus seam rotations."""
        if not ex.vector:
            raise ValueError("scalar exchange passed to finish_vector")
        self._finish(ex)

    # ------------------------------------------------------------------
    def update_scalar(self, fields: Sequence[np.ndarray]) -> None:
        """Fill halos of one scalar field given per-rank arrays.

        Arrays are shaped (nx + 2h, ny + 2h[, nk]); the interior is
        [h:h+nx, h:h+ny].
        """
        with _TRACER.span("halo.update_scalar"):
            self._check(fields)
            self._exchange_phase(fields, 0)
            self._exchange_phase(fields, 1)

    def update_vector(
        self, u_fields: Sequence[np.ndarray], v_fields: Sequence[np.ndarray]
    ) -> None:
        """Fill halos of a vector field, rotating components across tile
        seams (A-grid components in the local tile basis)."""
        with _TRACER.span("halo.update_vector"):
            self._check(u_fields)
            self._check(v_fields)
            for phase in (0, 1):
                # exchange both components, then rotate the received cells
                self._exchange_phase(u_fields, phase)
                self._exchange_phase(v_fields, phase)
                self._rotate_vectors((u_fields, v_fields), phase)

    def finalize(self, strict: bool = False):
        """Teardown drain check: report sent-but-never-received messages
        (the mailbox leak) and drop the persistent pack buffers.

        Returns the orphaned (source, dest, tag) triples from
        :meth:`LocalComm.finalize`.
        """
        orphans = self.comm.finalize(strict=strict)
        self._bufs.clear()
        return orphans

    def _check(self, fields) -> None:
        p = self.partitioner
        if len(fields) != p.total_ranks:
            raise ValueError(
                f"expected {p.total_ranks} per-rank arrays, got {len(fields)}"
            )
        want = (p.nx + 2 * self.n_halo, p.ny + 2 * self.n_halo)
        for f in fields:
            if f.shape[:2] != want:
                raise ValueError(
                    f"array shape {f.shape[:2]} does not match {want}"
                )
