"""Halo exchange on the cubed sphere (Sec. IV-C).

"Halo updates are slightly more complex on the cubed-sphere grid, as data
must be transformed according to the orientation of the coordinate system
of the adjoining faces of the cube. We thus design a halo updater object
in Python that takes care of nonblocking communication, data packing, and
transformation based on the pair of ranks."

Implementation: gather plans are precomputed once per (rank, phase) —
for every halo cell, the owning source rank, the source array indices and
the frame rotation. The exchange runs in two phases (x-direction first,
then y-direction including corner columns) so that cube-corner halo cells
are sourced from already-updated neighbor halos, making the result
independent of the rank layout. Data travels through packed contiguous
buffers over the mpi4py-style communicator.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.fv3 import constants
from repro.fv3.communicator import LocalComm
from repro.fv3.partitioner import (
    CONNECTIVITY,
    _ROTATIONS,
    CubedSpherePartitioner,
)
from repro.obs import tracer as _obs
from repro.resilience import record as _record
from repro.resilience.errors import HaloTimeoutError

_TRACER = _obs.get_tracer()


@dataclasses.dataclass
class GatherPlan:
    """Vectorized copy plan: dst[dst_i, dst_j] = rot(src[src_i, src_j])."""

    src_rank: int
    dst_i: np.ndarray
    dst_j: np.ndarray
    src_i: np.ndarray
    src_j: np.ndarray
    rotations: int  # CCW quarter turns applied to vector components
    #: row-major flat equivalents of (src_i, src_j) / (dst_i, dst_j) for
    #: single-axis gathers into persistent pack buffers (``np.take``)
    flat_src: np.ndarray = None
    flat_dst: np.ndarray = None

    @property
    def cells(self) -> int:
        return len(self.dst_i)


def _tile_edge_map(npx: int, tile: int, gi: int, gj: int):
    """Map an out-of-tile cell through the adjoining face.

    Returns (neighbor_tile, gi', gj', rotations). Exactly one of gi/gj must
    be out of [0, npx); crossing resolves that axis.
    """
    if gj >= npx:
        edge, g, s = "N", gj - npx, gi
    elif gj < 0:
        edge, g, s = "S", -1 - gj, gi
    elif gi >= npx:
        edge, g, s = "E", gi - npx, gj
    elif gi < 0:
        edge, g, s = "W", -1 - gi, gj
    else:
        raise ValueError("cell is inside the tile")
    conn = CONNECTIVITY[(tile, edge)]
    s2 = (npx - 1 - s) if conn.reversed else s
    if conn.edge == "E":
        gi2, gj2 = npx - 1 - g, s2
    elif conn.edge == "W":
        gi2, gj2 = g, s2
    elif conn.edge == "N":
        gi2, gj2 = s2, npx - 1 - g
    else:  # "S"
        gi2, gj2 = s2, g
    return conn.tile, gi2, gj2, conn.rotations


class HaloUpdater:
    """Precomputed cubed-sphere halo exchange for one decomposition."""

    def __init__(
        self,
        partitioner: CubedSpherePartitioner,
        n_halo: int = constants.N_HALO,
        comm: LocalComm | None = None,
    ):
        self.partitioner = partitioner
        self.n_halo = n_halo
        self.comm = comm or LocalComm(partitioner.total_ranks)
        #: plans[rank] = [phase0 plans, phase1 plans]
        self.plans: List[List[List[GatherPlan]]] = [
            self._build_rank_plans(rank)
            for rank in range(partitioner.total_ranks)
        ]
        # persistent pack buffers: gather plans are static per (rank,
        # phase), so each message reuses one buffer for its whole lifetime
        # (pack → send → receive back into it → scatter). Keyed also by the
        # field's trailing shape and dtype since one updater serves both 2D
        # and 3D fields.
        self._bufs: Dict[tuple, np.ndarray] = {}

    def _plan_buf(self, key: tuple, shape, dtype) -> np.ndarray:
        buf = self._bufs.get(key)
        if buf is None or buf.shape != shape or buf.dtype != dtype:
            buf = np.empty(shape, dtype=dtype)
            self._bufs[key] = buf
        return buf

    @staticmethod
    def _gather(field: np.ndarray, flat: np.ndarray, buf: np.ndarray,
                ij: Tuple[np.ndarray, np.ndarray]) -> None:
        """buf[...] = field[ij] without allocating: a single-axis ``take``
        on the row-major flattened view when the field is contiguous."""
        if field.flags["C_CONTIGUOUS"]:
            np.take(
                field.reshape((-1,) + field.shape[2:]), flat, axis=0, out=buf
            )
        else:
            buf[...] = field[ij]

    # ------------------------------------------------------------------
    def _build_rank_plans(self, rank: int) -> List[List[GatherPlan]]:
        p = self.partitioner
        h, nx, ny, npx = self.n_halo, p.nx, p.ny, p.npx
        ox, oy = p.subdomain_origin(rank)
        tile = p.tile_of(rank)

        def resolve(gi: int, gj: int):
            """(src_rank, array_i, array_j, rotations) for one halo cell."""
            t, rot = tile, 0
            if not (0 <= gi < npx and 0 <= gj < npx):
                t, gi, gj, rot = _tile_edge_map(npx, tile, gi, gj)
            # owner rank on tile t: clamp coordinates still outside (cube
            # corners read the neighbor's own, phase-1-filled halo)
            ci = min(max(gi, 0), npx - 1)
            cj = min(max(gj, 0), npx - 1)
            px, py = ci // p.nx, cj // p.ny
            src = p.rank_at(t, px, py)
            sx, sy = px * p.nx, py * p.ny
            return src, gi - sx + h, gj - sy + h, rot

        phases = []
        for phase in (0, 1):
            cells: Dict[Tuple[int, int], List[Tuple[int, int, int, int]]] = {}
            if phase == 0:  # x-direction halos, interior j only
                targets = [
                    (i, j)
                    for i in list(range(-h, 0)) + list(range(nx, nx + h))
                    for j in range(0, ny)
                ]
            else:  # y-direction halos including corner columns
                targets = [
                    (i, j)
                    for i in range(-h, nx + h)
                    for j in list(range(-h, 0)) + list(range(ny, ny + h))
                ]
            for (i, j) in targets:
                src, si, sj, rot = resolve(ox + i, oy + j)
                cells.setdefault((src, rot), []).append((i + h, j + h, si, sj))
            plans = []
            ncols = ny + 2 * h  # row-major second-axis stride, all ranks
            for (src, rot), quads in sorted(cells.items()):
                arr = np.array(quads, dtype=np.int64)
                plans.append(
                    GatherPlan(
                        src_rank=src,
                        dst_i=arr[:, 0],
                        dst_j=arr[:, 1],
                        src_i=arr[:, 2],
                        src_j=arr[:, 3],
                        rotations=rot,
                        flat_src=arr[:, 2] * ncols + arr[:, 3],
                        flat_dst=arr[:, 0] * ncols + arr[:, 1],
                    )
                )
            phases.append(plans)
        return phases

    # ------------------------------------------------------------------
    def _exchange_phase(
        self, fields: Sequence[np.ndarray], phase: int
    ) -> None:
        """Run one phase: pack → Isend/Irecv → wait → unpack (+rotate)."""
        comm = self.comm
        requests = []
        messages = 0
        nbytes = 0
        with _TRACER.span("halo.exchange") as sp:
            # post sends: the source rank packs the requested cells into the
            # message's persistent buffer. The pack is already contiguous,
            # so nothing is copied between pack and send.
            for rank in range(self.partitioner.total_ranks):
                for pi, plan in enumerate(self.plans[rank][phase]):
                    src_field = fields[plan.src_rank]
                    shape = (plan.cells,) + src_field.shape[2:]
                    buf = self._plan_buf(
                        (rank, phase, pi), shape, src_field.dtype
                    )
                    self._gather(
                        src_field, plan.flat_src, buf,
                        (plan.src_i, plan.src_j),
                    )
                    messages += 1
                    nbytes += buf.nbytes
                    comm.Isend(
                        buf,
                        source=plan.src_rank,
                        dest=rank,
                        tag=phase * 1000 + pi,
                    )
            # post receives and complete them; each message's buffer is
            # free for reuse the moment its send is posted (Isend hands a
            # stable copy to the transport), so the receive lands in the
            # same buffer
            for rank in range(self.partitioner.total_ranks):
                for pi, plan in enumerate(self.plans[rank][phase]):
                    shape = (plan.cells,) + fields[rank].shape[2:]
                    buf = self._plan_buf(
                        (rank, phase, pi), shape, fields[rank].dtype
                    )
                    req = comm.Irecv(
                        buf, source=plan.src_rank, dest=rank,
                        tag=phase * 1000 + pi,
                    )
                    requests.append((rank, plan, buf, req))
            try:
                for rank, plan, buf, req in requests:
                    req.wait()
                    fields[rank][plan.dst_i, plan.dst_j] = buf
            except HaloTimeoutError as exc:
                # the tag encoding is ours, so the phase is named here;
                # drain the aborted exchange so a retry can repost every
                # send without tripping the duplicate-key check
                exc.phase = phase
                _record("halo_timeouts")
                comm.drain()
                raise
            sp.add("messages", messages)
            sp.add("bytes", nbytes)

    def _rotate_vectors(self, vector_pair, phase: int) -> None:
        from repro.runtime.pool import get_pool

        u_fields, v_fields = vector_pair
        rotated = 0
        pool = get_pool()
        with _TRACER.span("halo.rotate_vectors") as sp:
            for rank in range(self.partitioner.total_ranks):
                for pi, plan in enumerate(self.plans[rank][phase]):
                    if plan.rotations == 0:
                        continue
                    rot = _ROTATIONS[plan.rotations]
                    rotated += plan.cells
                    uf, vf = u_fields[rank], v_fields[rank]
                    shape = (plan.cells,) + uf.shape[2:]
                    ij = (plan.dst_i, plan.dst_j)
                    # gather both components into persistent buffers, form
                    # the rotated combinations in pooled scratch, scatter
                    ub = self._plan_buf(("rotu", phase, rank, pi), shape,
                                        uf.dtype)
                    vb = self._plan_buf(("rotv", phase, rank, pi), shape,
                                        vf.dtype)
                    self._gather(uf, plan.flat_dst, ub, ij)
                    self._gather(vf, plan.flat_dst, vb, ij)
                    t1 = pool.checkout(shape, uf.dtype)
                    t2 = pool.checkout(shape, uf.dtype)
                    np.multiply(rot[0, 0], ub, out=t1)
                    np.multiply(rot[0, 1], vb, out=t2)
                    np.add(t1, t2, out=t1)
                    uf[ij] = t1
                    np.multiply(rot[1, 0], ub, out=t1)
                    np.multiply(rot[1, 1], vb, out=t2)
                    np.add(t1, t2, out=t1)
                    vf[ij] = t1
                    pool.release(t2)
                    pool.release(t1)
            sp.add("cells", rotated)

    # ------------------------------------------------------------------
    def update_scalar(self, fields: Sequence[np.ndarray]) -> None:
        """Fill halos of one scalar field given per-rank arrays.

        Arrays are shaped (nx + 2h, ny + 2h[, nk]); the interior is
        [h:h+nx, h:h+ny].
        """
        with _TRACER.span("halo.update_scalar"):
            self._check(fields)
            self._exchange_phase(fields, 0)
            self._exchange_phase(fields, 1)

    def update_vector(
        self, u_fields: Sequence[np.ndarray], v_fields: Sequence[np.ndarray]
    ) -> None:
        """Fill halos of a vector field, rotating components across tile
        seams (A-grid components in the local tile basis)."""
        with _TRACER.span("halo.update_vector"):
            self._check(u_fields)
            self._check(v_fields)
            for phase in (0, 1):
                # exchange both components, then rotate the received cells
                self._exchange_phase(u_fields, phase)
                self._exchange_phase(v_fields, phase)
                self._rotate_vectors((u_fields, v_fields), phase)

    def finalize(self, strict: bool = False):
        """Teardown drain check: report sent-but-never-received messages
        (the mailbox leak) and drop the persistent pack buffers.

        Returns the orphaned (source, dest, tag) triples from
        :meth:`LocalComm.finalize`.
        """
        orphans = self.comm.finalize(strict=strict)
        self._bufs.clear()
        return orphans

    def _check(self, fields) -> None:
        p = self.partitioner
        if len(fields) != p.total_ranks:
            raise ValueError(
                f"expected {p.total_ranks} per-rank arrays, got {len(fields)}"
            )
        want = (p.nx + 2 * self.n_halo, p.ny + 2 * self.n_halo)
        for f in fields:
            if f.shape[:2] != want:
                raise ValueError(
                    f"array shape {f.shape[:2]} does not match {want}"
                )
