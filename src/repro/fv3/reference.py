"""Plain-NumPy reference implementations for stencil validation.

The paper validates every ported module against serialized data from the
FORTRAN model (Sec. IV-A: "independent standalone unit-tests for model
validation by comparing with the serialized reference up to a given
numerical precision"). Without the FORTRAN model, these straight-line
NumPy implementations — written independently of the DSL, loop/slice
style like the original FORTRAN — serve as the reference: every DSL
stencil must match them bit-for-bit.
"""

from __future__ import annotations

import numpy as np


def ppm_flux_x(q: np.ndarray, cr: np.ndarray) -> np.ndarray:
    """Reference PPM x-flux at interface i (between cells i-1 and i).

    q, cr: (nx, ny, nk) arrays where the flux is defined for
    i in [3, nx-2) (needs 3 upwind cells). Returns array of same shape
    with values outside that range unspecified (zeros).
    """
    nx = q.shape[0]
    flux = np.zeros_like(q)
    al = np.zeros_like(q)
    al[2:-1] = 7.0 / 12.0 * (q[1:-2] + q[2:-1]) - 1.0 / 12.0 * (
        q[:-3] + q[3:]
    )
    # clamp interfaces between adjacent means (Colella & Woodward)
    al[2:-1] = np.clip(
        al[2:-1],
        np.minimum(q[1:-2], q[2:-1]),
        np.maximum(q[1:-2], q[2:-1]),
    )
    bl = np.zeros_like(q)
    br = np.zeros_like(q)
    bl[2:-2] = al[2:-2] - q[2:-2]
    br[2:-2] = al[3:-1] - q[2:-2]
    extremum = bl * br >= 0.0
    da = br - bl
    a6 = -3.0 * (bl + br)
    over_l = da * a6 > da * da
    over_r = da * a6 < -(da * da)
    bl_lim = np.where(over_l, -2.0 * br, bl)
    br_lim = np.where(np.logical_and(over_r, ~over_l), -2.0 * bl, br)
    bl = np.where(extremum, 0.0, bl_lim)
    br = np.where(extremum, 0.0, br_lim)
    b0 = bl + br
    for i in range(3, nx - 2):
        c = cr[i]
        up = q[i - 1] + (1.0 - c) * (br[i - 1] - c * b0[i - 1])
        dn = q[i] + (1.0 + c) * (bl[i] + c * b0[i])
        flux[i] = np.where(c > 0.0, up, dn)
    return flux


def ppm_flux_y(q: np.ndarray, cr: np.ndarray) -> np.ndarray:
    """Reference PPM y-flux (transpose of the x version)."""
    return ppm_flux_x(
        q.swapaxes(0, 1), cr.swapaxes(0, 1)
    ).swapaxes(0, 1)


def thomas_tridiagonal(aa, bb, cc, dd):
    """Reference solve of (−aa·w[k−1] + bb·w[k] − cc·w[k+1]) = dd along the
    last axis, via scipy, column by column."""
    from scipy.linalg import solve_banded

    shape = dd.shape
    nk = shape[-1]
    out = np.zeros_like(dd)
    flat_a = aa.reshape(-1, nk)
    flat_b = bb.reshape(-1, nk)
    flat_c = cc.reshape(-1, nk)
    flat_d = dd.reshape(-1, nk)
    flat_o = out.reshape(-1, nk)
    for idx in range(flat_d.shape[0]):
        ab = np.zeros((3, nk))
        ab[0, 1:] = -flat_c[idx, :-1]  # super-diagonal
        ab[1, :] = flat_b[idx]
        ab[2, :-1] = -flat_a[idx, 1:]  # sub-diagonal
        flat_o[idx] = solve_banded((1, 1), ab, flat_d[idx])
    return out


def conservative_remap_1d(q, pe1, pe2):
    """Reference piecewise-constant conservative remap of one column.

    q: (nk,) source means; pe1, pe2: (nk+1,) source/target interfaces.
    General (no displacement limit): integrates exactly.
    """
    nk = len(q)
    out = np.zeros(nk)
    for k in range(nk):
        lo, hi = pe2[k], pe2[k + 1]
        acc = 0.0
        for s in range(nk):
            ov = max(0.0, min(pe1[s + 1], hi) - max(pe1[s], lo))
            acc += ov * q[s]
        out[k] = acc / (hi - lo)
    return out


def vorticity_centered(u, v, rdx, rdy):
    """Reference centered-difference vorticity at interior points."""
    vort = np.zeros_like(u)
    vort[1:-1, 1:-1] = (
        0.5 * (v[2:, 1:-1] - v[:-2, 1:-1]) * rdx[1:-1, 1:-1, None]
        - 0.5 * (u[1:-1, 2:] - u[1:-1, :-2]) * rdy[1:-1, 1:-1, None]
    )
    return vort


def smagorinsky(delpc, vort, dt):
    """Reference Smagorinsky magnitude (the Sec. VI-C1 formula)."""
    return dt * np.sqrt(delpc**2 + vort**2)


def del2_diffusion_step(q, dx, dy, rdx, rdy, rarea, damp):
    """Reference one application of the del-2 damping flux divergence."""
    fx = np.zeros_like(q)
    fy = np.zeros_like(q)
    fx[1:] = (
        damp
        * (q[:-1] - q[1:])
        * (0.5 * (dy[:-1] + dy[1:]) * rdx[1:])[..., None]
    )
    fy[:, 1:] = (
        damp
        * (q[:, :-1] - q[:, 1:])
        * (0.5 * (dx[:, :-1] + dx[:, 1:]) * rdy[:, 1:])[..., None]
    )
    out = q.copy()
    out[1:-1, 1:-1] += (
        fx[1:-1, 1:-1] - fx[2:, 1:-1] + fy[1:-1, 1:-1] - fy[1:-1, 2:]
    ) * rarea[1:-1, 1:-1, None]
    return out
