"""Frontend: parse decorated Python functions into the stencil IR.

The parser understands the GT4Py-style subset of Python described in the
paper (Sec. III-A, IV):

- ``with computation(PARALLEL|FORWARD|BACKWARD)`` blocks,
- ``with interval(a, b)`` vertical restrictions,
- ``with horizontal(region[...])`` sub-domain restrictions (Sec. IV-B),
- assignments with relative offsets ``field[di, dj, dk]``,
- ``if``/``elif``/``else`` on field expressions (lowered to masks),
- calls to ``@function``-decorated subroutines (inlined),
- compile-time external constants (folded to literals).

Variable offsets are rejected, matching the concession in Sec. IV-D.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro._astsync import AST_LOCK
from repro.dsl import builtins as dsl_builtins
from repro.dsl.builtins import (
    BACKWARD,
    FORWARD,
    MATH_BUILTINS,
    PARALLEL,
    GTFunction,
    RegionSpec,
)
from repro.dsl.ir import (
    Assign,
    AxisBound,
    AxisIndexExpr,
    BinOp,
    Call,
    Computation,
    Expr,
    FieldAccess,
    Interval,
    IntervalBlock,
    Literal,
    ParamDecl,
    ScalarRef,
    StencilDef,
    Ternary,
    UnaryOp,
)
from repro.dsl.types import (
    FieldType,
    field_type_from_annotation,
    scalar_dtype_from_annotation,
)


class StencilSyntaxError(SyntaxError):
    """Raised when a stencil definition uses unsupported constructs."""


_BINOPS = {
    ast.Add: "+",
    ast.Sub: "-",
    ast.Mult: "*",
    ast.Div: "/",
    ast.Pow: "**",
    ast.Mod: "%",
    ast.FloorDiv: "//",
}

_CMPOPS = {
    ast.Lt: "<",
    ast.LtE: "<=",
    ast.Gt: ">",
    ast.GtE: ">=",
    ast.Eq: "==",
    ast.NotEq: "!=",
}

_AXIS_INDEX_NAMES = {"I_INDEX": "I", "J_INDEX": "J", "K_INDEX": "K"}

_ORDERS = {"PARALLEL": PARALLEL, "FORWARD": FORWARD, "BACKWARD": BACKWARD}


def _get_func_ast(func) -> ast.FunctionDef:
    source = textwrap.dedent(inspect.getsource(func))
    with AST_LOCK:  # ast<->object conversion is not thread-safe on 3.11
        tree = ast.parse(source)
    node = tree.body[0]
    if not isinstance(node, ast.FunctionDef):
        raise StencilSyntaxError("expected a function definition")
    return node


def _make_interval(args: Tuple) -> Interval:
    """Build an interval from evaluated ``interval(...)`` arguments."""
    if len(args) == 1 and args[0] is Ellipsis:
        return Interval.full()
    if len(args) != 2:
        raise StencilSyntaxError(
            "interval() takes '...' or (start, end) arguments"
        )
    start, end = args

    def bound(value, is_end: bool) -> AxisBound:
        if value is None:
            return AxisBound("end" if is_end else "start", 0)
        value = int(value)
        if value < 0:
            return AxisBound("end", value)
        if is_end and value == 0:
            raise StencilSyntaxError("interval end of 0 selects nothing")
        return AxisBound("start", value)

    return Interval(bound(start, False), bound(end, True))


class _FunctionInfo:
    """Parsed form of a @function subroutine, cached on the GTFunction."""

    def __init__(self, gtfunc: GTFunction):
        self.node = _get_func_ast(gtfunc.definition)
        self.param_names = [a.arg for a in self.node.args.args]
        self.globals = gtfunc.definition.__globals__
        self.name = gtfunc.__name__

    @staticmethod
    def of(gtfunc: GTFunction) -> "_FunctionInfo":
        cached = getattr(gtfunc, "_parsed_info", None)
        if cached is None:
            cached = _FunctionInfo(gtfunc)
            gtfunc._parsed_info = cached
        return cached


class StencilParser:
    """Parses one stencil definition into a :class:`StencilDef`."""

    def __init__(self, func, externals: Optional[Dict] = None):
        self.func = func
        self.externals = dict(externals or {})
        self.globals = dict(getattr(func, "__globals__", {}))
        closure = getattr(func, "__closure__", None)
        if closure:
            for name, cell in zip(func.__code__.co_freevars, closure):
                try:
                    self.globals[name] = cell.cell_contents
                except ValueError:  # pragma: no cover - unfilled cell
                    pass
        self.node = _get_func_ast(func)
        self.params: List[ParamDecl] = []
        self.param_kinds: Dict[str, str] = {}
        self.temporaries: Dict[str, FieldType] = {}
        self.scalar_locals: Dict[str, Expr] = {}
        self.computations: List[Computation] = []
        self._inline_counter = 0
        # absolute source location: ast linenos are relative to the
        # dedented snippet, so offset by the function's first source line
        try:
            self.source_file = inspect.getsourcefile(func)
            _, first_line = inspect.getsourcelines(func)
        except (OSError, TypeError):  # pragma: no cover - e.g. exec'd source
            self.source_file, first_line = None, 1
        self._lineno_base = first_line - 1
        # while inlining a @function body, statements it emits are
        # attributed to the *call site* line in the stencil's own source
        self._lineno_override: Optional[int] = None
        self._current_lineno: Optional[int] = None
        self._parse_signature()

    def _abs_lineno(self, node) -> Optional[int]:
        if self._lineno_override is not None:
            return self._lineno_override
        lineno = getattr(node, "lineno", None)
        return None if lineno is None else self._lineno_base + lineno

    # ---- signature -----------------------------------------------------

    def _parse_signature(self) -> None:
        args = self.node.args
        if args.vararg or args.kwarg or args.kwonlyargs or args.posonlyargs:
            raise StencilSyntaxError(
                "stencils take plain positional-or-keyword parameters only"
            )
        try:
            # resolve stringified annotations (PEP 563 modules)
            sig = inspect.signature(self.func, eval_str=True)
        except (NameError, TypeError):
            sig = inspect.signature(self.func)
        for name, param in sig.parameters.items():
            annotation = (
                None
                if param.annotation is inspect.Parameter.empty
                else param.annotation
            )
            ftype = field_type_from_annotation(annotation)
            if ftype is not None:
                self.params.append(ParamDecl(name, ftype))
                self.param_kinds[name] = "field"
            else:
                dtype = scalar_dtype_from_annotation(annotation)
                self.params.append(ParamDecl(name, None, dtype))
                self.param_kinds[name] = "scalar"

    # ---- top level -------------------------------------------------------

    def parse(self) -> StencilDef:
        body = list(self.node.body)
        if (
            body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            body = body[1:]  # docstring
        for stmt in body:
            if not isinstance(stmt, ast.With):
                raise StencilSyntaxError(
                    f"line {stmt.lineno}: only 'with computation(...)' blocks "
                    "may appear at stencil top level"
                )
            self._parse_computation_with(stmt)
        return StencilDef(
            name=self.func.__name__,
            params=self.params,
            temporaries=self.temporaries,
            computations=self.computations,
            source_file=self.source_file,
            source_line=self._lineno_base + self.node.lineno,
        )

    def _parse_computation_with(self, node: ast.With) -> None:
        order: Optional[str] = None
        interval: Optional[Interval] = None
        for item in node.items:
            call = item.context_expr
            kind = self._with_item_kind(call)
            if kind == "computation":
                order = self._eval_order(call.args)
            elif kind == "interval":
                interval = _make_interval(self._eval_args(call.args))
            else:
                raise StencilSyntaxError(
                    f"line {node.lineno}: unexpected context manager in "
                    "computation header"
                )
        if order is None:
            raise StencilSyntaxError(
                f"line {node.lineno}: computation(...) missing"
            )
        comp = Computation(order=order, intervals=[])
        if interval is not None:
            block = IntervalBlock(interval=interval, body=[])
            comp.intervals.append(block)
            self._parse_statements(node.body, block.body, mask=None, region=None)
        else:
            # body must consist of `with interval(...)` blocks
            for stmt in node.body:
                if not (
                    isinstance(stmt, ast.With)
                    and len(stmt.items) == 1
                    and self._with_item_kind(stmt.items[0].context_expr)
                    == "interval"
                ):
                    raise StencilSyntaxError(
                        f"line {stmt.lineno}: computation without an inline "
                        "interval must contain only 'with interval(...)' blocks"
                    )
                iv = _make_interval(
                    self._eval_args(stmt.items[0].context_expr.args)
                )
                block = IntervalBlock(interval=iv, body=[])
                comp.intervals.append(block)
                self._parse_statements(
                    stmt.body, block.body, mask=None, region=None
                )
        self.computations.append(comp)

    @staticmethod
    def _with_item_kind(call) -> str:
        if isinstance(call, ast.Call) and isinstance(call.func, ast.Name):
            if call.func.id in ("computation", "interval", "horizontal"):
                return call.func.id
        raise StencilSyntaxError(
            f"line {call.lineno}: unsupported context manager"
        )

    def _eval_order(self, args) -> str:
        if len(args) != 1 or not isinstance(args[0], ast.Name):
            raise StencilSyntaxError("computation() takes one policy argument")
        name = args[0].id
        if name not in _ORDERS:
            raise StencilSyntaxError(f"unknown iteration policy {name!r}")
        return _ORDERS[name]

    def _eval_args(self, args) -> Tuple:
        """Evaluate interval()/region arguments in the external namespace."""
        namespace = dict(self.globals)
        namespace.update(self.externals)
        out = []
        for arg in args:
            with AST_LOCK:
                code = compile(ast.Expression(body=arg), "<stencil>", "eval")
            out.append(eval(code, namespace))  # noqa: S307 - own source
        return tuple(out)

    # ---- statements ------------------------------------------------------

    def _parse_statements(
        self,
        stmts: List[ast.stmt],
        out: List[Assign],
        mask: Optional[Expr],
        region: Optional[RegionSpec],
        rename: Optional[Dict[str, str]] = None,
        subst: Optional[Dict[str, Expr]] = None,
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.Assign):
                self._parse_assign(stmt, out, mask, region, rename, subst)
            elif isinstance(stmt, ast.AugAssign):
                self._parse_augassign(stmt, out, mask, region, rename, subst)
            elif isinstance(stmt, ast.If):
                cond = self._parse_expr(stmt.test, out, mask, region, rename, subst)
                then_mask = cond if mask is None else BinOp("and", mask, cond)
                self._parse_statements(
                    stmt.body, out, then_mask, region, rename, subst
                )
                if stmt.orelse:
                    not_cond = UnaryOp("not", cond)
                    else_mask = (
                        not_cond
                        if mask is None
                        else BinOp("and", mask, not_cond)
                    )
                    self._parse_statements(
                        stmt.orelse, out, else_mask, region, rename, subst
                    )
            elif isinstance(stmt, ast.With):
                if len(stmt.items) != 1 or (
                    self._with_item_kind(stmt.items[0].context_expr)
                    != "horizontal"
                ):
                    raise StencilSyntaxError(
                        f"line {stmt.lineno}: only 'with horizontal(...)' may "
                        "be nested inside a computation"
                    )
                call = stmt.items[0].context_expr
                if len(call.args) != 1:
                    raise StencilSyntaxError(
                        "horizontal() takes one region argument"
                    )
                (spec,) = self._eval_args(call.args)
                if not isinstance(spec, RegionSpec):
                    raise StencilSyntaxError(
                        "horizontal() argument must be region[...]"
                    )
                if region is not None:
                    raise StencilSyntaxError("nested horizontal regions")
                self._parse_statements(
                    stmt.body, out, mask, spec, rename, subst
                )
            elif isinstance(stmt, ast.Pass):
                continue
            elif isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.Constant
            ):
                continue  # stray docstring
            else:
                raise StencilSyntaxError(
                    f"line {stmt.lineno}: unsupported statement "
                    f"{type(stmt).__name__}"
                )

    def _target_names(self, target, rename) -> List[str]:
        if isinstance(target, ast.Name):
            return [self._renamed(target.id, rename)]
        if isinstance(target, ast.Tuple) and all(
            isinstance(e, ast.Name) for e in target.elts
        ):
            return [self._renamed(e.id, rename) for e in target.elts]
        raise StencilSyntaxError(
            f"line {target.lineno}: assignment targets must be names"
        )

    @staticmethod
    def _renamed(name: str, rename: Optional[Dict[str, str]]) -> str:
        if rename is not None and name in rename:
            return rename[name]
        return name

    def _parse_assign(self, stmt, out, mask, region, rename, subst) -> None:
        self._current_lineno = self._abs_lineno(stmt)
        names = self._target_names(stmt.targets[0], rename)
        if len(stmt.targets) != 1:
            raise StencilSyntaxError("chained assignment is unsupported")
        values = self._parse_rhs(stmt.value, len(names), out, mask, region, rename, subst)
        for name, value in zip(names, values):
            self._emit_assign(name, value, out, mask, region, rename)

    def _parse_augassign(self, stmt, out, mask, region, rename, subst) -> None:
        self._current_lineno = self._abs_lineno(stmt)
        if not isinstance(stmt.target, ast.Name):
            raise StencilSyntaxError("augmented target must be a name")
        name = self._renamed(stmt.target.id, rename)
        op = _BINOPS.get(type(stmt.op))
        if op is None:
            raise StencilSyntaxError("unsupported augmented operator")
        current = self._name_expr(name, out, mask, region, rename)
        rhs = self._parse_expr(stmt.value, out, mask, region, rename, subst)
        self._emit_assign(name, BinOp(op, current, rhs), out, mask, region, rename)

    def _parse_rhs(
        self, value, n_targets, out, mask, region, rename, subst
    ) -> List[Expr]:
        """Parse an assignment RHS; handles tuple-returning function calls."""
        if isinstance(value, ast.Call):
            resolved = self._resolve_callable(value.func)
            if isinstance(resolved, GTFunction):
                results = self._inline_function(
                    resolved, value, out, mask, region, rename, subst
                )
                if len(results) != n_targets:
                    raise StencilSyntaxError(
                        f"function {resolved.__name__!r} returns "
                        f"{len(results)} values, {n_targets} targets given"
                    )
                return results
        if isinstance(value, ast.Tuple):
            if len(value.elts) != n_targets:
                raise StencilSyntaxError("tuple assignment arity mismatch")
            return [
                self._parse_expr(e, out, mask, region, rename, subst)
                for e in value.elts
            ]
        if n_targets != 1:
            raise StencilSyntaxError("cannot unpack a scalar expression")
        return [self._parse_expr(value, out, mask, region, rename, subst)]

    def _emit_assign(self, name, value, out, mask, region, rename) -> None:
        kind = self._classify_target(name, value, mask, region)
        if kind == "scalar_local":
            # pure scalar computation: tracked symbolically and folded into
            # later expressions (no storage allocated).
            self.scalar_locals[name] = value
            return
        out.append(
            Assign(
                target=FieldAccess(name),
                value=value,
                mask=mask,
                region=region,
                lineno=self._current_lineno,
            )
        )

    def _classify_target(self, name, value, mask, region) -> str:
        if self.param_kinds.get(name) == "field":
            return "field"
        if self.param_kinds.get(name) == "scalar":
            raise StencilSyntaxError(
                f"cannot assign to scalar parameter {name!r}"
            )
        if name in self.temporaries:
            return "field"
        if name in self.scalar_locals:
            if _is_scalar_expr(value) and mask is None and region is None:
                return "scalar_local"
            raise StencilSyntaxError(
                f"local {name!r} was scalar but is reassigned a field value; "
                "introduce a separate temporary"
            )
        # first assignment decides the kind
        if _is_scalar_expr(value) and mask is None and region is None:
            return "scalar_local"
        self.temporaries[name] = FieldType(axes="IJK", dtype=np.float64)
        return "field"

    # ---- expressions -------------------------------------------------------

    def _name_expr(self, name, out, mask, region, rename) -> Expr:
        if name in _AXIS_INDEX_NAMES:
            return AxisIndexExpr(_AXIS_INDEX_NAMES[name])
        kind = self.param_kinds.get(name)
        if kind == "field":
            return FieldAccess(name)
        if kind == "scalar":
            return ScalarRef(name)
        if name in self.temporaries:
            return FieldAccess(name)
        if name in self.scalar_locals:
            return self.scalar_locals[name]
        value = self._lookup_external(name)
        if value is not None:
            return Literal(value)
        raise StencilSyntaxError(f"unknown symbol {name!r} in stencil body")

    def _lookup_external(self, name: str):
        for space in (self.externals, self.globals):
            if name in space:
                value = space[name]
                if isinstance(value, (bool, int, float, np.generic)):
                    return float(value) if isinstance(value, float) else value
        return None

    def _resolve_callable(self, func_node):
        if isinstance(func_node, ast.Name):
            name = func_node.id
            for space in (self.externals, self.globals):
                if name in space and isinstance(space[name], GTFunction):
                    return space[name]
        return None

    def _parse_expr(
        self, node, out, mask, region, rename=None, subst=None
    ) -> Expr:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, (bool, int, float)):
                return Literal(node.value)
            raise StencilSyntaxError(f"unsupported literal {node.value!r}")
        if isinstance(node, ast.Name):
            name = self._renamed(node.id, rename)
            if subst is not None and name in subst:
                return subst[name]
            return self._name_expr(name, out, mask, region, rename)
        if isinstance(node, ast.Subscript):
            return self._parse_subscript(node, out, mask, region, rename, subst)
        if isinstance(node, ast.BinOp):
            op = _BINOPS.get(type(node.op))
            if op is None:
                raise StencilSyntaxError(
                    f"unsupported binary operator {type(node.op).__name__}"
                )
            return BinOp(
                op,
                self._parse_expr(node.left, out, mask, region, rename, subst),
                self._parse_expr(node.right, out, mask, region, rename, subst),
            )
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.USub):
                operand = self._parse_expr(
                    node.operand, out, mask, region, rename, subst
                )
                if isinstance(operand, Literal):
                    return Literal(-operand.value)
                return UnaryOp("-", operand)
            if isinstance(node.op, ast.UAdd):
                return self._parse_expr(
                    node.operand, out, mask, region, rename, subst
                )
            if isinstance(node.op, ast.Not):
                return UnaryOp(
                    "not",
                    self._parse_expr(
                        node.operand, out, mask, region, rename, subst
                    ),
                )
            raise StencilSyntaxError("unsupported unary operator")
        if isinstance(node, ast.Compare):
            left = self._parse_expr(node.left, out, mask, region, rename, subst)
            result = None
            for op_node, comparator in zip(node.ops, node.comparators):
                op = _CMPOPS.get(type(op_node))
                if op is None:
                    raise StencilSyntaxError("unsupported comparison operator")
                right = self._parse_expr(
                    comparator, out, mask, region, rename, subst
                )
                cmp = BinOp(op, left, right)
                result = cmp if result is None else BinOp("and", result, cmp)
                left = right
            return result
        if isinstance(node, ast.BoolOp):
            op = "and" if isinstance(node.op, ast.And) else "or"
            exprs = [
                self._parse_expr(v, out, mask, region, rename, subst)
                for v in node.values
            ]
            result = exprs[0]
            for e in exprs[1:]:
                result = BinOp(op, result, e)
            return result
        if isinstance(node, ast.IfExp):
            return Ternary(
                self._parse_expr(node.test, out, mask, region, rename, subst),
                self._parse_expr(node.body, out, mask, region, rename, subst),
                self._parse_expr(node.orelse, out, mask, region, rename, subst),
            )
        if isinstance(node, ast.Call):
            return self._parse_call(node, out, mask, region, rename, subst)
        raise StencilSyntaxError(
            f"line {node.lineno}: unsupported expression "
            f"{type(node).__name__}"
        )

    def _parse_subscript(self, node, out, mask, region, rename, subst) -> Expr:
        if not isinstance(node.value, ast.Name):
            raise StencilSyntaxError("only fields may be subscripted")
        name = self._renamed(node.value.id, rename)
        if subst is not None and name in subst:
            base = subst[name]
        else:
            base = self._name_expr(name, out, mask, region, rename)
        offset = self._parse_offset(node.slice, name)
        if isinstance(base, FieldAccess):
            return base.shifted(offset)
        from repro.dsl.ir import shift_expr

        return shift_expr(base, offset)

    def _parse_offset(self, slice_node, name: str) -> Tuple[int, int, int]:
        elems = (
            list(slice_node.elts)
            if isinstance(slice_node, ast.Tuple)
            else [slice_node]
        )
        if len(elems) == 1:
            elems = elems + [ast.Constant(0), ast.Constant(0)]
        if len(elems) != 3:
            raise StencilSyntaxError(
                f"field {name!r} subscript must have 1 or 3 offsets"
            )
        offsets = []
        for e in elems:
            value = self._const_int(e)
            if value is None:
                raise StencilSyntaxError(
                    f"field {name!r}: offsets must be integer constants "
                    "(variable offsets are unsupported, Sec. IV-D)"
                )
            offsets.append(value)
        return tuple(offsets)

    def _const_int(self, node) -> Optional[int]:
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            return node.value
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            inner = self._const_int(node.operand)
            return None if inner is None else -inner
        if isinstance(node, ast.Name):
            value = self._lookup_external(node.id)
            if isinstance(value, (int, np.integer)) and not isinstance(
                value, bool
            ):
                return int(value)
        return None

    def _parse_call(self, node, out, mask, region, rename, subst) -> Expr:
        resolved = self._resolve_callable(node.func)
        if isinstance(resolved, GTFunction):
            results = self._inline_function(
                resolved, node, out, mask, region, rename, subst
            )
            if len(results) != 1:
                raise StencilSyntaxError(
                    f"function {resolved.__name__!r} returns a tuple and must "
                    "be the sole RHS of a tuple assignment"
                )
            return results[0]
        if not isinstance(node.func, ast.Name):
            raise StencilSyntaxError("only simple calls are supported")
        fname = node.func.id
        if fname not in MATH_BUILTINS:
            raise StencilSyntaxError(f"unknown function {fname!r}")
        args = tuple(
            self._parse_expr(a, out, mask, region, rename, subst)
            for a in node.args
        )
        if fname in ("min", "max") and len(args) > 2:
            result = args[0]
            for a in args[1:]:
                result = Call(fname, (result, a))
            return result
        return Call(fname, args)

    # ---- function inlining -------------------------------------------------

    def _inline_function(
        self, gtfunc: GTFunction, call: ast.Call, out, mask, region, rename, subst
    ) -> List[Expr]:
        info = _FunctionInfo.of(gtfunc)
        if call.keywords:
            kw = {k.arg: v for k in call.keywords for v in (k.value,)}
        else:
            kw = {}
        arg_nodes = list(call.args)
        if len(arg_nodes) + len(kw) != len(info.param_names):
            raise StencilSyntaxError(
                f"function {info.name!r} expects {len(info.param_names)} "
                f"arguments, got {len(arg_nodes) + len(kw)}"
            )
        arg_exprs: Dict[str, Expr] = {}
        for pname, anode in zip(info.param_names, arg_nodes):
            arg_exprs[pname] = self._parse_expr(
                anode, out, mask, region, rename, subst
            )
        for pname in info.param_names[len(arg_nodes) :]:
            if pname not in kw:
                raise StencilSyntaxError(
                    f"function {info.name!r}: missing argument {pname!r}"
                )
            arg_exprs[pname] = self._parse_expr(
                kw[pname], out, mask, region, rename, subst
            )

        self._inline_counter += 1
        prefix = f"_{info.name}_{self._inline_counter}_"
        local_rename: Dict[str, str] = {}
        # rename every name assigned in the function body (including
        # reassigned parameters) to a fresh caller-side temporary
        for sub in ast.walk(info.node):
            targets = []
            if isinstance(sub, ast.Assign):
                targets = (
                    sub.targets[0].elts
                    if isinstance(sub.targets[0], ast.Tuple)
                    else sub.targets
                )
            elif isinstance(sub, ast.AugAssign):
                targets = [sub.target]
            for t in targets:
                if isinstance(t, ast.Name):
                    local_rename.setdefault(t.id, prefix + t.id)
        # parameters that the body reassigns are seeded with their argument
        # value; unassigned parameters are substituted directly.
        for pname in list(arg_exprs):
            if pname in local_rename:
                self._emit_assign(
                    local_rename[pname],
                    arg_exprs.pop(pname),
                    out,
                    mask,
                    region,
                    rename,
                )

        # temporarily widen the global namespace to the callee's module;
        # statements emitted by the inlined body are attributed to the
        # call-site line (the callee lives in another lineno space)
        saved_globals = self.globals
        merged = dict(info.globals)
        merged.update(self.globals)
        self.globals = merged
        saved_override = self._lineno_override
        self._lineno_override = self._abs_lineno(call) or self._current_lineno
        try:
            body = list(info.node.body)
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
            ):
                body = body[1:]
            ret_node = body[-1]
            if not isinstance(ret_node, ast.Return) or ret_node.value is None:
                raise StencilSyntaxError(
                    f"function {info.name!r} must end with 'return <expr>'"
                )
            self._parse_statements(
                body[:-1], out, mask, region, local_rename, arg_exprs
            )
            rv = ret_node.value
            ret_exprs = (
                [
                    self._parse_expr(
                        e, out, mask, region, local_rename, arg_exprs
                    )
                    for e in rv.elts
                ]
                if isinstance(rv, ast.Tuple)
                else [
                    self._parse_expr(
                        rv, out, mask, region, local_rename, arg_exprs
                    )
                ]
            )
        finally:
            self.globals = saved_globals
            self._lineno_override = saved_override
        return ret_exprs


def _is_scalar_expr(expr: Expr) -> bool:
    """True if an expression reads no fields and no axis indices."""
    from repro.dsl.ir import walk_expr

    for node in walk_expr(expr):
        if isinstance(node, (FieldAccess, AxisIndexExpr)):
            return False
    return True


def parse_stencil(func, externals: Optional[Dict] = None) -> StencilDef:
    """Parse a decorated Python function into a :class:`StencilDef`."""
    return StencilParser(func, externals).parse()
