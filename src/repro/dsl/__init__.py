"""GT4Py-like declarative stencil DSL embedded in Python.

The DSL separates *what* a stencil computes (relative-offset field accesses,
vertical iteration policies, horizontal regions) from *how* it is executed
(backends). Two backends are provided:

- ``"numpy"``: a pure-NumPy debug backend for rapid prototyping, mirroring
  the paper's pure-Python backend (Sec. III-A).
- ``"dataflow"``: lowering to the data-centric SDFG IR (:mod:`repro.sdfg`)
  followed by optimization and code generation (Sec. V).

Backends are looked up through the :mod:`repro.dsl.backends` registry —
``register_backend(name, factory)`` plugs in new ones without touching the
DSL, ``available_backends()`` lists them, and ``default_backend(name)``
switches the process default (also usable as a context manager).
"""

from repro.dsl.backends import (
    UnknownBackendError,
    available_backends,
    default_backend,
    get_backend,
    register_backend,
)
from repro.dsl.builtins import (
    BACKWARD,
    FORWARD,
    PARALLEL,
    computation,
    function,
    horizontal,
    i_end,
    i_start,
    interval,
    j_end,
    j_start,
    region,
)
from repro.dsl.stencil import StencilObject, set_default_backend, stencil
from repro.dsl.storage import StorageSpec, make_storage, zeros
from repro.dsl.types import Field, FieldIJ, FieldK

__all__ = [
    "BACKWARD",
    "FORWARD",
    "PARALLEL",
    "Field",
    "FieldIJ",
    "FieldK",
    "StencilObject",
    "StorageSpec",
    "UnknownBackendError",
    "available_backends",
    "computation",
    "default_backend",
    "function",
    "get_backend",
    "horizontal",
    "i_end",
    "i_start",
    "interval",
    "j_end",
    "j_start",
    "make_storage",
    "region",
    "register_backend",
    "set_default_backend",
    "stencil",
    "zeros",
]
