"""Backend registry and default-backend management for the stencil DSL.

Backends are looked up by name through a process-wide registry instead of
a hardcoded tuple in ``stencil.py``: a backend is a *factory* taking the
:class:`~repro.dsl.stencil.StencilObject` and returning an executor
callable ``executor(fields, scalars, origin, domain, bounds)``. The
built-in ``"numpy"`` and ``"dataflow"`` backends self-register when their
modules import; third-party backends call :func:`register_backend` and
need no edits here or in ``stencil.py``.

The process-wide default backend is managed by :func:`default_backend`,
usable both as a plain setter and as a context manager restoring the
previous default on exit::

    repro.dsl.default_backend("dataflow")          # set for the process
    with repro.dsl.default_backend("numpy"):       # set, then restore
        ...
"""

from __future__ import annotations

import difflib
import importlib
from typing import Callable, Dict, Tuple

__all__ = [
    "UnknownBackendError",
    "available_backends",
    "create_executor",
    "current_default_backend",
    "default_backend",
    "get_backend",
    "register_backend",
    "unregister_backend",
]

#: name -> factory(StencilObject) -> executor
_REGISTRY: Dict[str, Callable] = {}

#: built-in backends importable on demand; their modules self-register
_LAZY_BUILTINS = {
    "numpy": "repro.dsl.backend_numpy",
    "dataflow": "repro.dsl.backend_dataflow",
    "compiled": "repro.dsl.backend_compiled",
}


class UnknownBackendError(ValueError):
    """Raised when a backend name is not in the registry.

    Carries the registry contents and, when a near-miss exists, a
    nearest-match suggestion.
    """

    def __init__(self, name: str, available: Tuple[str, ...]):
        self.backend = name
        self.available = tuple(sorted(available))
        matches = difflib.get_close_matches(name, self.available, n=1)
        self.suggestion = matches[0] if matches else None
        message = (
            f"unknown backend {name!r}; registered backends: "
            f"{', '.join(self.available) or '(none)'}"
        )
        if self.suggestion:
            message += f" — did you mean {self.suggestion!r}?"
        super().__init__(message)


def register_backend(name: str, factory: Callable, *,
                     replace: bool = False) -> None:
    """Register ``factory`` under ``name``.

    ``factory(stencil_object)`` must return an executor. Registering an
    already-taken name raises unless ``replace=True`` (the built-in
    modules pass it so re-imports stay idempotent).
    """
    if not isinstance(name, str) or not name:
        raise TypeError("backend name must be a non-empty string")
    if not callable(factory):
        raise TypeError(f"backend factory for {name!r} must be callable")
    if name in _REGISTRY and not replace:
        raise ValueError(
            f"backend {name!r} is already registered; "
            f"pass replace=True to override"
        )
    _REGISTRY[name] = factory


def unregister_backend(name: str) -> None:
    """Remove a registered backend (primarily for tests)."""
    _REGISTRY.pop(name, None)


def get_backend(name: str) -> Callable:
    """The factory registered under ``name``.

    Built-in backends are imported on first request so the dataflow
    toolchain stays off the import path until used. Unknown names raise
    :class:`UnknownBackendError` naming the registry contents and the
    nearest match.
    """
    factory = _REGISTRY.get(name)
    if factory is None and name in _LAZY_BUILTINS:
        importlib.import_module(_LAZY_BUILTINS[name])
        factory = _REGISTRY.get(name)
    if factory is None:
        raise UnknownBackendError(name, available_backends())
    return factory


def available_backends() -> Tuple[str, ...]:
    """Sorted names of all registered (and built-in) backends."""
    return tuple(sorted(set(_REGISTRY) | set(_LAZY_BUILTINS)))


def create_executor(name: str, stencil_object):
    """Instantiate the executor for ``stencil_object`` on backend ``name``."""
    return get_backend(name)(stencil_object)


# ---------------------------------------------------------------------------
# default backend
# ---------------------------------------------------------------------------


def _initial_default() -> str:
    """Process default, overridable via ``REPRO_BACKEND=<name>``.

    Validation is deferred to first use: an unknown name surfaces as
    :class:`UnknownBackendError` from lookup, with suggestions, instead of
    failing at import time.
    """
    import os

    return os.environ.get("REPRO_BACKEND", "").strip() or "numpy"


_default_backend = _initial_default()


def current_default_backend() -> str:
    """Name of the backend used when a stencil doesn't pin one."""
    return _default_backend


class _DefaultBackendGuard:
    """Returned by :func:`default_backend`: the switch has already
    happened; entering the guard as a context manager arranges for the
    previous default to be restored on exit."""

    __slots__ = ("backend", "_previous")

    def __init__(self, backend: str, previous: str):
        self.backend = backend
        self._previous = previous

    def __enter__(self) -> str:
        return self.backend

    def __exit__(self, *exc) -> bool:
        global _default_backend
        _default_backend = self._previous
        return False

    def __repr__(self) -> str:
        return (
            f"default_backend({self.backend!r}) "
            f"[was {self._previous!r}]"
        )


def default_backend(name: str = None):
    """Get or set the process-wide default backend.

    - ``default_backend()`` returns the current default's name.
    - ``default_backend("dataflow")`` switches the default immediately and
      returns a guard usable as a context manager that restores the
      previous default on exit; ignoring the guard makes the switch
      permanent.
    """
    global _default_backend
    if name is None:
        return _default_backend
    if name not in available_backends():
        raise UnknownBackendError(name, available_backends())
    previous = _default_backend
    _default_backend = name
    return _DefaultBackendGuard(name, previous)
