"""Compiled backend: lower one stencil to an SDFG, JIT the kernel plan.

Same lowering pipeline as the ``dataflow`` backend — a stencil call
inserts a StencilComputation library node, expands it, and compiles the
result through the shared program cache — but the compile step requests
the ``compiled`` emission target (:mod:`repro.sdfg.codegen_compiled`),
which turns each fused kernel plan into a JITted scalar loop nest
(k-blocked, i/j-tiled, optionally threaded) instead of a sequence of
full-domain ufunc calls. The bit-exactness contract against the NumPy
emission holds: same evaluation order, ``fastmath`` off.

Graceful degradation: when no JIT engine is usable (numba absent *and* no
C compiler — see :mod:`repro.runtime.jit`) the executor warns once and
compiles through the NumPy emission instead, i.e. it behaves exactly like
the ``dataflow`` backend. This composes with ``REPRO_FALLBACK``: the
registry-level degradation here is about a missing toolchain and is
always on, while ``REPRO_FALLBACK=0`` only disables the *runtime*
re-execution of failing compiled stencils on the NumPy debug backend
(:mod:`repro.resilience`).
"""

from __future__ import annotations

import warnings

from repro.dsl.backend_dataflow import DataflowStencilExecutor
from repro.runtime.jit import JitUnavailableError

__all__ = ["CompiledStencilExecutor"]

_WARNED = [False]


def _warn_once(reason: str) -> None:
    if not _WARNED[0]:
        _WARNED[0] = True
        warnings.warn(
            f"compiled backend unavailable ({reason}); falling back to the "
            f"dataflow (NumPy emission) backend for this process",
            RuntimeWarning,
            stacklevel=4,
        )


class CompiledStencilExecutor(DataflowStencilExecutor):
    """Executes a stencil through the SDFG pipeline with JITted kernels."""

    compile_backend = "compiled"

    def _compile(self, sdfg):
        from repro.runtime import jit
        from repro.runtime.compile_cache import get_or_compile

        if jit.available():
            try:
                return get_or_compile(sdfg, backend="compiled")
            except JitUnavailableError as exc:
                # engine resolved but its toolchain broke at use
                # (e.g. REPRO_JIT=numba without numba installed)
                _warn_once(str(exc))
        else:
            _warn_once("no JIT engine: numba not installed and no C compiler")
        return get_or_compile(sdfg, backend="numpy")


# self-registration: "compiled" resolves through the repro.dsl.backends
# registry; the module itself is imported lazily on first lookup
from repro.dsl.backends import register_backend as _register_backend

_register_backend("compiled", CompiledStencilExecutor, replace=True)
