"""Pure-NumPy stencil backend.

This is the paper's "pure-Python backend ... ideal for rapid prototyping,
debugging and interactive visualization" (Sec. I). Each statement is a
vectorized full-domain sweep; FORWARD/BACKWARD computations iterate levels
sequentially so vertical solvers can consume previously computed levels.
It defines the reference semantics that the optimizing dataflow backend
must match bit-for-bit.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

import numpy as np

from repro.dsl.builtins import BACKWARD, FORWARD, RegionSpec
from repro.dsl.extents import Extent, StencilExtents, compute_extents
from repro.dsl.ir import (
    Assign,
    AxisIndexExpr,
    BinOp,
    Call,
    Expr,
    FieldAccess,
    Literal,
    ScalarRef,
    StencilDef,
    Ternary,
    UnaryOp,
)

_CALL_FUNCS = {
    "sqrt": np.sqrt,
    "abs": np.abs,
    "exp": np.exp,
    "log": np.log,
    "sin": np.sin,
    "cos": np.cos,
    "tan": np.tan,
    "asin": np.arcsin,
    "acos": np.arccos,
    "atan": np.arctan,
    "floor": np.floor,
    "ceil": np.ceil,
    "trunc": np.trunc,
    "min": np.minimum,
    "max": np.maximum,
    "sign": np.sign,
}


@dataclasses.dataclass
class GridBounds:
    """Local-to-global placement of the compute domain within its tile.

    Horizontal regions (Sec. IV-B) are anchored at *tile* edges; in
    distributed runs each rank passes its subdomain's global origin and the
    tile shape so anchors resolve correctly (Sec. IV-B: "the DSL needs to
    resolve which other ranks to synchronize with based on the ranges").
    """

    origin: Tuple[int, int] = (0, 0)
    tile_shape: Optional[Tuple[int, int]] = None

    def resolve(self, domain: Tuple[int, int, int]) -> "GridBounds":
        if self.tile_shape is None:
            return GridBounds(self.origin, (domain[0], domain[1]))
        return self


def _anchor_global(anchor, tile_shape: Tuple[int, int]) -> int:
    """Global tile index denoted by an AxisAnchor (i_end = last point)."""
    size = tile_shape[0] if anchor.axis == "i" else tile_shape[1]
    base = 0 if anchor.side == "start" else size - 1
    return base + anchor.offset


def region_ranges(
    region: RegionSpec,
    domain: Tuple[int, int, int],
    bounds: GridBounds,
    ext: Extent,
) -> Optional[Tuple[Tuple[int, int], Tuple[int, int]]]:
    """Intersect a region with a statement's extended local range.

    Returns per-axis half-open local compute-index ranges, or ``None``
    when the intersection is empty on this rank.
    """
    bounds = bounds.resolve(domain)
    gi, gj = bounds.origin
    tile = bounds.tile_shape
    out = []
    for axis, (g0, n, lo, hi) in enumerate(
        (
            (gi, domain[0], ext.i_lo, ext.i_hi),
            (gj, domain[1], ext.j_lo, ext.j_hi),
        )
    ):
        spec = region.i if axis == 0 else region.j
        glo, ghi = g0 + lo, g0 + n + hi  # statement range in global indices
        if not spec.is_full:
            if spec.single:
                point = _anchor_global(spec.start, tile)
                glo, ghi = max(glo, point), min(ghi, point + 1)
            else:
                if spec.start is not None:
                    glo = max(glo, _anchor_global(spec.start, tile))
                if spec.stop is not None:
                    ghi = min(ghi, _anchor_global(spec.stop, tile))
        if glo >= ghi:
            return None
        out.append((glo - g0, ghi - g0))
    return tuple(out)


class _EvalContext:
    """Holds field arrays, scalars and slicing state during execution."""

    def __init__(
        self,
        stencil: StencilDef,
        extents: StencilExtents,
        fields: Dict[str, np.ndarray],
        scalars: Dict[str, float],
        origin: Tuple[int, int, int],
        domain: Tuple[int, int, int],
        bounds: GridBounds,
    ):
        self.stencil = stencil
        self.extents = extents
        self.fields = fields
        self.scalars = scalars
        self.origin = origin
        self.domain = domain
        self.bounds = bounds
        self.origins: Dict[str, Tuple[int, int, int]] = {}
        for name in fields:
            self.origins[name] = origin
        self._allocate_temporaries()

    def _allocate_temporaries(self) -> None:
        ni, nj, nk = self.domain
        for name, ftype in self.stencil.temporaries.items():
            ext = self.extents.field_extents.get(name, Extent.zero())
            shape = (
                ni - ext.i_lo + ext.i_hi,
                nj - ext.j_lo + ext.j_hi,
                nk - ext.k_lo + ext.k_hi,
            )
            self.fields[name] = np.zeros(shape, dtype=ftype.dtype)
            self.origins[name] = (-ext.i_lo, -ext.j_lo, -ext.k_lo)

    def field_axes(self, name: str) -> str:
        return self.stencil.field_type(name).axes

    def slice3d(
        self,
        name: str,
        offset: Tuple[int, int, int],
        irange: Tuple[int, int],
        jrange: Tuple[int, int],
        krange: Tuple[int, int],
    ) -> np.ndarray:
        """Read slice of a field over compute-index ranges (broadcast to 3D)."""
        arr = self.fields[name]
        oi, oj, ok = self.origins[name]
        axes = self.field_axes(name)
        di, dj, dk = offset
        slices = []
        if "I" in axes:
            slices.append(slice(oi + irange[0] + di, oi + irange[1] + di))
        if "J" in axes:
            slices.append(slice(oj + jrange[0] + dj, oj + jrange[1] + dj))
        if "K" in axes:
            slices.append(slice(ok + krange[0] + dk, ok + krange[1] + dk))
        view = arr[tuple(slices)]
        # broadcast missing axes
        if axes == "IJ":
            view = view[:, :, None]
        elif axes == "K":
            view = view[None, None, :]
        return view


def eval_expr(
    expr: Expr,
    ctx: _EvalContext,
    irange: Tuple[int, int],
    jrange: Tuple[int, int],
    krange: Tuple[int, int],
):
    """Evaluate an IR expression over the given compute-index ranges."""
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, ScalarRef):
        return ctx.scalars[expr.name]
    if isinstance(expr, FieldAccess):
        return ctx.slice3d(expr.name, expr.offset, irange, jrange, krange)
    if isinstance(expr, AxisIndexExpr):
        if expr.axis == "I":
            return np.arange(irange[0], irange[1])[:, None, None]
        if expr.axis == "J":
            return np.arange(jrange[0], jrange[1])[None, :, None]
        return np.arange(krange[0], krange[1])[None, None, :]
    if isinstance(expr, BinOp):
        left = eval_expr(expr.left, ctx, irange, jrange, krange)
        right = eval_expr(expr.right, ctx, irange, jrange, krange)
        return _apply_binop(expr.op, left, right)
    if isinstance(expr, UnaryOp):
        operand = eval_expr(expr.operand, ctx, irange, jrange, krange)
        return np.logical_not(operand) if expr.op == "not" else -operand
    if isinstance(expr, Call):
        args = [eval_expr(a, ctx, irange, jrange, krange) for a in expr.args]
        return _CALL_FUNCS[expr.func](*args)
    if isinstance(expr, Ternary):
        cond = eval_expr(expr.cond, ctx, irange, jrange, krange)
        then = eval_expr(expr.then, ctx, irange, jrange, krange)
        orelse = eval_expr(expr.orelse, ctx, irange, jrange, krange)
        return np.where(cond, then, orelse)
    raise TypeError(f"cannot evaluate {type(expr).__name__}")


def _apply_binop(op: str, left, right):
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        return left / right
    if op == "**":
        return left**right
    if op == "%":
        return left % right
    if op == "//":
        return left // right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    if op == "==":
        return left == right
    if op == "!=":
        return left != right
    if op == "and":
        return np.logical_and(left, right)
    if op == "or":
        return np.logical_or(left, right)
    raise ValueError(f"unknown operator {op!r}")


class NumpyStencilExecutor:
    """Executes a :class:`StencilDef` with NumPy semantics."""

    def __init__(self, stencil: StencilDef):
        from repro.obs import tracer as _obs

        self._tracer = _obs.get_tracer()
        self.stencil = stencil
        self.extents = compute_extents(stencil)
        self._stmt_extent: Dict[int, Extent] = {
            id(s): e
            for s, e in zip(stencil.statements(), self.extents.stmt_extents)
        }

    def __call__(
        self,
        fields: Dict[str, np.ndarray],
        scalars: Dict[str, float],
        origin: Tuple[int, int, int],
        domain: Tuple[int, int, int],
        bounds: Optional[GridBounds] = None,
    ) -> None:
        if self._tracer.enabled:
            with self._tracer.span("exec.numpy"):
                self._run(fields, scalars, origin, domain, bounds)
        else:
            self._run(fields, scalars, origin, domain, bounds)

    def _run(self, fields, scalars, origin, domain, bounds) -> None:
        ctx = _EvalContext(
            self.stencil,
            self.extents,
            dict(fields),
            scalars,
            origin,
            domain,
            bounds or GridBounds(),
        )
        nk = domain[2]
        for comp in self.stencil.computations:
            for block in comp.intervals:
                k0, k1 = block.interval.resolve(nk)
                k0, k1 = max(k0, 0), min(k1, nk)
                if k0 >= k1:
                    continue
                if comp.order == FORWARD:
                    for k in range(k0, k1):
                        self._run_statements(ctx, block.body, (k, k + 1))
                elif comp.order == BACKWARD:
                    for k in range(k1 - 1, k0 - 1, -1):
                        self._run_statements(ctx, block.body, (k, k + 1))
                else:
                    self._run_statements(ctx, block.body, (k0, k1))

    def _run_statements(
        self, ctx: _EvalContext, body, krange: Tuple[int, int]
    ) -> None:
        ni, nj, _ = ctx.domain
        for stmt in body:
            ext = self._stmt_extent[id(stmt)]
            irange = (ext.i_lo, ni + ext.i_hi)
            jrange = (ext.j_lo, nj + ext.j_hi)
            if stmt.region is not None:
                ranges = region_ranges(stmt.region, ctx.domain, ctx.bounds, ext)
                if ranges is None:
                    continue
                irange, jrange = ranges
            self._execute(ctx, stmt, irange, jrange, krange)

    def _execute(
        self,
        ctx: _EvalContext,
        stmt: Assign,
        irange: Tuple[int, int],
        jrange: Tuple[int, int],
        krange: Tuple[int, int],
    ) -> None:
        value = eval_expr(stmt.value, ctx, irange, jrange, krange)
        name = stmt.target.name
        axes = ctx.field_axes(name)
        target = ctx.slice3d(name, (0, 0, 0), irange, jrange, krange)
        if axes == "IJ" and krange[1] - krange[0] != 1:
            raise ValueError(
                f"cannot write 2D field {name!r} over a multi-level interval"
            )
        if stmt.mask is not None:
            mask = eval_expr(stmt.mask, ctx, irange, jrange, krange)
            value = np.where(mask, value, target)
        shape = (
            irange[1] - irange[0],
            jrange[1] - jrange[0],
            krange[1] - krange[0],
        )
        target[...] = np.broadcast_to(value, shape)


# self-registration: "numpy" resolves through the repro.dsl.backends
# registry, like any third-party backend would
from repro.dsl.backends import register_backend as _register_backend

_register_backend(
    "numpy",
    lambda stencil_object: NumpyStencilExecutor(stencil_object.definition),
    replace=True,
)
