"""Field storage allocation: layout, padding and alignment (paper Fig. 8).

The paper parameterizes allocation by data layout (FORTRAN / I-contiguous
by default, "since it generates wide loads on the largest dimension"),
padding of strides, and *pre-padding* so the first non-halo element is
aligned — yielding coalesced access on GPUs (~5% gain on the tested
stencil). This module reproduces those knobs on top of NumPy buffers.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional, Tuple

import numpy as np

from repro.dsl.types import DEFAULT_DTYPE


@dataclasses.dataclass(frozen=True)
class StorageSpec:
    """Allocation policy for model fields.

    Attributes:
        layout: ``"F"`` for I-contiguous (FORTRAN, the paper's choice) or
            ``"C"`` for K-contiguous.
        alignment_bytes: alignment (in bytes) of the first *compute-domain*
            element; 1 disables pre-padding.
        stride_padding: extra elements added to the leading dimension so
            that rows do not conflict-map in caches (0 disables).
    """

    layout: str = "F"
    alignment_bytes: int = 64
    stride_padding: int = 0

    def __post_init__(self):
        if self.layout not in ("F", "C"):
            raise ValueError(f"layout must be 'F' or 'C', got {self.layout!r}")
        if self.alignment_bytes < 1:
            raise ValueError("alignment_bytes must be >= 1")


def make_storage(
    shape: Tuple[int, ...],
    dtype=DEFAULT_DTYPE,
    spec: Optional[StorageSpec] = None,
    aligned_index: Optional[Tuple[int, ...]] = None,
    fill: Optional[float] = 0.0,
) -> np.ndarray:
    """Allocate a field with the requested layout and alignment.

    Args:
        shape: field shape (any rank; FV3 uses (I, J, K) 3D fields).
        dtype: element dtype.
        spec: allocation policy; defaults to the paper's scheme.
        aligned_index: index of the first compute-domain element (i.e. the
            element just past the halo) that must be aligned. Defaults to
            the origin.
        fill: initial fill value; ``None`` leaves memory uninitialized.

    Returns:
        A NumPy array view with the requested strides whose
        ``aligned_index`` element sits on an ``alignment_bytes`` boundary.
    """
    spec = spec or StorageSpec()
    aligned_index = aligned_index or (0,) * len(shape)
    if len(aligned_index) != len(shape):
        raise ValueError("aligned_index rank must match shape rank")

    itemsize = np.dtype(dtype).itemsize
    align_elems = max(1, math.gcd(spec.alignment_bytes, 2**30) // itemsize)
    if spec.alignment_bytes % itemsize:
        align_elems = spec.alignment_bytes  # byte-level; handled below

    # padded shape along the contiguous dimension
    padded = list(shape)
    contiguous_dim = 0 if spec.layout == "F" else len(shape) - 1
    if spec.stride_padding:
        padded[contiguous_dim] += spec.stride_padding

    # element strides for the requested layout
    strides_elems = [0] * len(shape)
    if spec.layout == "F":
        acc = 1
        for d in range(len(shape)):
            strides_elems[d] = acc
            acc *= padded[d]
    else:
        acc = 1
        for d in range(len(shape) - 1, -1, -1):
            strides_elems[d] = acc
            acc *= padded[d]
    total_elems = acc

    # offset (in elements) of the element that must be aligned
    anchor = sum(i * s for i, s in zip(aligned_index, strides_elems))

    slack = spec.alignment_bytes // itemsize + 1
    buffer = np.empty(total_elems + slack, dtype=dtype)
    base_addr = buffer.__array_interface__["data"][0]
    # pre-padding: shift the view start so the anchor element is aligned
    anchor_addr = base_addr + anchor * itemsize
    misalign = anchor_addr % spec.alignment_bytes
    shift_bytes = (spec.alignment_bytes - misalign) % spec.alignment_bytes
    if shift_bytes % itemsize:
        shift_bytes = 0  # cannot shift by sub-element amounts
    shift_elems = shift_bytes // itemsize

    view = np.ndarray(
        shape,
        dtype=dtype,
        buffer=buffer,
        offset=shift_elems * itemsize,
        strides=tuple(s * itemsize for s in strides_elems),
    )
    if fill is not None:
        view[...] = fill
    return view


def zeros(
    shape: Tuple[int, ...], dtype=DEFAULT_DTYPE, spec: Optional[StorageSpec] = None
) -> np.ndarray:
    """Allocate a zero-filled field with the default allocation policy."""
    return make_storage(shape, dtype=dtype, spec=spec, fill=0.0)


def is_aligned(array: np.ndarray, index: Tuple[int, ...], alignment_bytes: int) -> bool:
    """Check whether ``array[index]`` sits on an ``alignment_bytes`` boundary."""
    addr = array.__array_interface__["data"][0]
    addr += sum(i * s for i, s in zip(index, array.strides))
    return addr % alignment_bytes == 0
