"""The ``@stencil`` decorator and the callable StencilObject.

A decorated function is parsed once into the stencil IR; backends are
compiled lazily on first use. The object also exposes the hooks used by the
orchestration layer (Sec. V-B): ``__sdfg_node__`` inserts the stencil into a
whole-program SDFG as a library node when a data-centric program calls it.
"""

from __future__ import annotations

import functools
import warnings
from typing import Dict, Optional, Tuple

import numpy as np

from repro import resilience as _resilience
from repro.dsl import backends
from repro.dsl.backend_numpy import GridBounds
from repro.dsl.extents import compute_extents
from repro.dsl.frontend import parse_stencil
from repro.dsl.ir import StencilDef
from repro.obs import tracer as _obs
from repro.resilience import chaos as _chaos

_TRACER = _obs.get_tracer()

#: the bit-exact debug backend failed compiled backends re-execute on
FALLBACK_BACKEND = "numpy"


def __getattr__(name: str):
    # Deprecated module globals, kept as warning shims. The backend set
    # lives in repro.dsl.backends now; the old names resolve through it.
    if name == "DEFAULT_BACKEND":
        warnings.warn(
            "repro.dsl.stencil.DEFAULT_BACKEND is deprecated; use "
            "repro.dsl.default_backend(...) to get or set the default",
            DeprecationWarning,
            stacklevel=2,
        )
        return backends.current_default_backend()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class StencilObject:
    """A compiled, callable stencil."""

    def __init__(self, definition_func, backend: Optional[str] = None,
                 externals: Optional[Dict] = None, name: Optional[str] = None):
        self._func = definition_func
        self._backend_name = backend
        self.externals = dict(externals or {})
        self.definition: StencilDef = parse_stencil(definition_func, externals)
        if name:
            self.definition.name = name
        self.name = self.definition.name
        self.extents = compute_extents(self.definition)
        self._executors: Dict[str, object] = {}
        functools.update_wrapper(self, definition_func)

    # ------------------------------------------------------------------
    @property
    def backend(self) -> str:
        return self._backend_name or backends.current_default_backend()

    @property
    def field_names(self):
        return [p.name for p in self.definition.field_params]

    @property
    def scalar_names(self):
        return [p.name for p in self.definition.scalar_params]

    @property
    def n_halo(self) -> int:
        """Maximum halo width any input field requires."""
        return self.extents.max_halo()

    def _executor(self, backend: str):
        executor = self._executors.get(backend)
        if executor is None:
            # raises UnknownBackendError (a ValueError) with the registry
            # contents and a nearest-match suggestion on bad names
            executor = backends.create_executor(backend, self)
            self._executors[backend] = executor
        return executor

    # ------------------------------------------------------------------
    def __call__(
        self,
        *args,
        origin: Optional[Tuple[int, int, int]] = None,
        domain: Optional[Tuple[int, int, int]] = None,
        bounds: Optional[GridBounds] = None,
        backend: Optional[str] = None,
        **kwargs,
    ) -> None:
        fields, scalars = self._bind_arguments(args, kwargs)
        origin, domain = self._resolve_domain(fields, origin, domain)
        self._validate(fields, origin, domain)
        backend_name = backend or self.backend
        if not _TRACER.enabled:
            self._execute(backend_name, fields, scalars, origin, domain,
                          bounds)
            return
        from repro.obs.metrics import stencil_traffic_bytes

        with _TRACER.span(f"stencil.{self.name}") as sp:
            self._execute(backend_name, fields, scalars, origin, domain,
                          bounds)
            ni, nj, nk = domain
            sp.add("points", ni * nj * nk)
            sp.add("bytes", stencil_traffic_bytes(self, fields, domain))
            sp.set("backend", backend_name)

    def _execute(self, backend_name, fields, scalars, origin, domain,
                 bounds) -> None:
        """Run on ``backend_name``; degrade to the NumPy debug backend
        when a compiled backend raises (real failure or injected
        ``compile.fail``). Executor *creation* errors (unknown backend
        names) stay outside the degraded path and propagate."""
        executor = self._executor(backend_name)
        try:
            executor(fields, scalars, origin, domain, bounds)
        except Exception as exc:
            if (
                backend_name == FALLBACK_BACKEND
                or not _resilience.fallback_enabled()
            ):
                raise
            _resilience.record_fallback(self.name, backend_name, exc)
            fallback = self._executor(FALLBACK_BACKEND)
            fallback(fields, scalars, origin, domain, bounds)
        if _chaos._PLAN is not None:
            _chaos.maybe_nanflip(self.definition, fields)

    # ------------------------------------------------------------------
    def _bind_arguments(self, args, kwargs):
        params = self.definition.params
        if len(args) > len(params):
            raise TypeError(
                f"{self.name}: too many positional arguments "
                f"({len(args)} > {len(params)})"
            )
        bound = {p.name: a for p, a in zip(params, args)}
        for key, value in kwargs.items():
            if key in bound:
                raise TypeError(f"{self.name}: duplicate argument {key!r}")
            bound[key] = value
        fields: Dict[str, np.ndarray] = {}
        scalars: Dict[str, float] = {}
        for p in params:
            if p.name not in bound:
                raise TypeError(f"{self.name}: missing argument {p.name!r}")
            value = bound.pop(p.name)
            if p.is_field:
                arr = np.asarray(value)
                if arr.ndim != p.field_type.ndim:
                    raise TypeError(
                        f"{self.name}: field {p.name!r} must be "
                        f"{p.field_type.ndim}D (axes {p.field_type.axes}), "
                        f"got {arr.ndim}D"
                    )
                fields[p.name] = arr
            else:
                scalars[p.name] = value
        if bound:
            raise TypeError(
                f"{self.name}: unexpected arguments {sorted(bound)}"
            )
        return fields, scalars

    def _resolve_domain(self, fields, origin, domain):
        h = self.n_halo
        if origin is None:
            origin = (h, h, 0)
        if domain is None:
            for p in self.definition.field_params:
                if p.field_type.axes == "IJK":
                    s = fields[p.name].shape
                    domain = (
                        s[0] - origin[0] - h,
                        s[1] - origin[1] - h,
                        s[2] - origin[2],
                    )
                    break
            else:
                raise TypeError(
                    f"{self.name}: domain cannot be inferred without a 3D field"
                )
        if min(domain) < 1:
            raise ValueError(f"{self.name}: empty domain {domain}")
        return tuple(origin), tuple(domain)

    def _validate(self, fields, origin, domain) -> None:
        ni, nj, nk = domain
        for p in self.definition.field_params:
            arr = fields[p.name]
            ext = self.extents.field_extents.get(p.name)
            if ext is None:
                continue
            axes = p.field_type.axes
            req = []
            if "I" in axes:
                req.append((origin[0] + ext.i_lo, origin[0] + ni + ext.i_hi))
            if "J" in axes:
                req.append((origin[1] + ext.j_lo, origin[1] + nj + ext.j_hi))
            if "K" in axes:
                # exact per-interval vertical footprint: fields may have a
                # different k size than the domain (staggered interfaces)
                from repro.dsl.extents import k_access_bounds

                kb = k_access_bounds(self.definition, p.name, nk)
                if kb is not None:
                    req.append((origin[2] + kb[0], origin[2] + kb[1]))
            for dim, (lo, hi) in enumerate(req):
                if lo < 0 or hi > arr.shape[dim]:
                    raise ValueError(
                        f"{self.name}: field {p.name!r} shape {arr.shape} "
                        f"cannot satisfy accesses [{lo}, {hi}) along axis "
                        f"{dim} for domain {domain} at origin {origin}"
                    )

    # ------------------------------------------------------------------
    # Orchestration hooks (Sec. V-B)
    # ------------------------------------------------------------------
    def __sdfg_node__(self):
        """Create a StencilComputation library node for this stencil."""
        from repro.sdfg.nodes import StencilComputation

        return StencilComputation.from_stencil(self)

    def __repr__(self) -> str:
        return f"StencilObject({self.name!r}, backend={self.backend!r})"


def stencil(func=None, *, backend: Optional[str] = None,
            externals: Optional[Dict] = None, name: Optional[str] = None):
    """Decorator turning a definition function into a compiled stencil.

    Usable bare (``@stencil``) or with options
    (``@stencil(backend="dataflow", externals={...})``).
    """
    if func is not None:
        return StencilObject(func)

    def wrapper(f):
        return StencilObject(f, backend=backend, externals=externals, name=name)

    return wrapper


def set_default_backend(backend: str) -> None:
    """Deprecated: use :func:`repro.dsl.default_backend` instead."""
    warnings.warn(
        "set_default_backend() is deprecated; use "
        "repro.dsl.default_backend(name) — it also works as a context "
        "manager restoring the previous default",
        DeprecationWarning,
        stacklevel=2,
    )
    backends.default_backend(backend)
