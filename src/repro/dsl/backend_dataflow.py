"""Dataflow backend: lower one stencil to an SDFG, compile and run.

This is the "GT4Py backend that generates SDFGs" of Sec. V: each stencil
call inserts a StencilComputation library node into a fresh SDFG, which is
expanded and compiled through the shared code generator. Compiled programs
are cached per (shapes, origin, domain, bounds) specialization.

Full-program optimization across many stencils is handled by the
orchestration layer (:mod:`repro.orchestration`), not here.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.dsl.backend_numpy import GridBounds


class DataflowStencilExecutor:
    """Executes a stencil through the SDFG pipeline."""

    #: which :mod:`repro.runtime.compile_cache` emission backend compiles
    #: the lowered SDFG; the ``compiled`` backend subclasses and overrides
    compile_backend = "numpy"

    def __init__(self, stencil_object, optimize: bool = False):
        from repro.obs import tracer as _obs

        self._tracer = _obs.get_tracer()
        self.stencil_object = stencil_object
        self.optimize = optimize
        self._cache: Dict[Tuple, object] = {}

    def build_sdfg(
        self,
        shapes: Dict[str, Tuple[int, ...]],
        dtypes: Dict[str, type],
        origin: Tuple[int, int, int],
        domain: Tuple[int, int, int],
        bounds: Optional[GridBounds] = None,
    ):
        from repro.sdfg.graph import SDFG
        from repro.sdfg.nodes import StencilComputation

        so = self.stencil_object
        sdfg = SDFG(so.name)
        for p in so.definition.field_params:
            sdfg.add_array(
                p.name, shapes[p.name], dtypes[p.name], axes=p.field_type.axes
            )
        state = sdfg.add_state(so.name)
        node = StencilComputation(
            so.definition,
            so.extents,
            mapping={p.name: p.name for p in so.definition.field_params},
            domain=domain,
            origin=origin,
            scalar_mapping={p.name: p.name for p in so.definition.scalar_params},
            bounds=bounds,
        )
        state.add(node)
        sdfg.expand_library_nodes()
        if self.optimize:
            from repro.core.pipeline import optimize_sdfg_locally

            optimize_sdfg_locally(sdfg)
        return sdfg

    def __call__(self, fields, scalars, origin, domain, bounds=None) -> None:
        key = (
            tuple(sorted((n, a.shape, a.dtype.str) for n, a in fields.items())),
            origin,
            domain,
            (bounds.origin, bounds.tile_shape) if bounds else None,
            self.optimize,
        )
        program = self._cache.get(key)
        if program is None:
            # lower + compile: traced separately so reports distinguish
            # one-time specialization cost from steady-state execution
            with self._tracer.span("exec.dataflow.compile"):
                sdfg = self.build_sdfg(
                    {n: a.shape for n, a in fields.items()},
                    {n: a.dtype.type for n, a in fields.items()},
                    origin,
                    domain,
                    bounds,
                )
                program = self._compile(sdfg)
            self._cache[key] = program
        if self._tracer.enabled:
            with self._tracer.span("exec.dataflow"):
                program(arrays=fields, scalars=scalars)
        else:
            program(arrays=fields, scalars=scalars)

    def _compile(self, sdfg):
        """Compile the lowered SDFG through the shared program cache."""
        from repro.runtime.compile_cache import get_or_compile

        return get_or_compile(sdfg, backend=self.compile_backend)


# self-registration: "dataflow" resolves through the repro.dsl.backends
# registry; the module itself is imported lazily on first lookup
from repro.dsl.backends import register_backend as _register_backend

_register_backend("dataflow", DataflowStencilExecutor, replace=True)
