"""Stencil definition IR.

The frontend lowers decorated Python functions into this representation:

- a :class:`StencilDef` holds parameter declarations, temporary fields and a
  list of :class:`Computation` blocks;
- each computation has a vertical iteration policy and a list of
  :class:`IntervalBlock` sections;
- each interval block holds flat :class:`Assign` statements. ``if``/``else``
  constructs are lowered to per-statement *masks*; ``with horizontal``
  restrictions are attached as per-statement *regions*.

This mirrors GT4Py's "Optimization IR" stage (Sec. V-A): a normalized,
analysis-friendly form in which temporaries, extents and fusion legality
can be computed without touching Python ASTs again.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.dsl.builtins import RegionSpec
from repro.dsl.types import FieldType

Offset = Tuple[int, int, int]

# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class Expr:
    """Base class for expression nodes."""


@dataclasses.dataclass(frozen=True)
class FieldAccess(Expr):
    """Read or write of a field at a constant relative offset."""

    name: str
    offset: Offset = (0, 0, 0)

    def shifted(self, delta: Offset) -> "FieldAccess":
        return FieldAccess(
            self.name, tuple(o + d for o, d in zip(self.offset, delta))
        )

    def __repr__(self) -> str:
        if self.offset == (0, 0, 0):
            return self.name
        return f"{self.name}[{self.offset[0]},{self.offset[1]},{self.offset[2]}]"


@dataclasses.dataclass(frozen=True)
class ScalarRef(Expr):
    """Reference to a runtime scalar parameter."""

    name: str

    def __repr__(self) -> str:
        return f"${self.name}"


@dataclasses.dataclass(frozen=True)
class Literal(Expr):
    value: Union[float, int, bool]

    def __repr__(self) -> str:
        return repr(self.value)


@dataclasses.dataclass(frozen=True)
class AxisIndexExpr(Expr):
    """The current index along an axis relative to the compute origin.

    Exposed in the DSL as reads of the reserved names ``K_INDEX`` (and
    friends); used by vertical solvers that need level numbers.
    """

    axis: str  # "I", "J" or "K"

    def __repr__(self) -> str:
        return f"{self.axis}_INDEX"


@dataclasses.dataclass(frozen=True)
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclasses.dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # "-" or "not"
    operand: Expr

    def __repr__(self) -> str:
        return f"({self.op} {self.operand!r})"


@dataclasses.dataclass(frozen=True)
class Call(Expr):
    func: str  # a MATH_BUILTINS name
    args: Tuple[Expr, ...]

    def __repr__(self) -> str:
        return f"{self.func}({', '.join(map(repr, self.args))})"


@dataclasses.dataclass(frozen=True)
class Ternary(Expr):
    cond: Expr
    then: Expr
    orelse: Expr

    def __repr__(self) -> str:
        return f"({self.then!r} if {self.cond!r} else {self.orelse!r})"


# --------------------------------------------------------------------------
# Statements, intervals, computations
# --------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class AxisBound:
    """A vertical bound anchored at the start or end of the K axis."""

    level: str  # "start" or "end"
    offset: int = 0

    def resolve(self, nk: int) -> int:
        base = 0 if self.level == "start" else nk
        return base + self.offset

    def __repr__(self) -> str:
        sign = "+" if self.offset >= 0 else "-"
        return f"{self.level}{sign}{abs(self.offset)}"


@dataclasses.dataclass(frozen=True)
class Interval:
    """Half-open vertical interval [start, end)."""

    start: AxisBound
    end: AxisBound

    @staticmethod
    def full() -> "Interval":
        return Interval(AxisBound("start"), AxisBound("end"))

    def resolve(self, nk: int) -> Tuple[int, int]:
        return self.start.resolve(nk), self.end.resolve(nk)

    def __repr__(self) -> str:
        return f"[{self.start!r}, {self.end!r})"


@dataclasses.dataclass(frozen=True)
class Assign:
    """A single stencil operation: ``target = value`` under optional
    mask (from ``if`` lowering) and region (from ``with horizontal``).

    ``lineno`` is the absolute line in the stencil's source file this
    statement was parsed from (the call site for inlined functions);
    transformations that rewrite statements preserve it so diagnostics
    point at user code, not at the rewritten IR.
    """

    target: FieldAccess
    value: Expr
    mask: Optional[Expr] = None
    region: Optional[RegionSpec] = None
    lineno: Optional[int] = None


@dataclasses.dataclass
class IntervalBlock:
    interval: Interval
    body: List[Assign]


@dataclasses.dataclass
class Computation:
    order: str  # PARALLEL / FORWARD / BACKWARD
    intervals: List[IntervalBlock]

    def statements(self) -> List[Assign]:
        return [s for block in self.intervals for s in block.body]


@dataclasses.dataclass(frozen=True)
class ParamDecl:
    name: str
    field_type: Optional[FieldType]  # None for scalars
    scalar_dtype: Optional[type] = None

    @property
    def is_field(self) -> bool:
        return self.field_type is not None


@dataclasses.dataclass
class StencilDef:
    """A fully lowered stencil definition."""

    name: str
    params: List[ParamDecl]
    temporaries: Dict[str, FieldType]
    computations: List[Computation]
    #: where the decorated definition function lives (for diagnostics)
    source_file: Optional[str] = None
    source_line: Optional[int] = None

    # ---- convenience queries -------------------------------------------

    @property
    def field_params(self) -> List[ParamDecl]:
        return [p for p in self.params if p.is_field]

    @property
    def scalar_params(self) -> List[ParamDecl]:
        return [p for p in self.params if not p.is_field]

    def field_type(self, name: str) -> FieldType:
        for p in self.params:
            if p.name == name and p.is_field:
                return p.field_type
        if name in self.temporaries:
            return self.temporaries[name]
        raise KeyError(f"{name!r} is not a field of stencil {self.name!r}")

    def is_field(self, name: str) -> bool:
        try:
            self.field_type(name)
            return True
        except KeyError:
            return False

    def statements(self) -> List[Assign]:
        return [s for c in self.computations for s in c.statements()]

    def written_fields(self) -> List[str]:
        seen: Dict[str, None] = {}
        for stmt in self.statements():
            seen.setdefault(stmt.target.name, None)
        return list(seen)

    def read_fields(self) -> List[str]:
        seen: Dict[str, None] = {}
        for stmt in self.statements():
            for acc in walk_expr(stmt.value):
                if isinstance(acc, FieldAccess):
                    seen.setdefault(acc.name, None)
            if stmt.mask is not None:
                for acc in walk_expr(stmt.mask):
                    if isinstance(acc, FieldAccess):
                        seen.setdefault(acc.name, None)
        return list(seen)


# --------------------------------------------------------------------------
# Visitors / rewriting helpers
# --------------------------------------------------------------------------


def walk_expr(expr: Expr):
    """Yield every node of an expression tree (pre-order)."""
    yield expr
    if isinstance(expr, BinOp):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, UnaryOp):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, Call):
        for a in expr.args:
            yield from walk_expr(a)
    elif isinstance(expr, Ternary):
        yield from walk_expr(expr.cond)
        yield from walk_expr(expr.then)
        yield from walk_expr(expr.orelse)


def map_expr(expr: Expr, fn) -> Expr:
    """Rebuild an expression bottom-up, applying ``fn`` to each node.

    ``fn`` receives a node whose children have already been rewritten and
    returns its replacement.
    """
    if isinstance(expr, BinOp):
        expr = BinOp(expr.op, map_expr(expr.left, fn), map_expr(expr.right, fn))
    elif isinstance(expr, UnaryOp):
        expr = UnaryOp(expr.op, map_expr(expr.operand, fn))
    elif isinstance(expr, Call):
        expr = Call(expr.func, tuple(map_expr(a, fn) for a in expr.args))
    elif isinstance(expr, Ternary):
        expr = Ternary(
            map_expr(expr.cond, fn),
            map_expr(expr.then, fn),
            map_expr(expr.orelse, fn),
        )
    return fn(expr)


def substitute_fields(expr: Expr, mapping: Dict[str, Expr]) -> Expr:
    """Replace zero-offset field reads by expressions; offset reads of
    substituted fields are shifted into the replacement (used by OTF
    fusion and function inlining)."""

    def repl(node: Expr) -> Expr:
        if isinstance(node, FieldAccess) and node.name in mapping:
            replacement = mapping[node.name]
            if node.offset == (0, 0, 0):
                return replacement
            return shift_expr(replacement, node.offset)
        return node

    return map_expr(expr, repl)


def shift_expr(expr: Expr, delta: Offset) -> Expr:
    """Shift every field access in ``expr`` by ``delta``."""

    def repl(node: Expr) -> Expr:
        if isinstance(node, FieldAccess):
            return node.shifted(delta)
        return node

    return map_expr(expr, repl)


def expr_reads(stmt: Assign) -> List[FieldAccess]:
    """All field accesses read by a statement (value + mask)."""
    reads = [n for n in walk_expr(stmt.value) if isinstance(n, FieldAccess)]
    if stmt.mask is not None:
        reads += [n for n in walk_expr(stmt.mask) if isinstance(n, FieldAccess)]
    # a masked assignment also reads its own target (to keep old values)
    if stmt.mask is not None:
        reads.append(stmt.target)
    return reads


#: cost of a general-purpose pow() call in flop-equivalents. Calibrated on
#: the paper's Smagorinsky case study (Sec. VI-C1): the double-precision
#: pow of CUDA's libdevice costs hundreds of cycles, enough to flip a
#: bandwidth-bound kernel to compute-bound (511 µs vs the 129 µs bound).
POW_COST = 300
TRANSCENDENTAL_COST = 150


def count_flops(expr: Expr) -> int:
    """Arithmetic-operation count of an expression in flop-equivalents."""
    total = 0
    for node in walk_expr(expr):
        if isinstance(node, BinOp):
            total += POW_COST if node.op == "**" else 1
        elif isinstance(node, UnaryOp):
            total += 1
        elif isinstance(node, Call):
            total += (
                TRANSCENDENTAL_COST
                if node.func in ("exp", "log", "sin", "cos", "tan")
                else 2
            )
    return total


def literal_dtype(value) -> type:
    if isinstance(value, bool):
        return np.bool_
    if isinstance(value, int):
        return np.int64
    return np.float64
