"""Type annotations and axis metadata for the stencil DSL.

Fields are annotated in stencil signatures as ``Field`` (3D, the default),
``FieldIJ`` (2D horizontal) or ``FieldK`` (1D vertical column). Scalars are
annotated with plain Python types (``float``, ``int``, ``bool``).
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np

#: Default floating-point type used throughout the model (the paper runs
#: FV3 in double precision).
DEFAULT_DTYPE = np.float64

#: Canonical axis names in storage order used by the DSL.
AXES: Tuple[str, str, str] = ("I", "J", "K")


@dataclasses.dataclass(frozen=True)
class FieldType:
    """Static type of a field parameter.

    Attributes:
        axes: subset of ``"IJK"`` present in the field, in canonical order.
        dtype: NumPy scalar dtype of the elements.
    """

    axes: str = "IJK"
    dtype: type = DEFAULT_DTYPE

    def __class_getitem__(cls, item):  # pragma: no cover - convenience
        return cls(dtype=item)

    @property
    def ndim(self) -> int:
        return len(self.axes)

    def axis_present(self, axis: str) -> bool:
        return axis in self.axes


class _FieldMeta(type):
    """Allow both ``Field`` and ``Field[np.float32]`` spellings."""

    def __getitem__(cls, item) -> FieldType:
        return FieldType(axes=cls._axes, dtype=item)


class Field(metaclass=_FieldMeta):
    """3D field annotation (I, J, K axes)."""

    _axes = "IJK"


class FieldIJ(metaclass=_FieldMeta):
    """2D horizontal field annotation (I, J axes)."""

    _axes = "IJ"


class FieldK(metaclass=_FieldMeta):
    """1D vertical column field annotation (K axis)."""

    _axes = "K"


#: Mapping from annotation objects to FieldType instances.
_ANNOTATION_MAP = {
    Field: FieldType(axes="IJK"),
    FieldIJ: FieldType(axes="IJ"),
    FieldK: FieldType(axes="K"),
}


def field_type_from_annotation(annotation) -> FieldType | None:
    """Resolve a signature annotation to a :class:`FieldType`.

    Returns ``None`` when the annotation denotes a scalar parameter.
    """
    if isinstance(annotation, FieldType):
        return annotation
    if annotation in _ANNOTATION_MAP:
        return _ANNOTATION_MAP[annotation]
    return None


def scalar_dtype_from_annotation(annotation) -> type:
    """Resolve a scalar annotation to a NumPy dtype (default float64)."""
    if annotation in (float, None):
        return np.float64
    if annotation is int:
        return np.int64
    if annotation is bool:
        return np.bool_
    if isinstance(annotation, type) and issubclass(annotation, np.generic):
        return annotation
    return np.float64
