"""Extent (halo) inference for stencil definitions.

Buffer sizes and halo regions are "transparently defined by inferring halo
regions and extents from usage in stencils" (Sec. III-A). This module
implements that inference: a single reverse pass over the flattened
statement list propagates the horizontal extent over which each statement
must be computed, from consumers back to producers.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.dsl.ir import Assign, FieldAccess, StencilDef, expr_reads


@dataclasses.dataclass(frozen=True)
class Extent:
    """A rectangular halo extent around the compute domain.

    ``i_lo``/``j_lo`` are ≤ 0 (cells before the domain start) and
    ``i_hi``/``j_hi`` are ≥ 0 (cells past the domain end). ``k_lo``/``k_hi``
    are tracked for temporary-field allocation only.
    """

    i_lo: int = 0
    i_hi: int = 0
    j_lo: int = 0
    j_hi: int = 0
    k_lo: int = 0
    k_hi: int = 0

    @staticmethod
    def zero() -> "Extent":
        return Extent()

    def union(self, other: "Extent") -> "Extent":
        return Extent(
            min(self.i_lo, other.i_lo),
            max(self.i_hi, other.i_hi),
            min(self.j_lo, other.j_lo),
            max(self.j_hi, other.j_hi),
            min(self.k_lo, other.k_lo),
            max(self.k_hi, other.k_hi),
        )

    def shifted(self, offset: Tuple[int, int, int]) -> "Extent":
        di, dj, dk = offset
        return Extent(
            self.i_lo + di,
            self.i_hi + di,
            self.j_lo + dj,
            self.j_hi + dj,
            self.k_lo + dk,
            self.k_hi + dk,
        )

    def normalized(self) -> "Extent":
        """Clamp so lows are ≤ 0 and highs are ≥ 0."""
        return Extent(
            min(self.i_lo, 0),
            max(self.i_hi, 0),
            min(self.j_lo, 0),
            max(self.j_hi, 0),
            min(self.k_lo, 0),
            max(self.k_hi, 0),
        )

    @property
    def halo_width(self) -> int:
        """The symmetric horizontal halo width needed to satisfy this extent."""
        return max(-self.i_lo, self.i_hi, -self.j_lo, self.j_hi, 0)

    def horizontal_points(self, ni: int, nj: int) -> int:
        """Number of horizontal points in the extended compute domain."""
        return (ni - self.i_lo + self.i_hi) * (nj - self.j_lo + self.j_hi)


@dataclasses.dataclass
class StencilExtents:
    """Result of extent inference for one stencil definition."""

    #: Extent over which each flattened statement must be computed.
    stmt_extents: List[Extent]
    #: Per-field access extent: for parameters, the halo that must hold
    #: valid data on entry; for temporaries, the allocation extent.
    field_extents: Dict[str, Extent]

    def max_halo(self) -> int:
        return max(
            (e.halo_width for e in self.field_extents.values()), default=0
        )


def k_access_bounds(stencil: StencilDef, name: str, nk: int):
    """Exact [lo, hi) k-index range accessed on field ``name`` for a
    domain of ``nk`` levels, from per-interval offsets.

    Fields may have a different vertical size than the compute domain
    (e.g. interface fields with nk+1 levels read by layer-domain
    stencils); this per-interval analysis gives the true footprint.
    Returns ``None`` when the field is never accessed.
    """
    lo, hi = None, None
    for comp in stencil.computations:
        for block in comp.intervals:
            k0, k1 = block.interval.resolve(nk)
            k0, k1 = max(k0, 0), min(k1, nk)
            if k0 >= k1:
                continue
            for stmt in block.body:
                accesses = list(expr_reads(stmt))
                if stmt.target.name == name:
                    accesses.append(stmt.target)
                for acc in accesses:
                    if acc.name != name:
                        continue
                    dk = acc.offset[2]
                    a, b = k0 + dk, k1 + dk
                    lo = a if lo is None else min(lo, a)
                    hi = b if hi is None else max(hi, b)
    return None if lo is None else (lo, hi)


def _clamp_k_by_interval(required: Extent, interval) -> Extent:
    """Restrict a parameter's k-extent to accesses that can actually leave
    the [0, nk) domain given the statement's vertical interval.

    A read at offset -1 inside ``interval(1, None)`` touches levels
    [0, nk-1) only — no halo is needed. Intervals anchored at the opposite
    end are assumed not to escape the domain (nk is large enough).
    """
    k_lo = 0
    if interval.start.level == "start":
        k_lo = min(0, interval.start.offset + required.k_lo)
    k_hi = 0
    if interval.end.level == "end":
        k_hi = max(0, interval.end.offset + required.k_hi)
    return Extent(
        required.i_lo, required.i_hi, required.j_lo, required.j_hi, k_lo, k_hi
    )


def compute_extents(stencil: StencilDef) -> StencilExtents:
    """Infer per-statement compute extents and per-field access extents."""
    statements: List[Assign] = []
    stmt_intervals = []
    for comp in stencil.computations:
        for block in comp.intervals:
            for s in block.body:
                statements.append(s)
                stmt_intervals.append(block.interval)
    n = len(statements)
    stmt_extents = [Extent.zero() for _ in range(n)]
    field_extents: Dict[str, Extent] = {}

    # indices of statements writing each field, in program order
    writers: Dict[str, List[int]] = {}
    for idx, stmt in enumerate(statements):
        writers.setdefault(stmt.target.name, []).append(idx)

    for t in range(n - 1, -1, -1):
        stmt = statements[t]
        extent = stmt_extents[t]
        for access in expr_reads(stmt):
            required = extent.shifted(access.offset).normalized()
            # Producers only need enlarged *horizontal* compute domains;
            # vertical dependencies are realized by the sequential interval
            # iteration (FORWARD/BACKWARD loops), not by extents.
            horizontal_req = Extent(
                required.i_lo, required.i_hi, required.j_lo, required.j_hi
            )
            for w in writers.get(access.name, []):
                if w < t:
                    stmt_extents[w] = stmt_extents[w].union(horizontal_req)
            # record the raw access extent for halo computation; parameters
            # cannot be read outside [0, nk) when the interval bounds the
            # k-offset, so clamp their vertical requirement accordingly
            recorded = required
            if access.name not in stencil.temporaries:
                recorded = _clamp_k_by_interval(required, stmt_intervals[t])
            prev = field_extents.get(access.name, Extent.zero())
            field_extents[access.name] = prev.union(recorded)

    # temporaries must be allocated over the union of their write extents
    for name, idxs in writers.items():
        alloc = field_extents.get(name, Extent.zero())
        for w in idxs:
            alloc = alloc.union(stmt_extents[w])
        field_extents[name] = alloc

    # ensure every field parameter appears (outputs written but never read)
    for param in stencil.field_params:
        field_extents.setdefault(param.name, Extent.zero())
    return StencilExtents(stmt_extents=stmt_extents, field_extents=field_extents)
