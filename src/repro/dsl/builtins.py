"""Symbols available inside stencil definitions.

These objects exist so that a stencil body is *syntactically* valid Python;
they are interpreted by the frontend parser (:mod:`repro.dsl.frontend`) and
never executed directly. Calling them at runtime raises, which catches the
common mistake of invoking an undecorated stencil function.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

#: Vertical iteration policies (Fig. 3 of the paper).
PARALLEL = "PARALLEL"
FORWARD = "FORWARD"
BACKWARD = "BACKWARD"

#: Names of math functions usable inside stencils, mapped to NumPy ufuncs
#: at execution time by the backends.
MATH_BUILTINS = frozenset(
    {
        "sqrt",
        "abs",
        "exp",
        "log",
        "sin",
        "cos",
        "tan",
        "asin",
        "acos",
        "atan",
        "floor",
        "ceil",
        "trunc",
        "min",
        "max",
        "sign",
    }
)


class _ParseOnlyError(TypeError):
    pass


def _parse_only(name: str):
    def fn(*args, **kwargs):
        raise _ParseOnlyError(
            f"'{name}' is a stencil DSL construct and can only appear inside "
            f"a function decorated with @stencil or @function."
        )

    fn.__name__ = name
    return fn


computation = _parse_only("computation")
interval = _parse_only("interval")
horizontal = _parse_only("horizontal")


@dataclasses.dataclass(frozen=True)
class AxisAnchor:
    """A symbolic index anchored at a compute-domain edge.

    ``i_start + 1`` denotes the second interior column of the tile in the
    first horizontal dimension. Used by horizontal regions (Sec. IV-B).
    """

    axis: str  # "i" or "j"
    side: str  # "start" or "end"
    offset: int = 0

    def __add__(self, other: int) -> "AxisAnchor":
        return AxisAnchor(self.axis, self.side, self.offset + int(other))

    def __sub__(self, other: int) -> "AxisAnchor":
        return AxisAnchor(self.axis, self.side, self.offset - int(other))

    def __repr__(self) -> str:
        sign = "+" if self.offset >= 0 else "-"
        base = f"{self.axis}_{self.side}"
        return base if self.offset == 0 else f"{base}{sign}{abs(self.offset)}"


i_start = AxisAnchor("i", "start")
i_end = AxisAnchor("i", "end")
j_start = AxisAnchor("j", "start")
j_end = AxisAnchor("j", "end")


@dataclasses.dataclass(frozen=True)
class RegionAxisSpec:
    """Restriction of one horizontal axis inside a region.

    ``start``/``stop`` are :class:`AxisAnchor` or ``None`` (unbounded).
    ``single`` marks a one-index restriction (``region[i_start, :]``).
    """

    start: Optional[AxisAnchor] = None
    stop: Optional[AxisAnchor] = None
    single: bool = False

    @staticmethod
    def full() -> "RegionAxisSpec":
        return RegionAxisSpec()

    @property
    def is_full(self) -> bool:
        return self.start is None and self.stop is None and not self.single


@dataclasses.dataclass(frozen=True)
class RegionSpec:
    """A rectangular horizontal sub-domain specified with axis anchors."""

    i: RegionAxisSpec
    j: RegionAxisSpec

    def __repr__(self) -> str:
        def fmt(spec: RegionAxisSpec) -> str:
            if spec.is_full:
                return ":"
            if spec.single:
                return repr(spec.start)
            lo = "" if spec.start is None else repr(spec.start)
            hi = "" if spec.stop is None else repr(spec.stop)
            return f"{lo}:{hi}"

        return f"region[{fmt(self.i)}, {fmt(self.j)}]"


class _RegionFactory:
    """``region[...]`` subscription builds a :class:`RegionSpec`."""

    def __getitem__(self, item: Tuple) -> RegionSpec:
        if not isinstance(item, tuple) or len(item) != 2:
            raise ValueError("region[...] requires exactly two axis entries")
        return RegionSpec(
            i=self._axis_spec(item[0], "i"), j=self._axis_spec(item[1], "j")
        )

    @staticmethod
    def _axis_spec(entry, axis: str) -> RegionAxisSpec:
        if isinstance(entry, slice):
            if entry == slice(None):
                return RegionAxisSpec.full()
            start, stop = entry.start, entry.stop
            for bound in (start, stop):
                if bound is not None and not isinstance(bound, AxisAnchor):
                    raise ValueError(
                        f"region bounds must be axis anchors, got {bound!r}"
                    )
            return RegionAxisSpec(start=start, stop=stop)
        if isinstance(entry, AxisAnchor):
            if entry.axis != axis:
                raise ValueError(
                    f"anchor {entry!r} used on the {axis!r} axis of a region"
                )
            return RegionAxisSpec(start=entry, single=True)
        raise ValueError(f"invalid region axis entry: {entry!r}")


region = _RegionFactory()


class GTFunction:
    """A stencil subroutine, inlined by the frontend at every call site.

    Mirrors GT4Py's ``@gtscript.function``: the body may contain assignments
    and ``if``/``else`` blocks and must end with a single ``return``
    statement (scalar expression or tuple).
    """

    def __init__(self, definition):
        self.definition = definition
        self.__name__ = definition.__name__
        self.__doc__ = definition.__doc__

    def __call__(self, *args, **kwargs):
        raise _ParseOnlyError(
            f"stencil function '{self.__name__}' can only be called from "
            "inside a @stencil or @function body."
        )


def function(definition) -> GTFunction:
    """Decorator declaring an inlinable stencil subroutine."""
    return GTFunction(definition)
