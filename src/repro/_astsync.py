"""Process-wide lock for ``ast`` <-> object conversions.

CPython 3.11 keeps the recursion-depth counter used by ``ast.parse``
and ``compile(<ast object>, ...)`` in the *shared* per-interpreter ast
module state, not on the C stack (fixed in 3.12). Two threads running
those conversions concurrently clobber each other's counter and one of
them dies with ``SystemError: AST constructor recursion depth
mismatch``. Rank threads hit exactly that: every orchestrated-program
call path touches ``ast.parse``/AST-object ``compile``, and the
thread/process executors run rank bodies concurrently.

Every repro call site that converts between source text and ``ast``
node objects takes :data:`AST_LOCK` around the conversion. The guarded
regions are tiny (parse/compile only, never evaluation), so the lock
costs nothing measurable; it is reentrant because stencil parsing can
nest (inlined ``@function`` subroutines parse their own source).
"""

from __future__ import annotations

import threading

__all__ = ["AST_LOCK"]

AST_LOCK = threading.RLock()
