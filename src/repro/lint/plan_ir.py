"""Whole-program communication-plan IR for the C3xx lint rules.

The split halo API (``start_* → advance → finish_*``) trades the safety
of an atomic exchange for latency hiding: between ``start`` and
``finish`` the exchanged fields' halos are in flight, tag slots must stay
disjoint across concurrent exchanges, and every rank must run a
compatible schedule or the whole model deadlocks. PR 5 fixed exactly one
such bug (a cross-thread repack race on shared tag slots) by hand; this
module gives the lint layer a static description of the schedule so
:mod:`repro.lint.comm_rules` can prove those properties before a single
message is posted.

A :class:`CommPlan` is

- the *message topology*: per-(rank, phase) send/recv edges, extracted
  from :meth:`repro.fv3.halo.HaloUpdater.comm_schedule` (or synthesized
  with :func:`ring_edges` in tests);
- per-rank *programs*: linear sequences of :class:`StartOp` /
  :class:`AdvanceOp` / :class:`FinishOp` / :class:`ComputeOp`, mirroring
  what each rank thread executes;
- the *exchange declarations*: which logical fields each split exchange
  carries and on which ``fslot_base`` tag slots.

Compute ops carry per-field read/write :class:`~repro.dsl.extents.Extent`
footprints (relative to the interior compute domain, so
``halo_width > 0`` means the op touches halo cells), derived from real
stencil extents via :func:`compute_op_from_stencils` or re-derived from a
transformed SDFG via :func:`compute_op_from_sdfg` for the per-stage
transformation audit.

This module deliberately imports nothing from :mod:`repro.fv3` — the
halo layer hands over its schedule as plain tuples, so the lint layer
stays importable without the model.
"""

from __future__ import annotations

import dataclasses
import sys
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.dsl.extents import Extent
from repro.dsl.ir import expr_reads
from repro.util.loc import SourceLocation

__all__ = [
    "AdvanceOp",
    "CommPlan",
    "ComputeOp",
    "ExchangeDecl",
    "FinishOp",
    "MessageEdge",
    "StartOp",
    "compute_op_from_sdfg",
    "compute_op_from_stencils",
    "halo_extent",
    "ring_edges",
]


def _capture_location() -> SourceLocation:
    """file:line of the nearest caller outside this module.

    Plan ops default to the line they were *constructed* on, so a
    ``# lint: ignore[...]`` comment on the declaring line in e.g.
    ``acoustics.py`` suppresses findings anchored to that op.
    """
    frame = sys._getframe(1)
    skip = (__file__, dataclasses.__file__)
    while frame is not None:
        filename = frame.f_code.co_filename
        # dataclass-generated __init__ bodies compile from "<string>";
        # skip those and this module so the op anchors where the user
        # wrote it.
        if filename not in skip and not filename.startswith("<"):
            break
        frame = frame.f_back
    if frame is None:
        return SourceLocation()
    return SourceLocation(frame.f_code.co_filename, frame.f_lineno)


def halo_extent(width: int) -> Extent:
    """The full symmetric horizontal halo footprint of ``width`` cells."""
    return Extent(-width, width, -width, width)


@dataclasses.dataclass(frozen=True)
class MessageEdge:
    """One point-to-point message of one exchange phase."""

    src: int
    dst: int
    phase: int
    plan_index: int = 0
    cells: int = 0


@dataclasses.dataclass(frozen=True)
class ExchangeDecl:
    """A split exchange: which fields travel, on which tag slots."""

    name: str
    fields: Tuple[str, ...]
    fslot_base: int = 0
    vector: bool = False

    @property
    def fslots(self) -> Tuple[int, ...]:
        """Tag slots this exchange occupies (one per carried field)."""
        return tuple(
            range(self.fslot_base, self.fslot_base + len(self.fields))
        )


@dataclasses.dataclass(frozen=True)
class StartOp:
    """Post phase 0 of an exchange (sends packed, receives posted)."""

    exchange: str
    location: SourceLocation = dataclasses.field(
        default_factory=_capture_location
    )


@dataclasses.dataclass(frozen=True)
class AdvanceOp:
    """Complete phase 0 and post phase 1 without blocking on it."""

    exchange: str
    location: SourceLocation = dataclasses.field(
        default_factory=_capture_location
    )


@dataclasses.dataclass(frozen=True)
class FinishOp:
    """Block until every remaining phase of an exchange completes."""

    exchange: str
    location: SourceLocation = dataclasses.field(
        default_factory=_capture_location
    )


@dataclasses.dataclass(frozen=True)
class ComputeOp:
    """A compute region between communication ops.

    ``reads``/``writes`` map logical field names to horizontal access
    footprints relative to the interior compute domain: an extent with
    ``halo_width > 0`` touches halo cells.
    """

    name: str
    reads: Mapping[str, Extent] = dataclasses.field(default_factory=dict)
    writes: Mapping[str, Extent] = dataclasses.field(default_factory=dict)
    location: SourceLocation = dataclasses.field(
        default_factory=_capture_location
    )

    def __post_init__(self):
        object.__setattr__(self, "reads", dict(self.reads))
        object.__setattr__(self, "writes", dict(self.writes))


CommOp = object  # StartOp | AdvanceOp | FinishOp | ComputeOp


@dataclasses.dataclass(frozen=True)
class CommPlan:
    """A whole-program communication schedule across all ranks."""

    name: str
    n_ranks: int
    exchanges: Tuple[ExchangeDecl, ...]
    #: programs[rank] — the linear op sequence that rank executes
    programs: Tuple[Tuple[CommOp, ...], ...]
    edges: Tuple[MessageEdge, ...]
    location: SourceLocation = dataclasses.field(
        default_factory=_capture_location
    )

    def __post_init__(self):
        if len(self.programs) != self.n_ranks:
            raise ValueError(
                f"plan {self.name!r} declares {self.n_ranks} ranks but "
                f"{len(self.programs)} programs"
            )
        names = [x.name for x in self.exchanges]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate exchange names in {self.name!r}")

    @classmethod
    def spmd(
        cls,
        name: str,
        n_ranks: int,
        exchanges: Sequence[ExchangeDecl],
        program: Sequence[CommOp],
        edges: Iterable[Tuple[int, int, int] | Tuple[int, int, int, int, int] | MessageEdge],
        location: Optional[SourceLocation] = None,
    ) -> "CommPlan":
        """Every rank runs the same program (the usual SPMD shape)."""
        prog = tuple(program)
        return cls(
            name=name,
            n_ranks=n_ranks,
            exchanges=tuple(exchanges),
            programs=tuple(prog for _ in range(n_ranks)),
            edges=edges_from_schedule(edges),
            location=location or _capture_location(),
        )

    def exchange(self, name: str) -> ExchangeDecl:
        for x in self.exchanges:
            if x.name == name:
                return x
        raise KeyError(f"no exchange {name!r} in plan {self.name!r}")

    def sources_of(self, rank: int, phase: int) -> Tuple[int, ...]:
        """Peer ranks whose sends ``rank`` waits for in ``phase``
        (self-messages never block: they are posted before the wait)."""
        return tuple(
            sorted(
                {
                    e.src
                    for e in self.edges
                    if e.dst == rank and e.phase == phase and e.src != rank
                }
            )
        )

    def with_compute(self, name: str, op: ComputeOp) -> "CommPlan":
        """Replace every ComputeOp called ``name`` with ``op``.

        The original op's source location is preserved so suppressions
        and audit stage-diff keys stay anchored to the declaration site.
        """
        replaced = 0
        programs = []
        for program in self.programs:
            out = []
            for o in program:
                if isinstance(o, ComputeOp) and o.name == name:
                    out.append(
                        dataclasses.replace(op, location=o.location)
                    )
                    replaced += 1
                else:
                    out.append(o)
            programs.append(tuple(out))
        if not replaced:
            raise KeyError(
                f"no compute op {name!r} in plan {self.name!r}"
            )
        return dataclasses.replace(self, programs=tuple(programs))


def edges_from_schedule(schedule) -> Tuple[MessageEdge, ...]:
    """Normalize a schedule into :class:`MessageEdge` tuples.

    Accepts MessageEdge instances, ``(src, dst, phase)`` triples or the
    ``(src, dst, phase, plan_index, cells)`` tuples of
    :meth:`HaloUpdater.comm_schedule`.
    """
    out = []
    for e in schedule:
        if isinstance(e, MessageEdge):
            out.append(e)
        else:
            out.append(MessageEdge(*e))
    return tuple(out)


def ring_edges(n_ranks: int, phases: Tuple[int, ...] = (0, 1),
               cells: int = 1) -> Tuple[MessageEdge, ...]:
    """Synthetic bidirectional-ring topology for tests: every rank
    exchanges with both neighbors in every phase."""
    edges = []
    for phase in phases:
        for dst in range(n_ranks):
            for pi, src in enumerate(
                sorted({(dst - 1) % n_ranks, (dst + 1) % n_ranks})
            ):
                if src == dst:
                    continue
                edges.append(MessageEdge(src, dst, phase, pi, cells))
    return tuple(edges)


# ---------------------------------------------------------------------------
# Deriving compute footprints from real stencils / SDFGs
# ---------------------------------------------------------------------------


def _stencil_footprints(stencil) -> Tuple[Dict[str, Extent], Dict[str, Extent]]:
    """(reads, writes) per *parameter* of one stencil definition.

    Reads use the inferred per-field access extents (the halo that must
    hold valid data on entry); writes use the union of the compute
    extents of the statements writing each parameter.
    """
    defn = getattr(stencil, "definition", stencil)
    extents = getattr(stencil, "extents", None)
    if extents is None:
        from repro.dsl.extents import compute_extents

        extents = compute_extents(defn)
    params = {p.name for p in defn.field_params}
    read_names = set()
    writes: Dict[str, Extent] = {}
    idx = 0
    for comp in defn.computations:
        for block in comp.intervals:
            for stmt in block.body:
                ext = extents.stmt_extents[idx]
                idx += 1
                name = stmt.target.name
                if name in params:
                    prev = writes.get(name, Extent.zero())
                    writes[name] = prev.union(ext.normalized())
                for acc in expr_reads(stmt):
                    if acc.name in params:
                        read_names.add(acc.name)
    reads = {
        name: extents.field_extents.get(name, Extent.zero()).normalized()
        for name in read_names
    }
    return reads, writes


def compute_op_from_stencils(
    name: str,
    calls: Sequence[tuple],
    *,
    location: Optional[SourceLocation] = None,
) -> ComputeOp:
    """Build a :class:`ComputeOp` from real stencil objects.

    ``calls`` is a sequence of ``(stencil, mapping)`` or
    ``(stencil, mapping, halo)`` tuples: ``mapping`` renames stencil
    parameters to the plan's logical field names (unmapped parameters are
    private work arrays and are dropped); a nonzero ``halo`` marks a call
    executed over the halo-extended domain (e.g. ``c_sw``), inflating
    every mapped footprint to the full halo width.
    """
    reads: Dict[str, Extent] = {}
    writes: Dict[str, Extent] = {}
    for call in calls:
        stencil, mapping = call[0], call[1]
        halo = call[2] if len(call) > 2 else 0
        s_reads, s_writes = _stencil_footprints(stencil)
        for target, source in ((reads, s_reads), (writes, s_writes)):
            for pname, ext in source.items():
                logical = mapping.get(pname)
                if logical is None:
                    continue
                if halo:
                    ext = ext.union(halo_extent(halo))
                prev = target.get(logical, Extent.zero())
                target[logical] = prev.union(ext)
    return ComputeOp(
        name=name,
        reads=reads,
        writes=writes,
        location=location or _capture_location(),
    )


def compute_op_from_sdfg(
    name: str,
    sdfg,
    rename: Optional[Mapping[str, str]] = None,
    *,
    location: Optional[SourceLocation] = None,
) -> ComputeOp:
    """Re-derive a compute footprint from an (optimized) SDFG.

    Used by the transformation audit: after each pipeline stage the
    named ComputeOp of the plan is rebuilt from the *current* kernels, so
    a transformation that enlarges a read extent into the halo of an
    in-flight field surfaces as a new C304 finding charged to that stage.
    """
    rename = dict(rename or {})
    reads: Dict[str, Extent] = {}
    writes: Dict[str, Extent] = {}

    def _logical(container: str) -> str:
        return rename.get(container, container)

    for state in sdfg.states:
        for kernel in getattr(state, "kernels", []):
            local = kernel.local_arrays
            for stmt, ext in kernel.statements():
                tname = stmt.target.name
                if tname not in local:
                    key = _logical(tname)
                    prev = writes.get(key, Extent.zero())
                    writes[key] = prev.union(ext.normalized())
                for acc in expr_reads(stmt):
                    if acc.name in local:
                        continue
                    key = _logical(acc.name)
                    prev = reads.get(key, Extent.zero())
                    reads[key] = prev.union(
                        ext.shifted(acc.offset).normalized()
                    )
    return ComputeOp(
        name=name,
        reads=reads,
        writes=writes,
        location=location or _capture_location(),
    )
