"""SDFG-layer semantic checks: a race detector over expanded kernels.

Where the DSL rules reason about what the user *wrote*, these rules reason
about what the toolchain is *about to execute* — expanded map-scoped
:class:`~repro.sdfg.nodes.Kernel` nodes whose exact per-statement access
ranges are available through the same :class:`~repro.sdfg.subsets.Range`
algebra the memlets use. That makes them the safety net under aggressive
transformations: kernel fusion merges map scopes, and a merge that is
illegal (producer extents not enlarged for a consumer's offset reads, or a
write-after-read hazard pulled inside one map) shows up here as a concrete
overlapping/uncovered range, with the evidence ranges in the message.

Rules:

- ``S201`` kernel-race: a statement reads a container at an offset along a
  map (concurrently executed) dimension while a statement at or after it
  in the same kernel writes an intersecting range — the classic fusion
  race.
- ``S202`` uncovered-read: a read of kernel-local or transient data whose
  required range is not covered by everything written to it up to that
  point; the signature of an illegal producer/consumer fusion.
- ``S203`` out-of-bounds: access ranges versus container shapes, as
  findings (``validate_sdfg`` raises on the first; the linter reports
  all of them).
- ``S204`` transient-read-before-write / ``S205`` dead-transient:
  lifetime errors for toolchain-allocated buffers.

Rule catalog and suppression syntax: ``docs/static_analysis.md``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.dsl.ir import Assign, FieldAccess
from repro.sdfg.nodes import Callback, Kernel, Tasklet
from repro.sdfg.subsets import Range
from repro.lint.findings import LintFinding, register_rules
from repro.util.loc import SourceLocation

#: Rule id -> rule name, the S2xx catalog.
SDFG_RULES = {
    "S201": "kernel-race",
    "S202": "uncovered-read",
    "S203": "out-of-bounds",
    "S204": "transient-read-before-write",
    "S205": "dead-transient",
}

register_rules(SDFG_RULES)

SEQUENTIAL_ORDERS = ("FORWARD", "BACKWARD")


def _loc(kernel: Kernel, stmt: Optional[Assign] = None) -> SourceLocation:
    line = stmt.lineno if stmt is not None else None
    return SourceLocation(kernel.source_file, line)


def _axes_of(sdfg, kernel: Kernel, name: str) -> str:
    if name in kernel.local_arrays:
        return "IJK"
    desc = sdfg.arrays.get(name)
    return desc.axes if desc is not None else "IJK"


def _access_range(
    sdfg, kernel: Kernel, name: str, offset, ranges
) -> Optional[Range]:
    """Array-coordinate range one access touches (mirrors access_subsets)."""
    if ranges is None:
        return None
    axes = _axes_of(sdfg, kernel, name)
    origin = kernel.origin_of(name)
    irange, jrange, krange = ranges
    di, dj, dk = offset
    dims = []
    if "I" in axes:
        dims.append((origin[0] + irange[0] + di, origin[0] + irange[1] + di))
    if "J" in axes:
        dims.append((origin[1] + jrange[0] + dj, origin[1] + jrange[1] + dj))
    if "K" in axes:
        dims.append((origin[2] + krange[0] + dk, origin[2] + krange[1] + dk))
    return Range.of(*dims)


class _KStmt:
    """One kernel statement with its flattened index and access ranges."""

    def __init__(self, idx, section, stmt, ext, kernel, sdfg):
        self.idx = idx
        self.stmt = stmt
        self.ranges = kernel._stmt_ranges(stmt, ext, section.interval)

    @property
    def active(self) -> bool:
        return self.ranges is not None


def _flatten_kernel(kernel: Kernel, sdfg) -> List[_KStmt]:
    out = []
    i = 0
    for section in kernel.sections:
        for stmt, ext in section.statements:
            out.append(_KStmt(i, section, stmt, ext, kernel, sdfg))
            i += 1
    return out


def _reads(stmt: Assign) -> List[FieldAccess]:
    from repro.dsl.ir import expr_reads

    return expr_reads(stmt)


# ---------------------------------------------------------------------------
# S201: write-after-read races inside one map scope
# ---------------------------------------------------------------------------


def _rule_kernel_race(sdfg, subject, kernel: Kernel) -> Iterable[LintFinding]:
    stmts = _flatten_kernel(kernel, sdfg)
    loop_dims = set(kernel.schedule.loop_dims)
    if kernel.order in SEQUENTIAL_ORDERS:
        loop_dims.add("K")  # K is sequential for solvers regardless
    writes_by_name: Dict[str, List[_KStmt]] = {}
    for s in stmts:
        if s.active:
            writes_by_name.setdefault(s.stmt.target.name, []).append(s)
    for s in stmts:
        if not s.active:
            continue
        for acc in _reads(s.stmt):
            di, dj, dk = acc.offset
            concurrent = (di, dj) != (0, 0) or (
                dk != 0 and "K" not in loop_dims
            )
            if not concurrent:
                continue
            read_rng = _access_range(sdfg, kernel, acc.name, acc.offset, s.ranges)
            if read_rng is None:
                continue
            for w in writes_by_name.get(acc.name, []):
                if w.idx < s.idx:
                    continue  # RAW: handled by extent coverage (S202)
                write_rng = _access_range(
                    sdfg, kernel, acc.name, (0, 0, 0), w.ranges
                )
                if write_rng is None or write_rng.ndim != read_rng.ndim:
                    continue
                overlap = read_rng.intersection(write_rng)
                if overlap is None:
                    continue
                yield LintFinding(
                    rule="S201",
                    name="kernel-race",
                    severity="error",
                    subject=subject,
                    message=(
                        f"{acc.name!r} is read at offset {acc.offset} over "
                        f"{read_rng} while a later statement of the same "
                        f"map scope writes {write_rng} (overlap {overlap}); "
                        "concurrent threads may observe overwritten values"
                    ),
                    location=_loc(kernel, s.stmt),
                    hint=(
                        "keep producer and consumer in separate kernels, or "
                        "stage the pre-update values in a local array"
                    ),
                )
                break


# ---------------------------------------------------------------------------
# S202/S204/S205: transient & local-array lifetimes and extent coverage
# ---------------------------------------------------------------------------


def _node_position_index(sdfg) -> List[Tuple[int, int, object]]:
    out = []
    for si, state in enumerate(sdfg.states):
        for ni, node in enumerate(state.nodes):
            out.append((si, ni, node))
    return out


def _opaque_writers(sdfg) -> Tuple[Dict[str, bool], bool]:
    """Containers written by nodes without exact ranges (tasklets,
    callbacks): coverage of those is unknowable — assume covered.

    A callback with undeclared writes may touch *anything*; the second
    return value flags that wildcard (every lifetime check is skipped).
    """
    opaque: Dict[str, bool] = {}
    wildcard = False
    for state in sdfg.states:
        for node in state.nodes:
            if isinstance(node, Callback) and node.writes is None:
                wildcard = True
            if isinstance(node, (Tasklet, Callback)):
                _, writes = state.node_reads_writes(node)
                for name in writes:
                    opaque[name] = True
    return opaque, wildcard


def _same_loop(sdfg, si: int, sj: int) -> bool:
    """Are two state indices iterated together by some loop region?

    A transient written later in a loop body is legally read earlier in
    the body on the next iteration, so program order alone cannot prove a
    read-before-write there.
    """
    return any(
        lp.first <= si <= lp.last and lp.first <= sj <= lp.last
        for lp in sdfg.loops
        if lp.count > 1
    )


def _rule_lifetimes(sdfg) -> Iterable[LintFinding]:
    transients = set(sdfg.transients())
    opaque, opaque_wildcard = _opaque_writers(sdfg)
    if opaque_wildcard:
        return  # an undeclared callback may initialize anything
    positions = _node_position_index(sdfg)

    # program-order exact write ranges per transient container
    kernel_writes: Dict[str, List[Tuple[int, int, Range]]] = {}
    transient_read_anywhere: Dict[str, bool] = {}
    for pos, (si, ni, node) in enumerate(positions):
        if not isinstance(node, Kernel):
            continue
        for s in _flatten_kernel(node, sdfg):
            if not s.active:
                continue
            name = s.stmt.target.name
            if name in transients:
                rng = _access_range(sdfg, node, name, (0, 0, 0), s.ranges)
                kernel_writes.setdefault(name, []).append((pos, si, rng))
            for acc in _reads(s.stmt):
                if acc.name in transients:
                    transient_read_anywhere[acc.name] = True

    for pos, (si, ni, node) in enumerate(positions):
        if not isinstance(node, Kernel):
            continue
        stmts = _flatten_kernel(node, sdfg)
        sequential = node.order in SEQUENTIAL_ORDERS
        subject = f"{sdfg.name}.{node.label}"
        # write ranges of this kernel's own statements, by flat index
        own_writes: Dict[str, List[Tuple[int, Range]]] = {}
        for s in stmts:
            if s.active:
                own_writes.setdefault(s.stmt.target.name, []).append(
                    (s.idx, _access_range(sdfg, node, s.stmt.target.name,
                                          (0, 0, 0), s.ranges))
                )
        for s in stmts:
            if not s.active:
                continue
            for acc in _reads(s.stmt):
                name = acc.name
                local = name in node.local_arrays
                if not local and name not in transients:
                    continue  # external data may be initialized by the caller
                if opaque.get(name):
                    continue
                required = _access_range(sdfg, node, name, acc.offset, s.ranges)
                if required is None:
                    continue
                dk = acc.offset[2]
                carry = sequential and (
                    dk < 0 if node.order == "FORWARD" else dk > 0
                )
                available: Optional[Range] = None
                for idx, rng in own_writes.get(name, []):
                    if idx < s.idx or carry:
                        available = rng if available is None else available.union(rng)
                if not local:
                    for wpos, wsi, rng in kernel_writes.get(name, []):
                        reaches = wpos < pos or (
                            wpos != pos and _same_loop(sdfg, si, wsi)
                        )
                        if reaches and rng.ndim == required.ndim:
                            available = (
                                rng if available is None else available.union(rng)
                            )
                if available is None:
                    yield LintFinding(
                        rule="S204",
                        name="transient-read-before-write",
                        severity="error",
                        subject=subject,
                        message=(
                            f"{'local array' if local else 'transient'} "
                            f"{name!r} is read over {required} but nothing "
                            "has written it by this point in the program"
                        ),
                        location=_loc(node, s.stmt),
                        hint="initialize the buffer before this kernel runs",
                    )
                elif available.ndim == required.ndim and not available.covers(
                    required
                ):
                    yield LintFinding(
                        rule="S202",
                        name="uncovered-read",
                        severity="error",
                        subject=subject,
                        message=(
                            f"read of {name!r} at offset {acc.offset} "
                            f"requires {required} but only {available} has "
                            "been written; producer extents were not "
                            "enlarged for this consumer (illegal fusion?)"
                        ),
                        location=_loc(node, s.stmt),
                        hint=(
                            "recompute extents for the fused kernel, or "
                            "undo the fusion that merged producer and "
                            "consumer"
                        ),
                    )

    transient_read_by_opaque = set()
    for state in sdfg.states:
        for node in state.nodes:
            if isinstance(node, Callback) and node.reads is None:
                transient_read_by_opaque.update(transients)
            elif isinstance(node, (Tasklet, Callback)):
                reads, _ = state.node_reads_writes(node)
                transient_read_by_opaque.update(reads)
    for name in sorted(transients):
        if name in kernel_writes and not transient_read_anywhere.get(name) and (
            not opaque.get(name) and name not in transient_read_by_opaque
        ):
            # attribute to the first writing kernel
            pos = kernel_writes[name][0][0]
            node = positions[pos][2]
            yield LintFinding(
                rule="S205",
                name="dead-transient",
                severity="warning",
                subject=f"{sdfg.name}.{node.label}",
                message=(
                    f"transient {name!r} is written but never read by any "
                    "node; the buffer and the writes are dead"
                ),
                location=_loc(node),
                hint="remove the writes or the transient container",
            )


# ---------------------------------------------------------------------------
# S203: access ranges vs container shapes
# ---------------------------------------------------------------------------


def _rule_bounds(sdfg, subject, kernel: Kernel) -> Iterable[LintFinding]:
    reads, writes = kernel.access_subsets(lambda n: _axes_of(sdfg, kernel, n))
    for kind, accesses in (("read", reads), ("write", writes)):
        for name, rng in accesses.items():
            desc = sdfg.arrays.get(name)
            if desc is None:
                yield LintFinding(
                    rule="S203",
                    name="out-of-bounds",
                    severity="error",
                    subject=subject,
                    message=f"{kind} of unknown container {name!r}",
                    location=_loc(kernel),
                    hint="add the container to the SDFG before using it",
                )
                continue
            if rng.ndim != len(desc.shape):
                yield LintFinding(
                    rule="S203",
                    name="out-of-bounds",
                    severity="error",
                    subject=subject,
                    message=(
                        f"rank mismatch on {name!r}: access {rng} vs shape "
                        f"{desc.shape}"
                    ),
                    location=_loc(kernel),
                    hint="check the container's axes declaration",
                )
                continue
            for (lo, hi), size in zip(rng.dims, desc.shape):
                if lo < 0 or hi > size:
                    yield LintFinding(
                        rule="S203",
                        name="out-of-bounds",
                        severity="error",
                        subject=subject,
                        message=(
                            f"{kind} range {rng} exceeds container "
                            f"{name!r} shape {desc.shape}"
                        ),
                        location=_loc(kernel),
                        hint=(
                            "grow the halo/allocation or shrink the "
                            "accessed extent"
                        ),
                    )
                    break


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def lint_sdfg(sdfg, rules: Optional[Iterable[str]] = None) -> List[LintFinding]:
    """Run every SDFG-layer rule; ``rules`` optionally restricts by id."""
    findings: List[LintFinding] = []
    for state in sdfg.states:
        for node in state.nodes:
            if not isinstance(node, Kernel):
                continue
            subject = f"{sdfg.name}.{node.label}"
            findings.extend(_rule_kernel_race(sdfg, subject, node))
            findings.extend(_rule_bounds(sdfg, subject, node))
    findings.extend(_rule_lifetimes(sdfg))
    if rules is not None:
        allowed = set(rules)
        findings = [f for f in findings if f.rule in allowed]
    return findings
