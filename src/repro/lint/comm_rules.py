"""Communication-protocol rules (C3xx) over :class:`~repro.lint.plan_ir.CommPlan`.

The split halo pipeline makes four properties the programmer's problem;
these rules give them back to the toolchain:

- **C301 send-recv-mismatch** — every rank must run a complete
  ``start → [advance] → finish`` lifecycle for each exchange, and every
  rank a peer waits on must actually start the exchange (a receive with
  no matching send is a guaranteed timeout).
- **C302 tag-slot-collision** — two exchanges in flight concurrently on
  one rank must occupy disjoint ``fslot`` tag slots, or a repack for the
  second exchange overwrites the first one's in-flight payload (the PR-5
  cross-thread repack race, caught statically).
- **C303 deadlock** — wait-for cycle detection over the global event
  graph of posts and waits: a schedule where every message eventually
  exists but ranks block on each other in a cycle is flagged before
  execution.
- **C304 overlap-hazard** — a compute op inside an exchange's in-flight
  window must not touch the halo of an exchanged field (reads observe
  half-filled halos, writes race the scatter); interior writes to an
  in-flight field are a warning (they change what a later phase packs).
- **C305 exposed-window** — a window with no compute inside hides
  nothing; the split API is pure overhead there (use the atomic update,
  or move work into the window).

Entry point: :func:`lint_comm_plan`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.findings import LintFinding, register_rules
from repro.lint.plan_ir import (
    AdvanceOp,
    CommPlan,
    ComputeOp,
    ExchangeDecl,
    FinishOp,
    StartOp,
)

__all__ = ["COMM_RULES", "lint_comm_plan"]

#: Rule id -> rule name, the C3xx catalog.
COMM_RULES = {
    "C301": "send-recv-mismatch",
    "C302": "tag-slot-collision",
    "C303": "deadlock",
    "C304": "overlap-hazard",
    "C305": "exposed-window",
}

register_rules(COMM_RULES)


def _ranks_str(ranks: Sequence[int]) -> str:
    ranks = sorted(set(ranks))
    if len(ranks) == 1:
        return f"rank {ranks[0]}"
    if ranks == list(range(ranks[0], ranks[-1] + 1)) and len(ranks) > 2:
        return f"ranks {ranks[0]}–{ranks[-1]}"
    return "ranks " + ", ".join(str(r) for r in ranks)


def _finding(rule: str, severity: str, plan: CommPlan, message: str,
             location, hint: Optional[str] = None) -> LintFinding:
    return LintFinding(
        rule=rule,
        name=COMM_RULES[rule],
        severity=severity,
        subject=plan.name,
        message=message,
        location=location,
        hint=hint,
    )


def _grouped_programs(plan: CommPlan):
    """(program, ranks) pairs — SPMD plans share one program object, so
    rank-local rules run once per distinct program, not once per rank."""
    groups: List[Tuple[Tuple, List[int]]] = []
    for rank, program in enumerate(plan.programs):
        for prog, ranks in groups:
            if prog == program:
                ranks.append(rank)
                break
        else:
            groups.append((program, [rank]))
    return groups


# ---------------------------------------------------------------------------
# C301 — lifecycle and cross-rank symmetry
# ---------------------------------------------------------------------------


def _rule_lifecycle(plan: CommPlan, program, ranks) -> Iterable[LintFinding]:
    known = {x.name for x in plan.exchanges}
    #: None = not in flight; 0 = started; 1 = advanced
    state: Dict[str, Optional[int]] = {}
    last_op: Dict[str, object] = {}
    who = _ranks_str(ranks)
    for op in program:
        if isinstance(op, ComputeOp):
            continue
        x = op.exchange
        if x not in known:
            yield _finding(
                "C301", "error", plan,
                f"{who}: op references undeclared exchange {x!r}",
                op.location,
                hint="declare the exchange (fields + fslot_base) in the plan",
            )
            continue
        cur = state.get(x)
        if isinstance(op, StartOp):
            if cur is not None:
                yield _finding(
                    "C301", "error", plan,
                    f"{who}: exchange {x!r} is started again while still "
                    "in flight; its pack buffers and tag slots are reused "
                    "under the live messages",
                    op.location,
                    hint="finish the exchange before restarting it, or use "
                         "a second exchange on disjoint fslots",
                )
            state[x] = 0
        elif isinstance(op, AdvanceOp):
            if cur is None:
                yield _finding(
                    "C301", "error", plan,
                    f"{who}: advance() on exchange {x!r} which was never "
                    "started",
                    op.location,
                    hint="call start_* before advance",
                )
            elif cur == 1:
                yield _finding(
                    "C301", "error", plan,
                    f"{who}: advance() called twice on exchange {x!r} "
                    "(phase 1 is already posted)",
                    op.location,
                    hint="advance at most once between start and finish",
                )
            else:
                state[x] = 1
        elif isinstance(op, FinishOp):
            if cur is None:
                yield _finding(
                    "C301", "error", plan,
                    f"{who}: finish() on exchange {x!r} which is not in "
                    "flight",
                    op.location,
                    hint="every finish must pair with exactly one start",
                )
            else:
                state[x] = None
        last_op[x] = op
    for x, cur in state.items():
        if cur is not None:
            op = last_op[x]
            yield _finding(
                "C301", "error", plan,
                f"{who}: exchange {x!r} is started but never finished; "
                "its peers' receives wait forever and its messages leak "
                "into the mailbox",
                op.location,
                hint="pair every start_* with a finish_*",
            )


def _starters(plan: CommPlan) -> Dict[str, Set[int]]:
    """Exchange name -> set of ranks whose program starts it."""
    out: Dict[str, Set[int]] = {x.name: set() for x in plan.exchanges}
    for rank, program in enumerate(plan.programs):
        for op in program:
            if isinstance(op, StartOp) and op.exchange in out:
                out[op.exchange].add(rank)
    return out


def _rule_symmetry(plan: CommPlan) -> Iterable[LintFinding]:
    """C301 (cross-rank): a rank that participates in an exchange's
    message topology must start the exchange, or its peers' receives
    never match a send."""
    starters = _starters(plan)
    for x in plan.exchanges:
        started = starters[x.name]
        if not started:
            continue
        missing: Dict[int, Set[int]] = {}
        for r in started:
            for phase in (0, 1):
                for src in plan.sources_of(r, phase):
                    if src not in started:
                        missing.setdefault(src, set()).add(r)
        for src in sorted(missing):
            ranks = sorted(missing[src])
            waiters = _ranks_str(ranks)
            verb = "waits" if len(ranks) == 1 else "wait"
            # anchor to the start op of one waiting rank
            loc = next(
                op.location
                for op in plan.programs[min(missing[src])]
                if isinstance(op, StartOp) and op.exchange == x.name
            )
            yield _finding(
                "C301", "error", plan,
                f"rank {src} never starts exchange {x.name!r}, but "
                f"{waiters} {verb} for its sends; the receive can only "
                "time out",
                loc,
                hint="every rank in the message topology must run the "
                     "same start/finish sequence (SPMD)",
            )


# ---------------------------------------------------------------------------
# C302 — tag-slot collisions between concurrent exchanges
# ---------------------------------------------------------------------------


def _rule_slot_collision(plan, program, ranks) -> Iterable[LintFinding]:
    live: Dict[str, ExchangeDecl] = {}
    reported: Set[Tuple[str, str]] = set()
    who = _ranks_str(ranks)
    for op in program:
        if isinstance(op, StartOp):
            try:
                decl = plan.exchange(op.exchange)
            except KeyError:
                continue  # undeclared: C301's finding
            for other in live.values():
                shared = set(decl.fslots) & set(other.fslots)
                pair = tuple(sorted((decl.name, other.name)))
                if shared and pair not in reported:
                    reported.add(pair)
                    slots = ", ".join(str(s) for s in sorted(shared))
                    yield _finding(
                        "C302", "error", plan,
                        f"{who}: exchanges {other.name!r} and "
                        f"{decl.name!r} are in flight concurrently but "
                        f"share tag slot(s) {slots}; repacking the second "
                        "exchange's messages overwrites the first one's "
                        "in-flight payload (the PR-5 repack race)",
                        op.location,
                        hint="give the second exchange a disjoint "
                             "fslot_base (e.g. past the first exchange's "
                             "field count)",
                    )
            live[decl.name] = decl
        elif isinstance(op, FinishOp):
            live.pop(op.exchange, None)
    return


# ---------------------------------------------------------------------------
# C303 — deadlock (wait-for cycles over the global event graph)
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class _Event:
    rank: int
    kind: str  # "post" | "wait"
    exchange: str
    phase: int
    op: object


def _rank_events(program) -> List[_Event]:
    """Post/wait events of one rank's program, in execution order.

    Lifecycle-invalid ops (caught by C301) are skipped so the deadlock
    analysis never double-reports them.
    """
    events: List[_Event] = []
    state: Dict[str, int] = {}

    def emit(kind, x, phase, op):
        events.append(_Event(-1, kind, x, phase, op))

    for op in program:
        if isinstance(op, StartOp):
            if op.exchange in state:
                continue
            state[op.exchange] = 0
            emit("post", op.exchange, 0, op)
        elif isinstance(op, AdvanceOp):
            if state.get(op.exchange) != 0:
                continue
            state[op.exchange] = 1
            emit("wait", op.exchange, 0, op)
            emit("post", op.exchange, 1, op)
        elif isinstance(op, FinishOp):
            cur = state.pop(op.exchange, None)
            if cur is None:
                continue
            if cur == 0:
                emit("wait", op.exchange, 0, op)
                emit("post", op.exchange, 1, op)
            emit("wait", op.exchange, 1, op)
    return events


def _rule_deadlock(plan: CommPlan) -> Iterable[LintFinding]:
    events: List[_Event] = []
    index: Dict[Tuple[int, str, str, int], int] = {}
    for rank, program in enumerate(plan.programs):
        for ev in _rank_events(program):
            ev.rank = rank
            # first post/wait wins for the dependency lookup; duplicates
            # (two windows of the same exchange in sequence) resolve to
            # the earliest, which is conservative for cycle detection
            index.setdefault((rank, ev.kind, ev.exchange, ev.phase),
                             len(events))
            events.append(ev)

    n = len(events)
    deps: List[List[int]] = [[] for _ in range(n)]
    prev_by_rank: Dict[int, int] = {}
    for i, ev in enumerate(events):
        prev = prev_by_rank.get(ev.rank)
        if prev is not None:
            deps[i].append(prev)
        prev_by_rank[ev.rank] = i
        if ev.kind == "wait":
            for src in plan.sources_of(ev.rank, ev.phase):
                j = index.get((src, "post", ev.exchange, ev.phase))
                if j is not None:
                    deps[i].append(j)
                # a missing peer post is a C301 symmetry/lifecycle
                # finding, not a cycle — treated as satisfied here

    # Kahn's algorithm over the dependency graph
    dependents: List[List[int]] = [[] for _ in range(n)]
    pending = [0] * n
    for i, ds in enumerate(deps):
        pending[i] = len(ds)
        for d in ds:
            dependents[d].append(i)
    ready = [i for i in range(n) if pending[i] == 0]
    done = 0
    while ready:
        i = ready.pop()
        done += 1
        for j in dependents[i]:
            pending[j] -= 1
            if pending[j] == 0:
                ready.append(j)
    if done == n:
        return

    stuck = [events[i] for i in range(n) if pending[i] > 0]
    waits = [ev for ev in stuck if ev.kind == "wait"]
    detail = "; ".join(
        f"rank {ev.rank} blocks in {ev.exchange!r} phase {ev.phase}"
        for ev in waits[:4]
    )
    more = len(waits) - 4
    if more > 0:
        detail += f"; … {more} more"
    anchor = waits[0] if waits else stuck[0]
    yield _finding(
        "C303", "error", plan,
        f"the schedule deadlocks: {_ranks_str([ev.rank for ev in stuck])} "
        f"wait on each other in a cycle ({detail})",
        anchor.op.location,
        hint="order exchanges identically on every rank; a blocked wait "
             "can only complete if the peer's matching start/advance is "
             "not behind a wait on this rank",
    )


# ---------------------------------------------------------------------------
# C304 / C305 — window contents
# ---------------------------------------------------------------------------


def _rule_windows(plan, program, ranks) -> Iterable[LintFinding]:
    live: Dict[str, StartOp] = {}
    had_compute: Dict[str, bool] = {}
    who = _ranks_str(ranks)
    for op in program:
        if isinstance(op, StartOp):
            live[op.exchange] = op
            had_compute[op.exchange] = False
        elif isinstance(op, FinishOp):
            start = live.pop(op.exchange, None)
            if start is None:
                continue
            if not had_compute.pop(op.exchange, True):
                yield _finding(
                    "C305", "warning", plan,
                    f"{who}: the window of exchange {op.exchange!r} "
                    "contains no compute — the split start/finish hides "
                    "no latency here",
                    start.location,
                    hint="move independent compute between start and "
                         "finish, or use the atomic update_* call",
                )
        elif isinstance(op, ComputeOp):
            for x in live:
                had_compute[x] = True
            for xname, start in live.items():
                try:
                    decl = plan.exchange(xname)
                except KeyError:
                    continue
                for f in decl.fields:
                    r = op.reads.get(f)
                    if r is not None and r.halo_width > 0:
                        yield _finding(
                            "C304", "error", plan,
                            f"{who}: compute {op.name!r} reads the halo "
                            f"of {f!r} (extent {r.halo_width}) while "
                            f"exchange {xname!r} is still in flight; the "
                            "halo cells are not filled yet",
                            op.location,
                            hint=f"finish exchange {xname!r} before this "
                                 "compute, or restrict it to fields not "
                                 "in flight",
                        )
                    w = op.writes.get(f)
                    if w is None:
                        continue
                    if w.halo_width > 0:
                        yield _finding(
                            "C304", "error", plan,
                            f"{who}: compute {op.name!r} writes the halo "
                            f"of {f!r} while exchange {xname!r} is "
                            "scattering received cells into it",
                            op.location,
                            hint=f"finish exchange {xname!r} first; "
                                 "concurrent scatter and write race",
                        )
                    else:
                        yield _finding(
                            "C304", "warning", plan,
                            f"{who}: compute {op.name!r} writes the "
                            f"interior of {f!r} while exchange {xname!r} "
                            "is in flight; a later phase packs from the "
                            "interior, so the exchanged halos may mix "
                            "old and new values",
                            op.location,
                            hint="start the exchange after the last "
                                 "interior write to its fields",
                        )


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def lint_comm_plan(
    plan: CommPlan, rules: Optional[Sequence[str]] = None
) -> List[LintFinding]:
    """Run every C3xx rule on a communication plan.

    ``rules`` restricts the run to a subset of rule ids (audit use).
    """
    findings: List[LintFinding] = []
    groups = _grouped_programs(plan)
    for program, ranks in groups:
        findings.extend(_rule_lifecycle(plan, program, ranks))
        findings.extend(_rule_slot_collision(plan, program, ranks))
        findings.extend(_rule_windows(plan, program, ranks))
    findings.extend(_rule_symmetry(plan))
    findings.extend(_rule_deadlock(plan))
    if rules is not None:
        wanted = set(rules)
        findings = [f for f in findings if f.rule in wanted]
    return findings
