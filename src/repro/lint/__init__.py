"""repro.lint — semantic static analysis for stencils and SDFGs.

Two layers mirror the toolchain: :func:`lint_stencil` checks what the
user wrote (DSL rules ``D1xx``); :func:`lint_sdfg` checks what the
toolchain is about to execute (SDFG rules ``S2xx``, a race detector over
expanded map scopes). :class:`TransformationAudit` diffs the SDFG rules
across pipeline stages so a transformation that introduces a violation is
named in the report. ``python -m repro.lint <module-or-path>`` runs both
layers from the shell.

Rule catalog: ``docs/static_analysis.md``.
"""

from repro.lint.audit import AUDIT_RULES, TransformationAudit
from repro.lint.dsl_rules import lint_stencil
from repro.lint.findings import (
    SEVERITIES,
    LintFinding,
    SuppressionIndex,
    apply_suppressions,
    max_severity,
    parse_suppressions,
    sort_findings,
)
from repro.lint.sdfg_rules import lint_sdfg

__all__ = [
    "AUDIT_RULES",
    "LintFinding",
    "SEVERITIES",
    "SuppressionIndex",
    "TransformationAudit",
    "apply_suppressions",
    "lint_sdfg",
    "lint_stencil",
    "max_severity",
    "parse_suppressions",
    "sort_findings",
]
