"""repro.lint — semantic static analysis for stencils, SDFGs and plans.

Four layers mirror the toolchain: :func:`lint_stencil` checks what the
user wrote (DSL rules ``D1xx``); :func:`lint_sdfg` checks what the
toolchain is about to execute (SDFG rules ``S2xx``, a race detector over
expanded map scopes); :func:`lint_comm_plan` checks how ranks will talk
(communication-protocol rules ``C3xx`` over a :class:`CommPlan` — the
whole-program send/recv, tag-slot and overlap-window verifier); and
:func:`lint_buffer_events` checks pooled-buffer lifetimes (runtime rules
``R4xx``, fed by :func:`record_buffer_events` traces or a compiled
plan's allocation log via :func:`lint_compiled_plan`).

:class:`TransformationAudit` diffs the SDFG and protocol rules across
pipeline stages so a transformation that introduces a violation is
named in the report. ``python -m repro.lint <module-or-path>`` runs the
static layers from the shell; ``--comm`` adds the protocol rules and
``--scenario`` discovers subjects through the experiment registry.

Rule catalog: ``docs/static_analysis.md``.
"""

from repro.lint.audit import (
    AUDIT_COMM_RULES,
    AUDIT_RULES,
    TransformationAudit,
)
from repro.lint.comm_rules import COMM_RULES, lint_comm_plan
from repro.lint.dsl_rules import DSL_RULES, lint_stencil
from repro.lint.findings import (
    KNOWN_RULES,
    SEVERITIES,
    LintFinding,
    SuppressionIndex,
    UnknownRuleWarning,
    apply_suppressions,
    max_severity,
    parse_suppressions,
    register_rules,
    sort_findings,
)
from repro.lint.plan_ir import (
    CommPlan,
    ComputeOp,
    ExchangeDecl,
    FinishOp,
    AdvanceOp,
    MessageEdge,
    StartOp,
    compute_op_from_sdfg,
    compute_op_from_stencils,
    edges_from_schedule,
    ring_edges,
)
from repro.lint.runtime_rules import (
    RUNTIME_RULES,
    BufferEvent,
    lint_buffer_events,
    lint_compiled_plan,
    record_buffer_events,
)
from repro.lint.sdfg_rules import SDFG_RULES, lint_sdfg

__all__ = [
    "AUDIT_COMM_RULES",
    "AUDIT_RULES",
    "AdvanceOp",
    "BufferEvent",
    "COMM_RULES",
    "CommPlan",
    "ComputeOp",
    "DSL_RULES",
    "ExchangeDecl",
    "FinishOp",
    "KNOWN_RULES",
    "LintFinding",
    "MessageEdge",
    "RUNTIME_RULES",
    "SDFG_RULES",
    "SEVERITIES",
    "StartOp",
    "SuppressionIndex",
    "TransformationAudit",
    "UnknownRuleWarning",
    "apply_suppressions",
    "compute_op_from_sdfg",
    "compute_op_from_stencils",
    "edges_from_schedule",
    "lint_buffer_events",
    "lint_comm_plan",
    "lint_compiled_plan",
    "lint_sdfg",
    "lint_stencil",
    "max_severity",
    "parse_suppressions",
    "record_buffer_events",
    "register_rules",
    "ring_edges",
    "sort_findings",
]
