"""Transformation-safety audit: diff lint findings across pipeline stages.

Transformations are where the toolchain can silently break a correct
program — a fusion that merges a producer and consumer without enlarging
extents, a schedule change that turns a sequential dimension into a map.
The audit re-runs the SDFG race/overlap rules after every applied stage
and attributes any *new* violation to the stage that introduced it.

Findings are keyed by :meth:`LintFinding.key` (rule, subject, location),
not by message, so ranges that legally change as kernels are reshaped do
not read as new violations.

When a :class:`~repro.lint.plan_ir.CommPlan` is attached, the audit also
re-runs the C3xx communication-protocol rules per stage, re-deriving the
named compute op's read/write footprints from the *current* SDFG — so a
fusion that enlarges a read extent into the halo of an in-flight field
is charged to the stage that applied it, not discovered at runtime.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.comm_rules import lint_comm_plan
from repro.lint.findings import LintFinding, sort_findings
from repro.lint.sdfg_rules import lint_sdfg

#: Rules the per-stage audit re-runs: the safety-critical subset (races,
#: coverage, bounds, lifetimes) — cheap enough to run eight times per
#: pipeline, and exactly the properties transformations can break.
AUDIT_RULES = ("S201", "S202", "S203", "S204", "S205")

#: Communication rules re-run per stage when a plan is attached (the
#: schedule itself does not change across stages, but the compute
#: footprints inside the windows do).
AUDIT_COMM_RULES = ("C301", "C302", "C303", "C304")


class TransformationAudit:
    """Tracks which pipeline stage introduced which lint finding.

    ``comm_plan`` attaches a communication schedule; ``comm_op`` names
    the plan's ComputeOp that corresponds to the SDFG being optimized,
    so its footprints are re-derived from the transformed kernels on
    every check (``comm_rename`` maps SDFG container names to the plan's
    logical field names).
    """

    def __init__(
        self,
        rules: Sequence[str] = AUDIT_RULES,
        comm_plan=None,
        comm_op: Optional[str] = None,
        comm_rename: Optional[Dict[str, str]] = None,
        comm_rules: Sequence[str] = AUDIT_COMM_RULES,
    ):
        self.rules = tuple(rules)
        self.comm_plan = comm_plan
        self.comm_op = comm_op
        self.comm_rename = dict(comm_rename or {})
        self.comm_rules = tuple(comm_rules)
        self._seen: Set[Tuple[str, str, str]] = set()
        self.baseline: List[LintFinding] = []
        #: stage name -> findings first observed after that stage
        self.by_stage: Dict[str, List[LintFinding]] = {}
        self._started = False

    def _lint(self, sdfg) -> List[LintFinding]:
        findings = lint_sdfg(sdfg, rules=self.rules)
        if self.comm_plan is not None:
            plan = self.comm_plan
            if self.comm_op is not None:
                from repro.lint.plan_ir import compute_op_from_sdfg

                plan = plan.with_compute(
                    self.comm_op,
                    compute_op_from_sdfg(
                        self.comm_op, sdfg, rename=self.comm_rename
                    ),
                )
            findings.extend(lint_comm_plan(plan, rules=self.comm_rules))
        return findings

    def start(self, sdfg) -> List[LintFinding]:
        """Record the pre-optimization state; its findings are not
        attributed to any transformation."""
        self.baseline = sort_findings(self._lint(sdfg))
        self._seen = {f.key() for f in self.baseline}
        self._started = True
        return self.baseline

    def check(self, sdfg, stage: str) -> List[LintFinding]:
        """Re-lint after ``stage``; return findings new since the last
        check, charging them to that stage."""
        if not self._started:
            self.start(sdfg)
            return []
        current = self._lint(sdfg)
        new = sort_findings(f for f in current if f.key() not in self._seen)
        self._seen.update(f.key() for f in current)
        if new:
            self.by_stage.setdefault(stage, []).extend(new)
        return new

    @property
    def introduced(self) -> List[Tuple[str, LintFinding]]:
        """All (stage, finding) attributions, in stage order."""
        return [
            (stage, f)
            for stage, findings in self.by_stage.items()
            for f in findings
        ]

    def summary(self) -> str:
        if not self.by_stage:
            return "transformation audit: no new findings"
        lines = ["transformation audit:"]
        for stage, findings in self.by_stage.items():
            lines.append(f"  after {stage!r}:")
            lines.extend(f"    {f}" for f in findings)
        return "\n".join(lines)
