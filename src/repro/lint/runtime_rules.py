"""Buffer-lifetime rules (R4xx) over pool event traces and compiled plans.

The :class:`~repro.runtime.pool.BufferPool` arena and the compiled-SDFG
scratch planner make the hot path allocation-free, at the price of
manual lifetimes: a buffer released too early is recycled under a live
reader, a leaked checkout grows the arena forever, and a pooled scratch
buffer handed to a compiled program as an ``out=`` destination aliases
two owners. These rules verify recorded lifetime traces:

- **R401 use-after-release** — a buffer is used (or scheduled as a
  kernel destination) after it went back to the free list; the next
  checkout of the same shape aliases it.
- **R402 acquire-release-mismatch** — double acquire of a live buffer,
  or release of a buffer that is not checked out (double release).
- **R403 leaked-arena** — buffers still checked out when the trace ends.
- **R404 scratch-aliasing** — a live pooled buffer owned by one scope
  (label/rank) is bound as another program's kernel destination: two
  writers now share storage the pool believes has a single owner.

Traces come from two sources: :func:`record_buffer_events` attaches a
recorder to a live :class:`BufferPool` (checkout/release/bind events at
runtime), and :func:`lint_compiled_plan` replays the codegen-time
alloc/free log of a :class:`~repro.sdfg.codegen.CompiledSDFG` scratch
plan.
"""

from __future__ import annotations

import dataclasses
import itertools
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.lint.findings import LintFinding, register_rules

__all__ = [
    "RUNTIME_RULES",
    "BufferEvent",
    "lint_buffer_events",
    "lint_compiled_plan",
    "record_buffer_events",
]

#: Rule id -> rule name, the R4xx catalog.
RUNTIME_RULES = {
    "R401": "use-after-release",
    "R402": "acquire-release-mismatch",
    "R403": "leaked-arena",
    "R404": "scratch-aliasing",
}

register_rules(RUNTIME_RULES)


@dataclasses.dataclass(frozen=True)
class BufferEvent:
    """One lifetime event of one buffer.

    ``buffer`` is a stable identity for the storage (``id()`` of the
    array, or a slot index for compiled plans); ``label`` names the
    owning scope (e.g. ``"sdfg:heat:out"``) and ``rank`` the owning rank
    thread, both optional.
    """

    kind: str  # "acquire" | "release" | "use" | "bind"
    buffer: int
    key: Optional[Tuple] = None  # (shape, dtype) when known
    seq: int = 0
    label: Optional[str] = None
    rank: Optional[int] = None

    def describe(self) -> str:
        what = f"buffer {self.buffer:#x}" if self.buffer > 0xFFFF else (
            f"slot {self.buffer}"
        )
        if self.key:
            what += f" {self.key[0]}×{self.key[1]}"
        return what


def _finding(rule: str, severity: str, subject: str, message: str,
             hint: Optional[str] = None) -> LintFinding:
    return LintFinding(
        rule=rule,
        name=RUNTIME_RULES[rule],
        severity=severity,
        subject=subject,
        message=message,
        hint=hint,
    )


def _owner(ev: BufferEvent) -> str:
    parts = []
    if ev.label is not None:
        parts.append(ev.label)
    if ev.rank is not None:
        parts.append(f"rank {ev.rank}")
    return " / ".join(parts) or "anonymous scope"


def lint_buffer_events(
    events: Sequence[BufferEvent],
    subject: str = "buffer-trace",
    allow_live_at_end: bool = False,
) -> List[LintFinding]:
    """Run every R4xx rule on a recorded lifetime trace."""
    findings: List[LintFinding] = []
    live: Dict[int, BufferEvent] = {}
    released: Dict[int, BufferEvent] = {}
    for ev in events:
        if ev.kind == "acquire":
            prior = live.get(ev.buffer)
            if prior is not None:
                findings.append(_finding(
                    "R402", "error", subject,
                    f"{ev.describe()} acquired twice without a release "
                    f"(first by {_owner(prior)}, again by {_owner(ev)}); "
                    "two owners now write one allocation",
                    hint="every checkout must be balanced by exactly one "
                         "release before the next checkout of that buffer",
                ))
            live[ev.buffer] = ev
            released.pop(ev.buffer, None)
        elif ev.kind == "release":
            if ev.buffer in live:
                released[ev.buffer] = ev
                del live[ev.buffer]
            else:
                again = ev.buffer in released
                detail = (
                    "released twice" if again
                    else "released without ever being acquired"
                )
                findings.append(_finding(
                    "R402", "error", subject,
                    f"{ev.describe()} {detail}; the free list would hand "
                    "the same storage to two future checkouts",
                    hint="release each buffer exactly once, from the "
                         "scope that checked it out",
                ))
        elif ev.kind in ("use", "bind"):
            rel = released.get(ev.buffer)
            if rel is not None:
                what = (
                    "scheduled as a kernel destination"
                    if ev.kind == "bind" else "used"
                )
                findings.append(_finding(
                    "R401", "error", subject,
                    f"{ev.describe()} is {what} by {_owner(ev)} after "
                    "being released to the arena; the next checkout of "
                    "this shape aliases it",
                    hint="keep the buffer checked out for as long as any "
                         "kernel can read or write it",
                ))
            elif ev.kind == "bind":
                owner = live.get(ev.buffer)
                if owner is not None and (
                    owner.label != ev.label or owner.rank != ev.rank
                ):
                    findings.append(_finding(
                        "R404", "error", subject,
                        f"{ev.describe()} is live pooled scratch of "
                        f"{_owner(owner)} but is bound as a kernel "
                        f"destination by {_owner(ev)}; the out=-scheduled "
                        "writes alias storage the pool considers "
                        "single-owner",
                        hint="pass a dedicated array (or a buffer checked "
                             "out by the calling scope) as the kernel "
                             "destination",
                    ))
        else:
            raise ValueError(f"unknown buffer event kind {ev.kind!r}")
    if not allow_live_at_end:
        for ev in live.values():
            findings.append(_finding(
                "R403", "warning", subject,
                f"{ev.describe()} acquired by {_owner(ev)} is still "
                "checked out when the trace ends; the arena never gets "
                "it back",
                hint="release in a finally block, or account for the "
                     "buffer as a deliberate persistent allocation",
            ))
    return findings


# ---------------------------------------------------------------------------
# Trace sources
# ---------------------------------------------------------------------------


@contextmanager
def record_buffer_events(pool=None) -> Iterator[List[BufferEvent]]:
    """Attach a lifetime recorder to a pool for the duration of a block.

    Yields the (growing) event list; run :func:`lint_buffer_events` on it
    afterwards. Recording composes with everything else the pool does and
    costs one predicate per checkout when inactive.
    """
    if pool is None:
        from repro.runtime.pool import get_pool

        pool = get_pool()
    from repro.runtime.ranks import current_rank

    events: List[BufferEvent] = []
    counter = itertools.count()

    def recorder(kind: str, buf, label: Optional[str] = None) -> None:
        key = None
        shape = getattr(buf, "shape", None)
        if shape is not None:
            key = (tuple(shape), buf.dtype.str)
        events.append(BufferEvent(
            kind=kind,
            buffer=id(buf),
            key=key,
            seq=next(counter),
            label=label,
            rank=current_rank(),
        ))

    previous = pool.set_recorder(recorder)
    try:
        yield events
    finally:
        pool.set_recorder(previous)


def lint_compiled_plan(compiled) -> List[LintFinding]:
    """Check a compiled SDFG's scratch-slot plan for lifetime violations.

    Replays the codegen-time alloc/free log of the register-style slot
    allocator. Slots live at the end are expected (kernel-local slots are
    owned for the whole program body), so only R401/R402/R404 can fire.
    """
    events = [
        BufferEvent(
            kind="acquire" if kind == "alloc" else "release",
            buffer=idx,
            key=(
                tuple(compiled._plan.specs[idx][0]),
                str(compiled._plan.specs[idx][1]),
            ),
            seq=seq,
            label=f"sdfg:{compiled.sdfg.name}",
        )
        for seq, (kind, idx) in enumerate(compiled.plan_events)
    ]
    return lint_buffer_events(
        events,
        subject=f"sdfg:{compiled.sdfg.name}",
        allow_live_at_end=True,
    )
