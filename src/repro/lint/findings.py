"""Structured lint diagnostics and suppression handling.

Every rule reports :class:`LintFinding` objects — severity, rule id,
subject (stencil or SDFG name), source location and a fix hint — rather
than raising, so a whole module can be audited in one pass and findings
can be diffed across transformation stages (the pipeline's
transformation-safety audit keys on :meth:`LintFinding.key`).

Suppression is per source line: a trailing ``# lint: ignore[D105]``
comment (comma-separated ids, a family prefix like ``C3*``, or ``*`` for
all) on the line a finding points at marks it suppressed. Suppressed
findings are kept — reports show them dimmed and the CLI does not count
them toward the exit code. Suppressions naming a rule id no registered
rule family matches emit :class:`UnknownRuleWarning` — a typo in an
ignore comment must not silently re-arm the finding it meant to silence.
"""

from __future__ import annotations

import dataclasses
import re
import warnings
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.util.loc import SourceLocation

#: Severity levels, most severe first.
SEVERITIES = ("error", "warning", "info")

_SEVERITY_RANK = {s: i for i, s in enumerate(SEVERITIES)}

#: Registry of every rule id the installed rule modules can emit,
#: ``rule id -> rule name``. Populated at import time by each rules
#: module via :func:`register_rules`; consulted to warn on suppression
#: comments naming rules that do not exist.
KNOWN_RULES: Dict[str, str] = {}


class UnknownRuleWarning(UserWarning):
    """A ``# lint: ignore[...]`` comment names a rule id that no
    registered rule family can emit (usually a typo)."""


def register_rules(rules: Mapping[str, str]) -> None:
    """Register ``rule id -> rule name`` pairs emitted by a rules module."""
    KNOWN_RULES.update(rules)


def _pattern_matches(pattern: str, rule: str) -> bool:
    """Suppression pattern semantics: exact id, ``*`` for everything, or
    a trailing-``*`` family prefix (``C3*`` silences C301…C3xx)."""
    if pattern == "*":
        return True
    if pattern.endswith("*"):
        return rule.startswith(pattern[:-1])
    return pattern == rule


def _pattern_is_known(pattern: str) -> bool:
    if pattern == "*":
        return True
    return any(_pattern_matches(pattern, rule) for rule in KNOWN_RULES)


@dataclasses.dataclass(frozen=True)
class LintFinding:
    """One diagnostic produced by a lint rule."""

    rule: str  # e.g. "D101"
    name: str  # e.g. "read-before-write"
    severity: str  # "error" | "warning" | "info"
    subject: str  # stencil / SDFG / kernel the finding is about
    message: str
    location: SourceLocation = SourceLocation()
    hint: Optional[str] = None
    suppressed: bool = False

    def __post_init__(self):
        if self.severity not in _SEVERITY_RANK:
            raise ValueError(f"unknown severity {self.severity!r}")

    def key(self) -> Tuple[str, str, str]:
        """Stable identity used to diff findings across pipeline stages.

        Deliberately excludes the message (ranges in it may legally change
        as transformations reshape kernels without introducing new bugs).
        """
        return (self.rule, self.subject, str(self.location))

    def __str__(self) -> str:
        where = f"{self.location}: " if self.location.known else ""
        sup = " (suppressed)" if self.suppressed else ""
        return (
            f"{where}{self.severity} {self.rule} [{self.name}] "
            f"{self.subject}: {self.message}{sup}"
        )


def sort_findings(findings: Iterable[LintFinding]) -> List[LintFinding]:
    """Most severe first; then by location for stable output."""
    return sorted(
        findings,
        key=lambda f: (
            _SEVERITY_RANK[f.severity],
            f.location.file or "",
            f.location.line or 0,
            f.rule,
        ),
    )


def max_severity(findings: Iterable[LintFinding]) -> Optional[str]:
    """The most severe unsuppressed severity present, or None."""
    best: Optional[int] = None
    for f in findings:
        if f.suppressed:
            continue
        rank = _SEVERITY_RANK[f.severity]
        best = rank if best is None else min(best, rank)
    return None if best is None else SEVERITIES[best]


# ---------------------------------------------------------------------------
# Suppressions: `# lint: ignore[D101,S201]` / `# lint: ignore[*]`
# ---------------------------------------------------------------------------

_IGNORE_RE = re.compile(r"#\s*lint:\s*ignore\[([^\]]*)\]")


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map 1-based line numbers to the rule ids suppressed on that line."""
    out: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _IGNORE_RE.search(line)
        if m:
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            if rules:
                out[lineno] = rules
    return out


class SuppressionIndex:
    """Per-file cache of ``# lint: ignore[...]`` comments."""

    def __init__(self):
        self._by_file: Dict[str, Dict[int, Set[str]]] = {}

    def _load(self, path: str) -> Dict[int, Set[str]]:
        cached = self._by_file.get(path)
        if cached is None:
            try:
                source = Path(path).read_text()
            except OSError:
                cached = {}
            else:
                cached = parse_suppressions(source)
                if KNOWN_RULES:
                    for lineno, rules in sorted(cached.items()):
                        for pattern in sorted(rules):
                            if not _pattern_is_known(pattern):
                                warnings.warn(
                                    f"{path}:{lineno}: suppression names "
                                    f"unknown rule {pattern!r} (no "
                                    "registered rule matches)",
                                    UnknownRuleWarning,
                                    stacklevel=3,
                                )
            self._by_file[path] = cached
        return cached

    def is_suppressed(self, finding: LintFinding) -> bool:
        loc = finding.location
        if not loc.known:
            return False
        rules = self._load(loc.file).get(loc.line)
        if not rules:
            return False
        return any(_pattern_matches(p, finding.rule) for p in rules)

    def apply(self, findings: Sequence[LintFinding]) -> List[LintFinding]:
        """Return findings with the ``suppressed`` flag resolved."""
        return [
            dataclasses.replace(f, suppressed=True)
            if self.is_suppressed(f)
            else f
            for f in findings
        ]


def apply_suppressions(findings: Sequence[LintFinding]) -> List[LintFinding]:
    """Convenience wrapper: resolve suppressions with a fresh index."""
    return SuppressionIndex().apply(findings)
