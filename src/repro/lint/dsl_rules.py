"""DSL-layer semantic checks on :class:`~repro.dsl.ir.StencilDef`.

The rules model the paper's execution mapping (Sec. V-A, VI-A1): every
``computation`` block expands into one map scope whose statements run per
grid point in order, with read-after-write offset dependencies legalized
by the extent machinery (producers are redundantly computed over enlarged
domains). Under that model:

- a read at a nonzero offset along a concurrently-executed axis (I/J
  always; K in ``PARALLEL`` computations) of a field written *at or after*
  the reading statement is a data race — no extent can resurrect an
  overwritten value (``D105``);
- a temporary read before any write is uninitialized memory (``D101``);
- vertical interval blocks that overlap (double write) or leave coverage
  gaps for the same field are suspicious (``D102``/``D103``);
- recorded extents that disagree with what the offsets imply mean halo
  sizes were decided from stale information (``D104``);
- dead stores and unused parameters are productivity smells
  (``D106``/``D107``).

Rule catalog and suppression syntax: ``docs/static_analysis.md``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Tuple

from repro.dsl.extents import StencilExtents, compute_extents
from repro.dsl.ir import (
    Assign,
    AxisBound,
    FieldAccess,
    Interval,
    ScalarRef,
    StencilDef,
    walk_expr,
)
from repro.lint.findings import LintFinding, register_rules
from repro.util.loc import SourceLocation

#: Rule id -> rule name, the D1xx catalog.
DSL_RULES = {
    "D101": "read-before-write",
    "D102": "interval-overlap",
    "D103": "interval-gap",
    "D104": "extent-mismatch",
    "D105": "parallel-race",
    "D106": "dead-store",
    "D107": "unused-parameter",
}

register_rules(DSL_RULES)

#: Axes executed concurrently for a given iteration policy: horizontal
#: dimensions are always map dimensions; K joins them in PARALLEL blocks.
SEQUENTIAL_ORDERS = ("FORWARD", "BACKWARD")


@dataclasses.dataclass(frozen=True)
class _Stmt:
    """One flattened statement with its position and vertical context."""

    gidx: int  # global flattened index in the stencil
    comp_idx: int
    order: str
    block_idx: int
    interval: Interval
    stmt: Assign


def _flatten(defn: StencilDef) -> List[_Stmt]:
    out: List[_Stmt] = []
    g = 0
    for ci, comp in enumerate(defn.computations):
        for bi, block in enumerate(comp.intervals):
            for stmt in block.body:
                out.append(_Stmt(g, ci, comp.order, bi, block.interval, stmt))
                g += 1
    return out


def _explicit_reads(stmt: Assign) -> List[FieldAccess]:
    """Field reads in value and mask, *without* the implicit masked-target
    read (a masked first write of a temporary is a write, not a use)."""
    reads = [n for n in walk_expr(stmt.value) if isinstance(n, FieldAccess)]
    if stmt.mask is not None:
        reads += [n for n in walk_expr(stmt.mask) if isinstance(n, FieldAccess)]
    return reads


def _all_reads(stmt: Assign) -> List[FieldAccess]:
    """Reads including the implicit target read of masked assignments."""
    reads = _explicit_reads(stmt)
    if stmt.mask is not None:
        reads.append(stmt.target)
    return reads


def _loc(defn: StencilDef, stmt: Optional[Assign] = None) -> SourceLocation:
    line = stmt.lineno if stmt is not None and stmt.lineno else defn.source_line
    return SourceLocation(defn.source_file, line)


# ---------------------------------------------------------------------------
# Symbolic vertical-interval algebra
# ---------------------------------------------------------------------------
# An AxisBound is affine in nk: offset + (nk if anchored at "end" else 0).
# Comparing (anchor, offset) keys lexicographically is exact for any domain
# larger than the offsets involved — the regime stencils are written for.


def _key(bound: AxisBound, dk: int = 0) -> Tuple[int, int]:
    return (0 if bound.level == "start" else 1, bound.offset + dk)


def _intervals_overlap(a: Interval, b: Interval, dk: int = 0) -> bool:
    """Does ``a`` shifted down by ``dk`` levels overlap ``b``?

    ``dk`` shifts a *reader's* interval by its access offset so the
    overlap is computed between accessed levels and written levels.
    """
    lo = max(_key(a.start, dk), _key(b.start))
    hi = min(_key(a.end, dk), _key(b.end))
    return lo < hi


def _interval_covers(outer: Interval, inner: Interval) -> bool:
    return _key(outer.start) <= _key(inner.start) and _key(
        inner.end
    ) <= _key(outer.end)


def _gap_between(first: Interval, second: Interval) -> bool:
    """Is there a hole between ``first`` and ``second`` (sorted by start)?"""
    return _key(first.end) < _key(second.start)


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


def _rule_read_before_write(defn, stmts) -> Iterable[LintFinding]:
    """D101: temporary read before any write reaches it."""
    writes: Dict[str, List[_Stmt]] = {}
    for s in stmts:
        writes.setdefault(s.stmt.target.name, []).append(s)
    for s in stmts:
        for acc in _explicit_reads(s.stmt):
            if acc.name not in defn.temporaries:
                continue
            field_writes = writes.get(acc.name, [])
            dk = acc.offset[2]
            future = s.order in SEQUENTIAL_ORDERS and (
                dk > 0 if s.order == "FORWARD" else dk < 0
            )
            if future:
                # a future level of a sequential sweep has not been
                # computed yet; only a *fully executed* earlier block or
                # computation can have written it
                ok = any(
                    w.comp_idx < s.comp_idx
                    or (
                        w.comp_idx == s.comp_idx
                        and w.block_idx < s.block_idx
                    )
                    for w in field_writes
                )
                what = (
                    f"the not-yet-computed level k{dk:+d} of the "
                    f"{s.order} sweep"
                )
            else:
                # same-level (or carried-previous-level) value: an earlier
                # statement, or — for a carried read — any statement of the
                # same or an earlier block (previous level already ran it)
                carry = (
                    s.order in SEQUENTIAL_ORDERS
                    and (dk < 0 if s.order == "FORWARD" else dk > 0)
                    and any(
                        w.comp_idx == s.comp_idx
                        and w.block_idx <= s.block_idx
                        for w in field_writes
                    )
                )
                ok = carry or any(w.gidx < s.gidx for w in field_writes)
                what = f"offset {acc.offset}"
            if ok:
                continue
            yield LintFinding(
                rule="D101",
                name="read-before-write",
                severity="error",
                subject=defn.name,
                message=(
                    f"temporary {acc.name!r} is read at {what} before "
                    "anything writes it"
                ),
                location=_loc(defn, s.stmt),
                hint=(
                    "initialize the temporary in an earlier statement or "
                    "interval, or make it a field parameter if it carries "
                    "data into the stencil"
                ),
            )


def _rule_interval_coverage(defn, stmts) -> Iterable[LintFinding]:
    """D102/D103: per-field overlap and gaps between interval blocks."""
    for ci, comp in enumerate(defn.computations):
        # blocks writing each field, in block order
        by_field: Dict[str, List[Tuple[int, Interval, Assign]]] = {}
        for bi, block in enumerate(comp.intervals):
            seen_here = set()
            for stmt in block.body:
                name = stmt.target.name
                if name in seen_here:
                    continue
                seen_here.add(name)
                by_field.setdefault(name, []).append(
                    (bi, block.interval, stmt)
                )
        for name, blocks in by_field.items():
            if len(blocks) < 2:
                continue
            for x in range(len(blocks)):
                for y in range(x + 1, len(blocks)):
                    bi_a, iv_a, stmt_a = blocks[x]
                    bi_b, iv_b, stmt_b = blocks[y]
                    if _intervals_overlap(iv_a, iv_b):
                        yield LintFinding(
                            rule="D102",
                            name="interval-overlap",
                            severity="warning",
                            subject=defn.name,
                            message=(
                                f"{name!r} is written in overlapping "
                                f"vertical intervals {iv_a!r} and {iv_b!r} "
                                f"of computation {ci}; the later block "
                                "overwrites the earlier one"
                            ),
                            location=_loc(defn, stmt_b),
                            hint=(
                                "narrow one interval, or move the override "
                                "into the same block so the double write "
                                "is explicit"
                            ),
                        )
            ordered = sorted(blocks, key=lambda b: _key(b[1].start))
            for (_, iv_a, _), (_, iv_b, stmt_b) in zip(ordered, ordered[1:]):
                if _gap_between(iv_a, iv_b):
                    yield LintFinding(
                        rule="D103",
                        name="interval-gap",
                        severity="warning",
                        subject=defn.name,
                        message=(
                            f"{name!r} is written in intervals {iv_a!r} and "
                            f"{iv_b!r} of computation {ci} but the levels "
                            "between them are never written"
                        ),
                        location=_loc(defn, stmt_b),
                        hint=(
                            "close the hole (e.g. interval(a, b) meeting "
                            "interval(b, c)) or write the full range first "
                            "and override the boundaries"
                        ),
                    )


def _rule_extent_consistency(defn, stmts, extents) -> Iterable[LintFinding]:
    """D104: recorded extents must match what the offsets imply."""
    recomputed = compute_extents(defn)
    if extents is None:
        return
    for name, ext in recomputed.field_extents.items():
        recorded = extents.field_extents.get(name)
        if recorded != ext:
            yield LintFinding(
                rule="D104",
                name="extent-mismatch",
                severity="error",
                subject=defn.name,
                message=(
                    f"recorded extent of {name!r} is {recorded}, but the "
                    f"access offsets imply {ext}; halo/allocation sizes "
                    "were decided from stale extents"
                ),
                location=_loc(defn),
                hint="re-run extent inference after editing the stencil IR",
            )
    if len(extents.stmt_extents) != len(recomputed.stmt_extents) or any(
        a != b
        for a, b in zip(extents.stmt_extents, recomputed.stmt_extents)
    ):
        yield LintFinding(
            rule="D104",
            name="extent-mismatch",
            severity="error",
            subject=defn.name,
            message=(
                "per-statement compute extents disagree with the offsets "
                "in the definition"
            ),
            location=_loc(defn),
            hint="re-run extent inference after editing the stencil IR",
        )


def _rule_parallel_race(defn, stmts) -> Iterable[LintFinding]:
    """D105: write-after-read at an offset along a concurrent axis."""
    by_comp: Dict[int, List[_Stmt]] = {}
    for s in stmts:
        by_comp.setdefault(s.comp_idx, []).append(s)
    for ci, comp_stmts in by_comp.items():
        order = comp_stmts[0].order
        writes: Dict[str, List[_Stmt]] = {}
        for s in comp_stmts:
            writes.setdefault(s.stmt.target.name, []).append(s)
        for s in comp_stmts:
            for acc in _explicit_reads(s.stmt):
                di, dj, dk = acc.offset
                concurrent = (di, dj) != (0, 0) or (
                    order == "PARALLEL" and dk != 0
                )
                if not concurrent:
                    continue
                for w in writes.get(acc.name, []):
                    if w.gidx < s.gidx:
                        continue  # RAW: legalized by compute extents
                    # accessed levels must overlap the written levels
                    if not _intervals_overlap(s.interval, w.interval, dk):
                        continue
                    yield LintFinding(
                        rule="D105",
                        name="parallel-race",
                        severity="error",
                        subject=defn.name,
                        message=(
                            f"{acc.name!r} is read at offset {acc.offset} "
                            f"but written at or after the read in the same "
                            f"{order} computation; concurrent grid points "
                            "may observe the overwritten value"
                        ),
                        location=_loc(defn, s.stmt),
                        hint=(
                            "copy the pre-update value into a separate "
                            "temporary before the write, or split the "
                            "write into a later computation block"
                        ),
                    )
                    break  # one finding per read access


def _rule_dead_store(defn, stmts) -> Iterable[LintFinding]:
    """D106: a temporary store no later statement can observe."""
    reads_of: Dict[str, List[Tuple[_Stmt, FieldAccess]]] = {}
    for s in stmts:
        for acc in _all_reads(s.stmt):
            reads_of.setdefault(acc.name, []).append((s, acc))
    for s in stmts:
        name = s.stmt.target.name
        if name not in defn.temporaries:
            continue  # writes to parameters are stencil outputs
        uses = reads_of.get(name, [])
        live = False
        for r, acc in uses:
            if r.gidx > s.gidx:
                live = True
                break
            # sequential K carry: an *earlier* statement of the same block
            # (or a later block) reading the previous level observes this
            # store on the next level iteration; earlier blocks finished
            # before this store ever ran
            dk = acc.offset[2]
            if (
                s.order in SEQUENTIAL_ORDERS
                and r.comp_idx == s.comp_idx
                and r.block_idx >= s.block_idx
                and (dk < 0 if s.order == "FORWARD" else dk > 0)
            ):
                live = True
                break
        if live:
            continue
        yield LintFinding(
            rule="D106",
            name="dead-store",
            severity="warning",
            subject=defn.name,
            message=(
                f"value stored to temporary {name!r} is never read by any "
                "later statement"
            ),
            location=_loc(defn, s.stmt),
            hint="delete the assignment or consume the value",
        )


def _rule_unused_parameter(defn, stmts) -> Iterable[LintFinding]:
    """D107: parameters the stencil body never touches."""
    touched = set()
    scalars = set()
    for s in stmts:
        touched.add(s.stmt.target.name)
        for acc in _all_reads(s.stmt):
            touched.add(acc.name)
        exprs = [s.stmt.value] + ([s.stmt.mask] if s.stmt.mask else [])
        for e in exprs:
            for node in walk_expr(e):
                if isinstance(node, ScalarRef):
                    scalars.add(node.name)
    for p in defn.params:
        used = p.name in touched if p.is_field else p.name in scalars
        if not used:
            kind = "field" if p.is_field else "scalar"
            yield LintFinding(
                rule="D107",
                name="unused-parameter",
                severity="warning",
                subject=defn.name,
                message=f"{kind} parameter {p.name!r} is never used",
                location=_loc(defn),
                hint="drop the parameter from the signature",
            )


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def lint_stencil(
    stencil, extents: Optional[StencilExtents] = None
) -> List[LintFinding]:
    """Run every DSL-layer rule on a stencil.

    Accepts a :class:`StencilDef` or a compiled ``StencilObject`` (whose
    cached extents are then cross-checked by rule D104).
    """
    defn = getattr(stencil, "definition", stencil)
    if extents is None:
        extents = getattr(stencil, "extents", None)
    stmts = _flatten(defn)
    findings: List[LintFinding] = []
    findings.extend(_rule_read_before_write(defn, stmts))
    findings.extend(_rule_interval_coverage(defn, stmts))
    findings.extend(_rule_extent_consistency(defn, stmts, extents))
    findings.extend(_rule_parallel_race(defn, stmts))
    findings.extend(_rule_dead_store(defn, stmts))
    findings.extend(_rule_unused_parameter(defn, stmts))
    return findings
