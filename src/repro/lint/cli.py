"""``python -m repro.lint`` — lint stencil modules and SDFGs from the shell.

Targets are dotted module names (``repro.fv3.stencils.xppm``) or
filesystem paths; a directory is linted recursively (every ``*.py`` file
except ``_``-prefixed ones). Each module is imported and every
``StencilObject`` and ``SDFG`` found in its namespace is linted.

Exit status is 1 if any unsuppressed finding at or above ``--fail-on``
(default: error) is reported, 0 otherwise — wired for CI.
"""

from __future__ import annotations

import argparse
import importlib
import importlib.util
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

from repro.lint.dsl_rules import lint_stencil
from repro.lint.findings import (
    SEVERITIES,
    LintFinding,
    SuppressionIndex,
    sort_findings,
)
from repro.lint.sdfg_rules import lint_sdfg


def _iter_module_files(path: Path) -> Iterable[Path]:
    if path.is_dir():
        yield from sorted(
            p
            for p in path.rglob("*.py")
            if not p.name.startswith("_")
        )
    else:
        yield path


def _dotted_name(path: Path) -> str:
    """Derive the importable dotted name of a file inside a package, so
    the module is imported under its real identity (one shared instance
    with everything else importing it)."""
    parts = [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    return ".".join(reversed(parts))


def _load_module(target: str):
    path = Path(target)
    if path.exists():
        name = _dotted_name(path.resolve())
        try:
            return importlib.import_module(name)
        except ImportError:
            spec = importlib.util.spec_from_file_location(
                name or path.stem, path
            )
            module = importlib.util.module_from_spec(spec)
            spec.loader.exec_module(module)
            return module
    return importlib.import_module(target)


def collect_targets(module) -> Tuple[List, List]:
    """(stencils, sdfgs) found in a module namespace."""
    from repro.dsl.stencil import StencilObject
    from repro.sdfg.graph import SDFG

    stencils, sdfgs, seen = [], [], set()
    for name in sorted(vars(module)):
        obj = vars(module)[name]
        if id(obj) in seen:
            continue
        if isinstance(obj, StencilObject):
            stencils.append(obj)
            seen.add(id(obj))
        elif isinstance(obj, SDFG):
            sdfgs.append(obj)
            seen.add(id(obj))
    return stencils, sdfgs


def lint_target(target: str) -> List[LintFinding]:
    """Lint one module name or path; returns unsorted, unsuppressed-flagged
    findings."""
    findings: List[LintFinding] = []
    path = Path(target)
    if path.exists() and path.is_dir():
        for f in _iter_module_files(path):
            findings.extend(lint_target(str(f)))
        return findings
    module = _load_module(target)
    stencils, sdfgs = collect_targets(module)
    for stencil in stencils:
        findings.extend(lint_stencil(stencil))
    for sdfg in sdfgs:
        findings.extend(lint_sdfg(sdfg))
    return findings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="semantic static analysis for stencils and SDFGs",
    )
    parser.add_argument(
        "targets",
        nargs="+",
        help="module names or paths (directories are linted recursively)",
    )
    parser.add_argument(
        "--fail-on",
        choices=SEVERITIES,
        default="error",
        help="minimum severity that fails the run (default: error)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print findings silenced by # lint: ignore[...] comments",
    )
    args = parser.parse_args(argv)

    findings: List[LintFinding] = []
    for target in args.targets:
        try:
            findings.extend(lint_target(target))
        except (ImportError, OSError, SyntaxError) as exc:
            print(f"error: cannot lint {target!r}: {exc}", file=sys.stderr)
            return 2
    findings = sort_findings(SuppressionIndex().apply(findings))

    shown = suppressed = 0
    for f in findings:
        if f.suppressed:
            suppressed += 1
            if args.show_suppressed:
                print(f)
        else:
            shown += 1
            print(f)

    threshold = SEVERITIES.index(args.fail_on)
    failing = sum(
        1
        for f in findings
        if not f.suppressed and SEVERITIES.index(f.severity) <= threshold
    )
    print(
        f"{shown} finding{'s' if shown != 1 else ''}"
        f" ({suppressed} suppressed), {failing} at or above "
        f"{args.fail_on!r}"
    )
    return 1 if failing else 0
