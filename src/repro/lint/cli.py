"""``python -m repro.lint`` — lint stencil modules and SDFGs from the shell.

Targets are dotted module names (``repro.fv3.stencils.xppm``) or
filesystem paths; a directory is linted recursively (every ``*.py`` file
except ``_``-prefixed ones). Each module is imported and every
``StencilObject`` and ``SDFG`` found in its namespace is linted.

``--comm`` additionally runs the C3xx communication-protocol rules over
every :class:`~repro.lint.plan_ir.CommPlan` the target modules expose —
either as module-level instances or through a module-level
``build_comm_plans()`` hook (the convention :mod:`repro.fv3.acoustics`
follows).

``--scenario NAME`` discovers lint subjects *through the experiment
registry*: the named scenario is wired into a real (small) core with
:func:`repro.run.driver.build_core`, the resulting object graph is
walked, and every repro-owned module a live object came from is linted.
This catches stencils reachable only through runtime composition that a
plain module listing would miss.

Exit status is 1 if any unsuppressed finding at or above ``--fail-on``
(default: error) is reported, 0 otherwise — wired for CI. ``--json``
writes the machine-readable findings + summary next to the human report.
"""

from __future__ import annotations

import argparse
import importlib
import importlib.util
import json
import sys
from pathlib import Path
from typing import Iterable, List, Set, Tuple

from repro.lint.comm_rules import lint_comm_plan
from repro.lint.dsl_rules import lint_stencil
from repro.lint.findings import (
    SEVERITIES,
    LintFinding,
    SuppressionIndex,
    sort_findings,
)
from repro.lint.sdfg_rules import lint_sdfg


def _iter_module_files(path: Path) -> Iterable[Path]:
    if path.is_dir():
        yield from sorted(
            p
            for p in path.rglob("*.py")
            if not p.name.startswith("_")
        )
    else:
        yield path


def _dotted_name(path: Path) -> str:
    """Derive the importable dotted name of a file inside a package, so
    the module is imported under its real identity (one shared instance
    with everything else importing it)."""
    parts = [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    return ".".join(reversed(parts))


def _load_module(target: str):
    path = Path(target)
    if path.exists():
        name = _dotted_name(path.resolve())
        try:
            return importlib.import_module(name)
        except ImportError:
            spec = importlib.util.spec_from_file_location(
                name or path.stem, path
            )
            module = importlib.util.module_from_spec(spec)
            spec.loader.exec_module(module)
            return module
    return importlib.import_module(target)


def collect_targets(module) -> Tuple[List, List]:
    """(stencils, sdfgs) found in a module namespace."""
    from repro.dsl.stencil import StencilObject
    from repro.sdfg.graph import SDFG

    stencils, sdfgs, seen = [], [], set()
    for name in sorted(vars(module)):
        obj = vars(module)[name]
        if id(obj) in seen:
            continue
        if isinstance(obj, StencilObject):
            stencils.append(obj)
            seen.add(id(obj))
        elif isinstance(obj, SDFG):
            sdfgs.append(obj)
            seen.add(id(obj))
    return stencils, sdfgs


def collect_comm_plans(module) -> List:
    """CommPlans a module exposes: module-level instances, plus whatever
    a module-level ``build_comm_plans()`` hook constructs on demand
    (plans over real topologies are usually too expensive to build at
    import time)."""
    from repro.lint.plan_ir import CommPlan

    plans, seen = [], set()
    for name in sorted(vars(module)):
        obj = vars(module)[name]
        if isinstance(obj, CommPlan) and id(obj) not in seen:
            plans.append(obj)
            seen.add(id(obj))
    hook = vars(module).get("build_comm_plans")
    if callable(hook):
        for plan in hook():
            if isinstance(plan, CommPlan) and id(plan) not in seen:
                plans.append(plan)
                seen.add(id(plan))
    return plans


def lint_target(target: str, comm: bool = False) -> List[LintFinding]:
    """Lint one module name or path; returns unsorted, unsuppressed-flagged
    findings."""
    findings: List[LintFinding] = []
    path = Path(target)
    if path.exists() and path.is_dir():
        for f in _iter_module_files(path):
            findings.extend(lint_target(str(f), comm=comm))
        return findings
    module = _load_module(target)
    findings.extend(_lint_module(module, comm=comm))
    return findings


def _lint_module(module, comm: bool = False) -> List[LintFinding]:
    findings: List[LintFinding] = []
    stencils, sdfgs = collect_targets(module)
    for stencil in stencils:
        findings.extend(lint_stencil(stencil))
    for sdfg in sdfgs:
        findings.extend(lint_sdfg(sdfg))
    if comm:
        for plan in collect_comm_plans(module):
            findings.extend(lint_comm_plan(plan))
    return findings


def _reachable_repro_modules(root, max_objects: int = 10000) -> List[str]:
    """Module names of every repro-owned class encountered on the live
    object graph under ``root``.

    A breadth-first walk over ``__dict__`` values and container
    elements; anything whose *type* is defined in a ``repro.*`` module
    contributes that module. This is how ``--scenario`` finds stencils
    that only exist because the registry composed them — e.g. solvers
    built inside :func:`repro.run.driver.build_core` whose stencils live
    in modules nothing on the CLI named."""
    visited: Set[int] = set()
    modules: Set[str] = set()
    queue = [root]
    while queue and len(visited) < max_objects:
        obj = queue.pop()
        if id(obj) in visited:
            continue
        visited.add(id(obj))
        mod = getattr(type(obj), "__module__", "") or ""
        if mod.split(".", 1)[0] == "repro":
            modules.add(mod)
        if isinstance(obj, dict):
            queue.extend(obj.values())
            continue
        if isinstance(obj, (list, tuple, set, frozenset)):
            queue.extend(obj)
            continue
        if mod.split(".", 1)[0] != "repro":
            continue  # don't wander into numpy/stdlib internals
        d = getattr(obj, "__dict__", None)
        if d:
            queue.extend(d.values())
    return sorted(modules)


def lint_scenario(name: str, comm: bool = False) -> List[LintFinding]:
    """Build the named scenario into a tiny sequential core and lint
    every repro module its live object graph reaches."""
    from repro.run.driver import build_core
    from repro.scenarios import get_scenario

    scen = get_scenario(name)  # fail fast on unknown names
    core = build_core(
        name,
        scen.default_config(npx=12, npz=4),
        executor="sequential",
    )
    try:
        modules = _reachable_repro_modules(core)
        findings: List[LintFinding] = []
        linted: Set[str] = set()
        for mod_name in modules:
            module = sys.modules.get(mod_name)
            if module is None or mod_name in linted:
                continue
            linted.add(mod_name)
            findings.extend(_lint_module(module, comm=comm))
        return findings
    finally:
        core.finalize()
        if core.executor is not None:
            core.executor.shutdown()


def _findings_json(findings: List[LintFinding], fail_on: str) -> dict:
    threshold = SEVERITIES.index(fail_on)
    return {
        "fail_on": fail_on,
        "failing": sum(
            1
            for f in findings
            if not f.suppressed
            and SEVERITIES.index(f.severity) <= threshold
        ),
        "counts": {
            sev: sum(
                1
                for f in findings
                if f.severity == sev and not f.suppressed
            )
            for sev in SEVERITIES
        },
        "suppressed": sum(1 for f in findings if f.suppressed),
        "findings": [
            {
                "rule": f.rule,
                "name": f.name,
                "severity": f.severity,
                "subject": f.subject,
                "message": f.message,
                "location": str(f.location) if f.location else None,
                "hint": f.hint,
                "suppressed": f.suppressed,
            }
            for f in findings
        ],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="semantic static analysis for stencils and SDFGs",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        help="module names or paths (directories are linted recursively)",
    )
    parser.add_argument(
        "--comm",
        action="store_true",
        help="also run the C3xx protocol rules over CommPlans the "
        "targets expose (module-level plans and build_comm_plans() "
        "hooks)",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        default=[],
        metavar="NAME",
        help="lint every module reachable from this registered scenario "
        "(repeatable); builds a small sequential core to discover them",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="write findings and summary as JSON to PATH",
    )
    parser.add_argument(
        "--fail-on",
        choices=SEVERITIES,
        default="error",
        help="minimum severity that fails the run (default: error)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print findings silenced by # lint: ignore[...] comments",
    )
    args = parser.parse_args(argv)
    if not args.targets and not args.scenario:
        parser.error("no targets given (positional targets or --scenario)")

    findings: List[LintFinding] = []
    for target in args.targets:
        try:
            findings.extend(lint_target(target, comm=args.comm))
        except (ImportError, OSError, SyntaxError) as exc:
            print(f"error: cannot lint {target!r}: {exc}", file=sys.stderr)
            return 2
    for scenario in args.scenario:
        try:
            findings.extend(lint_scenario(scenario, comm=args.comm))
        except Exception as exc:
            print(
                f"error: cannot lint scenario {scenario!r}: {exc}",
                file=sys.stderr,
            )
            return 2
    findings = sort_findings(SuppressionIndex().apply(findings))

    # Scenario discovery and multiple targets can reach the same module
    # twice; a finding is one (rule, subject, location) fact.
    unique, seen_keys = [], set()
    for f in findings:
        if f.key() in seen_keys:
            continue
        seen_keys.add(f.key())
        unique.append(f)
    findings = unique

    shown = suppressed = 0
    for f in findings:
        if f.suppressed:
            suppressed += 1
            if args.show_suppressed:
                print(f)
        else:
            shown += 1
            print(f)

    if args.json:
        Path(args.json).write_text(
            json.dumps(_findings_json(findings, args.fail_on), indent=2)
            + "\n"
        )

    threshold = SEVERITIES.index(args.fail_on)
    failing = sum(
        1
        for f in findings
        if not f.suppressed and SEVERITIES.index(f.severity) <= threshold
    )
    print(
        f"{shown} finding{'s' if shown != 1 else ''}"
        f" ({suppressed} suppressed), {failing} at or above "
        f"{args.fail_on!r}"
    )
    return 1 if failing else 0
