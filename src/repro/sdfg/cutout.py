"""Cutout extraction: standalone sub-SDFGs for auto-tuning.

Transfer tuning "divides the SDFG of the full program into a set of
'cutout' subgraphs, each of which is tuned individually" (Sec. VI-B). A
cutout packages a contiguous slice of one state's kernels with exactly the
containers they touch, can synthesize random inputs, and can be timed and
transformed in isolation.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.sdfg.graph import SDFG, SDFGState
from repro.sdfg.nodes import Kernel


@dataclasses.dataclass
class Cutout:
    """A standalone sub-SDFG plus the container names it consumes/produces."""

    sdfg: SDFG
    inputs: List[str]
    outputs: List[str]
    source_state: str

    def synthesize_arrays(self, seed: int = 0) -> Dict[str, np.ndarray]:
        """Random input data (and zeroed outputs) for timing/validation."""
        rng = np.random.default_rng(seed)
        arrays = {}
        for name, desc in self.sdfg.arrays.items():
            if desc.transient:
                continue
            if name in self.inputs:
                arrays[name] = 0.5 + rng.random(desc.shape).astype(desc.dtype)
            else:
                arrays[name] = np.zeros(desc.shape, dtype=desc.dtype)
        return arrays

    def kernels(self) -> List[Kernel]:
        return self.sdfg.all_kernels()


def state_cutouts(sdfg, max_kernels: Optional[int] = None) -> List[Cutout]:
    """One cutout per state containing at least two kernels.

    Matches the paper's FVT case study where "the cutouts are its 127 SDFG
    states" and configurations are weakly-connected subgraphs with at least
    two maps.
    """
    out = []
    for state in sdfg.states:
        if len(state.kernels) < 2:
            continue
        if max_kernels is not None and len(state.kernels) > max_kernels:
            continue
        out.append(cutout_from_nodes(sdfg, state, state.kernels))
    return out


def cutout_from_nodes(sdfg, state: SDFGState, kernels: List[Kernel]) -> Cutout:
    """Extract the given kernels of one state into a standalone SDFG."""
    cut = SDFG(f"cutout_{state.name}")
    copied = [k.copy() for k in kernels]
    cstate = cut.add_state(state.name)
    for k in copied:
        cstate.add(k)

    written: set = set()
    inputs: List[str] = []
    outputs: List[str] = []
    for k in copied:
        reads, writes = state.node_reads_writes(k)
        for name in reads:
            desc = sdfg.arrays[name]
            # read before any in-cutout write: a genuine input
            cut.add_array(name, desc.shape, desc.dtype, desc.axes,
                          transient=name in written and desc.transient)
            if name not in written and name not in inputs:
                inputs.append(name)
        for name in writes:
            desc = sdfg.arrays[name]
            # containers produced inside the cutout keep their transient
            # flag so fusion transformations remain applicable during tuning
            transient = desc.transient and name not in inputs
            cut.add_array(name, desc.shape, desc.dtype, desc.axes,
                          transient=transient)
            written.add(name)
            if name not in outputs and not transient:
                outputs.append(name)
    return Cutout(cut, inputs, outputs, state.name)


def time_cutout(
    cutout: Cutout,
    repetitions: int = 3,
    arrays: Optional[Dict[str, np.ndarray]] = None,
) -> float:
    """Median wall-clock seconds of one cutout execution."""
    import time

    from repro.runtime.compile_cache import get_or_compile

    # tuning replays transformation sequences onto fresh SDFG copies, so
    # identical candidates recur constantly — the content-hash cache turns
    # those recompiles into lookups
    program = get_or_compile(cutout.sdfg)
    data = arrays if arrays is not None else cutout.synthesize_arrays()
    scalars = _default_scalars(cutout.sdfg)
    program(arrays=data, scalars=scalars)  # warm-up / compile
    times = []
    for _ in range(repetitions):
        t0 = time.perf_counter()
        program(arrays=data, scalars=scalars)
        times.append(time.perf_counter() - t0)
    return float(np.median(times))


def _default_scalars(sdfg) -> Dict[str, float]:
    """Neutral scalar values for timing runs (value does not affect cost)."""
    from repro.dsl.ir import ScalarRef, walk_expr

    names = set()
    for kernel in sdfg.all_kernels():
        for stmt, _ in kernel.statements():
            exprs = [stmt.value] + ([stmt.mask] if stmt.mask is not None else [])
            for e in exprs:
                for node in walk_expr(e):
                    if isinstance(node, ScalarRef):
                        names.add(node.name)
    return {n: 1.0 for n in names}
