"""Library-node expansion: StencilComputation → map-scoped Kernels.

Implements the paper's expansion with the default fusion strategy of
Sec. VI-A1: consecutive intervals of forward/backward solvers are combined
into a single kernel ("which allows to avoid flushing and re-initialization
of cached values to and from global memory between loops"); horizontal
computations likewise become one kernel per computation block.

Stencil temporaries used by a single kernel become kernel-local arrays
(registers/shared memory in the paper's mapping); temporaries crossing
kernel boundaries become SDFG transient containers allocated outside the
critical path.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.dsl.extents import Extent
from repro.dsl.ir import (
    Assign,
    FieldAccess,
    ScalarRef,
    map_expr,
)
from repro.sdfg.nodes import (
    NAIVE_HORIZONTAL_SCHEDULE,
    NAIVE_VERTICAL_SCHEDULE,
    Kernel,
    KernelSchedule,
    KernelSection,
    StencilComputation,
)


def _rename_expr(expr, field_map: Dict[str, str], scalar_map: Dict[str, str]):
    def repl(node):
        if isinstance(node, FieldAccess) and node.name in field_map:
            return FieldAccess(field_map[node.name], node.offset)
        if isinstance(node, ScalarRef) and node.name in scalar_map:
            return ScalarRef(scalar_map[node.name])
        return node

    return map_expr(expr, repl)


def _rename_stmt(stmt: Assign, field_map, scalar_map) -> Assign:
    return dataclasses.replace(
        stmt,
        target=FieldAccess(
            field_map.get(stmt.target.name, stmt.target.name), stmt.target.offset
        ),
        value=_rename_expr(stmt.value, field_map, scalar_map),
        mask=(
            _rename_expr(stmt.mask, field_map, scalar_map)
            if stmt.mask is not None
            else None
        ),
    )


def expand_node(node: StencilComputation, sdfg) -> List[Kernel]:
    """Expand one library node into kernels, registering transients."""
    sd = node.stencil_def
    extents = node.extents
    ni, nj, nk = node.domain

    # map flattened statement ids to extents
    stmt_extent = {
        id(s): e for s, e in zip(sd.statements(), extents.stmt_extents)
    }

    # which (computation, section) pairs touch each temporary?
    from repro.dsl.ir import expr_reads

    temp_users: Dict[str, set] = {t: set() for t in sd.temporaries}
    for ci, comp in enumerate(sd.computations):
        for si, block in enumerate(comp.intervals):
            for stmt in block.body:
                if stmt.target.name in temp_users:
                    temp_users[stmt.target.name].add((ci, si))
                for acc in expr_reads(stmt):
                    if acc.name in temp_users:
                        temp_users[acc.name].add((ci, si))

    fuse = node.schedule.fuse_intervals
    field_map = dict(node.mapping)
    local_by_comp: Dict[int, Dict[str, Extent]] = {}
    transient_origins: Dict[str, Tuple[int, int, int]] = {}
    for temp, users in temp_users.items():
        ext = extents.field_extents.get(temp, Extent.zero())
        comps_used = {ci for ci, _ in users}
        # local iff confined to the kernel it will land in
        is_local = len(comps_used) <= 1 and (fuse or len(users) <= 1)
        if is_local:
            ci = next(iter(comps_used)) if comps_used else 0
            local_by_comp.setdefault(ci, {})[temp] = ext
            field_map.setdefault(temp, temp)  # keep name inside the kernel
        else:
            shape = (
                ni - ext.i_lo + ext.i_hi,
                nj - ext.j_lo + ext.j_hi,
                nk - ext.k_lo + ext.k_hi,
            )
            cname = sdfg.add_transient(
                f"__tmp_{sd.name}_{temp}", shape, sd.temporaries[temp].dtype
            )
            field_map[temp] = cname
            transient_origins[cname] = (-ext.i_lo, -ext.j_lo, -ext.k_lo)

    kernels: List[Kernel] = []
    for ci, comp in enumerate(sd.computations):
        order = comp.order
        default_sched = KernelSchedule(
            iteration_order=(
                NAIVE_VERTICAL_SCHEDULE
                if order in ("FORWARD", "BACKWARD")
                else NAIVE_HORIZONTAL_SCHEDULE
            ),
            loop_dims=("K",) if order in ("FORWARD", "BACKWARD") else (),
            fuse_intervals=node.schedule.fuse_intervals,
            regions_as_predication=node.schedule.regions_as_predication,
            device=node.schedule.device,
        )
        locals_here = local_by_comp.get(ci, {})

        def make_section(block) -> KernelSection:
            stmts = [
                (
                    _rename_stmt(s, field_map, node.scalar_mapping),
                    stmt_extent[id(s)],
                )
                for s in block.body
            ]
            return KernelSection(block.interval, stmts)

        sections = [make_section(b) for b in comp.intervals]
        origins = dict(transient_origins)
        if default_sched.fuse_intervals or len(sections) == 1:
            kernels.append(
                Kernel(
                    f"{sd.name}_c{ci}",
                    order,
                    sections,
                    node.domain,
                    node.origin,
                    default_sched,
                    dict(locals_here),
                    node.bounds,
                    origins,
                )
            )
        else:
            for si, section in enumerate(sections):
                kernels.append(
                    Kernel(
                        f"{sd.name}_c{ci}_s{si}",
                        order,
                        [section],
                        node.domain,
                        node.origin,
                        default_sched.copy(),
                        dict(locals_here),
                        node.bounds,
                        dict(origins),
                    )
                )
    for kernel in kernels:
        kernel.source_file = sd.source_file
    return kernels


def expand_sdfg(sdfg) -> None:
    """Expand every library node in the SDFG in place."""
    for state in sdfg.states:
        new_nodes = []
        for node in state.nodes:
            if isinstance(node, StencilComputation):
                new_nodes.extend(expand_node(node, sdfg))
            else:
                new_nodes.append(node)
        state.nodes = new_nodes
