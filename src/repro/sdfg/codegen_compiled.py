"""Second emission target: SDFG kernels → compiled scalar loop nests.

Where :mod:`repro.sdfg.codegen` lowers each fused kernel to a sequence of
full-domain ``out=``-scheduled ufunc calls, this module lowers it to a
single scalar loop nest and hands that nest to a JIT engine
(:mod:`repro.runtime.jit`: numba, a system C compiler, or plain Python
for testing). The nest realizes the machine model's decisions for real:

- **k-blocking** with ``CPU_K_BLOCK`` (:mod:`repro.core.perfmodel`) so a
  kernel's working set stays cache-resident between statements, with the
  block size shrunk by :func:`repro.core.heuristics.select_cpu_tiles`
  until it fits the machine's last-level cache (``REPRO_KBLOCK``
  overrides);
- **i-tiling** from the kernel's tuned ``schedule.tile_sizes``;
- **in-rank threading** over the outer i/tile loop (OpenMP under the C
  engine, ``prange`` under numba), ``REPRO_THREADS`` sets the width.

Bit-exactness against the NumPy backend is the hard contract. A kernel is
only lowered when every operation in it has a scalar form provably
bit-identical to the NumPy ufunc (fastmath stays off, ``-ffp-contract=off``
forbids FMA contraction, min/max/sign replicate NumPy's NaN and signed-zero
behaviour, int64 arithmetic wraps two's-complement). Anything outside that
whitelist — transcendentals (libm is not bit-identical to NumPy), ``**``,
``%``, ``//``, exotic dtypes, self-reads at an offset — raises
:class:`IneligibleKernel` and that one kernel falls back to the parent's
ufunc emission *within the same plan*; the rest of the program still runs
compiled.

Loop orders are chosen per kernel so scalar execution provably matches
NumPy's statement-at-a-time semantics:

- PARALLEL kernels run statement-major inside each k-block. Blocking is
  legal unless a statement reads an in-kernel-written name at dk>0, or at
  any dk≠0 written by a *later* statement, or reads a written field that
  has no K axis across statements — those force a single full-K block.
- FORWARD/BACKWARD kernels run column-major (all levels of one (i,j)
  column before the next) when no statement reads an in-kernel-written
  name at a horizontal offset, else level-major — which is exactly the
  NumPy emission order.
"""

from __future__ import annotations

import ctypes
import dataclasses
import math
import os
import re
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dsl.ir import (
    Assign,
    AxisIndexExpr,
    BinOp,
    Call,
    Expr,
    FieldAccess,
    Literal,
    ScalarRef,
    Ternary,
    UnaryOp,
    expr_reads,
    walk_expr,
)
from repro.runtime import jit
from repro.sdfg.codegen import (
    CompiledSDFG,
    _locals_needing_zero,
    _ranges_for,
    _SourceBuilder,
)
from repro.sdfg.nodes import Kernel

__all__ = [
    "IneligibleKernel",
    "PlanBindError",
    "CompiledPlan",
    "compile_sdfg_compiled",
    "lower_kernel",
]


class IneligibleKernel(Exception):
    """This kernel has no bit-exact scalar lowering; use ufunc emission."""


class PlanBindError(ValueError):
    """An array passed at call time does not match the compiled plan."""


#: dtype.str → scalar type tag: "d" double, "l" int64, "b" bool
_TAGS = {"<f8": "d", "<i8": "l", "|b1": "b"}
_CTYPE = {"d": "double", "l": "int64_t", "b": "unsigned char"}

#: NaN- and signed-zero-exact scalar equivalents of the NumPy ufuncs
#: (probed: np.maximum/minimum return the *second* argument on ties, NaN
#: propagates from either side; np.sign maps ±0.0 → +0.0 and NaN → NaN).
_C_PREAMBLE = """\
#include <math.h>
#include <stdint.h>

static inline double __r_fmax(double a, double b)
{ return (a > b || a != a) ? a : b; }
static inline double __r_fmin(double a, double b)
{ return (a < b || a != a) ? a : b; }
static inline double __r_sign(double x)
{ return x > 0.0 ? 1.0 : (x < 0.0 ? -1.0 : (x != x ? x : 0.0)); }
static inline int64_t __r_lmax(int64_t a, int64_t b)
{ return a > b ? a : b; }
static inline int64_t __r_lmin(int64_t a, int64_t b)
{ return a < b ? a : b; }
static inline int64_t __r_labs(int64_t x)
{ return x < 0 ? (int64_t)(0u - (uint64_t)x) : x; }
static inline int64_t __r_lsign(int64_t x)
{ return x > 0 ? 1 : (x < 0 ? -1 : 0); }
"""


def _promote(a: str, b: str) -> str:
    if "d" in (a, b):
        return "d"
    if "l" in (a, b):
        return "l"
    return "b"


@dataclasses.dataclass
class _NameInfo:
    """Everything the emitters need to index one array argument."""

    param: str      # parameter name inside the generated function
    runtime: str    # driver-side variable passed at the call site
    axes: str
    origin: Tuple[int, int, int]
    shape: Tuple[int, ...]
    tag: str
    strides: Tuple[int, ...]  # element strides, one per axis present


@dataclasses.dataclass
class _PlanStmt:
    """One executable statement with its resolved iteration ranges."""

    stmt: Assign
    irng: Tuple[int, int]
    jrng: Tuple[int, int]
    #: region predication rectangle (compute-relative) or None
    guard: Optional[Tuple[Tuple[int, int], Tuple[int, int]]]


@dataclasses.dataclass
class _PlanSection:
    krng: Tuple[int, int]
    stmts: List[_PlanStmt]


@dataclasses.dataclass
class KernelUnit:
    """One lowered kernel: sources for every engine plus call metadata."""

    label: str
    func_name: str
    #: driver-side expressions for the array arguments, in order
    runtime_args: List[str]
    #: (shape, dtype.str) per array argument, validated at each call
    arg_specs: List[Tuple[Tuple[int, ...], str]]
    scalar_names: List[str]
    c_source: str
    py_source: str
    k_block: int
    full_k: bool
    parallel_dim: str  # "i" (parallel/level) or "column" or "none"


def _k_params(kernel: Kernel, sdfg) -> Tuple[int, Optional[int]]:
    """(k-block size, i-tile) for a kernel; ``REPRO_KBLOCK`` overrides."""
    from repro.core.heuristics import select_cpu_tiles
    from repro.obs.metrics import observed_machine

    kb, i_tile = select_cpu_tiles(kernel, sdfg, observed_machine())
    env = os.environ.get("REPRO_KBLOCK")
    if env:
        kb = max(1, int(env))
    return kb, i_tile


class _Lowerer:
    """Shared analysis + per-language emission for one kernel."""

    def __init__(self, kernel: Kernel, sdfg, func_name: str, threads: int):
        self.kernel = kernel
        self.sdfg = sdfg
        self.func_name = func_name
        self.threads = threads
        self.infos: Dict[str, _NameInfo] = {}
        self.scalars: List[str] = []
        self.sections: List[_PlanSection] = []
        self.full_k = False
        self.column_major = True
        self._collect()
        self._resolve()
        self._analyze()

    # ---- argument collection -------------------------------------------

    def _collect(self) -> None:
        kernel, sdfg = self.kernel, self.sdfg
        ni, nj, nk = kernel.domain
        names, scalars = set(), set()
        for stmt, _ in kernel.statements():
            names.add(stmt.target.name)
            for acc in expr_reads(stmt):
                names.add(acc.name)
            exprs = [stmt.value] + ([stmt.mask] if stmt.mask is not None else [])
            for e in exprs:
                for node in walk_expr(e):
                    if isinstance(node, ScalarRef):
                        scalars.add(node.name)
        for name in sorted(names):
            if name in kernel.local_arrays:
                ext = kernel.local_arrays[name]
                shape = (
                    ni - ext.i_lo + ext.i_hi,
                    nj - ext.j_lo + ext.j_hi,
                    nk - ext.k_lo + ext.k_hi,
                )
                info = _NameInfo(
                    param=f"t_{name}",
                    runtime=f"__loc{kernel.node_id}_{name}",
                    axes="IJK",
                    origin=(-ext.i_lo, -ext.j_lo, -ext.k_lo),
                    shape=shape,
                    tag="d",
                    strides=(shape[1] * shape[2], shape[2], 1),
                )
            else:
                desc = sdfg.arrays[name]
                tag = _TAGS.get(np.dtype(desc.dtype).str)
                if tag is None:
                    raise IneligibleKernel(
                        f"unsupported dtype {desc.dtype!r} for {name!r}"
                    )
                shape = tuple(desc.shape)
                if len(shape) != len(desc.axes) or not all(
                    isinstance(s, (int, np.integer)) and s > 0 for s in shape
                ):
                    raise IneligibleKernel(f"non-concrete shape for {name!r}")
                strides = []
                acc = 1
                for s in reversed(shape):
                    strides.append(acc)
                    acc *= int(s)
                info = _NameInfo(
                    param=f"f_{name}",
                    runtime=name,
                    axes=desc.axes,
                    origin=kernel.origin_of(name),
                    shape=shape,
                    tag=tag,
                    strides=tuple(reversed(strides)),
                )
            self.infos[name] = info
        self.scalars = sorted(scalars)
        self.arg_names = sorted(names)

    # ---- iteration-range resolution ------------------------------------

    def _resolve(self) -> None:
        kernel = self.kernel
        nk = kernel.domain[2]
        for section in kernel.sections:
            k0, k1 = section.interval.resolve(nk)
            k0, k1 = max(k0, 0), min(k1, nk)
            if k0 >= k1:
                continue
            plan_stmts = []
            for stmt, ext in section.statements:
                full, restricted = _ranges_for(kernel, stmt, ext)
                predicate = (
                    kernel.schedule.regions_as_predication
                    and stmt.region is not None
                )
                if stmt.region is not None and restricted is None:
                    continue  # region empty on this rank
                irng, jrng = full if predicate else (restricted or full)
                guard = restricted if predicate else None
                tinfo = self.infos[stmt.target.name]
                if tinfo.axes == "K":
                    raise IneligibleKernel(
                        f"K-axis target {stmt.target.name!r}"
                    )
                if tinfo.axes == "IJ" and k1 - k0 != 1:
                    raise IneligibleKernel(
                        f"2D target {stmt.target.name!r} over a "
                        "multi-level interval"
                    )
                plan_stmts.append(_PlanStmt(stmt, irng, jrng, guard))
            if plan_stmts:
                self.sections.append(_PlanSection((k0, k1), plan_stmts))
        if not self.sections:
            raise IneligibleKernel("no executable statements")

    # ---- legality analysis ----------------------------------------------

    def _analyze(self) -> None:
        flat: List[_PlanStmt] = [
            ps for sec in self.sections for ps in sec.stmts
        ]
        writers: Dict[str, List[int]] = {}
        for idx, ps in enumerate(flat):
            writers.setdefault(ps.stmt.target.name, []).append(idx)
        parallel = self.kernel.order == "PARALLEL"
        for idx, ps in enumerate(flat):
            for acc in expr_reads(ps.stmt):
                if acc.name == ps.stmt.target.name and (
                    acc.offset != (0, 0, 0)
                    if parallel
                    else acc.offset[0] != 0 or acc.offset[1] != 0
                ):
                    # NumPy materializes a statement's full RHS before
                    # assigning; an in-place scalar loop would read
                    # already-updated points. Sequential kernels evaluate
                    # per level, so only *horizontal* self-reads clash —
                    # vertical self-reads are the solver recurrence both
                    # forms execute identically.
                    raise IneligibleKernel(
                        f"{ps.stmt.target.name!r} reads itself at offset "
                        f"{acc.offset}"
                    )
                widx = writers.get(acc.name)
                if not widx:
                    continue
                if acc.offset[0] != 0 or acc.offset[1] != 0:
                    self.column_major = False
                if "K" not in self.infos[acc.name].axes:
                    if any(w != idx for w in widx):
                        self.full_k = True
                    continue
                dk = acc.offset[2]
                if dk == 0:
                    continue
                if dk > 0 or any(w > idx for w in widx):
                    self.full_k = True

    # ---- statement fusion -----------------------------------------------

    @staticmethod
    def _fuse_clusters(stmts: List[_PlanStmt]) -> List[List[_PlanStmt]]:
        """Partition a section's statements into maximal consecutive runs
        that may execute fused in one loop body (per grid point).

        Fusing statements A;B per point is bit-identical to running A's
        full plane before B's unless a point of B observes a *different*
        point of the plane mid-update. Hence a statement joins the current
        cluster only when (1) it iterates the exact same i/j ranges and
        region guard, (2) it reads no cluster-written name at a nonzero
        offset (RAW: it would see partially-updated neighbours), and (3)
        it writes no name the cluster reads at a nonzero offset (WAR: an
        earlier statement's neighbour read would see the new value).
        Zero-offset dependencies are safe — at each point the cluster
        executes its statements in program order.
        """
        clusters: List[List[_PlanStmt]] = []
        cur: List[_PlanStmt] = []
        writes: set = set()
        nonzero_reads: set = set()

        def flush():
            nonlocal cur
            if cur:
                clusters.append(cur)
            cur = []
            writes.clear()
            nonzero_reads.clear()

        for ps in stmts:
            if cur:
                head = cur[0]
                compatible = (
                    ps.irng == head.irng
                    and ps.jrng == head.jrng
                    and ps.guard == head.guard
                    and ps.stmt.target.name not in nonzero_reads
                    and not any(
                        acc.name in writes and acc.offset != (0, 0, 0)
                        for acc in expr_reads(ps.stmt)
                    )
                )
                if not compatible:
                    flush()
            cur.append(ps)
            writes.add(ps.stmt.target.name)
            for acc in expr_reads(ps.stmt):
                if acc.offset != (0, 0, 0):
                    nonzero_reads.add(acc.name)
        flush()
        return clusters

    # ---- expression emission --------------------------------------------

    def _index_c(self, info: _NameInfo, off) -> str:
        axvar = {"I": ("i", 0), "J": ("j", 1), "K": ("k", 2)}
        terms = []
        for ax, stride in zip(info.axes, info.strides):
            var, d = axvar[ax]
            base = info.origin[d] + off[d]
            term = f"({var} + ({base}))" if base else var
            terms.append(f"{term} * {stride}" if stride != 1 else term)
        return " + ".join(terms)

    def _index_py(self, info: _NameInfo, off) -> str:
        axvar = {"I": ("i", 0), "J": ("j", 1), "K": ("k", 2)}
        terms = []
        for ax in info.axes:
            var, d = axvar[ax]
            base = info.origin[d] + off[d]
            terms.append(f"{var} + ({base})" if base else var)
        return ", ".join(terms)

    def _expr(self, expr: Expr, c: bool) -> Tuple[str, str]:
        """Emit one expression; returns (code, tag)."""
        e = lambda x: self._expr(x, c)  # noqa: E731
        if isinstance(expr, Literal):
            v = expr.value
            if isinstance(v, bool):
                return (("1" if v else "0") if c else repr(v), "b")
            if isinstance(v, int):
                return (f"((int64_t){v}LL)" if c else repr(v), "l")
            if not math.isfinite(v):
                raise IneligibleKernel(f"non-finite literal {v!r}")
            return (float(v).hex() if c else repr(float(v)), "d")
        if isinstance(expr, ScalarRef):
            return f"s_{expr.name}", "d"
        if isinstance(expr, AxisIndexExpr):
            return {"I": "i", "J": "j", "K": "k"}[expr.axis], "l"
        if isinstance(expr, FieldAccess):
            info = self.infos[expr.name]
            idx = (
                self._index_c(info, expr.offset)
                if c
                else self._index_py(info, expr.offset)
            )
            return f"{info.param}[{idx}]", info.tag
        if isinstance(expr, BinOp):
            if expr.op in ("and", "or"):
                (A, _), (B, _) = e(expr.left), e(expr.right)
                op = (
                    ("&&" if expr.op == "and" else "||")
                    if c
                    else expr.op
                )
                return f"((({A}) != 0) {op} (({B}) != 0))", "b"
            (A, ta), (B, tb) = e(expr.left), e(expr.right)
            if expr.op in ("<", ">", "<=", ">=", "==", "!="):
                return f"(({A}) {expr.op} ({B}))", "b"
            if expr.op == "/":
                if c:
                    return f"((double)({A}) / (double)({B}))", "d"
                return f"(({A}) / ({B}))", "d"
            if expr.op in ("+", "-", "*"):
                t = _promote(ta, tb)
                if t == "b":
                    raise IneligibleKernel("arithmetic on two booleans")
                if c and t == "l":
                    # compute in uint64: two's-complement wrap without the
                    # signed-overflow UB (matches NumPy int64 semantics)
                    return (
                        f"((int64_t)((uint64_t)({A}) {expr.op} "
                        f"(uint64_t)({B})))",
                        "l",
                    )
                return f"(({A}) {expr.op} ({B}))", t
            raise IneligibleKernel(f"operator {expr.op!r}")
        if isinstance(expr, UnaryOp):
            X, t = e(expr.operand)
            if expr.op == "not":
                return (
                    f"(({X}) == 0)" if c else f"(not (({X}) != 0))",
                    "b",
                )
            if t == "b":
                raise IneligibleKernel("negation of a boolean")
            if c and t == "l":
                return f"((int64_t)(-(uint64_t)({X})))", "l"
            return f"(-({X}))", t
        if isinstance(expr, Call):
            return self._call(expr, c)
        if isinstance(expr, Ternary):
            C_, _ = e(expr.cond)
            (A, ta), (B, tb) = e(expr.then), e(expr.orelse)
            t = _promote(ta, tb)
            if c:
                return f"((({C_}) != 0) ? ({A}) : ({B}))", t
            return f"(({A}) if (({C_}) != 0) else ({B}))", t
        raise IneligibleKernel(f"expression {type(expr).__name__}")

    def _call(self, expr: Call, c: bool) -> Tuple[str, str]:
        f = expr.func
        args = [self._expr(a, c) for a in expr.args]
        if f == "sqrt":
            (X, t) = args[0]
            if t == "b":
                raise IneligibleKernel("sqrt of a boolean")
            return (f"sqrt((double)({X}))" if c else f"np.sqrt({X})", "d")
        if f == "abs":
            (X, t) = args[0]
            if not c:
                return f"np.abs({X})", t
            if t == "d":
                return f"fabs({X})", "d"
            if t == "l":
                return f"__r_labs({X})", "l"
            return f"({X})", "b"  # np.abs on bool is the identity
        if f in ("floor", "ceil", "trunc"):
            (X, t) = args[0]
            if t == "b":
                raise IneligibleKernel(f"{f} of a boolean")
            if t == "l":
                return f"({X})", "l"  # NumPy preserves integer dtype
            return (f"{f}({X})" if c else f"np.{f}({X})", "d")
        if f in ("min", "max"):
            (A, ta), (B, tb) = args
            t = _promote(ta, tb)
            if not c:
                np_f = "np.minimum" if f == "min" else "np.maximum"
                return f"{np_f}(({A}), ({B}))", t
            if t == "b":
                op = "&&" if f == "min" else "||"
                return f"((({A}) != 0) {op} (({B}) != 0))", "b"
            helper = {"d": "__r_f", "l": "__r_l"}[t] + f
            return f"{helper}(({A}), ({B}))", t
        if f == "sign":
            (X, t) = args[0]
            if t == "b":
                raise IneligibleKernel("sign of a boolean")
            if not c:
                return f"np.sign({X})", t
            return (f"__r_sign({X})" if t == "d" else f"__r_lsign({X})", t)
        raise IneligibleKernel(
            f"{f}() has no bit-exact scalar form (libm differs from NumPy)"
        )

    def _store(self, ps: _PlanStmt, c: bool) -> str:
        info = self.infos[ps.stmt.target.name]
        V, tv = self._expr(ps.stmt.value, c)
        if c:
            idx = self._index_c(info, (0, 0, 0))
            if info.tag == "b":
                V = f"(unsigned char)(({V}) != 0)"
            elif info.tag == "l" and tv == "d":
                V = f"(int64_t)({V})"  # C truncation == NumPy float→int
            return f"{info.param}[{idx}] = {V};"
        idx = self._index_py(info, (0, 0, 0))
        # NumPy element assignment performs the same dtype cast the array
        # backend's full-array assignment does
        return f"{info.param}[{idx}] = {V}"

    # ---- C loop nests ----------------------------------------------------

    @staticmethod
    def _omp() -> str:
        # ignored (silently) when the object was built without -fopenmp
        return (
            "#pragma omp parallel for schedule(static) "
            "num_threads((int)nthreads) if(nthreads > 1)"
        )

    def emit_c(self, k_block: int, i_tile: Optional[int]) -> str:
        out = _SourceBuilder()
        params = [
            f"{_CTYPE[self.infos[n].tag]}* {self.infos[n].param}"
            for n in self.arg_names
        ]
        params += [f"double s_{s}" for s in self.scalars]
        params.append("int64_t nthreads")
        out.emit(f"void {self.func_name}({', '.join(params)})")
        out.emit("{")
        out.indent += 1
        out.emit("(void)nthreads;")
        if self.kernel.order == "PARALLEL":
            self._c_parallel(out, k_block, i_tile)
        elif self.column_major:
            self._c_column(out, i_tile)
        else:
            self._c_level(out, i_tile)
        out.indent -= 1
        out.emit("}")
        return out.source()

    def _c_parallel(self, out, kb: int, i_tile) -> None:
        kmin = min(sec.krng[0] for sec in self.sections)
        kmax = max(sec.krng[1] for sec in self.sections)
        blocked = not self.full_k and 0 < kb < (kmax - kmin)
        if blocked:
            out.emit(f"for (int64_t __b = {kmin}; __b < {kmax}; __b += {kb})")
            out.emit("{")
            out.indent += 1
            out.emit(
                f"int64_t __be = __b + {kb} < {kmax} ? __b + {kb} : {kmax};"
            )
        for sec in self.sections:
            k0, k1 = sec.krng
            if blocked:
                out.emit("{")
                out.indent += 1
                out.emit(f"int64_t __k0 = {k0} > __b ? {k0} : __b;")
                out.emit(f"int64_t __k1 = {k1} < __be ? {k1} : __be;")
                out.emit("if (__k0 < __k1) {")
                out.indent += 1
                klo, khi = "__k0", "__k1"
            else:
                klo, khi = str(k0), str(k1)
            for group in self._fuse_clusters(sec.stmts):
                self._c_stmt_loops(out, group, i_tile, klo=klo, khi=khi)
            if blocked:
                out.indent -= 1
                out.emit("}")
                out.indent -= 1
                out.emit("}")
        if blocked:
            out.indent -= 1
            out.emit("}")

    def _c_stmt_loops(self, out, group, i_tile, klo=None, khi=None) -> None:
        """omp-parallel i (or i-tile) loop, j loop, optional region guard,
        optional inner k loop [klo, khi), then the fused statement bodies.

        ``group`` is one fusion cluster (:meth:`_fuse_clusters`) — or a
        single statement wrapped in a list; all members share ranges and
        guard, so the loop structure comes from the first."""
        if isinstance(group, _PlanStmt):
            group = [group]
        ps = group[0]
        i0, i1 = ps.irng
        j0, j1 = ps.jrng
        opens = 0
        out.emit(self._omp())
        if i_tile and 0 < i_tile < i1 - i0:
            out.emit(
                f"for (int64_t __t = {i0}; __t < {i1}; __t += {i_tile}) {{"
            )
            out.indent += 1
            opens += 1
            out.emit(
                f"int64_t __te = __t + {i_tile} < {i1} ? "
                f"__t + {i_tile} : {i1};"
            )
            out.emit("for (int64_t i = __t; i < __te; ++i) {")
        else:
            out.emit(f"for (int64_t i = {i0}; i < {i1}; ++i) {{")
        out.indent += 1
        opens += 1
        out.emit(f"for (int64_t j = {j0}; j < {j1}; ++j) {{")
        out.indent += 1
        opens += 1
        if ps.guard is not None:
            (a0, a1), (b0, b1) = ps.guard
            out.emit(
                f"if (i >= {a0} && i < {a1} && j >= {b0} && j < {b1}) {{"
            )
            out.indent += 1
            opens += 1
        if klo is not None:
            out.emit(f"for (int64_t k = {klo}; k < {khi}; ++k) {{")
            out.indent += 1
            opens += 1
        for member in group:
            self._c_body(out, member)
        while opens:
            out.indent -= 1
            out.emit("}")
            opens -= 1

    def _c_body(self, out, ps) -> None:
        if ps.stmt.mask is not None:
            M, _ = self._expr(ps.stmt.mask, True)
            out.emit(f"if (({M}) != 0) {{")
            out.indent += 1
            out.emit(self._store(ps, True))
            out.indent -= 1
            out.emit("}")
        else:
            out.emit(self._store(ps, True))

    def _c_column(self, out, i_tile) -> None:
        flat = [ps for sec in self.sections for ps in sec.stmts]
        I0 = min(ps.irng[0] for ps in flat)
        I1 = max(ps.irng[1] for ps in flat)
        J0 = min(ps.jrng[0] for ps in flat)
        J1 = max(ps.jrng[1] for ps in flat)
        opens = 0
        out.emit(self._omp())
        if i_tile and 0 < i_tile < I1 - I0:
            out.emit(
                f"for (int64_t __t = {I0}; __t < {I1}; __t += {i_tile}) {{"
            )
            out.indent += 1
            opens += 1
            out.emit(
                f"int64_t __te = __t + {i_tile} < {I1} ? "
                f"__t + {i_tile} : {I1};"
            )
            out.emit("for (int64_t i = __t; i < __te; ++i) {")
        else:
            out.emit(f"for (int64_t i = {I0}; i < {I1}; ++i) {{")
        out.indent += 1
        opens += 1
        out.emit(f"for (int64_t j = {J0}; j < {J1}; ++j) {{")
        out.indent += 1
        opens += 1
        for sec in self.sections:
            k0, k1 = sec.krng
            if self.kernel.order == "FORWARD":
                out.emit(f"for (int64_t k = {k0}; k < {k1}; ++k) {{")
            else:
                out.emit(f"for (int64_t k = {k1} - 1; k >= {k0}; --k) {{")
            out.indent += 1
            for ps in sec.stmts:
                conds = []
                if ps.irng != (I0, I1):
                    conds.append(f"i >= {ps.irng[0]} && i < {ps.irng[1]}")
                if ps.jrng != (J0, J1):
                    conds.append(f"j >= {ps.jrng[0]} && j < {ps.jrng[1]}")
                if ps.guard is not None:
                    (a0, a1), (b0, b1) = ps.guard
                    conds.append(
                        f"i >= {a0} && i < {a1} && j >= {b0} && j < {b1}"
                    )
                if conds:
                    out.emit(f"if ({' && '.join(conds)}) {{")
                    out.indent += 1
                    self._c_body(out, ps)
                    out.indent -= 1
                    out.emit("}")
                else:
                    self._c_body(out, ps)
            out.indent -= 1
            out.emit("}")
        while opens:
            out.indent -= 1
            out.emit("}")
            opens -= 1

    def _c_level(self, out, i_tile) -> None:
        """Exactly the parent's emission order: per section, a sequential
        k sweep, statements as full horizontal planes inside."""
        for sec in self.sections:
            k0, k1 = sec.krng
            if self.kernel.order == "FORWARD":
                out.emit(f"for (int64_t k = {k0}; k < {k1}; ++k) {{")
            else:
                out.emit(f"for (int64_t k = {k1} - 1; k >= {k0}; --k) {{")
            out.indent += 1
            for ps in sec.stmts:
                self._c_stmt_loops(out, ps, i_tile)
            out.indent -= 1
            out.emit("}")

    # ---- Python loop nests ----------------------------------------------

    def emit_py(self, k_block: int) -> str:
        out = _SourceBuilder()
        params = [self.infos[n].param for n in self.arg_names]
        params += [f"s_{s}" for s in self.scalars]
        out.emit(f"def {self.func_name}({', '.join(params)}):")
        out.indent += 1
        if self.kernel.order == "PARALLEL":
            self._py_parallel(out, k_block)
        elif self.column_major:
            self._py_column(out)
        else:
            self._py_level(out)
        out.emit("return None")
        return out.source()

    def _py_parallel(self, out, kb: int) -> None:
        kmin = min(sec.krng[0] for sec in self.sections)
        kmax = max(sec.krng[1] for sec in self.sections)
        blocked = not self.full_k and 0 < kb < (kmax - kmin)
        base = out.indent
        if blocked:
            out.emit(f"for __b in range({kmin}, {kmax}, {kb}):")
            out.indent += 1
            out.emit(f"__be = min(__b + {kb}, {kmax})")
        for sec in self.sections:
            k0, k1 = sec.krng
            if blocked:
                out.emit(f"__k0 = max({k0}, __b)")
                out.emit(f"__k1 = min({k1}, __be)")
                out.emit("if __k0 < __k1:")
                out.indent += 1
                klo, khi = "__k0", "__k1"
            else:
                klo, khi = str(k0), str(k1)
            for group in self._fuse_clusters(sec.stmts):
                self._py_stmt_loops(out, group, klo=klo, khi=khi)
            if blocked:
                out.indent -= 1
        out.indent = base

    def _py_stmt_loops(self, out, group, klo=None, khi=None) -> None:
        if isinstance(group, _PlanStmt):
            group = [group]
        ps = group[0]
        base = out.indent
        i0, i1 = ps.irng
        j0, j1 = ps.jrng
        out.emit(f"for i in __prange({i0}, {i1}):")
        out.indent += 1
        out.emit(f"for j in range({j0}, {j1}):")
        out.indent += 1
        if ps.guard is not None:
            (a0, a1), (b0, b1) = ps.guard
            out.emit(f"if {a0} <= i < {a1} and {b0} <= j < {b1}:")
            out.indent += 1
        if klo is not None:
            out.emit(f"for k in range({klo}, {khi}):")
            out.indent += 1
        for member in group:
            self._py_body(out, member)
        out.indent = base

    def _py_body(self, out, ps) -> None:
        if ps.stmt.mask is not None:
            M, _ = self._expr(ps.stmt.mask, False)
            out.emit(f"if ({M}) != 0:")
            out.indent += 1
            out.emit(self._store(ps, False))
            out.indent -= 1
        else:
            out.emit(self._store(ps, False))

    def _py_column(self, out) -> None:
        flat = [ps for sec in self.sections for ps in sec.stmts]
        I0 = min(ps.irng[0] for ps in flat)
        I1 = max(ps.irng[1] for ps in flat)
        J0 = min(ps.jrng[0] for ps in flat)
        J1 = max(ps.jrng[1] for ps in flat)
        base = out.indent
        out.emit(f"for i in __prange({I0}, {I1}):")
        out.indent += 1
        out.emit(f"for j in range({J0}, {J1}):")
        out.indent += 1
        for sec in self.sections:
            k0, k1 = sec.krng
            if self.kernel.order == "FORWARD":
                out.emit(f"for k in range({k0}, {k1}):")
            else:
                out.emit(f"for k in range({k1} - 1, {k0} - 1, -1):")
            out.indent += 1
            for ps in sec.stmts:
                conds = []
                if ps.irng != (I0, I1):
                    conds.append(f"{ps.irng[0]} <= i < {ps.irng[1]}")
                if ps.jrng != (J0, J1):
                    conds.append(f"{ps.jrng[0]} <= j < {ps.jrng[1]}")
                if ps.guard is not None:
                    (a0, a1), (b0, b1) = ps.guard
                    conds.append(
                        f"{a0} <= i < {a1} and {b0} <= j < {b1}"
                    )
                if conds:
                    out.emit(f"if {' and '.join(conds)}:")
                    out.indent += 1
                    self._py_body(out, ps)
                    out.indent -= 1
                else:
                    self._py_body(out, ps)
            out.indent -= 1
        out.indent = base

    def _py_level(self, out) -> None:
        for sec in self.sections:
            k0, k1 = sec.krng
            if self.kernel.order == "FORWARD":
                out.emit(f"for k in range({k0}, {k1}):")
            else:
                out.emit(f"for k in range({k1} - 1, {k0} - 1, -1):")
            out.indent += 1
            for ps in sec.stmts:
                self._py_stmt_loops(out, ps)
            out.indent -= 1


_TAG_DTYPE = {"d": "<f8", "l": "<i8", "b": "|b1"}


def lower_kernel(kernel: Kernel, sdfg, func_name: str, threads: int) -> KernelUnit:
    """Lower one kernel to a :class:`KernelUnit`, or raise
    :class:`IneligibleKernel` when no bit-exact scalar form exists."""
    if kernel.order not in ("PARALLEL", "FORWARD", "BACKWARD"):
        raise IneligibleKernel(f"iteration order {kernel.order!r}")
    low = _Lowerer(kernel, sdfg, func_name, threads)
    k_block, i_tile = _k_params(kernel, sdfg)
    tile = kernel.schedule.tile_sizes
    if i_tile is None and tile and tile[0] and tile[0] > 0:
        i_tile = tile[0]
    c_source = low.emit_c(k_block, i_tile)
    py_source = low.emit_py(k_block)
    return KernelUnit(
        label=kernel.label,
        func_name=func_name,
        runtime_args=[low.infos[n].runtime for n in low.arg_names],
        arg_specs=[
            (tuple(low.infos[n].shape), _TAG_DTYPE[low.infos[n].tag])
            for n in low.arg_names
        ],
        scalar_names=low.scalars,
        c_source=c_source,
        py_source=py_source,
        k_block=k_block,
        full_k=low.full_k,
        parallel_dim="i",
    )


# ---------------------------------------------------------------------------
# runtime call wrappers
# ---------------------------------------------------------------------------


def _check_args(args, specs, label):
    for arr, (shape, dstr) in zip(args, specs):
        if (
            getattr(arr, "shape", None) != shape
            or arr.dtype.str != dstr
            or not arr.flags.c_contiguous
        ):
            raise PlanBindError(
                f"kernel {label!r}: array does not match the compiled plan "
                f"(expected C-contiguous {shape}/{dstr}, got "
                f"{getattr(arr, 'shape', None)}/"
                f"{getattr(getattr(arr, 'dtype', None), 'str', None)})"
            )


def _c_caller(cfn, unit: KernelUnit, threads: int):
    narr = len(unit.arg_specs)

    def call(*args):
        _check_args(args[:narr], unit.arg_specs, unit.label)
        cargs = [arr.ctypes.data for arr in args[:narr]]
        cargs.extend(float(s) for s in args[narr:])
        cargs.append(threads)
        cfn(*cargs)

    return call


def _py_caller(fn, unit: KernelUnit):
    narr = len(unit.arg_specs)

    def call(*args):
        _check_args(args[:narr], unit.arg_specs, unit.label)
        fn(*args)

    return call


# ---------------------------------------------------------------------------
# the compiled plan
# ---------------------------------------------------------------------------


class CompiledPlan(CompiledSDFG):
    """A whole-program plan whose eligible kernels run as JIT-compiled
    scalar loop nests; ineligible kernels keep the parent's ufunc emission
    within the same program, so the plan as a whole always runs.

    The driver program (tasklets, callbacks, transient zero fills, pooled
    kernel-local binding, per-kernel ``__KT``/``__KC`` instrumentation) is
    inherited unchanged from :class:`repro.sdfg.codegen.CompiledSDFG` —
    only the per-kernel body emission is replaced by a call into ``__K``,
    the list of materialized kernel entry points."""

    def __init__(self, sdfg, instrument: bool = False):
        self._units: List[KernelUnit] = []
        self.fallback_kernels: List[Tuple[str, str]] = []
        self.threads = jit.default_threads()
        self.engine: Optional[str] = None
        self.jit_seconds = 0.0
        super().__init__(sdfg, instrument=instrument)
        self._materialize()

    @property
    def compiled_kernels(self) -> List[str]:
        return [u.label for u in self._units]

    # ------------------------------------------------------------------
    def _emit_node(self, node, out, pending_fills) -> None:
        if not isinstance(node, Kernel):
            return super()._emit_node(node, out, pending_fills)
        func_name = "repro_k%d_%s" % (
            len(self._units),
            re.sub(r"[^0-9A-Za-z_]", "_", node.label),
        )
        try:
            unit = lower_kernel(node, self.sdfg, func_name, self.threads)
        except IneligibleKernel as exc:
            self.fallback_kernels.append((node.label, str(exc)))
            return super()._emit_node(node, out, pending_fills)
        self._emit_fills(node, out, pending_fills)
        uidx = len(self._units)
        self._units.append(unit)
        kidx = len(self.kernel_labels)
        self.kernel_labels.append(node.label)
        out.emit(f"# kernel {node.label} [compiled:{unit.func_name}]")
        if self.instrument:
            out.emit("__t0 = __perf_counter()")
        # bind kernel-local arrays to pooled slots, zeroing exactly the
        # ones the parent would zero (read before fully written)
        prefix = f"__loc{node.node_id}_"
        need_zero = _locals_needing_zero(node)
        ni, nj, nk = node.domain
        local_slots = []
        for name, ext in node.local_arrays.items():
            shape = (
                ni - ext.i_lo + ext.i_hi,
                nj - ext.j_lo + ext.j_hi,
                nk - ext.k_lo + ext.k_hi,
            )
            idx = self._plan.alloc(shape)
            local_slots.append(idx)
            out.emit(f"{prefix}{name} = __B[{idx}]")
            if name in need_zero:
                out.emit(f"{prefix}{name}.fill(0)")
        args = list(unit.runtime_args)
        args += [f"__s_{s}" for s in unit.scalar_names]
        out.emit(f"__K[{uidx}]({', '.join(args)})")
        if self.instrument:
            out.emit(f"__KT[{kidx}] += __perf_counter() - __t0")
            out.emit(f"__KC[{kidx}] += 1")
        for idx in local_slots:
            self._plan.free(idx)

    # ------------------------------------------------------------------
    def _materialize(self) -> None:
        """Compile every lowered unit with the active JIT engine and bind
        the resulting entry points into the driver's ``__K`` table."""
        engine = jit.engine_name()
        self.engine = engine
        funcs: List = []
        t0 = time.perf_counter()
        if not self._units:
            pass
        elif engine == "cgen":
            source = _C_PREAMBLE + "\n".join(
                u.c_source for u in self._units
            )
            lib = jit.compile_c(source, want_openmp=self.threads > 1)
            for unit in self._units:
                cfn = getattr(lib, unit.func_name)
                cfn.argtypes = (
                    [ctypes.c_void_p] * len(unit.arg_specs)
                    + [ctypes.c_double] * len(unit.scalar_names)
                    + [ctypes.c_int64]
                )
                cfn.restype = None
                funcs.append(_c_caller(cfn, unit, self.threads))
        elif engine in ("numba", "pyloops"):
            parallel = engine == "numba" and self.threads > 1
            for unit in self._units:
                fn = jit.compile_py(
                    unit.py_source, unit.func_name, parallel=parallel
                )
                funcs.append(_py_caller(fn, unit))
        else:
            raise jit.JitUnavailableError(
                "compiled backend requires a JIT engine (numba, a C "
                "compiler, or REPRO_JIT=pyloops); none is available"
            )
        self.jit_seconds = time.perf_counter() - t0
        self._program.__globals__["__K"] = funcs


def compile_sdfg_compiled(sdfg, instrument: bool = False) -> CompiledPlan:
    """Expand (if needed) and compile an SDFG into a compiled-backend plan.

    Raises :class:`repro.runtime.jit.JitUnavailableError` when no JIT
    engine resolved — callers (the backend registry, the orchestration
    layer) turn that into a warn-once fallback."""
    if not jit.available():
        raise jit.JitUnavailableError(
            "no JIT engine available (install numba, provide a C compiler, "
            "or set REPRO_JIT=pyloops)"
        )
    if any(state.library_nodes for state in sdfg.states):
        sdfg.expand_library_nodes()
    return CompiledPlan(sdfg, instrument=instrument)
