"""SDFG graph nodes: access nodes, tasklets, callbacks, library nodes and
expanded map-scoped kernels.

Stencil computations enter the graph as :class:`StencilComputation` library
nodes carrying schedule attributes (Sec. V-A); :func:`repro.sdfg.expansion`
expands them into :class:`Kernel` nodes — the unit the paper calls a "GPU
kernel (map)" — on which transformations, the performance model and code
generation operate.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, List, Optional, Tuple

from repro.dsl.backend_numpy import GridBounds, region_ranges
from repro.dsl.extents import Extent
from repro.dsl.ir import Assign, FieldAccess, Interval, count_flops, expr_reads
from repro.sdfg.subsets import Range

_node_ids = itertools.count()


class Node:
    """Base graph node with a unique id."""

    def __init__(self, label: str):
        self.node_id = next(_node_ids)
        self.label = label

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.label!r})"


class AccessNode(Node):
    """Oval data-container node (derived for analysis/visualization)."""

    def __init__(self, data: str):
        super().__init__(data)
        self.data = data


class Tasklet(Node):
    """Octagonal fine-grained computation on scalars.

    ``code`` is a Python expression over ``inputs``; the result is bound to
    ``output`` in the program's scalar namespace.
    """

    def __init__(self, label: str, code: str, inputs: Tuple[str, ...], output: str):
        super().__init__(label)
        self.code = code
        self.inputs = inputs
        self.output = output


class Callback(Node):
    """Automatic callback to interpreted Python (Sec. V-B).

    Functions that cannot be parsed data-centrically are invoked through a
    C-function-pointer-like indirection; a ``__pystate`` dummy dependency
    serializes callbacks against each other so optimization passes cannot
    reorder them (Calotoiu et al.).
    """

    def __init__(self, label: str, func, args: Tuple = (), kwargs: Optional[Dict] = None):
        super().__init__(label)
        self.func = func
        self.args = args
        self.kwargs = kwargs or {}
        # data containers the callback may touch (conservatively all, unless
        # declared); None means "unknown: full barrier"
        self.reads: Optional[List[str]] = None
        self.writes: Optional[List[str]] = None


# ---------------------------------------------------------------------------
# Schedules
# ---------------------------------------------------------------------------

#: Canonical schedule orders found by the paper's layout sweep (Sec. VI-A4).
HORIZONTAL_SCHEDULE = ("Interval", "Operation", "K", "J", "I")
VERTICAL_SCHEDULE = ("J", "I", "Interval", "Operation", "K")

#: Default (pre-tuning) expansion schedules: the generic choice a backend
#: makes with no layout knowledge — unit stride on the wrong dimension for
#: the FORTRAN (I-contiguous) data layout. The gap between these and the
#: swept schedules is the paper's "Default → Stencil schedule heuristics"
#: step (Table III: 10.87 s → 5.56 s).
NAIVE_HORIZONTAL_SCHEDULE = ("Interval", "Operation", "I", "J", "K")
NAIVE_VERTICAL_SCHEDULE = ("Interval", "Operation", "K", "I", "J")


@dataclasses.dataclass
class KernelSchedule:
    """Hardware-mapping attributes of a stencil computation (Sec. V-A).

    These mirror the paper's library-node attributes: iteration order,
    tiling, map-vs-loop per dimension, cache placement for fields, and the
    strategy for horizontal regions. In this reproduction the schedule
    drives the machine performance model and (for fusion/interval knobs)
    the generated code; tile sizes do not change NumPy codegen.
    """

    iteration_order: Tuple[str, ...] = HORIZONTAL_SCHEDULE
    tile_sizes: Optional[Tuple[int, int, int]] = None
    loop_dims: Tuple[str, ...] = ()  # dims scheduled as loops, not maps
    cached_fields: Dict[str, str] = dataclasses.field(default_factory=dict)
    regions_as_predication: bool = True
    fuse_intervals: bool = True
    device: str = "gpu"

    def copy(self) -> "KernelSchedule":
        return dataclasses.replace(self, cached_fields=dict(self.cached_fields))

    def is_valid_for(self, order: str) -> bool:
        """Check feasibility of this schedule for an iteration policy.

        Vertical solvers carry loop dependencies along K, so K must be
        scheduled as a sequential loop (be the innermost dimension and
        appear in ``loop_dims``)."""
        if order in ("FORWARD", "BACKWARD"):
            return self.iteration_order[-1] == "K" or "K" in self.loop_dims
        return True


def feasible_schedules(order: str) -> List[KernelSchedule]:
    """Enumerate the feasible schedule options for an iteration policy.

    This is the paper's "list of feasible options from which we make a
    preferred choice, which can be used for tuning" (Sec. V-A).
    """
    horiz_orders = [
        ("Interval", "Operation", "K", "J", "I"),
        ("Interval", "Operation", "K", "I", "J"),
        ("Interval", "Operation", "J", "I", "K"),
    ]
    vert_orders = [
        ("J", "I", "Interval", "Operation", "K"),
        ("I", "J", "Interval", "Operation", "K"),
    ]
    tiles = [None, (64, 8, 1), (32, 4, 1), (128, 1, 1)]
    out = []
    orders = vert_orders if order in ("FORWARD", "BACKWARD") else horiz_orders
    for io in orders:
        for tile in tiles:
            loop_dims = ("K",) if order in ("FORWARD", "BACKWARD") else ()
            sched = KernelSchedule(
                iteration_order=io, tile_sizes=tile, loop_dims=loop_dims
            )
            if sched.is_valid_for(order):
                out.append(sched)
    return out


# ---------------------------------------------------------------------------
# Kernels (expanded map scopes)
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class KernelSection:
    """One vertical interval of a kernel with its statements.

    Each statement is paired with the horizontal extent over which it must
    be computed (from extent inference).
    """

    interval: Interval
    statements: List[Tuple[Assign, Extent]]


class Kernel(Node):
    """A map-scoped computation: one generated device kernel.

    Statements refer to SDFG container names; ``local_arrays`` are
    kernel-internal temporaries (held in registers/shared memory on a GPU;
    the performance model does not charge DRAM traffic for them).
    """

    def __init__(
        self,
        label: str,
        order: str,
        sections: List[KernelSection],
        domain: Tuple[int, int, int],
        origin: Tuple[int, int, int],
        schedule: Optional[KernelSchedule] = None,
        local_arrays: Optional[Dict[str, Extent]] = None,
        bounds: Optional[GridBounds] = None,
        origins: Optional[Dict[str, Tuple[int, int, int]]] = None,
    ):
        super().__init__(label)
        self.order = order
        self.sections = sections
        self.domain = domain
        self.origin = origin
        self.schedule = schedule or KernelSchedule()
        self.local_arrays = local_arrays or {}
        self.bounds = bounds or GridBounds()
        #: per-container origin overrides (e.g. transient temporaries whose
        #: buffers start at their negative extent)
        self.origins = origins or {}
        #: labels of the original stencil computations folded into this
        #: kernel by fusion transformations (used by transfer tuning)
        self.constituents: List[str] = [label]
        #: source file of the stencil definition this kernel was expanded
        #: from (diagnostics); statement linenos refer into this file
        self.source_file: Optional[str] = None

    def origin_of(self, name: str) -> Tuple[int, int, int]:
        return self.origins.get(name, self.origin)

    # ---- structural queries --------------------------------------------

    def statements(self) -> List[Tuple[Assign, Extent]]:
        return [se for s in self.sections for se in s.statements]

    def written_fields(self) -> List[str]:
        seen: Dict[str, None] = {}
        for stmt, _ in self.statements():
            if stmt.target.name not in self.local_arrays:
                seen.setdefault(stmt.target.name, None)
        return list(seen)

    def read_fields(self) -> List[str]:
        seen: Dict[str, None] = {}
        for stmt, _ in self.statements():
            for acc in expr_reads(stmt):
                if acc.name not in self.local_arrays:
                    seen.setdefault(acc.name, None)
        return list(seen)

    # ---- exact data movement --------------------------------------------

    def _stmt_ranges(self, stmt: Assign, ext: Extent, interval: Interval):
        """Horizontal compute-index ranges of one statement (or None).

        Region statements executed as *predicated* full-domain maps touch
        the full extended range (masked writes read-modify-write the whole
        target); when *split* into their own sub-kernels they touch only
        the region's intersection with the domain.
        """
        ni, nj, nk = self.domain
        irange = (ext.i_lo, ni + ext.i_hi)
        jrange = (ext.j_lo, nj + ext.j_hi)
        if stmt.region is not None:
            ranges = region_ranges(stmt.region, self.domain, self.bounds, ext)
            if ranges is None:
                return None
            if not self.schedule.regions_as_predication:
                irange, jrange = ranges
        k0, k1 = interval.resolve(nk)
        k0, k1 = max(k0, 0), min(k1, nk)
        if k0 >= k1:
            return None
        return irange, jrange, (k0, k1)

    def access_subsets(
        self, axes_of, skip_regions: bool = False
    ) -> Tuple[Dict[str, Range], Dict[str, Range]]:
        """Exact per-container read/write subsets in array coordinates.

        ``axes_of`` maps a container name to its axes string ("IJK", ...).
        Returns (reads, writes) as bounding-box :class:`Range` unions.
        ``skip_regions`` omits region-restricted statements (used by the
        data-movement model, which accounts for them per statement).
        """
        reads: Dict[str, Range] = {}
        writes: Dict[str, Range] = {}

        def note(store: Dict[str, Range], name: str, offset, ranges):
            axes = axes_of(name)
            origin = self.origin_of(name)
            irange, jrange, krange = ranges
            di, dj, dk = offset
            dims = []
            if "I" in axes:
                dims.append(
                    (origin[0] + irange[0] + di, origin[0] + irange[1] + di)
                )
            if "J" in axes:
                dims.append(
                    (origin[1] + jrange[0] + dj, origin[1] + jrange[1] + dj)
                )
            if "K" in axes:
                dims.append(
                    (origin[2] + krange[0] + dk, origin[2] + krange[1] + dk)
                )
            r = Range.of(*dims)
            store[name] = store[name].union(r) if name in store else r

        for section in self.sections:
            for stmt, ext in section.statements:
                if skip_regions and stmt.region is not None:
                    continue
                ranges = self._stmt_ranges(stmt, ext, section.interval)
                if ranges is None:
                    continue
                if stmt.target.name not in self.local_arrays:
                    note(writes, stmt.target.name, (0, 0, 0), ranges)
                for acc in expr_reads(stmt):
                    if acc.name not in self.local_arrays:
                        note(reads, acc.name, acc.offset, ranges)
        return reads, writes

    def _region_stmt_bytes(self, sdfg) -> int:
        """Traffic of region-restricted statements, counted per statement.

        Predicated regions sweep their full extended range (masked writes
        read-modify-write the whole target); split regions touch only the
        intersection — the effect behind the paper's "Split regions to
        multiple kernels" optimization step (Table III).
        """
        import numpy as np

        total = 0
        for section in self.sections:
            for stmt, ext in section.statements:
                if stmt.region is None:
                    continue
                ranges = self._stmt_ranges(stmt, ext, section.interval)
                if ranges is None:
                    continue
                irange, jrange, krange = ranges
                points = (
                    (irange[1] - irange[0])
                    * (jrange[1] - jrange[0])
                    * (krange[1] - krange[0])
                )
                unique = {(a.name, a.offset) for a in expr_reads(stmt)}
                unique.add((stmt.target.name, (0, 0, 0)))
                for name, _ in unique:
                    if name in self.local_arrays:
                        continue
                    total += points * np.dtype(
                        sdfg.arrays[name].dtype
                    ).itemsize
        return total

    def moved_bytes(self, sdfg) -> int:
        """Modeled DRAM traffic: every accessed element counted once per
        kernel (the paper's cache-free model, Sec. VI-C); region
        statements are charged per statement (see _region_stmt_bytes)."""
        reads, writes = self.access_subsets(
            lambda n: sdfg.arrays[n].axes, skip_regions=True
        )
        import numpy as np

        total = self._region_stmt_bytes(sdfg)
        # caching never removes the *first* DRAM touch, so the once-model
        # floor counts every accessed element exactly once
        for name, rng in reads.items():
            total += rng.volume() * np.dtype(sdfg.arrays[name].dtype).itemsize
        for name, rng in writes.items():
            total += rng.volume() * np.dtype(sdfg.arrays[name].dtype).itemsize
        return total

    def launch_count(self) -> int:
        """Device-kernel launches this node represents.

        With regions split to multiple kernels (Sec. V-A), each region
        statement becomes its own launch over its sub-domain.
        """
        if self.schedule.regions_as_predication:
            return 1
        n_region = sum(1 for s, _ in self.statements() if s.region is not None)
        return 1 + n_region if n_region else 1

    def excess_access_bytes(self, sdfg) -> int:
        """Bytes of *repeated* element accesses beyond the first touch.

        The paper's bound model counts each element once; hardware serves
        repeated accesses from caches at finite cost unless the schedule
        buffers them in registers/shared memory (Sec. VI-A2). This excess
        is what the local-storage transformation eliminates.
        """
        import numpy as np

        per_access = 0
        for section in self.sections:
            for stmt, ext in section.statements:
                ranges = self._stmt_ranges(stmt, ext, section.interval)
                if ranges is None:
                    continue
                irange, jrange, krange = ranges
                points = (
                    (irange[1] - irange[0])
                    * (jrange[1] - jrange[0])
                    * (krange[1] - krange[0])
                )
                # identical (name, offset) reads within one statement are
                # CSE'd into registers by any real compiler: count once
                unique_reads = {
                    (acc.name, acc.offset) for acc in expr_reads(stmt)
                }
                for name, _ in unique_reads:
                    if name in self.local_arrays:
                        continue
                    if name in self.schedule.cached_fields:
                        continue
                    itemsize = np.dtype(sdfg.arrays[name].dtype).itemsize
                    per_access += points * itemsize
        reads, _ = self.access_subsets(lambda n: sdfg.arrays[n].axes)
        once = 0
        for name, rng in reads.items():
            if name in self.schedule.cached_fields:
                continue
            itemsize = np.dtype(sdfg.arrays[name].dtype).itemsize
            once += rng.volume() * itemsize
        # vertical solvers re-load the value they just computed on the
        # previous level unless it is register-buffered (Sec. VI-A2 item 3)
        forwarded = 0
        if self.order in ("FORWARD", "BACKWARD"):
            written = set(self.written_fields())
            for section in self.sections:
                for stmt, ext in section.statements:
                    ranges = self._stmt_ranges(stmt, ext, section.interval)
                    if ranges is None:
                        continue
                    irange, jrange, krange = ranges
                    points = (
                        (irange[1] - irange[0])
                        * (jrange[1] - jrange[0])
                        * (krange[1] - krange[0])
                    )
                    for name, offset in {
                        (a.name, a.offset) for a in expr_reads(stmt)
                    }:
                        if (
                            name in written
                            and offset[2] != 0
                            and name not in self.schedule.cached_fields
                            and name not in self.local_arrays
                        ):
                            forwarded += points * np.dtype(
                                sdfg.arrays[name].dtype
                            ).itemsize
        return max(0, per_access - once) + forwarded

    def flops(self) -> int:
        """Modeled arithmetic operations over the iteration space."""
        ni, nj, nk = self.domain
        total = 0
        for section in self.sections:
            for stmt, ext in section.statements:
                ranges = self._stmt_ranges(stmt, ext, section.interval)
                if ranges is None:
                    continue
                irange, jrange, krange = ranges
                points = (
                    (irange[1] - irange[0])
                    * (jrange[1] - jrange[0])
                    * (krange[1] - krange[0])
                )
                ops = count_flops(stmt.value) + (
                    count_flops(stmt.mask) + 1 if stmt.mask is not None else 0
                )
                total += max(ops, 1) * points
        return total

    def iteration_points(self) -> int:
        ni, nj, nk = self.domain
        return ni * nj * nk

    def has_regions(self) -> bool:
        return any(s.region is not None for s, _ in self.statements())

    def copy(self) -> "Kernel":
        dup = self._copy_impl()
        dup.constituents = list(self.constituents)
        dup.source_file = self.source_file
        return dup

    def _copy_impl(self) -> "Kernel":
        return Kernel(
            self.label,
            self.order,
            [
                KernelSection(sec.interval, list(sec.statements))
                for sec in self.sections
            ],
            self.domain,
            self.origin,
            self.schedule.copy(),
            dict(self.local_arrays),
            self.bounds,
            dict(self.origins),
        )


# ---------------------------------------------------------------------------
# Library node
# ---------------------------------------------------------------------------


class StencilComputation(Node):
    """Coarse-grained library node wrapping a stencil definition.

    ``mapping`` renames stencil parameter names to SDFG container names.
    The node is *expanded* (Sec. III-B, Fig. 4c) into Kernel nodes.
    """

    def __init__(
        self,
        stencil_def,
        extents,
        mapping: Dict[str, str],
        domain: Tuple[int, int, int],
        origin: Tuple[int, int, int],
        scalar_mapping: Optional[Dict[str, str]] = None,
        schedule: Optional[KernelSchedule] = None,
        bounds: Optional[GridBounds] = None,
    ):
        super().__init__(stencil_def.name)
        self.stencil_def = stencil_def
        self.extents = extents
        self.mapping = mapping
        self.scalar_mapping = scalar_mapping or {}
        self.domain = domain
        self.origin = origin
        self.schedule = schedule or KernelSchedule()
        self.bounds = bounds or GridBounds()

    @staticmethod
    def from_stencil(stencil_object, mapping=None, domain=None, origin=None,
                     scalar_mapping=None, bounds=None):
        mapping = mapping or {
            p.name: p.name for p in stencil_object.definition.field_params
        }
        h = stencil_object.n_halo
        origin = origin or (h, h, 0)
        if domain is None:
            raise ValueError("StencilComputation requires an explicit domain")
        return StencilComputation(
            stencil_object.definition,
            stencil_object.extents,
            mapping,
            domain,
            origin,
            scalar_mapping=scalar_mapping,
            bounds=bounds,
        )

    def written_containers(self) -> List[str]:
        return [self.mapping[f] for f in self.stencil_def.written_fields()
                if f in self.mapping]

    def read_containers(self) -> List[str]:
        return [self.mapping[f] for f in self.stencil_def.read_fields()
                if f in self.mapping]
