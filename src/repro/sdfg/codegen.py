"""Code generation: SDFG → vectorized NumPy Python source.

The paper's DaCe backend generates CUDA/C++; this reproduction generates a
single Python module of vectorized NumPy statements. That preserves the
properties the evaluation relies on:

- whole-program compilation removes the per-stencil interpreter overhead of
  the debug backend (argument binding, validation, temporary allocation);
- transient elision and fusion transformations remove real array traffic;
- per-kernel instrumentation yields the measured runtimes that the
  model-driven analysis (Fig. 10) combines with modeled peak times.

Compiled programs are bit-compatible with the pure NumPy backend.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dsl.ir import (
    Assign,
    AxisIndexExpr,
    BinOp,
    Call,
    Expr,
    FieldAccess,
    Literal,
    ScalarRef,
    Ternary,
    UnaryOp,
)
from repro.sdfg.nodes import Callback, Kernel, StencilComputation, Tasklet

_NP_FUNCS = {
    "sqrt": "np.sqrt",
    "abs": "np.abs",
    "exp": "np.exp",
    "log": "np.log",
    "sin": "np.sin",
    "cos": "np.cos",
    "tan": "np.tan",
    "asin": "np.arcsin",
    "acos": "np.arccos",
    "atan": "np.arctan",
    "floor": "np.floor",
    "ceil": "np.ceil",
    "trunc": "np.trunc",
    "min": "np.minimum",
    "max": "np.maximum",
    "sign": "np.sign",
}


class _SourceBuilder:
    def __init__(self):
        self.lines: List[str] = []
        self.indent = 0

    def emit(self, line: str = "") -> None:
        self.lines.append("    " * self.indent + line if line else "")

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


class _ExprEmitter:
    """Translate IR expressions into NumPy source strings."""

    def __init__(self, kernel: Kernel, sdfg, local_prefix: str):
        self.kernel = kernel
        self.sdfg = sdfg
        self.local_prefix = local_prefix

    def array_name(self, name: str) -> str:
        if name in self.kernel.local_arrays:
            return f"{self.local_prefix}{name}"
        return name

    def axes(self, name: str) -> str:
        if name in self.kernel.local_arrays:
            return "IJK"
        return self.sdfg.arrays[name].axes

    def origin(self, name: str) -> Tuple[int, int, int]:
        if name in self.kernel.local_arrays:
            ext = self.kernel.local_arrays[name]
            return (-ext.i_lo, -ext.j_lo, -ext.k_lo)
        return self.kernel.origin_of(name)

    # ---- 3D (parallel) context -------------------------------------------

    def access_3d(self, name, offset, irng, jrng, krng) -> str:
        axes = self.axes(name)
        oi, oj, ok = self.origin(name)
        di, dj, dk = offset
        parts = []
        if "I" in axes:
            parts.append(f"{oi + irng[0] + di}:{oi + irng[1] + di}")
        if "J" in axes:
            parts.append(f"{oj + jrng[0] + dj}:{oj + jrng[1] + dj}")
        if "K" in axes:
            parts.append(f"{ok + krng[0] + dk}:{ok + krng[1] + dk}")
        src = f"{self.array_name(name)}[{', '.join(parts)}]"
        if axes == "IJ":
            src += "[:, :, np.newaxis]"
        elif axes == "K":
            src += "[np.newaxis, np.newaxis, :]"
        return src

    def expr_3d(self, expr: Expr, irng, jrng, krng) -> str:
        e = lambda x: self.expr_3d(x, irng, jrng, krng)  # noqa: E731
        if isinstance(expr, Literal):
            return repr(expr.value)
        if isinstance(expr, ScalarRef):
            return f"__s_{expr.name}"
        if isinstance(expr, FieldAccess):
            return self.access_3d(expr.name, expr.offset, irng, jrng, krng)
        if isinstance(expr, AxisIndexExpr):
            if expr.axis == "I":
                return f"np.arange({irng[0]}, {irng[1]}).reshape(-1, 1, 1)"
            if expr.axis == "J":
                return f"np.arange({jrng[0]}, {jrng[1]}).reshape(1, -1, 1)"
            return f"np.arange({krng[0]}, {krng[1]}).reshape(1, 1, -1)"
        return self._compound(expr, e)

    # ---- 2D (per-level) context --------------------------------------------

    def access_2d(self, name, offset, irng, jrng, k_src: str) -> str:
        axes = self.axes(name)
        oi, oj, ok = self.origin(name)
        di, dj, dk = offset
        parts = []
        if "I" in axes:
            parts.append(f"{oi + irng[0] + di}:{oi + irng[1] + di}")
        if "J" in axes:
            parts.append(f"{oj + jrng[0] + dj}:{oj + jrng[1] + dj}")
        if "K" in axes:
            shift = ok + dk
            parts.append(f"{k_src} + {shift}" if shift else k_src)
        src = f"{self.array_name(name)}[{', '.join(parts)}]"
        if axes == "K":
            src += "[np.newaxis, np.newaxis]" if False else ""
        return src

    def expr_2d(self, expr: Expr, irng, jrng, k_src: str) -> str:
        e = lambda x: self.expr_2d(x, irng, jrng, k_src)  # noqa: E731
        if isinstance(expr, Literal):
            return repr(expr.value)
        if isinstance(expr, ScalarRef):
            return f"__s_{expr.name}"
        if isinstance(expr, FieldAccess):
            return self.access_2d(expr.name, expr.offset, irng, jrng, k_src)
        if isinstance(expr, AxisIndexExpr):
            if expr.axis == "I":
                return f"np.arange({irng[0]}, {irng[1]}).reshape(-1, 1)"
            if expr.axis == "J":
                return f"np.arange({jrng[0]}, {jrng[1]}).reshape(1, -1)"
            return f"({k_src})"
        return self._compound(expr, e)

    # ---- shared -----------------------------------------------------------

    def _compound(self, expr: Expr, e) -> str:
        if isinstance(expr, BinOp):
            if expr.op == "and":
                return f"np.logical_and({e(expr.left)}, {e(expr.right)})"
            if expr.op == "or":
                return f"np.logical_or({e(expr.left)}, {e(expr.right)})"
            return f"({e(expr.left)} {expr.op} {e(expr.right)})"
        if isinstance(expr, UnaryOp):
            if expr.op == "not":
                return f"np.logical_not({e(expr.operand)})"
            return f"(-{e(expr.operand)})"
        if isinstance(expr, Call):
            args = ", ".join(e(a) for a in expr.args)
            return f"{_NP_FUNCS[expr.func]}({args})"
        if isinstance(expr, Ternary):
            return f"np.where({e(expr.cond)}, {e(expr.then)}, {e(expr.orelse)})"
        raise TypeError(f"cannot generate code for {type(expr).__name__}")


def _kernel_source(kernel: Kernel, sdfg, out: _SourceBuilder) -> None:
    """Emit the body of one kernel."""
    prefix = f"__loc{kernel.node_id}_"
    em = _ExprEmitter(kernel, sdfg, prefix)
    ni, nj, nk = kernel.domain

    # allocate (and, when partially written, zero) kernel-local arrays
    for name, ext in kernel.local_arrays.items():
        shape = (
            ni - ext.i_lo + ext.i_hi,
            nj - ext.j_lo + ext.j_hi,
            nk - ext.k_lo + ext.k_hi,
        )
        # zero-filled to match the debug backend's temporary semantics
        out.emit(f"{prefix}{name} = np.zeros({shape!r})")

    for section in kernel.sections:
        k0, k1 = section.interval.resolve(nk)
        k0, k1 = max(k0, 0), min(k1, nk)
        if k0 >= k1:
            continue
        if kernel.order == "PARALLEL":
            for stmt, ext in section.statements:
                _emit_parallel_stmt(kernel, em, out, stmt, ext, (k0, k1))
        else:
            if kernel.order == "FORWARD":
                out.emit(f"for __k in range({k0}, {k1}):")
            else:
                out.emit(f"for __k in range({k1 - 1}, {k0 - 1}, -1):")
            out.indent += 1
            for stmt, ext in section.statements:
                _emit_level_stmt(kernel, em, out, stmt, ext, "__k")
            out.indent -= 1


def _ranges_for(kernel: Kernel, stmt: Assign, ext):
    """Full horizontal statement ranges and (for regions) restricted ones."""
    ni, nj, _ = kernel.domain
    full = ((ext.i_lo, ni + ext.i_hi), (ext.j_lo, nj + ext.j_hi))
    if stmt.region is None:
        return full, None
    from repro.dsl.backend_numpy import region_ranges

    restricted = region_ranges(stmt.region, kernel.domain, kernel.bounds, ext)
    return full, restricted


def _emit_parallel_stmt(kernel, em, out, stmt, ext, krng) -> None:
    full, restricted = _ranges_for(kernel, stmt, ext)
    predicate = kernel.schedule.regions_as_predication and stmt.region is not None
    if stmt.region is not None and restricted is None:
        return  # region empty on this rank
    irng, jrng = full if predicate else (restricted or full)

    target_axes = em.axes(stmt.target.name)
    if target_axes == "IJ":
        if krng[1] - krng[0] != 1:
            raise ValueError(
                f"cannot write 2D field {stmt.target.name!r} over a "
                "multi-level interval"
            )
        _emit_level_stmt(kernel, em, out, stmt, ext, str(krng[0]), irjr=(irng, jrng))
        return

    lhs = em.access_3d(stmt.target.name, (0, 0, 0), irng, jrng, krng)
    val = em.expr_3d(stmt.value, irng, jrng, krng)
    conds = []
    if predicate:
        (ri, rj) = restricted
        out.emit(
            f"__ri = np.arange({irng[0]}, {irng[1]}).reshape(-1, 1, 1)"
        )
        out.emit(
            f"__rj = np.arange({jrng[0]}, {jrng[1]}).reshape(1, -1, 1)"
        )
        conds.append(
            f"((__ri >= {ri[0]}) & (__ri < {ri[1]}) & "
            f"(__rj >= {rj[0]}) & (__rj < {rj[1]}))"
        )
    if stmt.mask is not None:
        conds.append(em.expr_3d(stmt.mask, irng, jrng, krng))
    if conds:
        cond = " & ".join(f"({c})" for c in conds) if len(conds) > 1 else conds[0]
        out.emit(f"{lhs} = np.where({cond}, {val}, {lhs})")
    else:
        out.emit(f"{lhs} = {val}")


def _emit_level_stmt(kernel, em, out, stmt, ext, k_src: str, irjr=None) -> None:
    if irjr is None:
        full, restricted = _ranges_for(kernel, stmt, ext)
        predicate = (
            kernel.schedule.regions_as_predication and stmt.region is not None
        )
        if stmt.region is not None and restricted is None:
            return
        irng, jrng = full if predicate else (restricted or full)
    else:
        irng, jrng = irjr
        predicate = False
        restricted = None

    lhs = em.access_2d(stmt.target.name, (0, 0, 0), irng, jrng, k_src)
    val = em.expr_2d(stmt.value, irng, jrng, k_src)
    conds = []
    if predicate:
        (ri, rj) = restricted
        conds.append(
            f"((np.arange({irng[0]}, {irng[1]}).reshape(-1, 1) >= {ri[0]}) & "
            f"(np.arange({irng[0]}, {irng[1]}).reshape(-1, 1) < {ri[1]}) & "
            f"(np.arange({jrng[0]}, {jrng[1]}).reshape(1, -1) >= {rj[0]}) & "
            f"(np.arange({jrng[0]}, {jrng[1]}).reshape(1, -1) < {rj[1]}))"
        )
    if stmt.mask is not None:
        conds.append(em.expr_2d(stmt.mask, irng, jrng, k_src))
    if conds:
        cond = " & ".join(f"({c})" for c in conds) if len(conds) > 1 else conds[0]
        out.emit(f"{lhs} = np.where({cond}, {val}, {lhs})")
    else:
        out.emit(f"{lhs} = {val}")


class CompiledSDFG:
    """A compiled whole-program SDFG.

    Call with ``arrays`` (container name → NumPy array for every
    non-transient container) and optional ``scalars``. Per-kernel wall-clock
    times are collected when ``instrument=True`` (used by the Fig. 10
    analysis).
    """

    def __init__(self, sdfg, instrument: bool = False):
        self.sdfg = sdfg
        self.instrument = instrument
        self.kernel_labels: List[str] = []
        self._callbacks: List = []
        self.source = self._generate()
        namespace = {
            "np": np,
            "__CB": self._callbacks,
            "__perf_counter": time.perf_counter,
        }
        code = compile(self.source, f"<sdfg:{sdfg.name}>", "exec")
        exec(code, namespace)  # noqa: S102 - generated from our own IR
        self._program = namespace["__program"]
        self._kernel_time = np.zeros(len(self.kernel_labels))
        self._kernel_count = np.zeros(len(self.kernel_labels), dtype=np.int64)
        self._transients: Dict[str, np.ndarray] = {
            name: np.zeros(desc.shape, dtype=desc.dtype)
            for name, desc in sdfg.arrays.items()
            if desc.transient
        }

    # ------------------------------------------------------------------
    def _generate(self) -> str:
        sdfg = self.sdfg
        out = _SourceBuilder()
        out.emit("def __program(__A, __S, __KT, __KC):")
        out.indent += 1
        for name, desc in sdfg.arrays.items():
            out.emit(f"{name} = __A[{name!r}]")
        tasklet_outputs = {
            node.output
            for state in sdfg.states
            for node in state.nodes
            if isinstance(node, Tasklet)
        }
        scalar_names = sorted(self._collect_scalar_names() - tasklet_outputs)
        for name in scalar_names:
            out.emit(f"__s_{name} = __S[{name!r}]")
        out.emit()

        # control-flow structure: linear chain with counted loop regions
        loop_starts = {lp.first: lp for lp in sdfg.loops}
        loop_depth = []
        for idx, state in enumerate(sdfg.states):
            if idx in loop_starts:
                lp = loop_starts[idx]
                var = f"__it{len(loop_depth)}"
                out.emit(f"for {var} in range({lp.count}):")
                out.indent += 1
                loop_depth.append(lp)
            out.emit(f"# --- state {state.name} ---")
            for node in state.nodes:
                self._emit_node(node, out)
            while loop_depth and loop_depth[-1].last == idx:
                loop_depth.pop()
                out.indent -= 1
        out.emit("return None")
        return out.source()

    def _emit_node(self, node, out: _SourceBuilder) -> None:
        if isinstance(node, Kernel):
            kidx = len(self.kernel_labels)
            self.kernel_labels.append(node.label)
            out.emit(f"# kernel {node.label}")
            if self.instrument:
                out.emit("__t0 = __perf_counter()")
            _kernel_source(node, self.sdfg, out)
            if self.instrument:
                out.emit(f"__KT[{kidx}] += __perf_counter() - __t0")
                out.emit(f"__KC[{kidx}] += 1")
        elif isinstance(node, Tasklet):
            code = node.code
            for name in node.inputs:
                code = _replace_word(code, name, f"__s_{name}")
            out.emit(f"__s_{node.output} = {code}")
        elif isinstance(node, Callback):
            cidx = len(self._callbacks)
            self._callbacks.append(
                lambda f=node.func, a=node.args, kw=node.kwargs: f(*a, **kw)
            )
            out.emit(f"__CB[{cidx}]()  # callback {node.label}")
        elif isinstance(node, StencilComputation):
            raise ValueError(
                f"library node {node.label!r} must be expanded before "
                "code generation (call sdfg.expand_library_nodes())"
            )

    def _collect_scalar_names(self):
        names = set()
        from repro.dsl.ir import walk_expr

        for kernel in self.sdfg.all_kernels():
            for stmt, _ in kernel.statements():
                for e in walk_expr(stmt.value):
                    if isinstance(e, ScalarRef):
                        names.add(e.name)
                if stmt.mask is not None:
                    for e in walk_expr(stmt.mask):
                        if isinstance(e, ScalarRef):
                            names.add(e.name)
        for state in self.sdfg.states:
            for node in state.nodes:
                if isinstance(node, Tasklet):
                    names.update(node.inputs)
        return names

    # ------------------------------------------------------------------
    def __call__(
        self,
        arrays: Optional[Dict[str, np.ndarray]] = None,
        scalars: Optional[Dict[str, float]] = None,
    ) -> None:
        merged = dict(self._transients)
        if arrays:
            merged.update(arrays)
        missing = [n for n in self.sdfg.arrays if n not in merged]
        if missing:
            raise ValueError(f"missing arrays for containers: {missing}")
        self._program(merged, scalars or {}, self._kernel_time, self._kernel_count)

    @property
    def kernel_times(self) -> Dict[str, Tuple[float, int]]:
        """Per-kernel (total seconds, invocation count) when instrumented."""
        out: Dict[str, Tuple[float, int]] = {}
        for label, t, c in zip(
            self.kernel_labels, self._kernel_time, self._kernel_count
        ):
            prev = out.get(label, (0.0, 0))
            out[label] = (prev[0] + float(t), prev[1] + int(c))
        return out

    def reset_instrumentation(self) -> None:
        self._kernel_time[:] = 0.0
        self._kernel_count[:] = 0


def _replace_word(code: str, name: str, repl: str) -> str:
    import re

    return re.sub(rf"\b{re.escape(name)}\b", repl, code)


def compile_sdfg(sdfg, instrument: bool = False) -> CompiledSDFG:
    """Expand (if needed) and compile an SDFG into a callable program."""
    if any(state.library_nodes for state in sdfg.states):
        sdfg.expand_library_nodes()
    return CompiledSDFG(sdfg, instrument=instrument)
