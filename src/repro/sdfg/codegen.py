"""Code generation: SDFG → vectorized NumPy Python source.

The paper's DaCe backend generates CUDA/C++; this reproduction generates a
single Python module of vectorized NumPy statements. That preserves the
properties the evaluation relies on:

- whole-program compilation removes the per-stencil interpreter overhead of
  the debug backend (argument binding, validation, temporary allocation);
- transient elision and fusion transformations remove real array traffic;
- per-kernel instrumentation yields the measured runtimes that the
  model-driven analysis (Fig. 10) combines with modeled peak times.

Statement emission is *scheduled*: instead of one nested expression string
per statement (every NumPy operator allocating a fresh full-domain
temporary), each floating-point subexpression becomes an explicit ufunc
call with ``out=`` into a scratch slot drawn from :mod:`repro.runtime.pool`.
Slots are recycled register-style — freed as soon as their last consumer
has been emitted — and kernel-local arrays and SDFG transients are pooled
too, zeroed only when a kernel actually reads them before writing (the
condition the ``repro.lint`` D101 rule detects). Steady-state execution of
a compiled program therefore performs no array allocation.

Compiled programs remain bit-compatible with the pure NumPy backend:
``out=`` targets are only used where NumPy's ufunc memory-overlap
guarantee (NumPy ≥ 1.13) makes the result identical to evaluation through
temporaries, and a subexpression is only materialized when its result
dtype is provably float64 under NEP 50 promotion (at least one float64
array operand). Everything else stays inline. ``REPRO_OUT_SCHEDULING=0``
restores the seed's nested-expression emission for A/B comparisons.
"""

from __future__ import annotations

import dataclasses
import math
import os
import re
import time
from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from repro.dsl.ir import (
    Assign,
    AxisIndexExpr,
    BinOp,
    Call,
    Expr,
    FieldAccess,
    Literal,
    ScalarRef,
    Ternary,
    UnaryOp,
    expr_reads,
)
from repro.runtime.pool import get_pool
from repro.sdfg.nodes import Callback, Kernel, StencilComputation, Tasklet

_NP_FUNCS = {
    "sqrt": "np.sqrt",
    "abs": "np.abs",
    "exp": "np.exp",
    "log": "np.log",
    "sin": "np.sin",
    "cos": "np.cos",
    "tan": "np.tan",
    "asin": "np.arcsin",
    "acos": "np.arccos",
    "atan": "np.arctan",
    "floor": "np.floor",
    "ceil": "np.ceil",
    "trunc": "np.trunc",
    "min": "np.minimum",
    "max": "np.maximum",
    "sign": "np.sign",
}

_UFUNC_BINOPS = {
    "+": "np.add",
    "-": "np.subtract",
    "*": "np.multiply",
    "/": "np.divide",
    "**": "np.power",
    "%": "np.remainder",
    "//": "np.floor_divide",
}
_CMP_OPS = {"<", ">", "<=", ">=", "==", "!="}

_F64 = np.dtype(np.float64)
_BOOL = np.dtype(bool)


def scheduling_enabled() -> bool:
    """Whether expression emission uses ``out=`` scheduling into pooled
    scratch (default). ``REPRO_OUT_SCHEDULING=0`` restores the seed's
    nested-expression strings for A/B bit-exactness comparisons."""
    return os.environ.get("REPRO_OUT_SCHEDULING", "1") != "0"


class _SourceBuilder:
    def __init__(self):
        self.lines: List[str] = []
        self.indent = 0

    def emit(self, line: str = "") -> None:
        self.lines.append("    " * self.indent + line if line else "")

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


# ---------------------------------------------------------------------------
# scheduled expression values
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class _Val:
    """One scheduled (sub)expression: source text plus what is statically
    known about the array it evaluates to."""

    text: str
    shape: Tuple[int, ...]
    dtype: Optional[np.dtype]  # None: weak scalar / not statically known
    is_bool: bool = False
    #: resolved array name when ``text`` is a bare view of that array
    base: Optional[str] = None
    #: live scratch slots referenced (transitively) by ``text``
    slots: FrozenSet[int] = frozenset()
    #: the root op already wrote through ``out=`` into the statement target
    stored: bool = False

    @property
    def is_f64_array(self) -> bool:
        return self.shape != () and self.dtype == _F64


class _BufferPlan:
    """Codegen-time scratch slot allocator with keyed free lists.

    Slot indices are positions in the runtime buffer list ``__B``; a freed
    slot of the same (shape, dtype) is reused by the next allocation, so
    the compiled program's working set is the peak number of simultaneously
    live values, not the total op count."""

    def __init__(self):
        self.specs: List[Tuple[Tuple[int, ...], np.dtype]] = []
        self._free: Dict[Tuple[Tuple[int, ...], str], List[int]] = {}
        #: codegen-time alloc/free log, replayed by the R4xx lifetime
        #: checker (``repro.lint.runtime_rules.lint_compiled_plan``)
        self.events: List[Tuple[str, int]] = []

    def alloc(self, shape, dtype=_F64) -> int:
        dtype = np.dtype(dtype)
        key = (tuple(shape), dtype.str)
        free = self._free.get(key)
        if free:
            idx = free.pop()
            self.events.append(("alloc", idx))
            return idx
        self.specs.append((tuple(shape), dtype))
        self.events.append(("alloc", len(self.specs) - 1))
        return len(self.specs) - 1

    def free(self, idx: int) -> None:
        shape, dtype = self.specs[idx]
        self._free.setdefault((shape, dtype.str), []).append(idx)
        self.events.append(("free", idx))


def _broadcast(*shapes) -> Tuple[int, ...]:
    return tuple(np.broadcast_shapes(*shapes)) if shapes else ()


class _ExprEmitter:
    """Translate IR expressions into NumPy source strings."""

    def __init__(self, kernel: Kernel, sdfg, local_prefix: str):
        self.kernel = kernel
        self.sdfg = sdfg
        self.local_prefix = local_prefix

    def array_name(self, name: str) -> str:
        if name in self.kernel.local_arrays:
            return f"{self.local_prefix}{name}"
        return name

    def axes(self, name: str) -> str:
        if name in self.kernel.local_arrays:
            return "IJK"
        return self.sdfg.arrays[name].axes

    def dtype_of(self, name: str) -> np.dtype:
        if name in self.kernel.local_arrays:
            return _F64
        return np.dtype(self.sdfg.arrays[name].dtype)

    def origin(self, name: str) -> Tuple[int, int, int]:
        if name in self.kernel.local_arrays:
            ext = self.kernel.local_arrays[name]
            return (-ext.i_lo, -ext.j_lo, -ext.k_lo)
        return self.kernel.origin_of(name)

    # ---- 3D (parallel) context -------------------------------------------

    def access_3d(self, name, offset, irng, jrng, krng) -> str:
        axes = self.axes(name)
        oi, oj, ok = self.origin(name)
        di, dj, dk = offset
        parts = []
        if "I" in axes:
            parts.append(f"{oi + irng[0] + di}:{oi + irng[1] + di}")
        if "J" in axes:
            parts.append(f"{oj + jrng[0] + dj}:{oj + jrng[1] + dj}")
        if "K" in axes:
            parts.append(f"{ok + krng[0] + dk}:{ok + krng[1] + dk}")
        src = f"{self.array_name(name)}[{', '.join(parts)}]"
        if axes == "IJ":
            src += "[:, :, np.newaxis]"
        elif axes == "K":
            src += "[np.newaxis, np.newaxis, :]"
        return src

    def expr_3d(self, expr: Expr, irng, jrng, krng) -> str:
        e = lambda x: self.expr_3d(x, irng, jrng, krng)  # noqa: E731
        if isinstance(expr, Literal):
            return repr(expr.value)
        if isinstance(expr, ScalarRef):
            return f"__s_{expr.name}"
        if isinstance(expr, FieldAccess):
            return self.access_3d(expr.name, expr.offset, irng, jrng, krng)
        if isinstance(expr, AxisIndexExpr):
            if expr.axis == "I":
                return f"np.arange({irng[0]}, {irng[1]}).reshape(-1, 1, 1)"
            if expr.axis == "J":
                return f"np.arange({jrng[0]}, {jrng[1]}).reshape(1, -1, 1)"
            return f"np.arange({krng[0]}, {krng[1]}).reshape(1, 1, -1)"
        return self._compound(expr, e)

    # ---- 2D (per-level) context --------------------------------------------

    def access_2d(self, name, offset, irng, jrng, k_src: str) -> str:
        axes = self.axes(name)
        oi, oj, ok = self.origin(name)
        di, dj, dk = offset
        parts = []
        if "I" in axes:
            parts.append(f"{oi + irng[0] + di}:{oi + irng[1] + di}")
        if "J" in axes:
            parts.append(f"{oj + jrng[0] + dj}:{oj + jrng[1] + dj}")
        if "K" in axes:
            shift = ok + dk
            parts.append(f"{k_src} + {shift}" if shift else k_src)
        if axes == "K":
            # K-only fields collapse to a scalar at a fixed level; keep them
            # 2D (shape (1, 1)) to match the debug backend's broadcasting
            return (
                f"{self.array_name(name)}"
                f"[np.newaxis, np.newaxis, {parts[0]}]"
            )
        return f"{self.array_name(name)}[{', '.join(parts)}]"

    def expr_2d(self, expr: Expr, irng, jrng, k_src: str) -> str:
        e = lambda x: self.expr_2d(x, irng, jrng, k_src)  # noqa: E731
        if isinstance(expr, Literal):
            return repr(expr.value)
        if isinstance(expr, ScalarRef):
            return f"__s_{expr.name}"
        if isinstance(expr, FieldAccess):
            return self.access_2d(expr.name, expr.offset, irng, jrng, k_src)
        if isinstance(expr, AxisIndexExpr):
            if expr.axis == "I":
                return f"np.arange({irng[0]}, {irng[1]}).reshape(-1, 1)"
            if expr.axis == "J":
                return f"np.arange({jrng[0]}, {jrng[1]}).reshape(1, -1)"
            return f"({k_src})"
        return self._compound(expr, e)

    # ---- shared -----------------------------------------------------------

    def _compound(self, expr: Expr, e) -> str:
        if isinstance(expr, BinOp):
            if expr.op == "and":
                return f"np.logical_and({e(expr.left)}, {e(expr.right)})"
            if expr.op == "or":
                return f"np.logical_or({e(expr.left)}, {e(expr.right)})"
            return f"({e(expr.left)} {expr.op} {e(expr.right)})"
        if isinstance(expr, UnaryOp):
            if expr.op == "not":
                return f"np.logical_not({e(expr.operand)})"
            return f"(-{e(expr.operand)})"
        if isinstance(expr, Call):
            args = ", ".join(e(a) for a in expr.args)
            return f"{_NP_FUNCS[expr.func]}({args})"
        if isinstance(expr, Ternary):
            return f"np.where({e(expr.cond)}, {e(expr.then)}, {e(expr.orelse)})"
        raise TypeError(f"cannot generate code for {type(expr).__name__}")


class _Ctx:
    """Leaf emission for one statement's concrete index ranges; shapes and
    dtypes are fully known at codegen time, which is what lets the
    scheduler allocate exact scratch slots."""

    def __init__(self, em: _ExprEmitter, irng, jrng, krng=None, k_src=None):
        self.em = em
        self.irng = irng
        self.jrng = jrng
        self.krng = krng
        self.k_src = k_src
        self.is_3d = krng is not None

    def _hlens(self) -> Tuple[int, int]:
        return (self.irng[1] - self.irng[0], self.jrng[1] - self.jrng[0])

    def access(self, expr: FieldAccess) -> "_Val":
        em = self.em
        axes = em.axes(expr.name)
        dtype = em.dtype_of(expr.name)
        ilen, jlen = self._hlens()
        if self.is_3d:
            text = em.access_3d(
                expr.name, expr.offset, self.irng, self.jrng, self.krng
            )
            klen = self.krng[1] - self.krng[0]
            if axes == "IJ":
                shape = (ilen, jlen, 1)
            elif axes == "K":
                shape = (1, 1, klen)
            else:
                shape = (ilen, jlen, klen)
        else:
            text = em.access_2d(
                expr.name, expr.offset, self.irng, self.jrng, self.k_src
            )
            shape = (1, 1) if axes == "K" else (ilen, jlen)
        return _Val(
            text,
            shape,
            dtype,
            is_bool=(dtype == _BOOL),
            base=em.array_name(expr.name),
        )

    def axis_index(self, expr: AxisIndexExpr) -> "_Val":
        ilen, jlen = self._hlens()
        i64 = np.dtype(np.int64)
        if self.is_3d:
            if expr.axis == "I":
                text = f"np.arange({self.irng[0]}, {self.irng[1]}).reshape(-1, 1, 1)"
                return _Val(text, (ilen, 1, 1), i64)
            if expr.axis == "J":
                text = f"np.arange({self.jrng[0]}, {self.jrng[1]}).reshape(1, -1, 1)"
                return _Val(text, (1, jlen, 1), i64)
            klen = self.krng[1] - self.krng[0]
            text = f"np.arange({self.krng[0]}, {self.krng[1]}).reshape(1, 1, -1)"
            return _Val(text, (1, 1, klen), i64)
        if expr.axis == "I":
            text = f"np.arange({self.irng[0]}, {self.irng[1]}).reshape(-1, 1)"
            return _Val(text, (ilen, 1), i64)
        if expr.axis == "J":
            text = f"np.arange({self.jrng[0]}, {self.jrng[1]}).reshape(1, -1)"
            return _Val(text, (1, jlen), i64)
        return _Val(f"({self.k_src})", (), None)  # plain Python int at runtime


class _StmtScheduler:
    """Post-order ``out=`` scheduling of one statement's expression tree.

    A compound node is *materialized* — emitted as its own ufunc call with
    ``out=`` into a scratch slot — only when its result dtype is provably
    float64 (NEP 50: at least one float64 array operand; nothing in the DSL
    promotes above float64). Comparisons, logicals and anything uncertain
    stay inline, so scheduled programs are bit-identical to nested
    evaluation. Operand slots are freed before the output slot is taken, so
    an op may write in place over its own input — exact-overlap ``out=`` is
    well-defined for elementwise ufuncs."""

    def __init__(self, out: _SourceBuilder, plan: _BufferPlan, enabled: bool):
        self.out = out
        self.plan = plan
        self.enabled = enabled

    @staticmethod
    def _buf(idx: int) -> str:
        return f"__B[{idx}]"

    def free(self, *vals: _Val) -> None:
        for val in vals:
            for slot in val.slots:
                self.plan.free(slot)

    def _eligible(self, shape, operands) -> bool:
        return (
            self.enabled
            and shape != ()
            and any(o.is_f64_array for o in operands)
        )

    def _inline(self, text: str, operands, bool_: bool = False) -> _Val:
        slots = frozenset().union(*(o.slots for o in operands))
        shape = _broadcast(*[o.shape for o in operands])
        return _Val(
            text, shape, _BOOL if bool_ else None, is_bool=bool_, slots=slots
        )

    def _ufunc(self, func, operands, shape, target: Optional[_Val]) -> _Val:
        args = ", ".join(o.text for o in operands)
        if (
            target is not None
            and target.shape == shape
            and target.dtype == _F64
        ):
            # the root op writes straight into the statement target; NumPy's
            # overlap handling keeps this identical to using a temporary
            self.free(*operands)
            self.out.emit(f"{func}({args}, out={target.text})")
            return _Val(target.text, shape, _F64, stored=True)
        self.free(*operands)  # freed first: exact-alias out= is well-defined
        idx = self.plan.alloc(shape)
        self.out.emit(f"{func}({args}, out={self._buf(idx)})")
        return _Val(self._buf(idx), shape, _F64, slots=frozenset({idx}))

    def schedule(
        self, expr: Expr, ctx: _Ctx, target: Optional[_Val] = None
    ) -> _Val:
        e = lambda x: self.schedule(x, ctx)  # noqa: E731
        if isinstance(expr, Literal):
            return _Val(
                repr(expr.value), (), None,
                is_bool=isinstance(expr.value, bool),
            )
        if isinstance(expr, ScalarRef):
            return _Val(f"__s_{expr.name}", (), None)
        if isinstance(expr, FieldAccess):
            return ctx.access(expr)
        if isinstance(expr, AxisIndexExpr):
            return ctx.axis_index(expr)
        if isinstance(expr, BinOp):
            left, right = e(expr.left), e(expr.right)
            pair = (left, right)
            if expr.op == "and":
                return self._inline(
                    f"np.logical_and({left.text}, {right.text})", pair, True
                )
            if expr.op == "or":
                return self._inline(
                    f"np.logical_or({left.text}, {right.text})", pair, True
                )
            if expr.op in _CMP_OPS:
                return self._inline(
                    f"({left.text} {expr.op} {right.text})", pair, True
                )
            shape = _broadcast(left.shape, right.shape)
            if self._eligible(shape, pair):
                return self._ufunc(_UFUNC_BINOPS[expr.op], pair, shape, target)
            return self._inline(f"({left.text} {expr.op} {right.text})", pair)
        if isinstance(expr, UnaryOp):
            operand = e(expr.operand)
            if expr.op == "not":
                return self._inline(
                    f"np.logical_not({operand.text})", (operand,), True
                )
            if self._eligible(operand.shape, (operand,)):
                return self._ufunc(
                    "np.negative", (operand,), operand.shape, target
                )
            return self._inline(f"(-{operand.text})", (operand,))
        if isinstance(expr, Call):
            args = tuple(e(a) for a in expr.args)
            shape = _broadcast(*[a.shape for a in args])
            if self._eligible(shape, args):
                return self._ufunc(_NP_FUNCS[expr.func], args, shape, target)
            arg_text = ", ".join(a.text for a in args)
            return self._inline(f"{_NP_FUNCS[expr.func]}({arg_text})", args)
        if isinstance(expr, Ternary):
            cond, then, orelse = e(expr.cond), e(expr.then), e(expr.orelse)
            shape = _broadcast(cond.shape, then.shape, orelse.shape)
            if self._eligible(shape, (then, orelse)) and cond.is_bool:
                # np.where has no out=: assign the else branch, then copy
                # the then branch over the masked lanes. The slot is taken
                # *before* the operands are freed — the two-step write must
                # not alias them.
                idx = self.plan.alloc(shape)
                self.out.emit(f"{self._buf(idx)}[...] = {orelse.text}")
                self.out.emit(
                    f"np.copyto({self._buf(idx)}, {then.text}, "
                    f"where={cond.text})"
                )
                self.free(cond, then, orelse)
                return _Val(self._buf(idx), shape, _F64, slots=frozenset({idx}))
            return self._inline(
                f"np.where({cond.text}, {then.text}, {orelse.text})",
                (cond, then, orelse),
            )
        raise TypeError(f"cannot generate code for {type(expr).__name__}")


# ---------------------------------------------------------------------------
# zero-fill analysis (pooled buffers hold arbitrary data on checkout)
# ---------------------------------------------------------------------------


def _covering_first_write(kernel: Kernel, name: str, shape, origin) -> bool:
    """True when the first access to ``name`` inside ``kernel`` is an
    unmasked, unregioned write that covers the whole buffer before any
    read — the condition under which a pooled (garbage-initialized) buffer
    behaves exactly like the debug backend's zeroed temporary. Mirrors the
    read-before-write analysis of the ``repro.lint`` D101 rule, but proves
    the safe direction."""
    oi, oj, ok = origin
    ni, nj, nk = kernel.domain
    accesses = []  # (section, stmt, ext, reads, writes) in program order
    for section in kernel.sections:
        for stmt, ext in section.statements:
            reads = any(a.name == name for a in expr_reads(stmt))
            writes = stmt.target.name == name
            if reads or writes:
                accesses.append((section, stmt, ext, reads, writes))
    if not accesses:
        return True  # never accessed
    if len({id(sec) for sec, *_ in accesses}) > 1:
        return False  # cross-interval initialization: keep the zero fill
    sec0, stmt0, ext0, r0, w0 = accesses[0]
    if r0 or not w0:
        # expr_reads counts a masked write's target as a read, so masked
        # first writes land here too
        return False
    if stmt0.mask is not None or stmt0.region is not None:
        return False
    i0, i1 = oi + ext0.i_lo, oi + ni + ext0.i_hi
    j0, j1 = oj + ext0.j_lo, oj + nj + ext0.j_hi
    if not (i0 <= 0 and i1 >= shape[0] and j0 <= 0 and j1 >= shape[1]):
        return False
    if kernel.order == "PARALLEL":
        k0, k1 = sec0.interval.resolve(nk)
        k0, k1 = max(k0, 0), min(k1, nk)
        return ok + k0 <= 0 and ok + k1 >= shape[2]
    # sequential: each level writes before it reads, provided no statement
    # reads the buffer at a vertical offset (previous/next levels)
    for _, stmt, _, reads, _ in accesses:
        if reads:
            for acc in expr_reads(stmt):
                if acc.name == name and acc.offset[2] != 0:
                    return False
    return True


def _locals_needing_zero(kernel: Kernel) -> set:
    ni, nj, nk = kernel.domain
    need = set()
    for name, ext in kernel.local_arrays.items():
        shape = (
            ni - ext.i_lo + ext.i_hi,
            nj - ext.j_lo + ext.j_hi,
            nk - ext.k_lo + ext.k_hi,
        )
        origin = (-ext.i_lo, -ext.j_lo, -ext.k_lo)
        if not _covering_first_write(kernel, name, shape, origin):
            need.add(name)
    return need


def _transients_needing_zero(sdfg) -> List[str]:
    """Transients whose first touching node does not provably overwrite
    them: these are re-zeroed before that node on every pass (matching the
    debug backend, which zeroes temporaries on every stencil call)."""

    def first_touch_safe(name: str, shape) -> bool:
        for state in sdfg.states:
            for node in state.nodes:
                if isinstance(node, Kernel):
                    if (
                        name in node.written_fields()
                        or name in node.read_fields()
                    ):
                        return _covering_first_write(
                            node, name, shape, node.origin_of(name)
                        )
                elif isinstance(node, Callback):
                    reads = node.reads
                    writes = node.writes
                    if (
                        reads is None
                        or name in reads
                        or (writes is not None and name in writes)
                    ):
                        return False  # unknown contact: keep the zero fill
        return True  # never touched
    return [
        name
        for name, desc in sdfg.arrays.items()
        if desc.transient and not first_touch_safe(name, desc.shape)
    ]


# ---------------------------------------------------------------------------
# kernel emission
# ---------------------------------------------------------------------------


def _kernel_source(
    kernel: Kernel, sdfg, out: _SourceBuilder, plan: _BufferPlan,
    enabled: bool,
) -> None:
    """Emit the body of one kernel."""
    prefix = f"__loc{kernel.node_id}_"
    em = _ExprEmitter(kernel, sdfg, prefix)
    ni, nj, nk = kernel.domain

    # bind kernel-local arrays to pooled slots; zero only those the kernel
    # reads (or writes under a mask) before fully writing
    need_zero = _locals_needing_zero(kernel)
    local_slots = []
    for name, ext in kernel.local_arrays.items():
        shape = (
            ni - ext.i_lo + ext.i_hi,
            nj - ext.j_lo + ext.j_hi,
            nk - ext.k_lo + ext.k_hi,
        )
        idx = plan.alloc(shape)
        local_slots.append(idx)
        out.emit(f"{prefix}{name} = __B[{idx}]")
        if name in need_zero:
            out.emit(f"{prefix}{name}.fill(0)")

    for section in kernel.sections:
        k0, k1 = section.interval.resolve(nk)
        k0, k1 = max(k0, 0), min(k1, nk)
        if k0 >= k1:
            continue
        if kernel.order == "PARALLEL":
            for stmt, ext in section.statements:
                _emit_parallel_stmt(
                    kernel, em, out, stmt, ext, (k0, k1), plan, enabled
                )
        else:
            if kernel.order == "FORWARD":
                out.emit(f"for __k in range({k0}, {k1}):")
            else:
                out.emit(f"for __k in range({k1 - 1}, {k0 - 1}, -1):")
            out.indent += 1
            for stmt, ext in section.statements:
                _emit_level_stmt(
                    kernel, em, out, stmt, ext, "__k", plan, enabled
                )
            out.indent -= 1

    # the kernel's locals are dead past this point; later kernels reuse them
    for idx in local_slots:
        plan.free(idx)


def _ranges_for(kernel: Kernel, stmt: Assign, ext):
    """Full horizontal statement ranges and (for regions) restricted ones."""
    ni, nj, _ = kernel.domain
    full = ((ext.i_lo, ni + ext.i_hi), (ext.j_lo, nj + ext.j_hi))
    if stmt.region is None:
        return full, None
    from repro.dsl.backend_numpy import region_ranges

    restricted = region_ranges(stmt.region, kernel.domain, kernel.bounds, ext)
    return full, restricted


def _finish_stmt(sched, out, stmt, ctx, conds: List[_Val]) -> None:
    """Schedule the RHS and write the statement target.

    Unconditional statements hand the target to the scheduler so the root
    op can write it directly with ``out=``. Conditional statements become
    ``np.copyto(target, value, where=cond)`` when that is provably
    equivalent to the classic ``target = np.where(cond, value, target)``
    (boolean condition, float64 target, and neither value nor condition is
    a bare view of the target — expression operands are materialized before
    the copy runs, so only direct views can overlap)."""
    lhs = ctx.access(FieldAccess(stmt.target.name, (0, 0, 0)))
    if conds:
        val = sched.schedule(stmt.value, ctx)
        cond = (
            " & ".join(f"({c.text})" for c in conds)
            if len(conds) > 1
            else conds[0].text
        )
        safe = (
            sched.enabled
            and lhs.dtype == _F64
            and all(c.is_bool for c in conds)
            and all(c.base is None or c.base != lhs.base for c in conds)
            and (val.base is None or val.base != lhs.base)
        )
        if safe:
            out.emit(f"np.copyto({lhs.text}, {val.text}, where={cond})")
        else:
            out.emit(f"{lhs.text} = np.where({cond}, {val.text}, {lhs.text})")
        sched.free(val, *conds)
    else:
        val = sched.schedule(stmt.value, ctx, target=lhs)
        if not val.stored:
            out.emit(f"{lhs.text} = {val.text}")
        sched.free(val)


def _emit_parallel_stmt(
    kernel, em, out, stmt, ext, krng, plan, enabled
) -> None:
    full, restricted = _ranges_for(kernel, stmt, ext)
    predicate = kernel.schedule.regions_as_predication and stmt.region is not None
    if stmt.region is not None and restricted is None:
        return  # region empty on this rank
    irng, jrng = full if predicate else (restricted or full)

    target_axes = em.axes(stmt.target.name)
    if target_axes == "IJ":
        if krng[1] - krng[0] != 1:
            raise ValueError(
                f"cannot write 2D field {stmt.target.name!r} over a "
                "multi-level interval"
            )
        _emit_level_stmt(
            kernel, em, out, stmt, ext, str(krng[0]), plan, enabled,
            irjr=(irng, jrng),
        )
        return

    ctx = _Ctx(em, irng, jrng, krng=krng)
    sched = _StmtScheduler(out, plan, enabled)
    conds: List[_Val] = []
    if predicate:
        (ri, rj) = restricted
        out.emit(
            f"__ri = np.arange({irng[0]}, {irng[1]}).reshape(-1, 1, 1)"
        )
        out.emit(
            f"__rj = np.arange({jrng[0]}, {jrng[1]}).reshape(1, -1, 1)"
        )
        conds.append(
            _Val(
                f"((__ri >= {ri[0]}) & (__ri < {ri[1]}) & "
                f"(__rj >= {rj[0]}) & (__rj < {rj[1]}))",
                (irng[1] - irng[0], jrng[1] - jrng[0], 1),
                _BOOL,
                is_bool=True,
            )
        )
    if stmt.mask is not None:
        conds.append(sched.schedule(stmt.mask, ctx))
    _finish_stmt(sched, out, stmt, ctx, conds)


def _emit_level_stmt(
    kernel, em, out, stmt, ext, k_src: str, plan, enabled, irjr=None
) -> None:
    if irjr is None:
        full, restricted = _ranges_for(kernel, stmt, ext)
        predicate = (
            kernel.schedule.regions_as_predication and stmt.region is not None
        )
        if stmt.region is not None and restricted is None:
            return
        irng, jrng = full if predicate else (restricted or full)
    else:
        irng, jrng = irjr
        predicate = False
        restricted = None

    ctx = _Ctx(em, irng, jrng, k_src=k_src)
    sched = _StmtScheduler(out, plan, enabled)
    conds: List[_Val] = []
    if predicate:
        (ri, rj) = restricted
        conds.append(
            _Val(
                f"((np.arange({irng[0]}, {irng[1]}).reshape(-1, 1) >= {ri[0]}) & "
                f"(np.arange({irng[0]}, {irng[1]}).reshape(-1, 1) < {ri[1]}) & "
                f"(np.arange({jrng[0]}, {jrng[1]}).reshape(1, -1) >= {rj[0]}) & "
                f"(np.arange({jrng[0]}, {jrng[1]}).reshape(1, -1) < {rj[1]}))",
                (irng[1] - irng[0], jrng[1] - jrng[0]),
                _BOOL,
                is_bool=True,
            )
        )
    if stmt.mask is not None:
        conds.append(sched.schedule(stmt.mask, ctx))
    _finish_stmt(sched, out, stmt, ctx, conds)


class CompiledSDFG:
    """A compiled whole-program SDFG.

    Call with ``arrays`` (container name → NumPy array for every
    non-transient container) and optional ``scalars``. Per-kernel wall-clock
    times are collected when ``instrument=True`` (used by the Fig. 10
    analysis).

    All working memory — expression scratch slots, kernel-local arrays and
    SDFG transients — is checked out of the process buffer pool per call
    and released afterwards, so nested calls are safe and repeated calls
    allocate nothing.
    """

    def __init__(self, sdfg, instrument: bool = False):
        self.sdfg = sdfg
        self.instrument = instrument
        self.kernel_labels: List[str] = []
        self._callbacks: List = []
        self._sched_enabled = scheduling_enabled()
        self._plan = _BufferPlan()
        self.source = self._generate()
        namespace = {
            "np": np,
            "__CB": self._callbacks,
            "__perf_counter": time.perf_counter,
        }
        code = compile(self.source, f"<sdfg:{sdfg.name}>", "exec")
        exec(code, namespace)  # noqa: S102 - generated from our own IR
        self._program = namespace["__program"]
        self._kernel_time = np.zeros(len(self.kernel_labels))
        self._kernel_count = np.zeros(len(self.kernel_labels), dtype=np.int64)
        self._buffer_specs = list(self._plan.specs)
        self._transient_specs: List[Tuple[str, Tuple[int, ...], np.dtype]] = [
            (name, tuple(desc.shape), np.dtype(desc.dtype))
            for name, desc in sdfg.arrays.items()
            if desc.transient
        ]
        self._required: Tuple[str, ...] = tuple(
            name for name, desc in sdfg.arrays.items() if not desc.transient
        )

    @property
    def plan_events(self) -> Tuple[Tuple[str, int], ...]:
        """The scratch planner's alloc/free log, for the R4xx lifetime
        checker."""
        return tuple(self._plan.events)

    @property
    def runtime_bytes(self) -> int:
        """Bytes of pooled working memory one call of this program uses
        (scratch slots + kernel locals + transients)."""
        total = 0
        for shape, dtype in self._buffer_specs:
            total += math.prod(shape) * dtype.itemsize
        for _, shape, dtype in self._transient_specs:
            total += math.prod(shape) * dtype.itemsize
        return total

    # ------------------------------------------------------------------
    def _generate(self) -> str:
        sdfg = self.sdfg
        out = _SourceBuilder()
        out.emit("def __program(__A, __S, __KT, __KC, __B):")
        out.indent += 1
        for name, desc in sdfg.arrays.items():
            out.emit(f"{name} = __A[{name!r}]")
        tasklet_outputs = {
            node.output
            for state in sdfg.states
            for node in state.nodes
            if isinstance(node, Tasklet)
        }
        scalar_names = sorted(self._collect_scalar_names() - tasklet_outputs)
        for name in scalar_names:
            out.emit(f"__s_{name} = __S[{name!r}]")
        out.emit()

        # transients whose first consumer reads before (fully) writing get
        # re-zeroed right before that consumer — per loop iteration, exactly
        # like the debug backend's per-call temporary zeroing
        pending_fills = set(_transients_needing_zero(sdfg))

        # control-flow structure: linear chain with counted loop regions
        loop_starts = {lp.first: lp for lp in sdfg.loops}
        loop_depth = []
        for idx, state in enumerate(sdfg.states):
            if idx in loop_starts:
                lp = loop_starts[idx]
                var = f"__it{len(loop_depth)}"
                out.emit(f"for {var} in range({lp.count}):")
                out.indent += 1
                loop_depth.append(lp)
            out.emit(f"# --- state {state.name} ---")
            for node in state.nodes:
                self._emit_node(node, out, pending_fills)
            while loop_depth and loop_depth[-1].last == idx:
                loop_depth.pop()
                out.indent -= 1
        out.emit("return None")
        return out.source()

    def _emit_fills(self, node, out: _SourceBuilder, pending: set) -> None:
        if not pending:
            return
        if isinstance(node, Kernel):
            touched = pending.intersection(
                node.read_fields() + node.written_fields()
            )
        elif isinstance(node, Callback):
            if node.reads is None or node.writes is None:
                touched = set(pending)  # unknown contact: fill everything
            else:
                touched = pending.intersection(
                    set(node.reads) | set(node.writes)
                )
        else:
            return
        for name in sorted(touched):
            out.emit(f"{name}.fill(0)")
            pending.discard(name)

    def _emit_node(self, node, out: _SourceBuilder, pending_fills: set) -> None:
        self._emit_fills(node, out, pending_fills)
        if isinstance(node, Kernel):
            kidx = len(self.kernel_labels)
            self.kernel_labels.append(node.label)
            out.emit(f"# kernel {node.label}")
            if self.instrument:
                out.emit("__t0 = __perf_counter()")
            _kernel_source(node, self.sdfg, out, self._plan,
                           self._sched_enabled)
            if self.instrument:
                out.emit(f"__KT[{kidx}] += __perf_counter() - __t0")
                out.emit(f"__KC[{kidx}] += 1")
        elif isinstance(node, Tasklet):
            code = node.code
            for name in node.inputs:
                code = _replace_word(code, name, f"__s_{name}")
            out.emit(f"__s_{node.output} = {code}")
        elif isinstance(node, Callback):
            cidx = len(self._callbacks)
            self._callbacks.append(
                lambda f=node.func, a=node.args, kw=node.kwargs: f(*a, **kw)
            )
            out.emit(f"__CB[{cidx}]()  # callback {node.label}")
        elif isinstance(node, StencilComputation):
            raise ValueError(
                f"library node {node.label!r} must be expanded before "
                "code generation (call sdfg.expand_library_nodes())"
            )

    def _collect_scalar_names(self):
        names = set()
        from repro.dsl.ir import walk_expr

        for kernel in self.sdfg.all_kernels():
            for stmt, _ in kernel.statements():
                for e in walk_expr(stmt.value):
                    if isinstance(e, ScalarRef):
                        names.add(e.name)
                if stmt.mask is not None:
                    for e in walk_expr(stmt.mask):
                        if isinstance(e, ScalarRef):
                            names.add(e.name)
        for state in self.sdfg.states:
            for node in state.nodes:
                if isinstance(node, Tasklet):
                    names.update(node.inputs)
        return names

    # ------------------------------------------------------------------
    def __call__(
        self,
        arrays: Optional[Dict[str, np.ndarray]] = None,
        scalars: Optional[Dict[str, float]] = None,
    ) -> None:
        arrays = arrays or {}
        missing = [n for n in self._required if n not in arrays]
        if missing:
            raise ValueError(f"missing arrays for containers: {missing}")
        pool = get_pool()
        if pool._recorder is not None:
            # lifetime recording active: declare every caller-provided
            # container as an out=-scheduled destination so the R404
            # checker can catch live pooled scratch aliasing a kernel
            # output owned by someone else
            for name, arr in arrays.items():
                pool.note("bind", arr, label=f"sdfg:{self.sdfg.name}:{name}")
        merged = dict(arrays)
        transient_bufs: List[np.ndarray] = []
        for name, shape, dtype in self._transient_specs:
            if name in merged:
                continue  # caller-provided transient storage wins
            buf = pool.checkout(shape, dtype)
            transient_bufs.append(buf)
            merged[name] = buf
        bufs = pool.checkout_many(self._buffer_specs)
        try:
            self._program(
                merged, scalars or {}, self._kernel_time, self._kernel_count,
                bufs,
            )
        finally:
            pool.release_many(bufs)
            pool.release_many(transient_bufs)

    @property
    def kernel_times(self) -> Dict[str, Tuple[float, int]]:
        """Per-kernel (total seconds, invocation count) when instrumented."""
        out: Dict[str, Tuple[float, int]] = {}
        for label, t, c in zip(
            self.kernel_labels, self._kernel_time, self._kernel_count
        ):
            prev = out.get(label, (0.0, 0))
            out[label] = (prev[0] + float(t), prev[1] + int(c))
        return out

    def reset_instrumentation(self) -> None:
        self._kernel_time[:] = 0.0
        self._kernel_count[:] = 0


def _replace_word(code: str, name: str, repl: str) -> str:
    return re.sub(rf"\b{re.escape(name)}\b", repl, code)


def compile_sdfg(sdfg, instrument: bool = False) -> CompiledSDFG:
    """Expand (if needed) and compile an SDFG into a callable program.

    Prefer :func:`repro.runtime.compile_cache.get_or_compile` on hot paths:
    it memoizes compilation on the SDFG's content hash.
    """
    if any(state.library_nodes for state in sdfg.states):
        sdfg.expand_library_nodes()
    return CompiledSDFG(sdfg, instrument=instrument)
