"""Memlets: explicit data-movement edges between graph nodes."""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.sdfg.subsets import Range


@dataclasses.dataclass(frozen=True)
class Memlet:
    """Data movement of an exact subset of one container.

    Attributes:
        data: container name in the parent SDFG.
        subset: element range moved (``None`` means the full container).
        is_write: True on edges into an access node.
    """

    data: str
    subset: Optional[Range] = None
    is_write: bool = False

    def volume(self, sdfg) -> int:
        """Number of elements moved (resolves full-container subsets)."""
        if self.subset is not None:
            return self.subset.volume()
        return sdfg.arrays[self.data].volume

    def nbytes(self, sdfg) -> int:
        import numpy as np

        return self.volume(sdfg) * np.dtype(sdfg.arrays[self.data].dtype).itemsize

    def __repr__(self) -> str:
        arrow = "->" if self.is_write else "<-"
        return f"Memlet({self.data}{self.subset or '[*]'} {arrow})"
