"""SDFG structural validation."""

from __future__ import annotations

from repro.sdfg.nodes import Callback, Kernel, StencilComputation, Tasklet


class SDFGValidationError(ValueError):
    pass


def validate_sdfg(sdfg) -> None:
    """Check structural invariants; raises SDFGValidationError."""
    names = set(sdfg.arrays)
    for lp in sdfg.loops:
        if not (0 <= lp.first <= lp.last < len(sdfg.states)):
            raise SDFGValidationError(
                f"loop region [{lp.first}, {lp.last}] out of state range"
            )
        if lp.count < 0:
            raise SDFGValidationError(f"negative loop count {lp.count}")
    for a, b in _pairs(sdfg.loops):
        if not _nested_or_disjoint(a, b):
            raise SDFGValidationError(
                f"loop regions [{a.first},{a.last}] and [{b.first},{b.last}] "
                "overlap without nesting"
            )
    for state in sdfg.states:
        for node in state.nodes:
            if isinstance(node, Kernel):
                _validate_kernel(sdfg, state, node, names)
            elif isinstance(node, StencilComputation):
                for cname in node.mapping.values():
                    if cname not in names:
                        raise SDFGValidationError(
                            f"{node.label}: unknown container {cname!r}"
                        )
            elif isinstance(node, (Tasklet, Callback)):
                pass
            else:
                raise SDFGValidationError(f"unknown node type {type(node)}")


def _validate_kernel(sdfg, state, node: Kernel, names) -> None:
    for cname in node.read_fields() + node.written_fields():
        if cname not in names:
            raise SDFGValidationError(
                f"{node.label}: access of unknown container {cname!r}"
            )
    reads, writes = node.access_subsets(lambda n: sdfg.arrays[n].axes)
    for kind, accesses in (("read", reads), ("write", writes)):
        for cname, rng in accesses.items():
            if cname not in names:
                raise SDFGValidationError(
                    f"{node.label}: {kind} of unknown container {cname!r}"
                )
            shape = sdfg.arrays[cname].shape
            if rng.ndim != len(shape):
                raise SDFGValidationError(
                    f"{node.label}: rank mismatch on {cname!r}"
                )
            for (lo, hi), size in zip(rng.dims, shape):
                if lo < 0 or hi > size:
                    raise SDFGValidationError(
                        f"{node.label}: {kind} range {rng} exceeds container "
                        f"{cname!r} shape {shape}"
                    )
    if not node.schedule.is_valid_for(node.order):
        raise SDFGValidationError(
            f"{node.label}: schedule {node.schedule.iteration_order} invalid "
            f"for {node.order} iteration"
        )


def _pairs(items):
    for i in range(len(items)):
        for j in range(i + 1, len(items)):
            yield items[i], items[j]


def _nested_or_disjoint(a, b) -> bool:
    if a.last < b.first or b.last < a.first:
        return True  # disjoint
    return (a.first <= b.first and b.last <= a.last) or (
        b.first <= a.first and a.last <= b.last
    )
