"""Data-movement and instruction-mix analysis over SDFGs.

These queries power the model-driven performance engineering discipline
(Sec. VI): exact per-kernel byte counts, arithmetic intensities, and the
program-wide load/store fraction the paper measures with PAPI (Sec. VIII:
40.15% of executed instructions were load/store operations).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.sdfg.nodes import Kernel


@dataclasses.dataclass
class KernelCost:
    """Static cost summary of one kernel."""

    label: str
    bytes_moved: int
    excess_bytes: int
    flops: int
    launches: int
    invocations: int
    order: str

    @property
    def arithmetic_intensity(self) -> float:
        return self.flops / max(self.bytes_moved, 1)


def kernel_costs(sdfg) -> List[KernelCost]:
    """Per-kernel static costs, weighted by loop invocation counts."""
    invocations = sdfg.kernel_invocations()
    out = []
    for si, state in enumerate(sdfg.states):
        for node in state.nodes:
            if isinstance(node, Kernel):
                out.append(
                    KernelCost(
                        label=node.label,
                        bytes_moved=node.moved_bytes(sdfg),
                        excess_bytes=node.excess_access_bytes(sdfg),
                        flops=node.flops(),
                        launches=node.launch_count(),
                        invocations=invocations[si],
                        order=node.order,
                    )
                )
    return out


def total_bytes(sdfg) -> int:
    """Total modeled DRAM traffic of one program execution."""
    return sum(c.bytes_moved * c.invocations for c in kernel_costs(sdfg))


def total_flops(sdfg) -> int:
    return sum(c.flops * c.invocations for c in kernel_costs(sdfg))


def load_store_fraction(sdfg) -> float:
    """Fraction of "instructions" that are loads/stores.

    Modeled as element accesses vs. (element accesses + arithmetic ops),
    the analytic analogue of the paper's PAPI measurement.
    """
    import numpy as np

    accesses = 0
    flops = 0
    for cost in kernel_costs(sdfg):
        accesses += (cost.bytes_moved + cost.excess_bytes) * cost.invocations / 8.0
        flops += cost.flops * cost.invocations
    denom = accesses + flops
    return float(accesses / denom) if denom else 0.0


def memory_footprint(sdfg) -> Dict[str, int]:
    """Bytes allocated per container category."""
    persistent = sum(
        d.nbytes for d in sdfg.arrays.values() if not d.transient
    )
    transient = sum(d.nbytes for d in sdfg.arrays.values() if d.transient)
    return {"persistent": persistent, "transient": transient}
