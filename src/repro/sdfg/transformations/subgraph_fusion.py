"""Subgraph fusion (SGF): merge kernels with a common iteration space.

"Subgraph fusion ... can fuse arbitrary subgraphs into a single kernel by
extracting common iteration spaces" (Sec. VI-B). Two kernels with the same
iteration policy, domain and container origins are merged into one launch.
Thread-level legality (Sec. VI-A1) requires that the consumer not read the
producer's outputs at a nonzero horizontal offset — such dependencies need
an inter-thread barrier on a GPU and are handled by OTF fusion instead.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

from repro.dsl.ir import FieldAccess, expr_reads, map_expr
from repro.sdfg.nodes import Kernel, KernelSection
from repro.sdfg.transformations.base import (
    Transformation,
    can_become_adjacent,
    fresh_local_names,
)


def _concurrent_offset(order: str, offset) -> bool:
    """Is this access offset along an axis the fused map executes
    concurrently? I/J are always map dimensions; K joins them when the
    iteration policy is PARALLEL."""
    di, dj, dk = offset
    return (di, dj) != (0, 0) or (order == "PARALLEL" and dk != 0)


def _read_range(sdfg, kernel: Kernel, name: str, offset, ranges):
    """Array-coordinate range one read touches (as access_subsets does)."""
    axes = sdfg.arrays[name].axes
    origin = kernel.origin_of(name)
    irange, jrange, krange = ranges
    di, dj, dk = offset
    dims = []
    if "I" in axes:
        dims.append((origin[0] + irange[0] + di, origin[0] + irange[1] + di))
    if "J" in axes:
        dims.append((origin[1] + jrange[0] + dj, origin[1] + jrange[1] + dj))
    if "K" in axes:
        dims.append((origin[2] + krange[0] + dk, origin[2] + krange[1] + dk))
    from repro.sdfg.subsets import Range

    return Range.of(*dims)


def _offset_hazard(sdfg, writer: Kernel, reader: Kernel, order: str) -> bool:
    """Would one map scope hold a cross-thread dependency: the reader
    accessing, at a concurrent-axis offset, a range the writer writes?

    Accesses whose ranges are provably disjoint (``Range.intersection``
    returns None on empty overlap) are no dependency at all and do not
    block fusion.
    """
    written = set(writer.written_fields())
    if not written:
        return False
    _, write_subsets = writer.access_subsets(lambda n: sdfg.arrays[n].axes)
    for section in reader.sections:
        for stmt, ext in section.statements:
            ranges = reader._stmt_ranges(stmt, ext, section.interval)
            if ranges is None:
                continue
            for acc in expr_reads(stmt):
                if acc.name not in written:
                    continue
                if not _concurrent_offset(order, acc.offset):
                    continue
                write_rng = write_subsets.get(acc.name)
                if write_rng is None:
                    return True  # writes with unknowable ranges: assume hit
                read_rng = _read_range(sdfg, reader, acc.name, acc.offset, ranges)
                if read_rng.ndim != write_rng.ndim:
                    return True
                if read_rng.intersection(write_rng) is not None:
                    return True
    return False


class SubgraphFusion(Transformation):
    name = "subgraph_fusion"

    def __init__(self, same_order_only: bool = True):
        self.same_order_only = same_order_only

    def candidates(self, sdfg, state) -> List[Tuple[int, int]]:
        kernels = [
            (i, n) for i, n in enumerate(state.nodes) if isinstance(n, Kernel)
        ]
        out = []
        for x in range(len(kernels)):
            for y in range(x + 1, len(kernels)):
                i, a = kernels[x]
                j, b = kernels[y]
                if self._compatible(a, b):
                    out.append((i, j))
        return out

    def _compatible(self, a: Kernel, b: Kernel) -> bool:
        if a.order != b.order:
            return False
        if a.domain != b.domain or a.origin != b.origin:
            return False
        if a.bounds.origin != b.bounds.origin or (
            a.bounds.tile_shape != b.bounds.tile_shape
        ):
            return False
        if a.schedule.device != b.schedule.device:
            return False
        # shared containers must agree on origins
        for name, org in b.origins.items():
            if name in a.origins and a.origins[name] != org:
                return False
        return True

    def can_apply(self, sdfg, state, candidate) -> bool:
        i, j = candidate
        if i >= len(state.nodes) or j >= len(state.nodes):
            return False
        a, b = state.nodes[i], state.nodes[j]
        if not (isinstance(a, Kernel) and isinstance(b, Kernel)):
            return False
        if not self._compatible(a, b):
            return False
        if not can_become_adjacent(state, i, j):
            return False
        # the consumer reading producer output at a concurrent-axis offset
        # (RAW), or the producer reading a range the consumer overwrites
        # (WAR), would need an inter-thread barrier inside one map scope
        return not _offset_hazard(sdfg, a, b, a.order) and not _offset_hazard(
            sdfg, b, a, a.order
        )

    def apply(self, sdfg, state, candidate) -> None:
        i, j = candidate
        a: Kernel = state.nodes[i]
        b: Kernel = state.nodes[j]
        rename = fresh_local_names(a, b)
        if rename:
            _rename_kernel_fields(b, rename)
            b.local_arrays = {rename.get(n, n): e for n, e in b.local_arrays.items()}
        a.sections = a.sections + [
            KernelSection(s.interval, list(s.statements)) for s in b.sections
        ]
        a.local_arrays.update(b.local_arrays)
        for name, org in b.origins.items():
            a.origins.setdefault(name, org)
        a.constituents = a.constituents + b.constituents
        a.label = f"{a.label}+{b.label}"
        del state.nodes[j]


def _rename_kernel_fields(kernel: Kernel, rename) -> None:
    def repl(node):
        if isinstance(node, FieldAccess) and node.name in rename:
            return FieldAccess(rename[node.name], node.offset)
        return node

    for section in kernel.sections:
        section.statements = [
            (
                dataclasses.replace(
                    s,
                    target=FieldAccess(
                        rename.get(s.target.name, s.target.name), s.target.offset
                    ),
                    value=map_expr(s.value, repl),
                    mask=map_expr(s.mask, repl) if s.mask is not None else None,
                ),
                ext,
            )
            for s, ext in section.statements
        ]
