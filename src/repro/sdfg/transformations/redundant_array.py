"""Redundant-array removal: elide pure copies into transients.

Removing "redundant memory allocation" is one of the canonical data-centric
transformations (Sec. III-B). A kernel that only copies container A into
transient B (zero offset, unmasked) is deleted and B's readers are
redirected to A, provided A is not redefined while B is still live.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

from repro.dsl.ir import FieldAccess, map_expr
from repro.sdfg.nodes import Kernel
from repro.sdfg.transformations.base import (
    Transformation,
    container_users,
    global_program_order,
)


class RedundantArrayRemoval(Transformation):
    name = "redundant_array"

    def candidates(self, sdfg, state) -> List[Tuple[int, str, str]]:
        out = []
        for i, node in enumerate(state.nodes):
            if not isinstance(node, Kernel):
                continue
            stmts = node.statements()
            if len(stmts) != 1:
                continue
            stmt, _ = stmts[0]
            if stmt.mask is not None or stmt.region is not None:
                continue
            if not isinstance(stmt.value, FieldAccess):
                continue
            src, dst = stmt.value, stmt.target
            if src.offset != (0, 0, 0) or dst.offset != (0, 0, 0):
                continue
            if dst.name not in sdfg.arrays or not sdfg.arrays[dst.name].transient:
                continue
            if node.origin_of(src.name) != node.origin_of(dst.name):
                continue
            out.append((i, src.name, dst.name))
        return out

    def can_apply(self, sdfg, state, candidate) -> bool:
        i, src, dst = candidate
        if i >= len(state.nodes) or not isinstance(state.nodes[i], Kernel):
            return False
        copy_node = state.nodes[i]
        # dst written only by the copy
        writers = [u for u in container_users(sdfg, dst) if u[2] == "w"]
        if len(writers) != 1 or writers[0][1] is not copy_node:
            return False
        # the copy must cover all reads of dst
        _, writes = copy_node.access_subsets(lambda n: sdfg.arrays[n].axes)
        readers = [u for u in container_users(sdfg, dst) if u[2] == "r"]
        order = {id(n): (si, ni) for si, ni, n in global_program_order(sdfg)}
        copy_pos = order[id(copy_node)]
        for _, rnode, _ in readers:
            if isinstance(rnode, Kernel):
                reads, _ = rnode.access_subsets(lambda n: sdfg.arrays[n].axes)
                if dst in reads and not writes[dst].covers(reads[dst]):
                    return False
                # readers must use the same origin mapping for src as the copy
                if rnode.origin_of(dst) != copy_node.origin_of(dst):
                    return False
            else:
                return False  # callbacks/tasklets: be conservative
        # src must not be redefined after the copy while dst is still read
        last_read = max(
            (order[id(rn)] for _, rn, _ in readers), default=copy_pos
        )
        for pos, wnode, kind in container_users(sdfg, src):
            if kind == "w" and copy_pos < pos <= last_read:
                return False
        # redirected readers must be able to see src at the copy's origin
        src_origin = copy_node.origin_of(src)
        for _, rnode, _ in readers:
            if src in rnode.origins and rnode.origins[src] != src_origin:
                return False
        return True

    def apply(self, sdfg, state, candidate) -> None:
        i, src, dst = candidate
        copy_node: Kernel = state.nodes[i]
        src_origin = copy_node.origin_of(src)

        def repl(node):
            if isinstance(node, FieldAccess) and node.name == dst:
                return FieldAccess(src, node.offset)
            return node

        for st in sdfg.states:
            for node in st.nodes:
                if not isinstance(node, Kernel) or node is copy_node:
                    continue
                if dst not in node.read_fields():
                    continue
                changed = False
                for section in node.sections:
                    new_stmts = []
                    for s, ext in section.statements:
                        ns = dataclasses.replace(
                            s,
                            value=map_expr(s.value, repl),
                            mask=map_expr(s.mask, repl) if s.mask is not None else None,
                        )
                        changed = changed or ns is not s
                        new_stmts.append((ns, ext))
                    section.statements = new_stmts
                if dst in node.origins:
                    del node.origins[dst]
                node.origins.setdefault(src, src_origin)
        state.nodes.remove(copy_node)
        del sdfg.arrays[dst]
