"""Power-operator strength reduction (the Smagorinsky case study).

The generated general-purpose ``pow(x, 2.0)`` / ``pow(x, 0.5)`` calls are
"highly inefficient" (Sec. VI-C1); this transformation "converts powers of
positive and negative integers, as well as 0.5, into multiplication loops
and sqrt respectively". The paper reports the Smagorinsky-diffusion kernel
dropping from 511.16 µs to 129.02 µs (99.68% modeled utilization after).
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.dsl.ir import BinOp, Call, Expr, Literal, map_expr, walk_expr
from repro.sdfg.nodes import Kernel
from repro.sdfg.transformations.base import Transformation

_MAX_UNROLL = 4


def _reducible(expr: Expr) -> bool:
    if not (isinstance(expr, BinOp) and expr.op == "**"):
        return False
    if not isinstance(expr.right, Literal):
        return False
    p = expr.right.value
    if p == 0.5:
        return True
    return float(p).is_integer() and 0 < abs(int(p)) <= _MAX_UNROLL


def reduce_powers(expr: Expr) -> Expr:
    """Rewrite reducible power operations in one expression tree."""

    def repl(node: Expr) -> Expr:
        if not _reducible(node):
            return node
        base, p = node.left, node.right.value
        if p == 0.5:
            return Call("sqrt", (base,))
        n = int(p)
        out = base
        for _ in range(abs(n) - 1):
            out = BinOp("*", out, base)
        if n < 0:
            out = BinOp("/", Literal(1.0), out)
        return out

    return map_expr(expr, repl)


def count_reducible_powers(expr: Expr) -> int:
    return sum(1 for n in walk_expr(expr) if _reducible(n))


class PowerExpansion(Transformation):
    name = "power_expansion"

    def candidates(self, sdfg, state) -> List[int]:
        out = []
        for i, node in enumerate(state.nodes):
            if not isinstance(node, Kernel):
                continue
            total = sum(
                count_reducible_powers(s.value)
                + (count_reducible_powers(s.mask) if s.mask is not None else 0)
                for s, _ in node.statements()
            )
            if total:
                out.append(i)
        return out

    def apply(self, sdfg, state, candidate) -> None:
        node: Kernel = state.nodes[candidate]
        for section in node.sections:
            section.statements = [
                (
                    dataclasses.replace(
                        s,
                        value=reduce_powers(s.value),
                        mask=reduce_powers(s.mask) if s.mask is not None else None,
                    ),
                    ext,
                )
                for s, ext in section.statements
            ]
