"""On-the-fly (OTF) map fusion: trade memory traffic for recomputation.

"Fuses by replicating the computations of the first map for each input of
the second map" (Sec. VI-B). A producer kernel that only writes one
transient container is symbolically inlined into every (possibly offset)
read of that container in the consumer; the producer kernel and the
transient disappear, eliminating a full array write + read.
"""

from __future__ import annotations

from typing import List, Tuple

import dataclasses

from repro.dsl.ir import (
    Expr,
    FieldAccess,
    expr_reads,
    map_expr,
    shift_expr,
    substitute_fields,
)
from repro.sdfg.nodes import Kernel, KernelSection
from repro.sdfg.transformations.base import (
    Transformation,
    container_users,
)


class OTFMapFusion(Transformation):
    name = "otf_map_fusion"

    def candidates(self, sdfg, state) -> List[Tuple[int, int, str]]:
        out = []
        kernels = [
            (i, n) for i, n in enumerate(state.nodes) if isinstance(n, Kernel)
        ]
        for x in range(len(kernels)):
            i, a = kernels[x]
            written = a.written_fields()
            if len(written) != 1:
                continue
            t = written[0]
            if t not in sdfg.arrays or not sdfg.arrays[t].transient:
                continue
            for y in range(x + 1, len(kernels)):
                j, b = kernels[y]
                if t in b.read_fields():
                    out.append((i, j, t))
        return out

    def can_apply(self, sdfg, state, candidate) -> bool:
        i, j, t = candidate
        if i >= len(state.nodes) or j >= len(state.nodes):
            return False
        a, b = state.nodes[i], state.nodes[j]
        if not (isinstance(a, Kernel) and isinstance(b, Kernel)):
            return False
        if a.written_fields() != [t] or t not in b.read_fields():
            return False
        # producer must be a pure parallel map without masks/regions so the
        # written value is a closed-form expression of its inputs
        if a.order != "PARALLEL" or len(a.sections) != 1:
            return False
        defined = set()
        for stmt, _ in a.statements():
            if stmt.mask is not None or stmt.region is not None:
                return False
            if stmt.target.name != t and stmt.target.name not in a.local_arrays:
                return False
            # every read of t (or a local) must see an already-defined value
            for acc in expr_reads(stmt):
                if acc.name == t or acc.name in a.local_arrays:
                    if acc.name not in defined:
                        return False
            defined.add(stmt.target.name)
        # Substituting with access-offset shifts is exact iff every producer
        # input keeps the same origin *relative to t* in both kernels:
        #   org_b(in) - org_b(t) == org_a(in) - org_a(t)
        # (inputs the consumer does not yet touch get their origin assigned
        # on apply).
        org_at, org_bt = a.origin_of(t), b.origin_of(t)
        b_touched = set(b.read_fields()) | set(b.written_fields())
        for name in set(a.read_fields()) & b_touched:
            org_ain, org_bin = a.origin_of(name), b.origin_of(name)
            if any(
                (org_bin[d] - org_bt[d]) != (org_ain[d] - org_at[d])
                for d in range(3)
            ):
                return False
        # t must be produced and consumed by exactly these two nodes
        users = container_users(sdfg, t)
        involved_nodes = {id(u[1]) for u in users}
        if involved_nodes != {id(a), id(b)}:
            return False
        # producer must cover every level/extent the consumer reads
        reads, _ = b.access_subsets(lambda n: sdfg.arrays[n].axes)
        _, writes = a.access_subsets(lambda n: sdfg.arrays[n].axes)
        if t not in writes or t not in reads:
            # region/interval resolution can deactivate every access of t
            # on this rank: there is no dataflow to fuse over
            return False
        if writes[t].intersection(reads[t]) is None:
            # disjoint subsets: the consumer reads parts of t this producer
            # never wrote — inlining its expression would fabricate values
            return False
        if not writes[t].covers(reads[t]):
            return False
        # no conflicting kernel in between may redefine a's inputs
        a_inputs = set(a.read_fields())
        for m in range(i + 1, j):
            node = state.nodes[m]
            _, w = state.node_reads_writes(node)
            if set(w) & a_inputs:
                return False
        return True

    def apply(self, sdfg, state, candidate) -> None:
        i, j, t = candidate
        a: Kernel = state.nodes[i]
        b: Kernel = state.nodes[j]
        expr = self._producer_expression(a, t)
        # producer locals referenced in expr must become consumer locals
        needed_locals = {
            acc.name
            for acc in _field_accesses(expr)
            if acc.name in a.local_arrays
        }
        assert not needed_locals, "producer locals must be fully substituted"
        # producer inputs the consumer did not previously touch inherit an
        # origin that preserves the compute-index ↔ array-index mapping
        org_at, org_bt = a.origin_of(t), b.origin_of(t)
        b_touched = set(b.read_fields()) | set(b.written_fields())
        for name in a.read_fields():
            if name != t and name not in b_touched:
                b.origins[name] = tuple(
                    org_bt[d] + a.origin_of(name)[d] - org_at[d]
                    for d in range(3)
                )

        def rewrite(e: Expr) -> Expr:
            return substitute_fields(e, {t: expr})

        for section in b.sections:
            section.statements = [
                (
                    dataclasses.replace(
                        s,
                        value=rewrite(s.value),
                        mask=rewrite(s.mask) if s.mask is not None else None,
                    ),
                    ext,
                )
                for s, ext in section.statements
            ]
        b.constituents = a.constituents + b.constituents
        del state.nodes[i]
        del sdfg.arrays[t]
        b.origins.pop(t, None)

    @staticmethod
    def _producer_expression(a: Kernel, t: str) -> Expr:
        """Compose the producer's statements into one expression for t."""
        env = {}
        for stmt, _ in a.statements():
            value = substitute_fields(stmt.value, env)
            env[stmt.target.name] = value
        return env[t]


def _field_accesses(expr: Expr):
    from repro.dsl.ir import walk_expr

    return [n for n in walk_expr(expr) if isinstance(n, FieldAccess)]
