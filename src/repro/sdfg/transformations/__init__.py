"""Data-centric graph-rewriting transformations (Sec. III-B, VI).

Each transformation is a pattern: it enumerates match candidates on a
state, checks legality, and rewrites kernels in place. The dataflow view
is derived from kernel contents, so no manual edge rewiring is needed.
"""

from repro.sdfg.transformations.base import (
    Transformation,
    apply_exhaustively,
    global_program_order,
)
from repro.sdfg.transformations.dead_code import DeadKernelElimination
from repro.sdfg.transformations.local_storage import LocalStorage
from repro.sdfg.transformations.otf_fusion import OTFMapFusion
from repro.sdfg.transformations.power_expansion import PowerExpansion
from repro.sdfg.transformations.redundant_array import RedundantArrayRemoval
from repro.sdfg.transformations.region_split import RegionSplit
from repro.sdfg.transformations.subgraph_fusion import SubgraphFusion

__all__ = [
    "DeadKernelElimination",
    "LocalStorage",
    "OTFMapFusion",
    "PowerExpansion",
    "RedundantArrayRemoval",
    "RegionSplit",
    "SubgraphFusion",
    "Transformation",
    "apply_exhaustively",
    "global_program_order",
]
