"""Dead-kernel elimination: drop computations of never-read transients."""

from __future__ import annotations

from typing import List

from repro.sdfg.nodes import Kernel
from repro.sdfg.transformations.base import (
    Transformation,
    container_users,
    global_program_order,
)


class DeadKernelElimination(Transformation):
    """Remove kernels all of whose outputs are transient and never read
    after the kernel executes (region pruning's workhorse)."""

    name = "dead_kernel_elimination"

    def candidates(self, sdfg, state) -> List[int]:
        order = {id(n): (si, ni) for si, ni, n in global_program_order(sdfg)}
        state_index = sdfg.states.index(state)
        in_loop = any(
            lp.first <= state_index <= lp.last for lp in sdfg.loops
        )
        out = []
        for i, node in enumerate(state.nodes):
            if not isinstance(node, Kernel):
                continue
            written = node.written_fields()
            if not written:
                out.append(i)
                continue
            pos = order[id(node)]
            dead = True
            for name in written:
                desc = sdfg.arrays.get(name)
                if desc is None or not desc.transient:
                    dead = False
                    break
                for upos, unode, kind in container_users(sdfg, name):
                    if kind != "r" or unode is node:
                        continue
                    # inside a loop, an earlier reader still sees the value
                    # on the next iteration — treat any reader as live
                    if upos > pos or in_loop:
                        dead = False
                        break
                if not dead:
                    break
            if dead:
                out.append(i)
        return out

    def can_apply(self, sdfg, state, candidate) -> bool:
        return candidate < len(state.nodes) and isinstance(
            state.nodes[candidate], Kernel
        )

    def apply(self, sdfg, state, candidate) -> None:
        node = state.nodes[candidate]
        del state.nodes[candidate]
        # drop transients that no longer have any users
        for name in node.written_fields():
            desc = sdfg.arrays.get(name)
            if desc is not None and desc.transient:
                if not container_users(sdfg, name):
                    del sdfg.arrays[name]
