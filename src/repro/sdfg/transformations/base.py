"""Transformation framework: candidate enumeration + legality + rewrite."""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.sdfg.nodes import Callback, Kernel, Node


class Transformation:
    """Base class for pattern-matching graph rewrites."""

    name: str = "transformation"

    def candidates(self, sdfg, state) -> List[Any]:
        """Enumerate match candidates in one state."""
        raise NotImplementedError

    def can_apply(self, sdfg, state, candidate) -> bool:
        return True

    def apply(self, sdfg, state, candidate) -> None:
        raise NotImplementedError

    def apply_first(self, sdfg) -> bool:
        """Apply the first legal candidate anywhere in the SDFG."""
        for state in sdfg.states:
            for cand in self.candidates(sdfg, state):
                if self.can_apply(sdfg, state, cand):
                    self.apply(sdfg, state, cand)
                    return True
        return False

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


def apply_exhaustively(sdfg, transformations, max_applications: int = 10_000) -> int:
    """Apply transformations to fixpoint; returns number of applications."""
    applied = 0
    progress = True
    while progress and applied < max_applications:
        progress = False
        for xf in transformations:
            if xf.apply_first(sdfg):
                applied += 1
                progress = True
                break
    return applied


# ---------------------------------------------------------------------------
# Dependence helpers
# ---------------------------------------------------------------------------


def node_conflicts(state, a: Node, b: Node) -> bool:
    """True if nodes a and b cannot be reordered past each other."""
    if isinstance(a, Callback) or isinstance(b, Callback):
        return True  # __pystate serializes callbacks against everything
    ra, wa = state.node_reads_writes(a)
    rb, wb = state.node_reads_writes(b)
    wa_s, wb_s = set(wa), set(wb)
    return bool(wa_s & set(rb)) or bool(wb_s & set(ra)) or bool(wa_s & wb_s)


def can_become_adjacent(state, i: int, j: int) -> bool:
    """Can node j be moved up to just after node i (i < j)?"""
    b = state.nodes[j]
    for m in range(i + 1, j):
        if node_conflicts(state, state.nodes[m], b):
            return False
    return True


def global_program_order(sdfg) -> List[Tuple[int, int, Node]]:
    """Flat (state_index, node_index, node) order of the whole program."""
    out = []
    for si, state in enumerate(sdfg.states):
        for ni, node in enumerate(state.nodes):
            out.append((si, ni, node))
    return out


def container_users(sdfg, name: str):
    """All (position, node, kind) uses of a container in program order."""
    uses = []
    for si, ni, node in global_program_order(sdfg):
        state = sdfg.states[si]
        reads, writes = state.node_reads_writes(node)
        if name in reads:
            uses.append(((si, ni), node, "r"))
        if name in writes:
            uses.append(((si, ni), node, "w"))
    return uses


def fresh_local_names(a: Kernel, b: Kernel):
    """Rename b's local arrays that collide with a's; returns rename map."""
    rename = {}
    for name in b.local_arrays:
        if name in a.local_arrays:
            new = name
            n = 0
            existing = set(a.local_arrays) | set(b.local_arrays)
            while new in existing or new in rename.values():
                n += 1
                new = f"{name}__f{n}"
            rename[name] = new
    return rename
