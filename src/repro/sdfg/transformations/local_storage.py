"""Local-storage transformation: buffer re-used values in registers.

Implements the schedule side of Sec. VI-A2: values used in consecutive
iterations of forward/backward solvers, and fields read several times by
one thread, are marked register-cached so they are loaded from global
memory only once. The performance model stops charging the repeated-access
excess for cached fields; generated NumPy code is unchanged (NumPy has no
register file), matching the paper's small-but-real effect (Table III:
5.56 s → 5.45 s).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.dsl.ir import expr_reads
from repro.sdfg.nodes import Kernel
from repro.sdfg.transformations.base import Transformation


def _multi_access_fields(kernel: Kernel) -> List[str]:
    """Fields read more than once per iteration point (or across k-levels
    in a vertical solver) and not yet cached."""
    counts: Dict[str, int] = {}
    vertical = kernel.order in ("FORWARD", "BACKWARD")
    for stmt, _ in kernel.statements():
        for acc in expr_reads(stmt):
            if acc.name in kernel.local_arrays:
                continue
            # in vertical solvers, a k-offset read is the "previous
            # iteration's value" the paper buffers in registers
            weight = 2 if (vertical and acc.offset[2] != 0) else 1
            counts[acc.name] = counts.get(acc.name, 0) + weight
    return [
        name
        for name, c in counts.items()
        if c > 1 and name not in kernel.schedule.cached_fields
    ]


class LocalStorage(Transformation):
    name = "local_storage"

    def candidates(self, sdfg, state) -> List[Tuple[int, str]]:
        out = []
        for i, node in enumerate(state.nodes):
            if isinstance(node, Kernel):
                for name in _multi_access_fields(node):
                    out.append((i, name))
        return out

    def can_apply(self, sdfg, state, candidate) -> bool:
        i, name = candidate
        if i >= len(state.nodes) or not isinstance(state.nodes[i], Kernel):
            return False
        node = state.nodes[i]
        # values needing inter-thread exchange must use shared memory, not
        # registers (Sec. V-A); only same-thread reuse is register-cacheable
        return name not in node.schedule.cached_fields

    def apply(self, sdfg, state, candidate) -> None:
        i, name = candidate
        node: Kernel = state.nodes[i]
        horizontal_offsets = any(
            acc.name == name and (acc.offset[0] != 0 or acc.offset[1] != 0)
            for stmt, _ in node.statements()
            for acc in expr_reads(stmt)
        )
        node.schedule.cached_fields[name] = (
            "shared" if horizontal_offsets else "register"
        )
