"""Region scheduling: predicated full-domain maps vs. split sub-kernels.

Horizontal regions "can either be implemented as separate maps (i.e.,
multiple kernels) with an iteration over the respective sub-domain or as a
map over the full domain with code predicated on the index" (Sec. V-A).
Splitting was a significant win in the paper's first optimization cycle
(Table III: 5.35 s → 4.82 s): predicated edge-correction statements waste
nearly the whole domain's worth of memory traffic.
"""

from __future__ import annotations

from typing import List

from repro.sdfg.nodes import Kernel
from repro.sdfg.transformations.base import Transformation


class RegionSplit(Transformation):
    """Switch a kernel's region strategy from predication to splitting."""

    name = "region_split"

    def candidates(self, sdfg, state) -> List[int]:
        return [
            i
            for i, node in enumerate(state.nodes)
            if isinstance(node, Kernel)
            and node.has_regions()
            and node.schedule.regions_as_predication
        ]

    def can_apply(self, sdfg, state, candidate) -> bool:
        if candidate >= len(state.nodes):
            return False
        node = state.nodes[candidate]
        return (
            isinstance(node, Kernel)
            and node.has_regions()
            and node.schedule.regions_as_predication
        )

    def apply(self, sdfg, state, candidate) -> None:
        state.nodes[candidate].schedule.regions_as_predication = False


class RegionPredicate(Transformation):
    """The inverse knob (used by the auto-tuner to explore both options)."""

    name = "region_predicate"

    def candidates(self, sdfg, state) -> List[int]:
        return [
            i
            for i, node in enumerate(state.nodes)
            if isinstance(node, Kernel)
            and node.has_regions()
            and not node.schedule.regions_as_predication
        ]

    def can_apply(self, sdfg, state, candidate) -> bool:
        if candidate >= len(state.nodes):
            return False
        node = state.nodes[candidate]
        return (
            isinstance(node, Kernel)
            and node.has_regions()
            and not node.schedule.regions_as_predication
        )

    def apply(self, sdfg, state, candidate) -> None:
        state.nodes[candidate].schedule.regions_as_predication = True
