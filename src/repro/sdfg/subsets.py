"""Index subsets for memlets: exact per-dimension half-open ranges.

SDFGs "inherently allow users to query data movement for exact ranges at
any point of the program" (Sec. III-B); this module provides the range
algebra those queries are built on.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence, Tuple


@dataclasses.dataclass(frozen=True)
class Range:
    """An N-dimensional rectangular subset: per-dim half-open [begin, end).

    Strides are always 1 in this reproduction (stencil accesses are dense).
    """

    dims: Tuple[Tuple[int, int], ...]

    @staticmethod
    def of(*dims: Tuple[int, int]) -> "Range":
        return Range(tuple((int(a), int(b)) for a, b in dims))

    @staticmethod
    def from_shape(shape: Sequence[int]) -> "Range":
        return Range(tuple((0, int(s)) for s in shape))

    def __post_init__(self):
        for begin, end in self.dims:
            if end < begin:
                raise ValueError(f"malformed range [{begin}, {end})")

    @property
    def ndim(self) -> int:
        return len(self.dims)

    def volume(self) -> int:
        """Number of elements covered."""
        vol = 1
        for begin, end in self.dims:
            vol *= end - begin
        return vol

    def union(self, other: "Range") -> "Range":
        """Bounding-box union (the exact union may not be rectangular)."""
        if self.ndim != other.ndim:
            raise ValueError("rank mismatch in range union")
        return Range(
            tuple(
                (min(a0, b0), max(a1, b1))
                for (a0, a1), (b0, b1) in zip(self.dims, other.dims)
            )
        )

    def intersection(self, other: "Range") -> "Range | None":
        if self.ndim != other.ndim:
            raise ValueError("rank mismatch in range intersection")
        dims = []
        for (a0, a1), (b0, b1) in zip(self.dims, other.dims):
            lo, hi = max(a0, b0), min(a1, b1)
            if lo >= hi:
                return None
            dims.append((lo, hi))
        return Range(tuple(dims))

    def covers(self, other: "Range") -> bool:
        if self.ndim != other.ndim:
            raise ValueError("rank mismatch in range covers")
        return all(
            a0 <= b0 and b1 <= a1
            for (a0, a1), (b0, b1) in zip(self.dims, other.dims)
        )

    def translated(self, offset: Sequence[int]) -> "Range":
        return Range(
            tuple((b + o, e + o) for (b, e), o in zip(self.dims, offset))
        )

    def __repr__(self) -> str:
        inner = ", ".join(f"{b}:{e}" for b, e in self.dims)
        return f"[{inner}]"
