"""Data-centric IR (Stateful Dataflow Multigraphs) and optimizations.

A structural reproduction of the DaCe SDFG described in Sec. III-B: data
containers and data movement (memlets) are explicit and separate from
computation; stencils enter the graph as *library nodes* and are expanded
into map-scoped kernels whose schedules can be mutated by graph-rewriting
transformations without touching user code.
"""

from repro.sdfg.graph import SDFG, InterstateEdge, SDFGState
from repro.sdfg.memlet import Memlet
from repro.sdfg.nodes import (
    AccessNode,
    Callback,
    Kernel,
    KernelSchedule,
    StencilComputation,
    Tasklet,
)
from repro.sdfg.subsets import Range

__all__ = [
    "SDFG",
    "AccessNode",
    "Callback",
    "InterstateEdge",
    "Kernel",
    "KernelSchedule",
    "Memlet",
    "Range",
    "SDFGState",
    "StencilComputation",
    "Tasklet",
]
