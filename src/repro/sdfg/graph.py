"""The SDFG container: states, data descriptors and control flow.

States hold compute nodes in program order; the dataflow multigraph
(access nodes + memlet edges) is derived from the nodes' exact access
subsets, so transformations may freely rewrite kernels and the graph view
stays consistent. Control flow is a linear chain of states plus counted
loop regions (the paper's dynamical core unrolls data-dependent control
flow during orchestration, Sec. V-B; kernels inside remaining loops are
"invoked multiple times (≤56) under different settings").
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.sdfg.memlet import Memlet
from repro.sdfg.nodes import (
    AccessNode,
    Callback,
    Kernel,
    Node,
    StencilComputation,
    Tasklet,
)
from repro.sdfg.subsets import Range


@dataclasses.dataclass
class ArrayDesc:
    """Data-container descriptor."""

    shape: Tuple[int, ...]
    dtype: type = np.float64
    axes: str = "IJK"
    transient: bool = False

    @property
    def volume(self) -> int:
        vol = 1
        for s in self.shape:
            vol *= s
        return vol

    @property
    def nbytes(self) -> int:
        return self.volume * np.dtype(self.dtype).itemsize


@dataclasses.dataclass
class InterstateEdge:
    """Edge in the coarse state machine (Fig. 5)."""

    condition: Optional[str] = None
    assignments: Dict[str, str] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class LoopRegion:
    """A counted loop over a contiguous range of states [first, last]."""

    first: int
    last: int
    count: int
    label: str = "loop"


class SDFGState:
    """One acyclic dataflow graph: compute nodes in program order."""

    def __init__(self, name: str):
        self.name = name
        self.nodes: List[Node] = []

    def add(self, node: Node) -> Node:
        self.nodes.append(node)
        return node

    @property
    def kernels(self) -> List[Kernel]:
        return [n for n in self.nodes if isinstance(n, Kernel)]

    @property
    def library_nodes(self) -> List[StencilComputation]:
        return [n for n in self.nodes if isinstance(n, StencilComputation)]

    def node_reads_writes(self, node: Node) -> Tuple[List[str], List[str]]:
        """Container names read and written by a compute node."""
        if isinstance(node, Kernel):
            return node.read_fields(), node.written_fields()
        if isinstance(node, StencilComputation):
            return node.read_containers(), node.written_containers()
        if isinstance(node, Tasklet):
            return list(node.inputs), [node.output]
        if isinstance(node, Callback):
            reads = list(node.reads or []) + ["__pystate"]
            writes = list(node.writes or []) + ["__pystate"]
            return reads, writes
        return [], []

    def dataflow_graph(self, sdfg: "SDFG") -> nx.MultiDiGraph:
        """Derive the access-node/memlet multigraph for this state."""
        g = nx.MultiDiGraph()
        latest: Dict[str, AccessNode] = {}

        def subset_of(node, name, kind) -> Optional[Range]:
            if isinstance(node, Kernel) and name in sdfg.arrays:
                reads, writes = node.access_subsets(
                    lambda n: sdfg.arrays[n].axes
                )
                return (reads if kind == "r" else writes).get(name)
            return None

        for node in self.nodes:
            g.add_node(node)
            reads, writes = self.node_reads_writes(node)
            for name in reads:
                acc = latest.get(name)
                if acc is None:
                    acc = AccessNode(name)
                    latest[name] = acc
                    g.add_node(acc)
                g.add_edge(acc, node, memlet=Memlet(name, subset_of(node, name, "r")))
            for name in writes:
                acc = AccessNode(name)
                g.add_node(acc)
                g.add_edge(
                    node,
                    acc,
                    memlet=Memlet(name, subset_of(node, name, "w"), is_write=True),
                )
                latest[name] = acc
        return g

    def __repr__(self) -> str:
        return f"SDFGState({self.name!r}, {len(self.nodes)} nodes)"


class SDFG:
    """Stateful dataflow multigraph."""

    def __init__(self, name: str):
        self.name = name
        self.arrays: Dict[str, ArrayDesc] = {}
        self.states: List[SDFGState] = []
        self.loops: List[LoopRegion] = []
        self.scalars: Dict[str, float] = {}
        self.callbacks_enabled = True

    # ---- construction ----------------------------------------------------

    def add_array(
        self,
        name: str,
        shape: Tuple[int, ...],
        dtype=np.float64,
        axes: str = "IJK",
        transient: bool = False,
    ) -> str:
        if name in self.arrays:
            existing = self.arrays[name]
            if existing.shape != tuple(shape):
                raise ValueError(
                    f"container {name!r} redefined with shape {shape} "
                    f"(was {existing.shape})"
                )
            return name
        self.arrays[name] = ArrayDesc(tuple(shape), dtype, axes, transient)
        return name

    def add_transient(self, name: str, shape, dtype=np.float64, axes="IJK") -> str:
        base, n = name, 0
        while name in self.arrays:
            n += 1
            name = f"{base}_{n}"
        return self.add_array(name, shape, dtype, axes, transient=True)

    def add_state(self, name: Optional[str] = None) -> SDFGState:
        state = SDFGState(name or f"state_{len(self.states)}")
        self.states.append(state)
        return state

    def add_loop(self, first: int, last: int, count: int, label="loop") -> LoopRegion:
        region = LoopRegion(first, last, count, label)
        self.loops.append(region)
        return region

    def copy(self) -> "SDFG":
        """Deep-copy kernels, arrays and control flow (tasklets/callbacks
        keep their function references)."""
        dup = SDFG(self.name)
        dup.arrays = {n: dataclasses.replace(d) for n, d in self.arrays.items()}
        dup.loops = [dataclasses.replace(lp) for lp in self.loops]
        dup.scalars = dict(self.scalars)
        for state in self.states:
            new_state = dup.add_state(state.name)
            for node in state.nodes:
                if isinstance(node, Kernel):
                    new_state.add(node.copy())
                else:
                    new_state.add(node)
        return dup

    # ---- queries -----------------------------------------------------------

    def all_nodes(self) -> Iterable[Node]:
        for state in self.states:
            yield from state.nodes

    def all_kernels(self) -> List[Kernel]:
        return [n for n in self.all_nodes() if isinstance(n, Kernel)]

    def kernel_invocations(self) -> Dict[int, int]:
        """Times each state executes, accounting for loop regions."""
        counts = {i: 1 for i in range(len(self.states))}
        for loop in self.loops:
            for i in range(loop.first, loop.last + 1):
                counts[i] *= loop.count
        return counts

    def transients(self) -> List[str]:
        return [n for n, d in self.arrays.items() if d.transient]

    def container_readers(self) -> Dict[str, List[Tuple[SDFGState, Node]]]:
        out: Dict[str, List] = {}
        for state in self.states:
            for node in state.nodes:
                reads, _ = state.node_reads_writes(node)
                for name in reads:
                    out.setdefault(name, []).append((state, node))
        return out

    def container_writers(self) -> Dict[str, List[Tuple[SDFGState, Node]]]:
        out: Dict[str, List] = {}
        for state in self.states:
            for node in state.nodes:
                _, writes = state.node_reads_writes(node)
                for name in writes:
                    out.setdefault(name, []).append((state, node))
        return out

    # ---- statistics (Sec. V: graph size) -----------------------------------

    def stats(self) -> Dict[str, int]:
        n_dataflow = 0
        for state in self.states:
            g = state.dataflow_graph(self)
            n_dataflow += g.number_of_nodes()
        invocations = self.kernel_invocations()
        total_kernel_launches = sum(
            len(state.kernels) * invocations[i]
            for i, state in enumerate(self.states)
        )
        return {
            "states": len(self.states),
            "dataflow_nodes": n_dataflow,
            "unique_kernels": len(self.all_kernels()),
            "kernel_launches_per_step": total_kernel_launches,
            "containers": len(self.arrays),
            "transients": len(self.transients()),
        }

    # ---- passes --------------------------------------------------------------

    def expand_library_nodes(self) -> "SDFG":
        from repro.sdfg.expansion import expand_sdfg

        expand_sdfg(self)
        return self

    def validate(self) -> None:
        from repro.sdfg.validation import validate_sdfg

        validate_sdfg(self)

    def compile(self, bounds=None) -> "Callable":
        from repro.sdfg.codegen import compile_sdfg

        return compile_sdfg(self)

    def __repr__(self) -> str:
        return (
            f"SDFG({self.name!r}, {len(self.states)} states, "
            f"{len(self.arrays)} containers)"
        )
