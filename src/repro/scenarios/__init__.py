"""repro.scenarios — the experiment scenario registry.

Named, reference-checked experiment definitions: initial-condition
builders, suggested configurations, ensemble perturbation recipes and
physics checks, resolved by name through a process-wide registry.

Built-ins (registered on import):

- ``baroclinic_wave`` — the paper's Sec. IX perturbed zonal jet.
- ``solid_body_rotation`` — Williamson test 1 tracer transport.
- ``rotated_transport`` — the same rotation tilted 45°, crossing tile
  seams and corners.
- ``resting_atmosphere`` — the discrete steady state; any developing
  circulation is a solver bug.

The :mod:`repro.run` facade resolves ``run("baroclinic_wave", ...)``
here; register your own with :func:`register_scenario`.
"""

from repro.scenarios.base import (
    Perturbation,
    Scenario,
    SmoothPerturbation,
    UnknownScenarioError,
    available_scenarios,
    get_scenario,
    register_scenario,
)
from repro.scenarios import library
from repro.scenarios.library import (
    baroclinic_state,
    gaussian_tracer,
    solid_body_rotation_winds,
)

__all__ = [
    "Perturbation",
    "Scenario",
    "SmoothPerturbation",
    "UnknownScenarioError",
    "available_scenarios",
    "baroclinic_state",
    "gaussian_tracer",
    "get_scenario",
    "library",
    "register_scenario",
    "solid_body_rotation_winds",
]
