"""Built-in scenarios: the paper's test cases plus new variants.

Each scenario's state builder is the single source of truth for its
initial conditions — the legacy helpers in :mod:`repro.fv3.initial`
now delegate here through deprecation shims. Every scenario carries
reference checks (physical bounds, conservation tolerances) that the
experiment facade runs after stepping.
"""

from __future__ import annotations

import numpy as np

from repro.fv3 import constants
from repro.fv3.config import DynamicalCoreConfig  # noqa: F401 — re-export
from repro.fv3.grid import CubedSphereGrid
from repro.fv3.initial import RankFields, reference_coordinate
from repro.scenarios.base import (
    Scenario,
    SmoothPerturbation,
    register_scenario,
)

__all__ = [
    "BAROCLINIC_WAVE",
    "RESTING_ATMOSPHERE",
    "ROTATED_TRANSPORT",
    "SOLID_BODY_ROTATION",
    "baroclinic_state",
    "gaussian_tracer",
    "solid_body_rotation_winds",
]

#: jet parameters (Ullrich et al. scaled down for the coarse demo grids)
U_JET = 35.0  # m/s
T_SURFACE = 300.0  # K
LAPSE_FRACTION = 0.18  # fractional temperature drop top-to-bottom
PERTURBATION_U = 1.0  # m/s
PERT_LON = np.pi / 9.0
PERT_LAT = 2.0 * np.pi / 9.0
PERT_WIDTH = 0.2  # rad


# ---------------------------------------------------------------------------
# building blocks
# ---------------------------------------------------------------------------


def _uniform_pressure(grid: CubedSphereGrid, config: DynamicalCoreConfig,
                      ptop: float = 100.0):
    """(delp, p_mid, sigma_mid) of a horizontally uniform sigma column."""
    nk = config.npz
    bk, _ = reference_coordinate(config, ptop)
    ps = constants.P_REF
    pe = ptop + bk[None, None, :] * (ps - ptop)
    delp = np.broadcast_to(
        np.diff(pe, axis=-1), grid.shape + (nk,)
    ).copy()
    p_mid = 0.5 * (pe[..., :-1] + pe[..., 1:])
    sigma_mid = (p_mid - ptop) / (ps - ptop)
    return delp, p_mid, sigma_mid


def _hydrostatic_delz(pt, delp, p_mid):
    """δz < 0 by FV3 convention."""
    return -constants.RDGAS * pt * delp / (constants.GRAV * p_mid)


def solid_body_rotation_winds(
    grid: CubedSphereGrid, nk: int, u0: float = 40.0, angle: float = 0.0
):
    """Winds of solid-body rotation (Williamson test 1), for transport
    tests: u_east = u0 (cos φ cos α + sin φ cos λ sin α)."""
    lon, lat = grid.lon, grid.lat
    u_east = u0 * (
        np.cos(lat) * np.cos(angle)
        + np.sin(lat) * np.cos(lon) * np.sin(angle)
    )
    v_north = -u0 * np.sin(lon) * np.sin(angle)
    u = np.zeros(grid.shape + (nk,))
    v = np.zeros(grid.shape + (nk,))
    for k in range(nk):
        u[..., k], v[..., k] = grid.wind_to_local(u_east, v_north)
    return u, v


def gaussian_tracer(grid: CubedSphereGrid, nk: int, lon0=0.0, lat0=0.0,
                    width=0.35) -> np.ndarray:
    """A smooth blob for advection tests (great-circle distance based)."""
    lon, lat = grid.lon, grid.lat
    cosd = np.sin(lat0) * np.sin(lat) + np.cos(lat0) * np.cos(lat) * np.cos(
        lon - lon0
    )
    dist = np.arccos(np.clip(cosd, -1.0, 1.0))
    blob = np.exp(-((dist / width) ** 2))
    return np.repeat(blob[..., None], nk, axis=-1)


# ---------------------------------------------------------------------------
# state builders
# ---------------------------------------------------------------------------


def baroclinic_state(
    grid: CubedSphereGrid, config: DynamicalCoreConfig, ptop: float = 100.0
) -> RankFields:
    """The perturbed zonal-jet initial state (paper Sec. IX) on one rank."""
    nk = config.npz
    shape3 = grid.shape + (nk,)
    lon, lat = grid.lon, grid.lat

    delp, p_mid, sigma_mid = _uniform_pressure(grid, config, ptop)

    # temperature: warm surface, cooler aloft, meridional gradient
    t_profile = T_SURFACE * (1.0 - LAPSE_FRACTION * (1.0 - sigma_mid))
    pt = t_profile * (1.0 - 0.1 * np.sin(lat[..., None]) ** 2)

    # zonal jet peaked at mid-latitudes and at upper levels
    u_east = (
        U_JET
        * np.sin(2.0 * np.abs(lat[..., None])) ** 2
        * np.cos(0.5 * np.pi * sigma_mid)
    )
    # localized wind perturbation (the instability trigger)
    r2 = (lon[..., None] - PERT_LON) ** 2 + (lat[..., None] - PERT_LAT) ** 2
    u_east = u_east + PERTURBATION_U * np.exp(-r2 / PERT_WIDTH**2)
    v_north = np.zeros(shape3)

    u = np.zeros(shape3)
    v = np.zeros(shape3)
    for k in range(nk):
        u[..., k], v[..., k] = grid.wind_to_local(
            u_east[..., k], v_north[..., k]
        )

    delz = _hydrostatic_delz(pt, delp, p_mid)
    w = np.zeros(shape3)

    tracers = []
    for n in range(config.n_tracers):
        blob_lon = PERT_LON + n * 0.5
        r2t = (lon[..., None] - blob_lon) ** 2 + (lat[..., None]) ** 2
        tracers.append(np.exp(-r2t / 0.5**2) * np.ones(shape3))
    return RankFields(
        u=u, v=v, w=w, pt=pt, delp=delp, delz=delz, tracers=tracers
    )


def _solid_body_state(grid, config, u0: float = 40.0, angle: float = 0.0,
                      width: float = 0.4) -> RankFields:
    """Rigid-rotation winds advecting Gaussian tracer blobs."""
    nk = config.npz
    u, v = solid_body_rotation_winds(grid, nk, u0=u0, angle=angle)
    delp, p_mid, _ = _uniform_pressure(grid, config)
    pt = np.full(grid.shape + (nk,), 280.0)
    delz = _hydrostatic_delz(pt, delp, p_mid)
    tracers = [
        gaussian_tracer(grid, nk, lon0=n * 0.5, lat0=0.0, width=width)
        for n in range(config.n_tracers)
    ]
    return RankFields(
        u=u, v=v, w=np.zeros_like(pt), pt=pt, delp=delp, delz=delz,
        tracers=tracers,
    )


def solid_body_state(grid, config) -> RankFields:
    return _solid_body_state(grid, config, u0=40.0, angle=0.0)


def rotated_transport_state(grid, config) -> RankFields:
    """Rotation axis tilted 45° — the flow crosses tile seams and
    corners instead of following the equatorial tile band."""
    return _solid_body_state(grid, config, u0=40.0, angle=np.pi / 4.0)


def resting_state(grid, config) -> RankFields:
    """An isothermal atmosphere at rest: the discrete steady state.

    Uniform temperature and sigma-level pressures mean every horizontal
    gradient is identically zero, so the dynamics should keep the state
    at rest to rounding — any spurious wind the solver generates is a
    discretization bug this scenario's checks catch.
    """
    nk = config.npz
    delp, p_mid, _ = _uniform_pressure(grid, config)
    pt = np.full(grid.shape + (nk,), 280.0)
    delz = _hydrostatic_delz(pt, delp, p_mid)
    zeros = np.zeros(grid.shape + (nk,))
    tracers = [
        gaussian_tracer(grid, nk, lon0=n * 0.5, lat0=0.3, width=0.5)
        for n in range(config.n_tracers)
    ]
    return RankFields(
        u=zeros.copy(), v=zeros.copy(), w=zeros.copy(), pt=pt, delp=delp,
        delz=delz, tracers=tracers,
    )


# ---------------------------------------------------------------------------
# reference checks
# ---------------------------------------------------------------------------


def _check_finite_and_physical(core, steps) -> list:
    out = []
    for r, state in enumerate(core.states):
        if not np.all(np.isfinite(state.pt)):
            out.append(f"rank {r}: non-finite pt")
        if not np.all(state.delp > 0):
            out.append(f"rank {r}: non-positive delp")
        if not np.all(state.delz < 0):
            out.append(f"rank {r}: non-negative delz")
    return out


def _check_wind_bounds(limit):
    def check(core, steps) -> list:
        vmax = core.max_wind()
        if not np.isfinite(vmax) or vmax > limit:
            return [f"max wind {vmax:.2f} m/s exceeds {limit:.1f} m/s"]
        return []

    return check


def _check_initial_jet(core, steps) -> list:
    if steps:
        return []
    vmax = core.max_wind()
    if not 30.0 < vmax < 45.0:
        return [f"initial jet {vmax:.2f} m/s outside (30, 45) m/s"]
    return []


def _check_tracer_monotone(core, steps) -> list:
    """The monotone transport scheme must not under/overshoot [0, 1]."""
    out = []
    h = core.h
    for r, state in enumerate(core.states):
        for t, tr in enumerate(state.tracers):
            interior = tr[h:-h, h:-h]
            if interior.min() < -0.02 or interior.max() > 1.1:
                out.append(
                    f"rank {r} tracer {t} outside bounds "
                    f"[{interior.min():.3f}, {interior.max():.3f}]"
                )
    return out


def _check_stays_at_rest(core, steps) -> list:
    """Resting atmosphere: no spurious circulation may develop."""
    vmax = core.max_wind()
    wmax = max(
        float(np.max(np.abs(s.w[core.h:-core.h, core.h:-core.h])))
        for s in core.states
    )
    out = []
    if vmax > 0.5:
        out.append(f"spurious wind {vmax:.3f} m/s in resting atmosphere")
    if wmax > 0.1:
        out.append(f"spurious w {wmax:.4f} m/s in resting atmosphere")
    return out


# ---------------------------------------------------------------------------
# registration
# ---------------------------------------------------------------------------

BAROCLINIC_WAVE = register_scenario(Scenario(
    name="baroclinic_wave",
    description="Perturbed mid-latitude zonal jet (paper Sec. IX; "
                "Ullrich et al. 2014, simplified)",
    builder=baroclinic_state,
    config_defaults=dict(
        npx=24, npz=10, layout=1, dt_atmos=180.0, k_split=1, n_split=3,
        n_tracers=1,
    ),
    checks=(_check_finite_and_physical, _check_initial_jet,
            _check_wind_bounds(100.0)),
    perturbation=SmoothPerturbation(wind_amplitude=0.5,
                                    theta_amplitude=1e-3),
    mass_drift_tol=1e-9,
    tracer_drift_tol=1e-6,
))

SOLID_BODY_ROTATION = register_scenario(Scenario(
    name="solid_body_rotation",
    description="Williamson test 1: Gaussian tracer in rigid rotation "
                "along the equator",
    builder=solid_body_state,
    config_defaults=dict(
        npx=16, npz=3, layout=1, dt_atmos=1200.0, k_split=1, n_split=3,
        n_tracers=1, d2_damp=0.0, smag_coeff=0.0,
    ),
    checks=(_check_finite_and_physical, _check_tracer_monotone,
            _check_wind_bounds(60.0)),
    perturbation=SmoothPerturbation(wind_amplitude=0.2,
                                    theta_amplitude=0.0),
    mass_drift_tol=1e-7,
    tracer_drift_tol=2e-5,
))

ROTATED_TRANSPORT = register_scenario(Scenario(
    name="rotated_transport",
    description="Solid-body rotation tilted 45°: the tracer crosses "
                "tile seams and corners",
    builder=rotated_transport_state,
    config_defaults=dict(
        npx=16, npz=3, layout=1, dt_atmos=1200.0, k_split=1, n_split=3,
        n_tracers=1, d2_damp=0.0, smag_coeff=0.0,
    ),
    checks=(_check_finite_and_physical, _check_tracer_monotone,
            _check_wind_bounds(60.0)),
    perturbation=SmoothPerturbation(wind_amplitude=0.2,
                                    theta_amplitude=0.0),
    mass_drift_tol=1e-7,
    tracer_drift_tol=2e-5,
))

RESTING_ATMOSPHERE = register_scenario(Scenario(
    name="resting_atmosphere",
    description="Isothermal atmosphere at rest: the discrete steady "
                "state must stay steady",
    builder=resting_state,
    config_defaults=dict(
        npx=12, npz=4, layout=1, dt_atmos=300.0, k_split=1, n_split=2,
        n_tracers=1,
    ),
    checks=(_check_finite_and_physical, _check_stays_at_rest),
    perturbation=SmoothPerturbation(wind_amplitude=0.05,
                                    theta_amplitude=1e-4),
    mass_drift_tol=1e-11,
    tracer_drift_tol=1e-9,
))
