"""Scenario abstraction and registry.

A :class:`Scenario` bundles everything needed to launch a model
experiment: a named initial-condition builder, suggested configuration
defaults, a perturbation recipe for ensemble members, and a set of
reference checks that validate the produced state (and, after stepping,
the run) against known physics. Scenarios live in a process-wide
registry keyed by name — the experiment facade (:mod:`repro.run`)
resolves ``run("baroclinic_wave", ...)`` through :func:`get_scenario`,
exactly like stencil backends resolve through
:mod:`repro.dsl.backends`.

The ensemble seeding contract: a scenario's builder receives an
optional :class:`numpy.random.Generator`. ``rng=None`` (or member 0,
the control) builds the unperturbed reference state; a generator —
spawned per member from one root :class:`numpy.random.SeedSequence` by
the driver — drives the scenario's :class:`Perturbation` recipe and
nothing else, so a member's state depends only on (root seed, member
id), never on how many members run alongside it.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.fv3.config import DynamicalCoreConfig

__all__ = [
    "Perturbation",
    "Scenario",
    "UnknownScenarioError",
    "available_scenarios",
    "get_scenario",
    "register_scenario",
]


class UnknownScenarioError(KeyError):
    """Raised when a scenario name is not in the registry."""

    def __init__(self, name: str, known: Sequence[str]):
        super().__init__(name)
        self.name = name
        self.known = tuple(known)

    def __str__(self) -> str:
        return (
            f"unknown scenario {self.name!r}; registered: "
            f"{', '.join(self.known) or '(none)'}"
        )


class Perturbation:
    """Base ensemble perturbation recipe: mutate a built state in place.

    Recipes draw exclusively from the member's generator, so the
    perturbed state is a pure function of (root seed, member id). The
    builder calls :meth:`apply` once per rank, in rank order.
    """

    def apply(self, state, grid, rng: np.random.Generator) -> None:
        raise NotImplementedError


@dataclasses.dataclass(frozen=True)
class SmoothPerturbation(Perturbation):
    """Smooth low-wavenumber wind + temperature noise.

    Adds ``n_modes`` random-phase zonal harmonics (tapered by cos φ so
    the poles stay clean) to the local wind components and a relative
    temperature ripple — smooth fields, so the perturbed state remains
    dynamically admissible rather than grid-scale noise.
    """

    wind_amplitude: float = 0.5  # m/s
    theta_amplitude: float = 1e-3  # relative pt perturbation
    n_modes: int = 3

    def apply(self, state, grid, rng: np.random.Generator) -> None:
        lon, lat = grid.lon, grid.lat
        du = np.zeros(lon.shape)
        dv = np.zeros(lon.shape)
        dt = np.zeros(lon.shape)
        for m in range(1, self.n_modes + 1):
            pu, pv, pt_ = rng.uniform(0.0, 2.0 * np.pi, size=3)
            au, av, at = rng.standard_normal(3) / self.n_modes
            carrier = np.cos(lat)
            du += au * np.sin(m * lon + pu) * carrier
            dv += av * np.sin(m * lon + pv) * carrier
            dt += at * np.cos(m * lon + pt_) * carrier
        state.u += self.wind_amplitude * du[..., None]
        state.v += self.wind_amplitude * dv[..., None]
        state.pt *= 1.0 + self.theta_amplitude * dt[..., None]


#: a reference check: (core, steps_taken) -> list of violation strings
Check = Callable[[object, int], List[str]]


@dataclasses.dataclass(frozen=True)
class Scenario:
    """A named, reference-checked experiment definition.

    Attributes:
        name: registry key.
        description: one-line human description.
        builder: ``(grid, config) -> RankFields`` unperturbed state
            builder for one rank.
        config_defaults: keyword overrides applied on top of
            :class:`DynamicalCoreConfig` defaults by
            :meth:`default_config`.
        checks: reference checks run by :meth:`reference_check`; each
            receives ``(core, steps_taken)`` and returns violation
            strings (empty = pass).
        perturbation: ensemble recipe applied to members with an RNG
            (``None`` disables ensemble spread for this scenario).
        mass_drift_tol: allowed relative drift of Σ δp·area over a run
            (``None`` skips the driver's conservation check).
        tracer_drift_tol: allowed relative drift of the tracer mass.
    """

    name: str
    description: str
    builder: Callable
    config_defaults: Mapping[str, object] = dataclasses.field(
        default_factory=dict
    )
    checks: Tuple[Check, ...] = ()
    perturbation: Optional[Perturbation] = None
    mass_drift_tol: Optional[float] = None
    tracer_drift_tol: Optional[float] = None

    def default_config(self, **overrides) -> DynamicalCoreConfig:
        """The scenario's suggested configuration (overridable)."""
        merged = dict(self.config_defaults)
        merged.update(overrides)
        return DynamicalCoreConfig(**merged)

    def build_state(self, grid, config, rng: Optional[np.random.Generator]
                    = None):
        """Build one rank's state; an RNG applies the perturbation."""
        state = self.builder(grid, config)
        if rng is not None and self.perturbation is not None:
            self.perturbation.apply(state, grid, rng)
        return state

    def initializer(self, rng: Optional[np.random.Generator] = None):
        """An ``init(grid, config)`` adapter for ``DynamicalCore``."""

        def init(grid, config):
            return self.build_state(grid, config, rng)

        return init

    def reference_check(self, core, steps: int = 0) -> List[str]:
        """Run every check; returns the list of violations (empty=OK)."""
        violations: List[str] = []
        for check in self.checks:
            violations.extend(check(core, steps))
        return violations


# ---------------------------------------------------------------------------
# the registry
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario, replace: bool = False) -> Scenario:
    """Add a scenario to the registry (``replace`` permits overriding)."""
    if scenario.name in _REGISTRY and not replace:
        raise ValueError(
            f"scenario {scenario.name!r} is already registered "
            f"(pass replace=True to override)"
        )
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name_or_scenario) -> Scenario:
    """Resolve a scenario by name (a ``Scenario`` passes through)."""
    if isinstance(name_or_scenario, Scenario):
        return name_or_scenario
    name = str(name_or_scenario)
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownScenarioError(name, sorted(_REGISTRY)) from None


def available_scenarios() -> List[str]:
    """Sorted names of every registered scenario."""
    return sorted(_REGISTRY)
